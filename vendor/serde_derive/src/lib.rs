//! No-op derive macros backing the offline `serde` shim.
//!
//! `#[derive(Serialize, Deserialize)]` must parse and expand for the
//! workspace to build without crates.io access; nothing in the workspace
//! calls serialization at runtime, so the expansion is empty.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
