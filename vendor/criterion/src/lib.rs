//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this shim provides the
//! API surface the workspace's benches use — `criterion_group!` /
//! `criterion_main!`, `Criterion::bench_function`, benchmark groups,
//! `bench_with_input`, `iter` / `iter_batched`, `BenchmarkId`, `BatchSize`,
//! and `black_box` — backed by a plain wall-clock timer. It reports the
//! mean time per iteration over a small fixed sample; no statistics,
//! baselines, or HTML reports. Bench targets must set `harness = false`,
//! exactly as with real criterion.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// How `iter_batched` amortizes setup; accepted and ignored by the shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark identifier: function name plus optional parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Runs the closure under test and accumulates elapsed time.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(iterations: u64) -> Self {
        Self {
            iterations,
            elapsed: Duration::ZERO,
        }
    }

    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

/// Top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Enough iterations to smooth scheduler noise while keeping a full
        // `cargo bench` run of simulation-heavy benches tractable.
        Self { sample_size: 10 }
    }
}

impl Criterion {
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&id.to_string(), self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

fn run_one(label: &str, iterations: u64, mut f: impl FnMut(&mut Bencher)) {
    // One warmup pass, then the timed pass.
    let mut warmup = Bencher::new(1);
    f(&mut warmup);
    let mut bencher = Bencher::new(iterations);
    f(&mut bencher);
    let per_iter = bencher.elapsed / bencher.iterations.max(1) as u32;
    println!("{label:<56} time: {per_iter:>12.3?}/iter  ({iterations} iters)");
}

/// Collects benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for bench targets built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
