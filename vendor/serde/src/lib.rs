//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this shim provides exactly the surface the workspace uses: the
//! `Serialize` / `Deserialize` trait names and the matching derive macros.
//! The derives expand to nothing — no code in the workspace serializes at
//! runtime; the derive attributes exist so downstream consumers with the
//! real serde can round-trip the config and outcome types.
//!
//! Swapping the real crate back in is a one-line change in the workspace
//! `Cargo.toml` once a registry is reachable.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
