//! Deterministic case generation for the shimmed `proptest!` macro.

/// How many cases each property runs; mirrors `proptest::test_runner::Config`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; these properties drive full-system
        // simulations per case, so the shim keeps the default modest.
        Self { cases: 24 }
    }
}

/// splitmix64 — tiny, uniform, and plenty for test-input sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Fixed seed: every `cargo test` run explores identical inputs.
    pub fn deterministic() -> Self {
        Self {
            state: 0x5eed_f1a5_4aba_c005_u64 ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
