//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec`s whose length is drawn from `len` and whose elements
/// are drawn from `element`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = if self.len.is_empty() {
            self.len.start
        } else {
            self.len.sample(rng)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Mirrors `proptest::collection::vec(element, size_range)`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}
