//! Value-generation strategies for the shimmed `proptest!` macro.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A source of sampled values; mirrors `proptest::strategy::Strategy` minus
/// shrinking and `ValueTree`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($(($t:ty, $ut:ty)),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Span must go through the unsigned counterpart: a plain
                // `as u64` would sign-extend a wrapped difference.
                let span = self.end.wrapping_sub(self.start) as $ut as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

signed_range_strategy!((i8, u8), (i16, u16), (i32, u32), (i64, u64), (isize, usize));

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

/// `prop::bool::ANY`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A fixed value, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
