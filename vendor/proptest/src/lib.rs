//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this shim reimplements
//! the small slice of proptest this workspace uses: the `proptest!` test
//! macro, range / tuple / vec / bool strategies, `prop_assert!` /
//! `prop_assert_eq!`, and `ProptestConfig::with_cases`. Sampling is driven
//! by a fixed-seed splitmix64 generator, so every run explores the same
//! inputs — weaker than real proptest (no shrinking, no persistence) but
//! fully deterministic and dependency-free.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The `prop` path proptest exposes through its prelude.
pub mod prop {
    pub use crate::collection;

    /// Boolean strategies (`prop::bool::ANY`).
    pub mod bool {
        /// Strategy producing both booleans, alternating pseudo-randomly.
        pub const ANY: crate::strategy::AnyBool = crate::strategy::AnyBool;
    }
}

pub mod prelude {
    pub use crate::strategy::{AnyBool, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares deterministic property tests.
///
/// Supports the subset of the real macro's grammar used in this workspace:
/// an optional leading `#![proptest_config(...)]`, then one or more
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic();
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                #[allow(unreachable_code)]
                let __run = || -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    Ok(())
                };
                if let Err(msg) = __run() {
                    panic!("property failed on case {__case}: {msg}");
                }
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// `assert!` that reports through the proptest failure path.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!($($fmt)*));
        }
    };
}

/// `assert_eq!` that reports through the proptest failure path.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

/// `assert_ne!` that reports through the proptest failure path.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}
