# Developer conveniences for the FlashAbacus reproduction.
#
# `bless-golden` is the one audited way to regenerate the
# results-invariance golden file after an *intentional* physics change:
# it re-renders the pinned campaign, overwrites
# tests/golden/small_campaign.txt, and prints the resulting diff so the
# change lands reviewably in the same PR.

.PHONY: verify bless-golden perfstat

verify:
	cargo build --release --workspace --all-targets
	cargo test -q --workspace

bless-golden:
	FA_BLESS_GOLDEN=1 cargo test -q --test results_golden default_policy_report_is_byte_identical_to_golden
	git --no-pager diff --stat -- tests/golden/
	@echo "golden re-blessed; review the diff above before committing"

perfstat:
	cargo run --release -p fa-bench --bin perfstat
