//! Quickstart: offload a small application batch to FlashAbacus and print
//! the outcome.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use flashabacus_suite::prelude::*;

fn main() {
    // 1. Describe an application: one kernel with a serial set-up
    //    microblock followed by a parallel microblock split into screens.
    let mix = InstructionMix::new(8_000_000, 0.40, 0.12);
    let app = ApplicationBuilder::new("quickstart")
        .kernel(
            "quickstart-k0",
            DataSection {
                flash_base: 0,
                input_bytes: 8 << 20,
                output_bytes: 1 << 20,
            },
            &[
                (1, InstructionMix::new(800_000, 0.40, 0.12), 1 << 20, 0),
                (8, mix, 7 << 20, 1 << 20),
            ],
        )
        .build(AppId(0));

    // 2. Stamp out four instances, laying their flash data sections out
    //    contiguously in the backbone's logical address space.
    let apps = instantiate_many(
        &[app],
        &InstancePlan {
            instances_per_app: 4,
            ..Default::default()
        },
    );

    // 3. Build the paper's prototype accelerator with the out-of-order
    //    intra-kernel scheduler and run the batch.
    let config = FlashAbacusConfig::paper_prototype(SchedulerPolicy::IntraO3);
    let mut accelerator = FlashAbacusSystem::new(config);
    let outcome = accelerator.run(&apps).expect("workload runs to completion");

    // 4. Inspect the results.
    println!("FlashAbacus quickstart");
    println!("  scheduler            : {:?}", outcome.scheduler);
    println!(
        "  kernels completed    : {}",
        outcome.kernel_latencies.len()
    );
    println!(
        "  total time           : {:.3} ms",
        outcome.finished_at.as_secs_f64() * 1e3
    );
    println!(
        "  throughput           : {:.1} MB/s",
        outcome.throughput_mb_s()
    );
    let (min, avg, max) = outcome.latency_stats();
    println!(
        "  kernel latency        : min {:.3} ms / avg {:.3} ms / max {:.3} ms",
        min * 1e3,
        avg * 1e3,
        max * 1e3
    );
    println!(
        "  worker utilization   : {:.1} %",
        outcome.mean_worker_utilization() * 100.0
    );
    println!(
        "  energy               : {:.3} J (compute {:.3} J, storage {:.3} J, movement {:.3} J)",
        outcome.energy.total_j(),
        outcome.energy.breakdown.computation_j,
        outcome.energy.breakdown.storage_access_j,
        outcome.energy.breakdown.data_movement_j,
    );
    println!(
        "  flash traffic        : {} page-group reads, {} page-group writes",
        outcome.flash_group_reads, outcome.flash_group_writes
    );
}
