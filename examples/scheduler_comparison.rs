//! Compare the four FlashAbacus schedulers and the conventional SIMD
//! baseline on the same mixed batch — a miniature version of Figure 10b.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example scheduler_comparison
//! ```

use flashabacus_suite::prelude::*;

/// Builds a small heterogeneous batch: two data-intensive and two
/// compute-intensive PolyBench applications, two instances each.
fn mixed_batch() -> Vec<Application> {
    let scale = 128; // divide the paper's input sizes for a fast demo
    let templates = vec![
        polybench_app(PolyBench::Atax, scale),
        polybench_app(PolyBench::Mvt, scale),
        polybench_app(PolyBench::Gemm, scale),
        polybench_app(PolyBench::ThreeMm, scale),
    ];
    instantiate_many(
        &templates,
        &InstancePlan {
            instances_per_app: 2,
            ..Default::default()
        },
    )
}

fn main() {
    let apps = mixed_batch();
    println!(
        "Mixed batch: {} kernel instances, {:.1} MB of flash-resident data\n",
        apps.len(),
        apps.iter().map(|a| a.flash_bytes()).sum::<u64>() as f64 / 1e6
    );
    println!(
        "{:<10}  {:>12}  {:>12}  {:>14}  {:>10}",
        "system", "time (ms)", "MB/s", "avg lat (ms)", "energy (J)"
    );

    // The conventional baseline first.
    let mut simd = ConventionalSystem::new(BaselineConfig::paper_baseline());
    let base = simd.run(&apps);
    let (_, base_avg, _) = base.latency_stats();
    println!(
        "{:<10}  {:>12.2}  {:>12.1}  {:>14.2}  {:>10.3}",
        "SIMD",
        base.finished_at.as_secs_f64() * 1e3,
        base.throughput_mb_s(),
        base_avg * 1e3,
        base.energy.total_j()
    );

    // All four FlashAbacus policies.
    for policy in SchedulerPolicy::all() {
        let mut system = FlashAbacusSystem::new(FlashAbacusConfig::paper_prototype(policy));
        let out = system.run(&apps).expect("run completes");
        let (_, avg, _) = out.latency_stats();
        println!(
            "{:<10}  {:>12.2}  {:>12.1}  {:>14.2}  {:>10.3}",
            policy.label(),
            out.finished_at.as_secs_f64() * 1e3,
            out.throughput_mb_s(),
            avg * 1e3,
            out.energy.total_j()
        );
    }

    println!("\nExpected shape (paper §5.1): the intra-kernel out-of-order scheduler");
    println!("wins on mixed batches because it borrows screens across kernels when a");
    println!("straggler would otherwise idle the workers; SIMD pays for every byte it");
    println!("moves through the host storage stack.");
}
