//! Working directly with Flashvisor and Storengine: flash virtualization,
//! range-lock protection, and background garbage collection.
//!
//! This example uses the storage substrate below the scheduler: it maps
//! data sections, performs reads/writes through the page-group mapping
//! table, demonstrates a protection conflict, and drives block reclamation.
//!
//! Run with:
//!
//! ```text
//! cargo run --example flash_virtualization
//! ```

use fa_platform::mem::Scratchpad;
use fa_platform::PlatformSpec;
use fa_sim::time::SimTime;
use flashabacus_suite::flashabacus::config::FlashAbacusConfig;
use flashabacus_suite::flashabacus::rangelock::LockMode;
use flashabacus_suite::flashabacus::scheduler::SchedulerPolicy;
use flashabacus_suite::flashabacus::storengine::Storengine;
use flashabacus_suite::flashabacus::Flashvisor;

fn main() {
    // A small backbone so garbage collection is easy to provoke.
    let config = FlashAbacusConfig::tiny_for_tests(SchedulerPolicy::IntraO3);
    let mut flashvisor = Flashvisor::new(config);
    let mut storengine = Storengine::new(config);
    let mut scratchpad = Scratchpad::new(&PlatformSpec::paper_prototype());

    println!("Flash virtualization walk-through");
    println!(
        "  backbone: {} page groups of {} KiB ({} MiB total)\n",
        config.total_page_groups(),
        config.page_group_bytes / 1024,
        config.flash_geometry.total_bytes() >> 20
    );

    // 1. Map two kernels' data sections. Kernel 1 reads [0, 1 MiB); kernel 2
    //    wants to write an overlapping range and is refused.
    let read_lock = flashvisor
        .map_section(0, 1 << 20, LockMode::Read, 1)
        .expect("first mapping succeeds");
    match flashvisor.map_section(512 << 10, 1 << 20, LockMode::Write, 2) {
        Err(e) => println!("  protection: conflicting write mapping refused -> {e}"),
        Ok(_) => unreachable!("overlapping write must be refused"),
    }

    // 2. Pre-populate the input range (data already resident in flash), then
    //    read it through the mapping table.
    flashvisor.preload_range(0, 1 << 20).expect("preload");
    let read = flashvisor
        .read_section(SimTime::ZERO, 0, 1 << 20, &mut scratchpad)
        .expect("read");
    println!(
        "  read 1 MiB through {} page groups in {:.1} us",
        read.groups,
        read.latency().as_us_f64()
    );

    // 3. Write results log-structured, then overwrite them to create garbage.
    flashvisor.unmap_section(read_lock);
    let write_lock = flashvisor
        .map_section(1 << 20, 512 << 10, LockMode::Write, 1)
        .expect("write mapping");
    for round in 0..3u64 {
        let w = flashvisor
            .write_section(
                SimTime::from_ms(1 + round),
                1 << 20,
                512 << 10,
                &mut scratchpad,
            )
            .expect("write");
        println!(
            "  write round {round}: {} groups, finished at {}",
            w.groups, w.finished
        );
    }
    flashvisor.unmap_section(write_lock);
    println!(
        "  after overwrites: {} free page groups, {} overwritten groups\n",
        flashvisor.free_physical_groups(),
        flashvisor.stats().overwritten_groups
    );

    // 4. Let Storengine journal the mapping and reclaim blocks in the
    //    background (round-robin victim selection, valid-page migration).
    let journal_done = storengine
        .journal(SimTime::from_ms(10), &mut flashvisor)
        .expect("journal");
    println!("  journaling finished at {journal_done}");
    let mut now = SimTime::from_ms(12);
    let mut reclaimed = 0;
    for _ in 0..config.flash_geometry.total_blocks() {
        let pass = storengine
            .collect_garbage(now, &mut flashvisor)
            .expect("gc pass");
        reclaimed += pass.groups_reclaimed;
        now = pass.finished;
    }
    println!(
        "  garbage collection reclaimed {} page groups across {} blocks ({} pages migrated)",
        reclaimed,
        storengine.stats().blocks_reclaimed,
        storengine.stats().pages_migrated
    );
    println!(
        "  free page groups now: {}",
        flashvisor.free_physical_groups()
    );
}
