//! Sharded-engine scale demo: a 64-channel backbone read end to end.
//!
//! The paper's prototype has 4 channels, which caps how far one run can be
//! sharded. [`FlashGeometry::scale_64_channel`] scales the same per-channel
//! population out to 64 channels (512 GiB), and this demo sweeps the
//! channel-sharded read executor across shard counts on that geometry: the
//! whole device is read group by group through
//! `FlashBackbone::read_groups_sharded` at `FA_SHARDS` ∈ {1, 4, 16, 64},
//! and every sweep must finish at the *identical* simulated instant — the
//! shard count changes only how the event lanes are partitioned, never the
//! physics.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example sharded_scale
//! ```

use fa_flash::{FlashBackbone, FlashGeometry, FlashTiming, OwnerId};
use fa_sim::sharded::ShardPlan;
use fa_sim::time::SimTime;
use std::time::Instant;

/// Pages per logical page group — the Flashvisor mapping granularity the
/// section-read path stages.
const GROUP_PAGES: u64 = 8;

/// Groups staged per sharded submission (one conservative window each).
const SECTION_GROUPS: u64 = 256;

/// To keep the demo quick, read this fraction of the 512 GiB device.
const DEVICE_FRACTION: u64 = 64;

fn build_backbone() -> FlashBackbone {
    let geometry = FlashGeometry::scale_64_channel();
    let mut backbone = FlashBackbone::new(
        geometry,
        FlashTiming::paper_prototype(),
        // SRIO fabric scaled with the channel fan-out so the interconnect
        // does not become the sweep's bottleneck.
        16.0 * 2.5e9,
        16,
        1_000_000,
    );
    backbone.enable_group_tracking(GROUP_PAGES);
    backbone
}

fn main() {
    let geometry = FlashGeometry::scale_64_channel();
    let sweep_pages = geometry.total_pages() / DEVICE_FRACTION;
    let sweep_groups = sweep_pages / GROUP_PAGES;
    let sweep_bytes = sweep_pages * geometry.page_bytes as u64;

    println!("Sharded-engine scale demo: 64-channel backbone");
    println!(
        "  geometry             : {} channels x {} dies/channel, {:.0} GiB",
        geometry.channels,
        geometry.dies_per_channel(),
        geometry.total_bytes() as f64 / (1u64 << 30) as f64
    );
    println!(
        "  sweep                : {} page groups x {} pages ({} MiB)",
        sweep_groups,
        GROUP_PAGES,
        sweep_bytes >> 20
    );

    let mut reference: Option<SimTime> = None;
    for shards in [1usize, 4, 16, 64] {
        // Preloading programs every swept page, so each shard count gets a
        // fresh backbone in the same fully-programmed state.
        let mut backbone = build_backbone();
        backbone
            .preload_group(0, sweep_pages)
            .expect("preload swept range");

        let plan = ShardPlan::new(shards);
        let wall = Instant::now();
        let mut now = SimTime::ZERO;
        let mut staged: Vec<(SimTime, u64)> = Vec::new();
        let mut windows = 0u64;
        let mut g = 0u64;
        while g < sweep_groups {
            let n = SECTION_GROUPS.min(sweep_groups - g);
            staged.clear();
            staged.extend((g..g + n).map(|gi| (now, gi * GROUP_PAGES)));
            let batch =
                backbone.read_groups_sharded(plan, &staged, GROUP_PAGES, OwnerId::Kernel(0));
            now = batch.finished;
            windows += 1;
            g += n;
        }
        let wall = wall.elapsed().as_secs_f64();

        match reference {
            None => reference = Some(now),
            Some(reference) => assert_eq!(
                now, reference,
                "shard count leaked into simulated physics at {shards} shards"
            ),
        }
        println!(
            "  {shards:>2} shard(s)          : {:>7.3} ms wall, {windows} window syncs, \
             simulated {:.3} ms ({:.1} GB/s device bandwidth)",
            wall * 1e3,
            now.as_secs_f64() * 1e3,
            sweep_bytes as f64 / now.as_secs_f64() / 1e9
        );
    }
    println!("  simulated completion identical across all shard counts ✓");
}
