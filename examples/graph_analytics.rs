//! Graph and big-data analytics near flash — a miniature of the paper's
//! §5.6 extended evaluation.
//!
//! Runs breadth-first search, k-nearest neighbours, and grid path-finding
//! on FlashAbacus (out-of-order intra-kernel scheduling) and on the
//! conventional system, then reports throughput and the energy split.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example graph_analytics
//! ```

use flashabacus_suite::prelude::*;

fn batch(bench: BigDataBench, instances: usize) -> Vec<Application> {
    let scale = 128; // divide the paper's input sizes for a fast demo
    instantiate_many(
        &[bigdata_app(bench, scale)],
        &InstancePlan {
            instances_per_app: instances,
            ..Default::default()
        },
    )
}

fn main() {
    println!("Graph / big-data analytics near flash (bfs, nn, path)\n");
    println!(
        "{:<6}  {:<12}  {:>12}  {:>12}  {:>18}",
        "app", "system", "time (ms)", "MB/s", "energy (J, dm/comp/st)"
    );

    for (name, bench) in [
        ("bfs", BigDataBench::Bfs),
        ("nn", BigDataBench::Nn),
        ("path", BigDataBench::Path),
    ] {
        let apps = batch(bench, 4);

        let mut conventional = ConventionalSystem::new(BaselineConfig::paper_baseline());
        let simd = conventional.run(&apps);
        println!(
            "{:<6}  {:<12}  {:>12.2}  {:>12.1}  {:>6.2}/{:>4.2}/{:>4.2}",
            name,
            "SIMD",
            simd.finished_at.as_secs_f64() * 1e3,
            simd.throughput_mb_s(),
            simd.energy.data_movement_j,
            simd.energy.computation_j,
            simd.energy.storage_access_j,
        );

        let mut accelerator =
            FlashAbacusSystem::new(FlashAbacusConfig::paper_prototype(SchedulerPolicy::IntraO3));
        let fa = accelerator.run(&apps).expect("run completes");
        println!(
            "{:<6}  {:<12}  {:>12.2}  {:>12.1}  {:>6.2}/{:>4.2}/{:>4.2}",
            name,
            "IntraO3",
            fa.finished_at.as_secs_f64() * 1e3,
            fa.throughput_mb_s(),
            fa.energy.breakdown.data_movement_j,
            fa.energy.breakdown.computation_j,
            fa.energy.breakdown.storage_access_j,
        );
    }

    println!("\nThe conventional system spends most of its energy shuttling the graph");
    println!("between the SSD and the accelerator; FlashAbacus reads it straight out of");
    println!("the flash backbone into DDR3L and spends its energy computing instead.");
}
