//! Standalone reproduction of the Figure 12c QoS ablation: foreground
//! read p99 under concurrent GC with storage management synchronous,
//! backgrounded, and backgrounded with a per-owner tag budget. Uses the
//! exact workload/configs the figure and `BENCH_PR4.json` record, so the
//! numbers match them.

use fa_bench::experiments::fig12_cdf::{gc_pressure_workload, qos_ablation_modes, run_qos_mode};

fn main() {
    let apps = gc_pressure_workload();
    for (label, config) in qos_ablation_modes() {
        let out = run_qos_mode(config, &apps);
        println!(
            "{label:14} gc_passes {:5}  fg read p99 {:.6} ms  batch finish {:.3} ms",
            out.gc_passes,
            out.foreground_read_p99_s * 1e3,
            out.finished_at.as_secs_f64() * 1e3,
        );
    }
}
