//! Flashvisor: flash virtualization and access control.
//!
//! Flashvisor is the LWP that owns the flash backbone. It maps each
//! kernel's data section to physical flash by grouping pages across
//! channels and dies into *page groups*, keeps that mapping table in the
//! scratchpad, translates logical addresses, enforces protection with range
//! locks, and issues the resulting page commands to the FPGA channel
//! controllers (§3.3, §4.3). Writes are allocated log-structured: each new
//! write takes the next free physical page group.

use crate::config::FlashAbacusConfig;
use crate::error::FaError;
use crate::freespace::{FreeSpaceManager, PlacementPolicy};
use crate::rangelock::{LockId, LockMode, RangeLockTable};
use fa_flash::{FaultPlan, FlashBackbone, FlashError, FlashOp, OwnerId};
use fa_platform::mem::Scratchpad;
use fa_sim::resource::FifoServer;
use fa_sim::sharded::ShardPlan;
use fa_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;

/// Statistics kept by Flashvisor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FlashvisorStats {
    /// Page-group read requests translated and issued.
    pub group_reads: u64,
    /// Page-group write requests translated and issued.
    pub group_writes: u64,
    /// Mapping-table lookups served from the scratchpad.
    pub mapping_lookups: u64,
    /// Range-lock acquisitions granted.
    pub lock_grants: u64,
    /// Range-lock acquisitions denied.
    pub lock_denials: u64,
    /// Page groups whose old physical location was invalidated by an
    /// overwrite.
    pub overwritten_groups: u64,
    /// Group writes whose logical group was classified *hot* (overwrite
    /// count at or above the configured threshold).
    pub hot_group_writes: u64,
    /// Group writes whose logical group was classified cold (or hot/cold
    /// separation is disabled).
    pub cold_group_writes: u64,
    /// Hot group writes actually served from the dedicated hot active
    /// blocks (the remainder fell back to the shared allocator because the
    /// device was too full to refill the hot reserve).
    pub hot_steered_writes: u64,
    /// Non-empty section reads routed through the serial per-group loop
    /// instead of the sharded executor (fault plan affecting reads, an
    /// unmapped or partially programmed group). A fault plan silently
    /// forcing the serial path shows up here, not as a mystery slowdown.
    pub sharded_read_fallbacks: u64,
    /// Non-empty section writes and GC erase rows routed through the
    /// serial loop instead of the sharded executor (fault plan affecting
    /// writes, a placement precheck miss, worn blocks).
    pub sharded_write_fallbacks: u64,
}

impl FlashvisorStats {
    /// Fraction of hot-classified writes that landed on the dedicated hot
    /// active blocks; 0 when no write was classified hot.
    pub fn hot_steer_rate(&self) -> f64 {
        if self.hot_group_writes == 0 {
            0.0
        } else {
            self.hot_steered_writes as f64 / self.hot_group_writes as f64
        }
    }
}

/// Erase-cycle statistics over the *data* blocks (the journal's reserved
/// metadata row is excluded — its wear is journal cadence, not placement
/// quality). The single definition behind `RunOutcome`'s wear metrics,
/// the policy-ablation figure, and the oracle's wear checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WearSummary {
    /// Fewest erase cycles any data block absorbed.
    pub min_erases: u64,
    /// Most erase cycles any data block absorbed.
    pub max_erases: u64,
    /// Population standard deviation of per-data-block erase cycles.
    pub stddev_erases: f64,
}

impl WearSummary {
    /// `max − min`: the endurance-headroom spread wear-aware placement
    /// exists to narrow.
    pub fn spread(&self) -> u64 {
        self.max_erases - self.min_erases
    }
}

/// Completion information for a data-section transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferCompletion {
    /// When the request was accepted by Flashvisor.
    pub accepted: SimTime,
    /// When the last page of the transfer completed on the backbone.
    pub finished: SimTime,
    /// Page groups touched.
    pub groups: u64,
}

impl TransferCompletion {
    /// End-to-end latency of the transfer.
    pub fn latency(&self) -> SimDuration {
        self.finished.saturating_since(self.accepted)
    }
}

/// The flash-virtualization LWP.
pub struct Flashvisor {
    config: FlashAbacusConfig,
    backbone: FlashBackbone,
    /// How the flash channels are sharded for intra-run parallelism on the
    /// section read *and* write data paths and the GC erase rows
    /// (`FA_SHARDS`, default 1). Results are byte-identical for every
    /// shard count; only wall-clock time changes.
    shard_plan: ShardPlan,
    /// Logical page group → physical page group, sentinel-encoded:
    /// `0` = unmapped, `pg + 1` = mapped to `pg`. The zero sentinel lets
    /// construction take the allocator's zeroed-page path instead of
    /// writing 8 MB of `None`s per run — untouched table tail pages are
    /// never faulted in.
    mapping: Vec<u64>,
    /// Physical page group → logical page group, maintained alongside
    /// `mapping` so GC can enumerate the groups of one victim block
    /// without walking the whole table. An entry may briefly go stale
    /// (a group recycled externally while still mapped); consumers filter
    /// through `mapping` for the authoritative answer. Sentinel-encoded
    /// like `mapping`: `0` = none, `lg + 1` = logical group `lg`.
    reverse: Vec<u64>,
    /// Incremental free-group structure and placement policy.
    freespace: FreeSpaceManager,
    /// Overwrites absorbed per *logical* group — the cross-layer metadata
    /// hot/cold separation classifies on (the global
    /// `overwritten_groups` stat is the sum of this vector).
    overwrite_counts: Vec<u32>,
    /// Dedicated active blocks for hot data: physical groups pulled from
    /// the allocator one block row at a time and handed only to
    /// hot-classified writes, so cold rows stop absorbing churn.
    hot_reserve: VecDeque<u64>,
    locks: RangeLockTable,
    /// Flashvisor's own LWP time: translations and scheduling decisions
    /// serialize here.
    cpu: FifoServer,
    /// Nanoseconds per LWP cycle, derived once from the platform clock —
    /// `charge_cpu` runs per request, and the division is not free there.
    lwp_ns_per_cycle: f64,
    /// Mapping-table entries modified since the last Storengine journal
    /// dump (incremental journaling writes only these).
    dirty_mapping_entries: u64,
    /// True once a fault plan is installed: every mapping commit is then
    /// also appended to `redo_since_journal` so power-loss recovery can
    /// replay the journal. Fault-free runs never set this and record
    /// nothing.
    record_redo: bool,
    /// Redo records `(logical, physical)` committed since the previous
    /// successful journal dump. A crash loses these — exactly the commits
    /// the real device would lose.
    redo_since_journal: Vec<(u64, u64)>,
    /// Ordered redo records persisted by successful journal dumps — the
    /// journal's logical content, replayed by [`Flashvisor::recover`].
    journal_replay_log: Vec<(u64, u64)>,
    /// Block rows the fault model condemned but which could not yet be
    /// vacated (no migration destination, or the destinations kept
    /// failing); retried on the next retirement pass.
    pending_retire_rows: VecDeque<u64>,
    /// The bad-block remap table: block rows retired from service, in
    /// retirement order.
    retired_rows: Vec<u64>,
    stats: FlashvisorStats,
}

impl Flashvisor {
    /// Creates a Flashvisor owning a freshly built backbone.
    pub fn new(config: FlashAbacusConfig) -> Self {
        let mut backbone = FlashBackbone::new(
            config.flash_geometry,
            config.flash_timing,
            config.srio_bytes_per_sec,
            config.channel_tag_queue,
            config.endurance_cycles,
        );
        // Group-level accounting (complete reclamation of erased groups)
        // and the per-owner tag budgets both live in the backbone.
        backbone.enable_group_tracking(config.pages_per_group());
        backbone.set_qos_budgets(config.qos.budgets());
        let total_groups = config.total_page_groups();
        let mut freespace = FreeSpaceManager::new(
            total_groups,
            config.pages_per_group(),
            config.flash_geometry.channels,
            config.flash_geometry.dies_per_channel(),
            config.flash_geometry.pages_per_block,
            config.placement,
        );
        // Fence the journal's metadata row off from the data allocator: on
        // a nearly-full device the cursor used to reach it, programs
        // failed, and the journal's recycle path erased under live data.
        if let Some(row) = config.journal_metadata_row() {
            let (low, high) = config.block_row_group_range(row);
            freespace.reserve_range(low, high);
        }
        Flashvisor {
            config,
            backbone,
            shard_plan: ShardPlan::from_env(),
            mapping: vec![0; total_groups as usize],
            reverse: vec![0; total_groups as usize],
            freespace,
            overwrite_counts: vec![0; total_groups as usize],
            hot_reserve: VecDeque::new(),
            locks: RangeLockTable::new(),
            cpu: FifoServer::new("flashvisor"),
            lwp_ns_per_cycle: 1.0e9 / config.platform.lwp_freq_hz as f64,
            dirty_mapping_entries: 0,
            record_redo: false,
            redo_since_journal: Vec::new(),
            journal_replay_log: Vec::new(),
            pending_retire_rows: VecDeque::new(),
            retired_rows: Vec::new(),
            stats: FlashvisorStats::default(),
        }
    }

    /// The configuration this Flashvisor was built with.
    pub fn config(&self) -> &FlashAbacusConfig {
        &self.config
    }

    /// The shard plan driving the sharded read data path.
    pub fn shard_plan(&self) -> ShardPlan {
        self.shard_plan
    }

    /// Overrides the shard plan (tests and the perf harness compare shard
    /// counts without touching the process environment). Behaviour is
    /// invariant to this; only wall-clock time may change.
    pub fn set_shard_plan(&mut self, plan: ShardPlan) {
        self.shard_plan = plan;
    }

    /// Immutable access to the backbone (reports, GC victim inspection).
    pub fn backbone(&self) -> &FlashBackbone {
        &self.backbone
    }

    /// Mutable access to the backbone (used by Storengine).
    pub fn backbone_mut(&mut self) -> &mut FlashBackbone {
        &mut self.backbone
    }

    /// Current statistics.
    pub fn stats(&self) -> FlashvisorStats {
        self.stats
    }

    /// Number of physical page groups not yet allocated. O(1): read from
    /// the free-space manager's incremental count.
    pub fn free_physical_groups(&self) -> u64 {
        self.freespace.free_count()
    }

    /// The free-space manager (placement policy, occupancy, oracles).
    pub fn freespace(&self) -> &FreeSpaceManager {
        &self.freespace
    }

    /// The placement policy in force.
    pub fn placement_policy(&self) -> PlacementPolicy {
        self.freespace.policy()
    }

    /// Allocated page groups per channel/die stripe class.
    pub fn placement_occupancy(&self) -> &[u64] {
        self.freespace.occupancy()
    }

    /// Fraction of physical page groups still free.
    pub fn free_fraction(&self) -> f64 {
        self.free_physical_groups() as f64 / self.config.total_page_groups() as f64
    }

    /// Busy fraction of the Flashvisor LWP up to `now`.
    pub fn cpu_utilization(&self, now: SimTime) -> f64 {
        self.cpu.utilization(now)
    }

    /// Total busy time of the Flashvisor LWP up to `now`.
    pub fn cpu_busy_time(&self, now: SimTime) -> SimDuration {
        self.cpu.busy_time(now)
    }

    /// Logical page-group index covering logical byte address `addr`.
    fn logical_group_of(&self, addr: u64) -> u64 {
        addr / self.config.page_group_bytes
    }

    /// Number of page groups covering the byte range `[start, start+len)`.
    fn groups_covering(&self, start: u64, len: u64) -> (u64, u64) {
        if len == 0 {
            let g = self.logical_group_of(start);
            return (g, g);
        }
        let first = self.logical_group_of(start);
        let last = self.logical_group_of(start + len - 1);
        (first, last)
    }

    /// Charges Flashvisor CPU time for one unit of work of `cycles` cycles
    /// starting no earlier than `now`, returning when that work is done.
    fn charge_cpu(&mut self, now: SimTime, cycles: u64) -> SimTime {
        let dur = SimDuration::from_ns_f64(cycles as f64 * self.lwp_ns_per_cycle);
        self.cpu.serve(now, dur).end
    }

    /// Charges one scheduling decision (used by the system driver so that
    /// scheduling overhead lands on the Flashvisor LWP as the paper
    /// describes).
    pub fn charge_scheduling_decision(&mut self, now: SimTime) -> SimTime {
        self.charge_cpu(now, self.config.scheduling_decision_cycles)
    }

    /// Acquires the range lock protecting a data-section mapping.
    pub fn map_section(
        &mut self,
        start: u64,
        len: u64,
        mode: LockMode,
        owner: u32,
    ) -> Result<LockId, FaError> {
        let end = start + len.max(1);
        match self.locks.try_acquire(start, end, mode, owner) {
            Some(id) => {
                self.stats.lock_grants += 1;
                Ok(id)
            }
            None => {
                self.stats.lock_denials += 1;
                Err(FaError::RangeConflict {
                    range: (start, end),
                })
            }
        }
    }

    /// Releases a data-section mapping.
    pub fn unmap_section(&mut self, lock: LockId) {
        self.locks.release(lock);
    }

    /// Releases every mapping owned by `owner`.
    pub fn unmap_owner(&mut self, owner: u32) {
        self.locks.release_owner(owner);
    }

    /// Access to the lock table (ablation experiments).
    pub fn locks(&self) -> &RangeLockTable {
        &self.locks
    }

    /// The owner identity a transfer over `[start, start+len)` carries to
    /// the backbone: the range-lock owner when a kernel has the section
    /// mapped (the cross-layer metadata the QoS budgets key on), otherwise
    /// [`OwnerId::Unattributed`].
    fn transfer_owner(&self, start: u64, len: u64) -> OwnerId {
        match self.locks.owner_covering(start, start + len.max(1)) {
            Some(owner) => OwnerId::Kernel(owner),
            None => OwnerId::Unattributed,
        }
    }

    /// Returns erased-and-unmapped page groups to the allocator: drains
    /// the backbone's fully-erased group list (maintained by group
    /// tracking on every block erase) and recycles each group that no
    /// mapping references — the group-reclaim completeness fix, covering
    /// overwritten garbage groups no migration ever recycled. Groups still
    /// mapped are left alone. Returns how many groups were newly freed.
    pub fn reclaim_fully_erased(&mut self) -> u64 {
        self.sync_wear();
        let mut reclaimed = 0;
        for pg in self.backbone.take_fully_erased_groups() {
            if self.logical_group_mapped_to(pg).is_none() && !self.freespace.is_free(pg) {
                self.freespace.recycle(pg);
                reclaimed += 1;
            }
        }
        reclaimed
    }

    /// Forwards the block erases the backbone absorbed since the previous
    /// drain into the free-space manager's per-row wear ledger, keeping the
    /// `LeastWorn` min-wear index current without ever recounting erase
    /// cycles from the dies. A no-op (and O(1)) when nothing was erased.
    fn sync_wear(&mut self) {
        let blocks_per_die = self.config.flash_geometry.blocks_per_die() as u64;
        for block in self.backbone.take_erased_blocks() {
            self.freespace.note_block_erase(block % blocks_per_die);
        }
    }

    fn allocate_physical_group(&mut self) -> Result<u64, FaError> {
        self.sync_wear();
        self.freespace
            .allocate()
            // The shared pool ran dry: hand back a group parked in the hot
            // reserve rather than failing with space still on the device.
            .or_else(|| self.hot_reserve.pop_front())
            .ok_or(FaError::OutOfFlashSpace {
                requested: 1,
                available: 0,
            })
    }

    /// Allocates a destination for a hot-classified write: the front of the
    /// dedicated hot reserve, refilled up to one block *row's* worth of
    /// groups at a time — the row is GC's reclaim unit, so hot churn fills
    /// whole rows that later erase with almost nothing valid left to
    /// migrate. A refill always stops at a row boundary: carving past one
    /// would park a row's leading pages in the reserve while the shared
    /// pool hands out the same row's tail, and whichever stream programs
    /// second would violate the per-block sequential-program order. Falls
    /// back to the shared allocator (unsteered) when the device is too full
    /// to refill.
    fn allocate_hot_group(&mut self) -> Result<u64, FaError> {
        if self.hot_reserve.is_empty() {
            self.sync_wear();
            let batch = self.hot_refill_row_groups();
            for _ in 0..batch {
                match self.freespace.allocate() {
                    Some(g) => {
                        self.hot_reserve.push_back(g);
                        if (g + 1) % batch == 0 {
                            break;
                        }
                    }
                    None => break,
                }
            }
        }
        match self.hot_reserve.pop_front() {
            Some(g) => {
                self.stats.hot_steered_writes += 1;
                Ok(g)
            }
            None => self.allocate_physical_group(),
        }
    }

    /// Groups in one block row — the hot reserve's refill quantum and the
    /// alignment unit its refills stop at.
    fn hot_refill_row_groups(&self) -> u64 {
        let geometry = self.config.flash_geometry;
        let row_pages = geometry.pages_per_block as u64
            * geometry.channels as u64
            * geometry.dies_per_channel() as u64;
        (row_pages / self.config.pages_per_group()).max(1)
    }

    /// Looks up the mapping slot of a logical group, rejecting addresses
    /// beyond the virtualized capacity.
    fn logical_slot(&self, logical_group: u64) -> Result<Option<u64>, FaError> {
        self.mapping
            .get(logical_group as usize)
            .map(|&e| e.checked_sub(1))
            .ok_or(FaError::UnmappedAddress(
                logical_group * self.config.page_group_bytes,
            ))
    }

    /// Pre-populates the mapping and backbone for a logical byte range, as
    /// if a host had written the input data before the experiment started.
    /// Consumes no simulated time.
    pub fn preload_range(&mut self, start: u64, len: u64) -> Result<(), FaError> {
        if len == 0 {
            return Ok(());
        }
        let pages = self.config.pages_per_group();
        let (first, last) = self.groups_covering(start, len);
        for lg in first..=last {
            if self.logical_slot(lg)?.is_some() {
                continue;
            }
            let pg = self.allocate_physical_group()?;
            self.backbone.preload_group(pg * pages, pages)?;
            self.mapping[lg as usize] = pg + 1;
            self.reverse[pg as usize] = lg + 1;
            // Preloads model data that existed before the run: they must
            // survive journal replay like any committed mapping.
            self.record_commit(lg, pg);
        }
        Ok(())
    }

    /// Reads the logical byte range `[start, start+len)` of a data section
    /// into DDR3L: translation on the Flashvisor LWP followed by page reads
    /// on the backbone. Returns when the last page arrives.
    ///
    /// When every covered group is mapped and fully programmed — the
    /// steady-state case, established by a pure precheck that touches no
    /// state — the whole section is staged and issued through the
    /// backbone's sharded channel executor in one batch: the translation
    /// prologue is a pure Flashvisor-CPU chain (scratchpad + LWP cycles)
    /// whose schedule never depends on flash completions, so charging it
    /// up front and then running the flash phase is exactly the serial
    /// interleaving, and the sharded executor itself replays all globally
    /// serialized effects in submission order. Sections that could fault
    /// take the original per-group serial loop, preserving mid-section
    /// error semantics to the byte.
    pub fn read_section(
        &mut self,
        now: SimTime,
        start: u64,
        len: u64,
        scratchpad: &mut Scratchpad,
    ) -> Result<TransferCompletion, FaError> {
        if len == 0 {
            return Ok(TransferCompletion {
                accepted: now,
                finished: now,
                groups: 0,
            });
        }
        let pages = self.config.pages_per_group();
        let owner = self.transfer_owner(start, len);
        let (first, last) = self.groups_covering(start, len);
        // Pure resolve pass: no CPU charges, no stats — just whether the
        // fault-free fast path applies, and the physical groups if so.
        let mut pgs: Vec<u64> = Vec::with_capacity((last - first + 1) as usize);
        let mut all_mapped = true;
        for lg in first..=last {
            match self.logical_slot(lg) {
                Ok(Some(pg)) => pgs.push(pg),
                _ => {
                    all_mapped = false;
                    break;
                }
            }
        }
        if all_mapped
            && !self.backbone.faults_affect_reads()
            && self
                .backbone
                .groups_readable(pgs.iter().map(|&pg| pg * pages), pages)
        {
            // Translation prologue: identical scratchpad traffic, CPU
            // charges and counters as the serial loop below.
            let mut cursor = now;
            let mut staged: Vec<(SimTime, u64)> = Vec::with_capacity(pgs.len());
            for (k, &pg) in pgs.iter().enumerate() {
                let lg = first + k as u64;
                scratchpad.access(cursor, lg * 4, 4);
                cursor = self.charge_cpu(cursor, self.config.flashvisor_request_cycles);
                self.stats.mapping_lookups += 1;
                staged.push((cursor, pg * pages));
            }
            let batch = self
                .backbone
                .read_groups_sharded(self.shard_plan, &staged, pages, owner);
            self.stats.group_reads += staged.len() as u64;
            return Ok(TransferCompletion {
                accepted: now,
                finished: now.max(batch.finished),
                groups: last - first + 1,
            });
        }
        self.stats.sharded_read_fallbacks += 1;
        let mut finished = now;
        let mut cursor = now;
        for lg in first..=last {
            // Mapping lookup: scratchpad access + Flashvisor cycles.
            scratchpad.access(cursor, lg * 4, 4);
            cursor = self.charge_cpu(cursor, self.config.flashvisor_request_cycles);
            self.stats.mapping_lookups += 1;
            let pg = self
                .logical_slot(lg)?
                .ok_or(FaError::UnmappedAddress(lg * self.config.page_group_bytes))?;
            // Vectored group submission: every page command of the group
            // goes down in one batch at the translated instant, with the
            // flat→physical stepping done inside the backbone.
            let batch =
                self.backbone
                    .submit_group(cursor, pg * pages, pages, FlashOp::ReadPage, owner)?;
            finished = finished.max(batch.finished);
            self.stats.group_reads += 1;
        }
        // Read-disturb is retry-then-relocate: the channel already retried
        // the sense; any page it flagged now gets its whole group migrated
        // to a fresh location before the disturbance can accumulate.
        if self.backbone.faults_affect_reads() {
            finished = finished.max(self.relocate_disturbed(finished)?);
        }
        Ok(TransferCompletion {
            accepted: now,
            finished,
            groups: last - first + 1,
        })
    }

    /// Writes the logical byte range `[start, start+len)` back to flash:
    /// log-structured allocation of new physical groups, page programs, and
    /// invalidation of any overwritten groups.
    ///
    /// The steady-state fault-free case runs sharded, mirroring
    /// [`Flashvisor::read_section`]'s resolve-then-precheck split with
    /// allocation isolated as the single cross-channel coupling: a serial
    /// pre-pass resolves every group's placement (CPU charge, invalidation
    /// of the overwritten location, hot/cold classification, allocator
    /// draw) in exact serial order — all of it pure with respect to device
    /// timing — and then one
    /// [`FlashBackbone::program_groups_sharded`] batch executes the
    /// programs channel-parallel under a finite lookahead, with the
    /// mapping commits replayed serially afterwards. The deferral is
    /// byte-exact because the pre-pass gate requires every overwritten
    /// group to still hold programmed pages (so no release can recycle
    /// mid-batch and perturb later allocations), and programs never erase
    /// (so no wear sync or reclaim can fire mid-batch either). Sections
    /// that could fault — a write-affecting fault plan, a placement the
    /// programmability precheck rejects — take the original serial loop,
    /// preserving mid-section error semantics to the byte.
    pub fn write_section(
        &mut self,
        now: SimTime,
        start: u64,
        len: u64,
        scratchpad: &mut Scratchpad,
    ) -> Result<TransferCompletion, FaError> {
        if len == 0 {
            return Ok(TransferCompletion {
                accepted: now,
                finished: now,
                groups: 0,
            });
        }
        let pages = self.config.pages_per_group();
        let owner = self.transfer_owner(start, len);
        let (first, last) = self.groups_covering(start, len);
        // Pure resolve pass: no CPU charges, no stats, no mutation — just
        // whether the fault-free fast path applies. Every logical group
        // must resolve, and every currently mapped old group must still
        // hold programmed pages: releasing such a group is a pure
        // reverse-index clear, so deferring the releases past the batch
        // cannot change what the allocator hands out mid-batch. The
        // placements the allocator *would* draw are then forecast through
        // [`FreeSpaceManager::peek_allocations`] and prechecked for
        // programmability — all before a single side effect, so a miss
        // falls back to the genuinely untouched serial loop below with
        // byte-exact mid-section error semantics.
        let mut fast = !self.backbone.faults_affect_writes();
        if fast {
            for lg in first..=last {
                match self.logical_slot(lg) {
                    Ok(Some(old))
                        if self.backbone.valid_index().group_programmed_pages(old) == 0 =>
                    {
                        fast = false;
                        break;
                    }
                    Ok(_) => {}
                    Err(_) => {
                        fast = false;
                        break;
                    }
                }
            }
        }
        if fast {
            if let Some(predicted) = self.predict_write_placements(first, last) {
                if self
                    .backbone
                    .groups_programmable(predicted.iter().map(|&pg| pg * pages), pages)
                {
                    return self
                        .write_section_sharded(now, first, last, owner, scratchpad, &predicted);
                }
            }
        }
        self.stats.sharded_write_fallbacks += 1;
        let mut finished = now;
        let mut cursor = now;
        for lg in first..=last {
            scratchpad.access(cursor, lg * 4, 4);
            cursor = self.charge_cpu(cursor, self.config.flashvisor_request_cycles);
            self.stats.mapping_lookups += 1;
            // Invalidate the previous location, if any.
            let old = self.logical_slot(lg)?;
            if let Some(old) = old {
                // Vectored invalidation of the superseded group: unwritten
                // trailing pages of a partially used group are skipped
                // inside the backbone; anything else — an out-of-range
                // address, a worn die — is a real fault the caller must
                // see.
                self.backbone.invalidate_group(old * pages, pages)?;
                self.stats.overwritten_groups += 1;
                self.overwrite_counts[lg as usize] =
                    self.overwrite_counts[lg as usize].saturating_add(1);
            }
            // Hot/cold separation: a logical group overwritten at least
            // `hot_overwrite_threshold` times draws its destination from
            // the dedicated hot active blocks.
            let hot = self.is_hot_group(lg);
            let mut pg = if hot {
                self.stats.hot_group_writes += 1;
                self.allocate_hot_group()?
            } else {
                self.stats.cold_group_writes += 1;
                self.allocate_physical_group()?
            };
            let batch = loop {
                match self.backbone.submit_group(
                    cursor,
                    pg * pages,
                    pages,
                    FlashOp::ProgramPage,
                    owner,
                ) {
                    Ok(batch) => break batch,
                    // Remap-on-failure: an injected program failure burns
                    // the attempted group (any landed pages are garbage
                    // until its row erases) and the write retries on a
                    // fresh destination. This terminates even at p = 1:
                    // every failed attempt consumes a group, so the
                    // allocator runs dry in bounded time.
                    Err(FlashError::InjectedProgramFailure(_)) => {
                        self.rollback_failed_allocation(pg);
                        pg = self.allocate_physical_group()?;
                    }
                    Err(e) => {
                        self.rollback_failed_allocation(pg);
                        return Err(e.into());
                    }
                }
            };
            finished = finished.max(batch.finished);
            // Commit the remap and both index directions together, only
            // once the programs succeeded: a failure above must leave the
            // old mapping (and its reverse entry) intact so GC can still
            // find the group.
            if let Some(old) = old {
                self.release_unmapped_group(old);
            }
            self.mapping[lg as usize] = pg + 1;
            self.reverse[pg as usize] = lg + 1;
            self.dirty_mapping_entries += 1;
            self.record_commit(lg, pg);
            self.stats.group_writes += 1;
        }
        Ok(TransferCompletion {
            accepted: now,
            finished,
            groups: last - first + 1,
        })
    }

    /// Forecasts the physical groups the next `last - first + 1` write
    /// allocations would draw, in exact serial order, without consuming
    /// anything: hot/cold classification replays the per-group overwrite
    /// bump the serial loop performs before classifying, the hot reserve is
    /// simulated on a copy, and the shared pool is walked through
    /// [`FreeSpaceManager::peek_allocations`]. Returns `None` when any
    /// allocation would exhaust the device — that section belongs on the
    /// serial loop, which reproduces the exact mid-section
    /// `OutOfFlashSpace` the caller must see. The only mutation is the
    /// lazy wear drain the first real allocation would perform anyway;
    /// nothing between here and that allocation erases a block, so the
    /// drain commutes byte-exactly.
    fn predict_write_placements(&mut self, first: u64, last: u64) -> Option<Vec<u64>> {
        self.sync_wear();
        let refill = self.hot_refill_row_groups();
        let mut reserve = self.hot_reserve.clone();
        let mut pool = self.freespace.peek_allocations();
        let mut predicted = Vec::with_capacity((last - first + 1) as usize);
        for lg in first..=last {
            let overwritten = self.logical_slot(lg).ok().flatten().is_some();
            let count = self.overwrite_count(lg).saturating_add(overwritten as u32);
            let hot = self
                .config
                .hot_overwrite_threshold
                .is_some_and(|t| count >= t);
            let pg = if hot {
                if reserve.is_empty() {
                    // Mirrors `allocate_hot_group`: the refill stops at a
                    // row boundary so the pool never hands out a row's tail
                    // while its head is parked in the reserve.
                    for _ in 0..refill {
                        match pool.next() {
                            Some(g) => {
                                reserve.push_back(g);
                                if (g + 1) % refill == 0 {
                                    break;
                                }
                            }
                            None => break,
                        }
                    }
                }
                match reserve.pop_front() {
                    Some(g) => g,
                    None => pool.next().or_else(|| reserve.pop_front())?,
                }
            } else {
                pool.next().or_else(|| reserve.pop_front())?
            };
            predicted.push(pg);
        }
        Some(predicted)
    }

    /// The sharded continuation of [`Flashvisor::write_section`] once the
    /// pure resolve pass, the placement forecast, and the programmability
    /// precheck have all cleared — so nothing on this path can fail. Runs
    /// the serial pre-pass (CPU charges, invalidations, hot/cold stats,
    /// allocator draws, all in exact serial order), executes the programs
    /// through [`FlashBackbone::program_groups_sharded`], and replays the
    /// mapping commits in submission order. The pre-pass/program split is
    /// byte-identical to the serial interleaving because the CPU chain
    /// depends only on earlier CPU charges, invalidation touches only old
    /// groups (disjoint from every program target), and the allocator never
    /// observes device time.
    fn write_section_sharded(
        &mut self,
        now: SimTime,
        first: u64,
        last: u64,
        owner: OwnerId,
        scratchpad: &mut Scratchpad,
        predicted: &[u64],
    ) -> Result<TransferCompletion, FaError> {
        let pages = self.config.pages_per_group();
        let mut cursor = now;
        let mut planned: Vec<(u64, Option<u64>, u64, SimTime)> =
            Vec::with_capacity(predicted.len());
        for (i, lg) in (first..=last).enumerate() {
            scratchpad.access(cursor, lg * 4, 4);
            cursor = self.charge_cpu(cursor, self.config.flashvisor_request_cycles);
            self.stats.mapping_lookups += 1;
            let old = self.logical_slot(lg)?;
            if let Some(old) = old {
                self.backbone.invalidate_group(old * pages, pages)?;
                self.stats.overwritten_groups += 1;
                self.overwrite_counts[lg as usize] =
                    self.overwrite_counts[lg as usize].saturating_add(1);
            }
            let pg = if self.is_hot_group(lg) {
                self.stats.hot_group_writes += 1;
                self.allocate_hot_group()?
            } else {
                self.stats.cold_group_writes += 1;
                self.allocate_physical_group()?
            };
            debug_assert_eq!(
                pg, predicted[i],
                "placement forecast diverged from the allocator"
            );
            planned.push((lg, old, pg, cursor));
        }
        let staged: Vec<(SimTime, u64)> = planned
            .iter()
            .map(|&(_, _, pg, cursor)| (cursor, pg * pages))
            .collect();
        let batch = self
            .backbone
            .program_groups_sharded(self.shard_plan, &staged, pages, owner);
        let finished = now.max(batch.finished);
        for &(lg, old, pg, _) in &planned {
            if let Some(old) = old {
                self.release_unmapped_group(old);
            }
            self.mapping[lg as usize] = pg + 1;
            self.reverse[pg as usize] = lg + 1;
            self.dirty_mapping_entries += 1;
            self.record_commit(lg, pg);
            self.stats.group_writes += 1;
        }
        Ok(TransferCompletion {
            accepted: now,
            finished,
            groups: last - first + 1,
        })
    }

    /// Records that a GC erase row (or another write-side batch) took the
    /// serial path instead of the sharded executor. Storengine calls this;
    /// the counter lives with the other translation-layer statistics.
    pub(crate) fn note_sharded_write_fallback(&mut self) {
        self.stats.sharded_write_fallbacks += 1;
    }

    /// Looks up the physical group a logical group maps to (Storengine uses
    /// this while migrating valid pages).
    pub fn physical_group_of(&self, logical_group: u64) -> Option<u64> {
        self.mapping
            .get(logical_group as usize)
            .and_then(|&e| e.checked_sub(1))
    }

    /// Remaps a logical group to a new physical group (GC migration) and
    /// returns the previous physical group.
    pub fn remap_group(&mut self, logical_group: u64, new_physical: u64) -> Option<u64> {
        let slot = self.mapping.get_mut(logical_group as usize)?;
        self.dirty_mapping_entries += 1;
        let old = std::mem::replace(slot, new_physical + 1).checked_sub(1);
        self.record_commit(logical_group, new_physical);
        if let Some(old) = old {
            self.release_unmapped_group(old);
        }
        if let Some(r) = self.reverse.get_mut(new_physical as usize) {
            *r = logical_group + 1;
        }
        old
    }

    /// Commits the unmapping of physical group `old`: clears its reverse
    /// entry and, when no programmed page of the group remains on the
    /// device, returns it to the allocator at once. The immediate recycle
    /// closes a leak window: a destructive metadata-block erase (the
    /// journal recycling its reserved block under live data) can clear a
    /// *mapped* group's last page — the fully-erased drain must skip it
    /// while mapped, and no future erase will ever report the group again,
    /// so unmapping is the last chance to reclaim it.
    fn release_unmapped_group(&mut self, old: u64) {
        if let Some(r) = self.reverse.get_mut(old as usize) {
            *r = 0;
        }
        if self.backbone.valid_index().group_programmed_pages(old) == 0 {
            self.freespace.recycle(old);
        }
    }

    /// Returns a just-allocated group to the pool after its programs
    /// failed before any page landed: an unmapped group with no programmed
    /// page is invisible to every erase-driven reclaim path (no erase will
    /// ever report it), so dropping it here would leak it permanently.
    /// Partial failures keep the group allocated — the row erase that
    /// clears its landed pages reclaims it later.
    pub(crate) fn rollback_failed_allocation(&mut self, pg: u64) {
        if self.backbone.valid_index().group_programmed_pages(pg) == 0 {
            self.freespace.recycle(pg);
        }
    }

    /// Overwrites absorbed by logical group `lg` since the run started.
    pub fn overwrite_count(&self, lg: u64) -> u32 {
        self.overwrite_counts
            .get(lg as usize)
            .copied()
            .unwrap_or_default()
    }

    /// True when logical group `lg` is classified *hot*: its overwrite
    /// count reached the configured threshold. Always false when hot/cold
    /// separation is disabled.
    pub fn is_hot_group(&self, lg: u64) -> bool {
        match self.config.hot_overwrite_threshold {
            Some(threshold) => self.overwrite_count(lg) >= threshold,
            None => false,
        }
    }

    /// The physical groups currently parked in the hot reserve (dedicated
    /// active blocks awaiting hot writes): allocated from the free
    /// structure but not yet mapped. Property-test oracle surface.
    pub fn hot_reserved_groups(&self) -> Vec<u64> {
        self.hot_reserve.iter().copied().collect()
    }

    /// Erase-cycle statistics over the data blocks, excluding the
    /// journal's reserved metadata row.
    pub fn data_block_wear(&self) -> WearSummary {
        let blocks_per_die = self.config.flash_geometry.blocks_per_die();
        let journal_block = self.config.journal_metadata_row();
        let wear: Vec<u64> = self
            .backbone
            .block_erase_counts()
            .into_iter()
            .enumerate()
            .filter(|(i, _)| Some((i % blocks_per_die) as u64) != journal_block)
            .map(|(_, c)| c)
            .collect();
        if wear.is_empty() {
            return WearSummary::default();
        }
        let mean = wear.iter().sum::<u64>() as f64 / wear.len() as f64;
        WearSummary {
            min_erases: wear.iter().copied().min().unwrap_or(0),
            max_erases: wear.iter().copied().max().unwrap_or(0),
            stddev_erases: (wear.iter().map(|&c| (c as f64 - mean).powi(2)).sum::<f64>()
                / wear.len() as f64)
                .sqrt(),
        }
    }

    /// The logical group currently mapped to physical group `pg`, filtered
    /// through the forward mapping so stale reverse entries never leak out.
    pub fn logical_group_mapped_to(&self, pg: u64) -> Option<u64> {
        let lg = self.reverse.get(pg as usize)?.checked_sub(1)?;
        (self.physical_group_of(lg) == Some(pg)).then_some(lg)
    }

    /// The `(logical, physical)` pairs whose physical groups fall in
    /// `[group_low, group_high)`, ordered by logical group — the view one
    /// GC pass takes of its victim block. O(groups per block) via the
    /// reverse index, instead of a scan over the whole mapping table.
    pub fn victim_groups(&self, group_low: u64, group_high: u64) -> Vec<(u64, u64)> {
        let high = group_high.min(self.reverse.len() as u64);
        let mut victims: Vec<(u64, u64)> = (group_low..high)
            .filter_map(|pg| self.logical_group_mapped_to(pg).map(|lg| (lg, pg)))
            .collect();
        // Storengine migrates in logical-group order (the order the old
        // full-table scan produced); keep that contract so the default GC
        // policy reproduces the recorded physics exactly.
        victims.sort_unstable();
        victims
    }

    /// Number of mapping entries modified since the last journal dump, and
    /// resets the counter (called by Storengine when it snapshots).
    pub fn take_dirty_mapping_entries(&mut self) -> u64 {
        std::mem::take(&mut self.dirty_mapping_entries)
    }

    /// Number of mapping entries modified since the last journal dump.
    pub fn dirty_mapping_entries(&self) -> u64 {
        self.dirty_mapping_entries
    }

    /// Iterates over `(logical, physical)` pairs currently mapped.
    pub fn mapped_groups(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.mapping
            .iter()
            .enumerate()
            .filter_map(|(lg, &pg)| pg.checked_sub(1).map(|p| (lg as u64, p)))
    }

    /// Hands a reclaimed physical group back to the allocator.
    pub fn recycle_group(&mut self, physical_group: u64) {
        self.freespace.recycle(physical_group);
    }

    /// Reclaims the whole group range `[low, high)` after its erase-block
    /// row was erased (see [`FreeSpaceManager::reclaim_range`]). Every
    /// group in the range must be unmapped. Returns how many groups were
    /// newly freed.
    pub fn reclaim_group_range(&mut self, low: u64, high: u64) -> u64 {
        debug_assert!(
            (low..high.min(self.reverse.len() as u64))
                .all(|pg| self.logical_group_mapped_to(pg).is_none()),
            "reclaiming a range that still holds mapped groups"
        );
        // Hot-reserved groups in the erased range go back through the free
        // structure with the rest of the row; keeping them in the reserve
        // too would alias the same group to two owners.
        self.hot_reserve.retain(|g| *g < low || *g >= high);
        self.freespace.reclaim_range(low, high)
    }

    /// Allocates a physical page group on behalf of Storengine's valid-page
    /// migration (same allocator as the write path, but without charging
    /// Flashvisor statistics or CPU time — migration is Storengine's work).
    pub fn allocate_group_for_gc(&mut self) -> Option<u64> {
        self.allocate_physical_group().ok()
    }

    /// Like [`Flashvisor::allocate_group_for_gc`], but never returns a
    /// group in `[low, high)`: a row-coherent GC pass must not program
    /// relocated data into the very row it is about to erase. Groups
    /// popped from inside the range are handed straight back to the free
    /// structure. When the shared pool has nothing outside the row, a
    /// group parked in the hot reserve is used instead — GC must never
    /// starve (and abort the run) while unmapped space merely sits staged
    /// for future hot writes.
    pub fn allocate_group_for_gc_excluding(&mut self, low: u64, high: u64) -> Option<u64> {
        let mut skipped = Vec::new();
        let picked = loop {
            match self.freespace.allocate() {
                Some(g) if g >= low && g < high => skipped.push(g),
                other => break other,
            }
        };
        for g in skipped {
            self.freespace.recycle(g);
        }
        picked.or_else(|| {
            let pos = self
                .hot_reserve
                .iter()
                .position(|g| *g < low || *g >= high)?;
            self.hot_reserve.remove(pos)
        })
    }

    /// Groups available to any allocation path: the free pool plus the
    /// groups staged in the hot reserve. The GC abort guards check this —
    /// not just [`Flashvisor::free_physical_groups`] — so a run is never
    /// declared out of space while unmapped groups sit in the reserve.
    pub fn available_groups(&self) -> u64 {
        self.freespace.free_count() + self.hot_reserve.len() as u64
    }

    /// Size of the mapping table in bytes (scratchpad footprint).
    pub fn mapping_table_bytes(&self) -> u64 {
        self.config.mapping_table_bytes()
    }

    // ------------------------------------------------------------------
    // Fault model & power-loss recovery
    // ------------------------------------------------------------------

    /// Installs the injectable fault plan: per-channel fault state in the
    /// backbone, plus redo-record keeping here so a power-loss crash can
    /// be recovered by journal replay. Fault-free runs never call this
    /// and pay nothing on any hot path.
    pub fn install_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.backbone.install_fault_plan(plan);
        self.record_redo = true;
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.backbone.fault_plan()
    }

    /// The bad-block remap table: block rows retired from service so far,
    /// in retirement order.
    pub fn retired_rows(&self) -> &[u64] {
        &self.retired_rows
    }

    fn record_commit(&mut self, lg: u64, pg: u64) {
        if self.record_redo {
            self.redo_since_journal.push((lg, pg));
        }
    }

    /// Moves the redo records accumulated since the previous journal dump
    /// into the persisted replay log. Storengine calls this when — and
    /// only when — a journal dump's programs succeeded: commits after the
    /// last successful dump are lost by a crash, exactly like the real
    /// device.
    pub fn flush_redo_to_journal(&mut self) {
        self.journal_replay_log.append(&mut self.redo_since_journal);
    }

    /// Number of redo records not yet persisted by a journal dump (test
    /// and report surface).
    pub fn unflushed_redo_records(&self) -> usize {
        self.redo_since_journal.len()
    }

    /// Power-loss recovery: rebuilds the logical→physical mapping by
    /// replaying the journal's redo records in commit order (later records
    /// for the same logical group win — the replay of a log-structured
    /// journal), derives the reverse index from the result, and
    /// reconstructs the free-space structure from the recovered mapping
    /// and the media state: a group is free exactly when it is unmapped
    /// and holds no programmed page. Reserved ranges, the bad-block table
    /// and the wear ledger survive (media state, not volatile state); the
    /// hot reserve and the overwrite classifier are volatile and reset.
    pub fn recover(&mut self) {
        for slot in self.mapping.iter_mut() {
            *slot = 0;
        }
        for &(lg, pg) in &self.journal_replay_log {
            if let Some(slot) = self.mapping.get_mut(lg as usize) {
                *slot = pg + 1;
            }
        }
        for r in self.reverse.iter_mut() {
            *r = 0;
        }
        for lg in 0..self.mapping.len() {
            if let Some(pg) = self.mapping[lg].checked_sub(1) {
                if let Some(r) = self.reverse.get_mut(pg as usize) {
                    *r = lg as u64 + 1;
                }
            }
        }
        let reverse = &self.reverse;
        let index = self.backbone.valid_index();
        self.freespace
            .rebuild(|pg| reverse[pg as usize] == 0 && index.group_programmed_pages(pg) == 0);
        self.hot_reserve.clear();
        for c in self.overwrite_counts.iter_mut() {
            *c = 0;
        }
        self.dirty_mapping_entries = 0;
        self.redo_since_journal.clear();
    }

    /// GC-style migration of one mapped group out of `[excl_low,
    /// excl_high)`: reads the group's pages, programs a fresh destination
    /// outside the exclusion window, invalidates the old location, and
    /// commits the remap. Returns `Ok(Some(end))` on success and
    /// `Ok(None)` when no destination exists or the destination programs
    /// kept failing — the old mapping is left intact either way, so the
    /// data is never lost, merely not yet moved.
    fn migrate_mapped_group(
        &mut self,
        now: SimTime,
        lg: u64,
        pg: u64,
        excl_low: u64,
        excl_high: u64,
    ) -> Result<Option<SimTime>, FaError> {
        let pages = self.config.pages_per_group();
        let mut cursor = now;
        if let Ok(batch) =
            self.backbone
                .submit_group(now, pg * pages, pages, FlashOp::ReadPage, OwnerId::Gc)
        {
            cursor = batch.finished;
        }
        for _attempt in 0..2 {
            let Some(new_pg) = self.allocate_group_for_gc_excluding(excl_low, excl_high) else {
                return Ok(None);
            };
            match self.backbone.submit_group(
                cursor,
                new_pg * pages,
                pages,
                FlashOp::ProgramPage,
                OwnerId::Gc,
            ) {
                Ok(batch) => {
                    self.backbone.invalidate_group(pg * pages, pages)?;
                    self.remap_group(lg, new_pg);
                    return Ok(Some(batch.finished));
                }
                Err(FlashError::InjectedProgramFailure(_)) => {
                    self.rollback_failed_allocation(new_pg);
                }
                Err(e) => {
                    self.rollback_failed_allocation(new_pg);
                    return Err(e.into());
                }
            }
        }
        Ok(None)
    }

    /// Relocates every group holding a page the fault model flagged as
    /// read-disturbed. The channel already retried the sense
    /// (retry-then-relocate's *retry*); here each affected group still
    /// mapped is migrated to a fresh destination like a GC pass would.
    /// Returns when the last relocation finished (`now` if none).
    pub fn relocate_disturbed(&mut self, now: SimTime) -> Result<SimTime, FaError> {
        let pages = self.config.pages_per_group();
        let mut groups: Vec<u64> = self
            .backbone
            .take_disturbed_pages()
            .into_iter()
            .map(|flat| flat / pages)
            .collect();
        groups.sort_unstable();
        groups.dedup();
        let mut finished = now;
        for pg in groups {
            let Some(lg) = self.logical_group_mapped_to(pg) else {
                continue;
            };
            if let Some(end) = self.migrate_mapped_group(finished, lg, pg, 0, 0)? {
                finished = finished.max(end);
            }
        }
        Ok(finished)
    }

    /// Promotes the blocks the fault model condemned into the bad-block
    /// remap table. A failing block condemns its whole block *row* — page
    /// groups stripe across every channel and die, so one bad block
    /// poisons every group of its row. Mapped groups are migrated out
    /// first; once a row is vacated its groups leave the allocator
    /// permanently (and the wear ledger's placement view), its blocks
    /// leave GC victim selection, and the row lands in
    /// [`Flashvisor::retired_rows`]. Rows that could not be fully vacated
    /// (allocator dry, destinations kept failing) stay pending and are
    /// retried on the next call. The journal's reserved metadata row is
    /// never retired. Returns when the last migration finished.
    pub fn process_retirements(&mut self, now: SimTime) -> Result<SimTime, FaError> {
        let blocks_per_die = self.config.flash_geometry.blocks_per_die() as u64;
        for block in self.backbone.take_blocks_pending_retirement() {
            let row = block % blocks_per_die;
            if Some(row) == self.config.journal_metadata_row()
                || self.pending_retire_rows.contains(&row)
                || self.retired_rows.contains(&row)
            {
                continue;
            }
            self.pending_retire_rows.push_back(row);
        }
        let mut finished = now;
        let mut still_pending = VecDeque::new();
        while let Some(row) = self.pending_retire_rows.pop_front() {
            let (low, high) = self.config.block_row_group_range(row);
            let mut vacated = true;
            for (lg, pg) in self.victim_groups(low, high) {
                match self.migrate_mapped_group(finished, lg, pg, low, high)? {
                    Some(end) => finished = finished.max(end),
                    None => vacated = false,
                }
            }
            if vacated {
                // Groups parked in the hot reserve inside the condemned
                // row must not be handed out later.
                self.hot_reserve.retain(|g| *g < low || *g >= high);
                self.freespace.retire_row(row);
                let geometry = self.config.flash_geometry;
                let dies = geometry.dies_per_channel() as u64;
                for ch in 0..geometry.channels as u64 {
                    for die in 0..dies {
                        self.backbone
                            .retire_block((ch * dies + die) * blocks_per_die + row);
                    }
                }
                self.retired_rows.push(row);
            } else {
                still_pending.push_back(row);
            }
        }
        self.pending_retire_rows = still_pending;
        Ok(finished)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::SchedulerPolicy;
    use fa_platform::PlatformSpec;

    fn visor() -> (Flashvisor, Scratchpad) {
        let config = FlashAbacusConfig::tiny_for_tests(SchedulerPolicy::IntraO3);
        (
            Flashvisor::new(config),
            Scratchpad::new(&PlatformSpec::paper_prototype()),
        )
    }

    #[test]
    fn preload_then_read_round_trips() {
        let (mut v, mut sp) = visor();
        v.preload_range(0, 64 * 1024).unwrap();
        let t = v
            .read_section(SimTime::ZERO, 0, 64 * 1024, &mut sp)
            .unwrap();
        assert!(t.finished > SimTime::ZERO);
        assert_eq!(t.groups, 8); // 64 KB at 8 KB groups in the tiny config.
        assert_eq!(v.stats().group_reads, 8);
        assert!(v.stats().mapping_lookups >= 8);
    }

    #[test]
    fn read_of_unmapped_range_fails() {
        let (mut v, mut sp) = visor();
        let err = v
            .read_section(SimTime::ZERO, 1 << 20, 4096, &mut sp)
            .unwrap_err();
        assert!(matches!(err, FaError::UnmappedAddress(_)));
    }

    #[test]
    fn writes_allocate_log_structured_groups_and_invalidate_old() {
        let (mut v, mut sp) = visor();
        let before = v.free_physical_groups();
        v.write_section(SimTime::ZERO, 0, 16 * 1024, &mut sp)
            .unwrap();
        assert_eq!(v.free_physical_groups(), before - 2);
        // Overwriting the same logical range allocates fresh groups and
        // invalidates the old ones.
        v.write_section(SimTime::from_ms(50), 0, 16 * 1024, &mut sp)
            .unwrap();
        assert_eq!(v.free_physical_groups(), before - 4);
        assert_eq!(v.stats().overwritten_groups, 2);
        assert_eq!(v.stats().group_writes, 4);
    }

    #[test]
    fn mapping_survives_and_is_remappable() {
        let (mut v, mut sp) = visor();
        v.write_section(SimTime::ZERO, 0, 8 * 1024, &mut sp)
            .unwrap();
        let pg = v.physical_group_of(0).unwrap();
        let old = v.remap_group(0, pg + 100).unwrap();
        assert_eq!(old, pg);
        assert_eq!(v.physical_group_of(0), Some(pg + 100));
        assert_eq!(v.mapped_groups().count(), 1);
    }

    #[test]
    fn range_locks_gate_conflicting_sections() {
        let (mut v, _sp) = visor();
        let a = v.map_section(0, 4096, LockMode::Write, 1).unwrap();
        let err = v.map_section(1024, 4096, LockMode::Read, 2).unwrap_err();
        assert!(matches!(err, FaError::RangeConflict { .. }));
        assert_eq!(v.stats().lock_denials, 1);
        v.unmap_section(a);
        assert!(v.map_section(1024, 4096, LockMode::Read, 2).is_ok());
    }

    #[test]
    fn flashvisor_cpu_serializes_requests() {
        let (mut v, mut sp) = visor();
        v.preload_range(0, 256 * 1024).unwrap();
        let a = v
            .read_section(SimTime::ZERO, 0, 128 * 1024, &mut sp)
            .unwrap();
        let b = v
            .read_section(SimTime::ZERO, 128 * 1024, 128 * 1024, &mut sp)
            .unwrap();
        // The second request's translation work queues behind the first on
        // the Flashvisor LWP, so it cannot finish earlier.
        assert!(b.finished >= a.finished);
        assert!(v.cpu_utilization(b.finished) > 0.0);
    }

    #[test]
    fn free_space_accounting_and_exhaustion() {
        let config = FlashAbacusConfig::tiny_for_tests(SchedulerPolicy::InterDy);
        let total = config.total_page_groups();
        let mut v = Flashvisor::new(config);
        let mut sp = Scratchpad::new(&PlatformSpec::paper_prototype());
        // The journal's metadata row is fenced off from the data allocator,
        // so the writable capacity is total minus the reserved row.
        let reserved = v.freespace().reserved_count();
        assert!(reserved > 0);
        let writable = total - reserved;
        assert_eq!(v.free_physical_groups(), writable);
        // Fill the writable space, consuming every allocatable group.
        let group_bytes = config.page_group_bytes;
        v.write_section(SimTime::ZERO, 0, writable * group_bytes, &mut sp)
            .unwrap();
        assert_eq!(v.free_physical_groups(), 0);
        // Overwriting any group now needs a fresh physical group and fails
        // cleanly — the cursor never spills into the reserved journal row.
        let res = v.write_section(SimTime::from_ms(1), 0, group_bytes, &mut sp);
        assert!(matches!(res, Err(FaError::OutOfFlashSpace { .. })));
        // Addresses beyond the virtualized capacity are reported as unmapped.
        let res = v.write_section(SimTime::from_ms(2), total * group_bytes, 1, &mut sp);
        assert!(matches!(res, Err(FaError::UnmappedAddress(_))));
        // Recycling a group makes one write possible again.
        v.recycle_group(0);
        assert_eq!(v.free_physical_groups(), 1);
    }

    #[test]
    fn journal_row_is_fenced_even_when_the_device_fills() {
        // The journal/data collision fix: fill the device completely, then
        // journal repeatedly enough to force metadata-block recycling. The
        // journal's erase-and-rewrite path must keep working (its row was
        // never allocated to data), and no data mapping may point into the
        // reserved row.
        let config = FlashAbacusConfig::tiny_for_tests(SchedulerPolicy::IntraO3);
        let mut v = Flashvisor::new(config);
        let mut s = crate::storengine::Storengine::new(config);
        let mut sp = Scratchpad::new(&PlatformSpec::paper_prototype());
        let writable = v.free_physical_groups();
        v.write_section(
            SimTime::ZERO,
            0,
            writable * config.page_group_bytes,
            &mut sp,
        )
        .unwrap();
        assert_eq!(v.free_physical_groups(), 0);
        for i in 0..80u64 {
            s.journal(SimTime::from_ms(2 * i), &mut v)
                .expect("journaling survives a full device");
        }
        let (jlow, jhigh) = config.block_row_group_range(config.journal_metadata_row().unwrap());
        for (_, pg) in v.mapped_groups() {
            assert!(
                pg < jlow || pg >= jhigh,
                "data group {pg} mapped inside the reserved journal row"
            );
        }
    }

    #[test]
    fn scheduling_decisions_consume_flashvisor_time() {
        let (mut v, _sp) = visor();
        let t1 = v.charge_scheduling_decision(SimTime::ZERO);
        let t2 = v.charge_scheduling_decision(SimTime::ZERO);
        assert!(t1 > SimTime::ZERO);
        assert!(t2 > t1);
    }
}
