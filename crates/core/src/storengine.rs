//! Storengine: background storage management.
//!
//! Splitting flash management from address translation is one of the
//! paper's key design decisions (§3.3, §4.3): Flashvisor stays on the
//! critical path only for translation and scheduling, while a second system
//! LWP — Storengine — periodically dumps the scratchpad mapping table to
//! flash (metadata journaling), reclaims physical blocks in round-robin
//! order, migrates still-valid pages out of victim blocks, and returns the
//! reclaimed space to the allocator. All of this runs in the background,
//! overlapped with kernel execution.

use crate::config::FlashAbacusConfig;
use crate::error::FaError;
use crate::flashvisor::Flashvisor;
use fa_flash::{FlashCommand, PhysicalPageAddr};
use fa_sim::resource::FifoServer;
use fa_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// How a reclamation pass picks its victim block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GcVictimPolicy {
    /// Visit blocks in order, no valid-page counting — the paper's cheap
    /// §4.3 policy and the default.
    #[default]
    RoundRobin,
    /// Pick the reclaimable block with the fewest valid pages from the
    /// backbone's incremental valid-page index (cheapest migration);
    /// falls back to round-robin when nothing holds garbage.
    GreedyMinValid,
}

impl GcVictimPolicy {
    /// Short label for reports and perf records.
    pub fn label(self) -> &'static str {
        match self {
            GcVictimPolicy::RoundRobin => "RoundRobin",
            GcVictimPolicy::GreedyMinValid => "GreedyMinValid",
        }
    }
}

/// Statistics kept by Storengine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StorengineStats {
    /// Metadata journaling dumps performed.
    pub journal_dumps: u64,
    /// Pages written by journaling.
    pub journal_pages: u64,
    /// Blocks reclaimed by garbage collection.
    pub blocks_reclaimed: u64,
    /// Valid pages migrated out of victim blocks.
    pub pages_migrated: u64,
    /// Block erases issued.
    pub erases: u64,
}

/// Outcome of one garbage-collection pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcOutcome {
    /// Physical page groups returned to the free pool.
    pub groups_reclaimed: u64,
    /// Valid pages migrated.
    pub pages_migrated: u64,
    /// When the pass finished.
    pub finished: SimTime,
}

/// The storage-management LWP.
pub struct Storengine {
    config: FlashAbacusConfig,
    cpu: FifoServer,
    /// Round-robin cursor over physical blocks (channel, die, block).
    victim_cursor: u64,
    /// Running index of journal pages written, so successive dumps append
    /// to the reserved metadata blocks instead of rewriting page 0.
    journal_cursor: u64,
    last_journal: SimTime,
    stats: StorengineStats,
}

impl Storengine {
    /// Creates an idle Storengine.
    pub fn new(config: FlashAbacusConfig) -> Self {
        Storengine {
            config,
            cpu: FifoServer::new("storengine"),
            victim_cursor: 0,
            journal_cursor: 0,
            last_journal: SimTime::ZERO,
            stats: StorengineStats::default(),
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> StorengineStats {
        self.stats
    }

    /// Busy fraction of the Storengine LWP up to `now`.
    pub fn cpu_utilization(&self, now: SimTime) -> f64 {
        self.cpu.utilization(now)
    }

    /// Total busy time of the Storengine LWP up to `now`.
    pub fn cpu_busy_time(&self, now: SimTime) -> SimDuration {
        self.cpu.busy_time(now)
    }

    fn charge_cpu(&mut self, now: SimTime, cycles: u64) -> SimTime {
        let per_cycle_ns = 1.0e9 / self.config.platform.lwp_freq_hz as f64;
        self.cpu
            .serve(now, SimDuration::from_ns_f64(cycles as f64 * per_cycle_ns))
            .end
    }

    /// True when a journaling dump is due at `now`.
    pub fn journal_due(&self, now: SimTime) -> bool {
        now.saturating_since(self.last_journal) >= self.config.journal_interval
    }

    /// Dumps the mapping-table entries dirtied since the previous dump to
    /// flash (§4.3: page-table entries are persisted in reserved metadata
    /// pages of the backbone). The dump is incremental — journaling the
    /// whole table on every period would serialize multi-millisecond TLC
    /// programs behind foreground reads — and is charged to the Storengine
    /// LWP and the flash backbone, never to Flashvisor.
    pub fn journal(
        &mut self,
        now: SimTime,
        flashvisor: &mut Flashvisor,
    ) -> Result<SimTime, FaError> {
        let dirty_entries = flashvisor.take_dirty_mapping_entries();
        let dirty_bytes = (dirty_entries * 4).max(1);
        let page_bytes = self.config.flash_geometry.page_bytes as u64;
        let pages = dirty_bytes.div_ceil(page_bytes).max(1);
        // Storengine spends CPU preparing the snapshot (a few cycles per
        // entry), then streams it out.
        let prep_done = self.charge_cpu(now, (dirty_bytes / 16).max(200));
        let geometry = self.config.flash_geometry;
        let mut finished = prep_done;
        // Journal pages land in the highest-numbered block of every die,
        // striped across channels and dies — a reserved metadata area. The
        // cursor persists across dumps so successive dumps append rather
        // than rewriting (and erasing) the same pages.
        for _ in 0..pages {
            let i = self.journal_cursor;
            self.journal_cursor += 1;
            let channel = (i % geometry.channels as u64) as usize;
            let die =
                ((i / geometry.channels as u64) % geometry.dies_per_channel() as u64) as usize;
            let block = geometry.blocks_per_die() - 1;
            let page = ((i / (geometry.channels * geometry.dies_per_channel()) as u64)
                % geometry.pages_per_block as u64) as usize;
            let addr = PhysicalPageAddr::new(channel, die, block, page);
            // The metadata block may need erasing once its pages are used up.
            match flashvisor
                .backbone_mut()
                .submit(prep_done, FlashCommand::program(addr))
            {
                Ok(c) => finished = finished.max(c.finished),
                Err(_) => {
                    let erased = flashvisor
                        .backbone_mut()
                        .submit(prep_done, FlashCommand::erase(addr))?;
                    let c = flashvisor
                        .backbone_mut()
                        .submit(erased.finished, FlashCommand::program(addr))?;
                    finished = finished.max(c.finished);
                }
            }
            self.stats.journal_pages += 1;
        }
        self.stats.journal_dumps += 1;
        self.last_journal = now;
        Ok(finished)
    }

    /// True when the free-space watermark calls for a reclamation pass.
    pub fn gc_needed(&self, flashvisor: &Flashvisor) -> bool {
        flashvisor.free_fraction() < self.config.gc_low_watermark
    }

    /// Runs one round-robin reclamation pass: selects the next victim block
    /// (no valid-page counting — §4.3's cheap policy), migrates its valid
    /// pages to freshly allocated locations, erases it, and recycles the
    /// page groups it contributed.
    pub fn collect_garbage(
        &mut self,
        now: SimTime,
        flashvisor: &mut Flashvisor,
    ) -> Result<GcOutcome, FaError> {
        let geometry = self.config.flash_geometry;
        let pages_per_group = self.config.pages_per_group();
        let total_blocks = geometry.total_blocks();
        // Pick the victim block under the configured policy.
        let victim_index = match self.config.gc_victim {
            GcVictimPolicy::RoundRobin => {
                let v = self.victim_cursor % total_blocks;
                self.victim_cursor += 1;
                v
            }
            GcVictimPolicy::GreedyMinValid => {
                match flashvisor.backbone().min_valid_garbage_block() {
                    Some(b) => b,
                    // Nothing holds garbage: fall back to the round-robin
                    // walk so the pass still erases *something* reclaimable
                    // in the long run.
                    None => {
                        let v = self.victim_cursor % total_blocks;
                        self.victim_cursor += 1;
                        v
                    }
                }
            }
        };
        let (channel, die, block) = geometry.block_index_to_addr(victim_index);

        // Load the page-table entries for the victim (reads from flash, the
        // paper's Storengine loads them from the backbone metadata area).
        let mut cursor = self.charge_cpu(now, 2_000);

        // Find the logical groups this pass migrates. RoundRobin keeps the
        // block-order slice of the group space (the paper's cheap walk,
        // byte-identical to the pre-subsystem scan); GreedyMinValid
        // migrates the victim's whole block row — every group with a page
        // in the chosen block — so its erase never destroys a mapped group
        // the pass did not migrate. Either way the reverse index answers
        // in O(groups per range) what a full mapping-table scan used to.
        let (group_low, group_high) = match self.config.gc_victim {
            GcVictimPolicy::RoundRobin => self.config.gc_scan_group_range(victim_index),
            GcVictimPolicy::GreedyMinValid => self.config.block_row_group_range(block as u64),
        };
        let victims = flashvisor.victim_groups(group_low, group_high);

        let row_coherent = self.config.gc_victim == GcVictimPolicy::GreedyMinValid;
        let mut migrated = 0u64;
        let mut reclaimed_groups = 0u64;
        let mut migration_clean = true;
        for (lg, old_pg) in victims {
            // Migrate: read valid pages of the old group, program them into
            // a new group, update the mapping.
            for i in 0..pages_per_group {
                let flat = old_pg * pages_per_group + i;
                if flat >= geometry.total_pages() {
                    continue;
                }
                let addr = geometry.flat_to_addr(flat);
                if let Ok(c) = flashvisor
                    .backbone_mut()
                    .submit(cursor, FlashCommand::read(addr))
                {
                    cursor = cursor.max(c.finished);
                }
            }
            // Allocation for the migrated copy reuses the normal write path
            // bookkeeping via remap: pick the next free group through a
            // write-sized CPU charge and the backbone programs. A
            // row-coherent pass excludes its own victim range so the erase
            // below cannot destroy freshly relocated data.
            let destination = match self.config.gc_victim {
                GcVictimPolicy::RoundRobin => self.allocate_for_migration(flashvisor),
                GcVictimPolicy::GreedyMinValid => {
                    flashvisor.allocate_group_for_gc_excluding(group_low, group_high)
                }
            };
            let new_pg = match destination {
                Some(g) => g,
                // Every free group lies inside the row this pass wants to
                // erase: there is nowhere safe to relocate to, so leave the
                // group mapped where it is and keep the pass
                // non-destructive rather than aborting the run — the space
                // is still there, just not reachable by this victim choice.
                None if row_coherent && flashvisor.free_physical_groups() > 0 => {
                    migration_clean = false;
                    continue;
                }
                None => {
                    return Err(FaError::OutOfFlashSpace {
                        requested: 1,
                        available: 0,
                    })
                }
            };
            let mut programmed_ok = true;
            for i in 0..pages_per_group {
                let flat = new_pg * pages_per_group + i;
                if flat >= geometry.total_pages() {
                    continue;
                }
                let addr = geometry.flat_to_addr(flat);
                match flashvisor
                    .backbone_mut()
                    .submit(cursor, FlashCommand::program(addr))
                {
                    Ok(c) => cursor = cursor.max(c.finished),
                    Err(_) => programmed_ok = false,
                }
            }
            if row_coherent && !programmed_ok {
                // The destination could not take the data (a recycled group
                // in a block whose write cursor does not line up). Leave
                // the group mapped where it is and leak the unusable
                // destination — the erase below is skipped, so nothing
                // mapped is lost. RoundRobin keeps the seed's
                // ignore-and-continue behaviour for byte-identical output.
                migration_clean = false;
                continue;
            }
            flashvisor.remap_group(lg, new_pg);
            migrated += pages_per_group;
            reclaimed_groups += 1;
            flashvisor.recycle_group(old_pg);
            self.stats.pages_migrated += pages_per_group;
        }

        if row_coherent && !migration_clean {
            // At least one group still lives in the victim row: erasing
            // would destroy mapped data, so this pass only banks the
            // migrations that did succeed.
            return Ok(GcOutcome {
                groups_reclaimed: reclaimed_groups,
                pages_migrated: migrated,
                finished: cursor,
            });
        }

        if row_coherent {
            // Row-coherent reclamation: the whole row is now unmapped, so
            // erase every block of it (they parallelize across channels
            // and dies) and hand the range back to the allocator as one
            // ascending run — reusable from page 0 in NAND programming
            // order. This also recovers overwrite garbage that was never
            // individually recycled.
            let mut finished = cursor;
            for ch in 0..geometry.channels {
                for d in 0..geometry.dies_per_channel() {
                    let erase_addr = PhysicalPageAddr::new(ch, d, block, 0);
                    let erased = flashvisor
                        .backbone_mut()
                        .submit(cursor, FlashCommand::erase(erase_addr))?;
                    finished = finished.max(erased.finished);
                    self.stats.erases += 1;
                    self.stats.blocks_reclaimed += 1;
                }
            }
            reclaimed_groups += flashvisor.reclaim_group_range(group_low, group_high);
            return Ok(GcOutcome {
                groups_reclaimed: reclaimed_groups,
                pages_migrated: migrated,
                finished,
            });
        }

        // Erase the victim block.
        let erase_addr = PhysicalPageAddr::new(channel, die, block, 0);
        let erased = flashvisor
            .backbone_mut()
            .submit(cursor, FlashCommand::erase(erase_addr))?;
        self.stats.erases += 1;
        self.stats.blocks_reclaimed += 1;
        Ok(GcOutcome {
            groups_reclaimed: reclaimed_groups,
            pages_migrated: migrated,
            finished: erased.finished,
        })
    }

    /// Allocates a destination group for migration without recursing into
    /// Flashvisor's public write path (which would re-count statistics).
    fn allocate_for_migration(&mut self, flashvisor: &mut Flashvisor) -> Option<u64> {
        // Reuse a recycled group if one exists, otherwise take the next
        // log-structured group by performing the same bookkeeping Flashvisor
        // would: we approximate by scanning for the first unallocated group
        // past the cursor via free-space accounting.
        if flashvisor.free_physical_groups() == 0 {
            return None;
        }
        // Delegate to Flashvisor's allocator by recycling nothing and using
        // a tiny private hook: write_section would double-count stats, so we
        // expose allocation through recycle/physical accounting instead.
        flashvisor.allocate_group_for_gc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::SchedulerPolicy;
    use fa_platform::mem::Scratchpad;
    use fa_platform::PlatformSpec;

    fn setup() -> (Storengine, Flashvisor, Scratchpad) {
        let config = FlashAbacusConfig::tiny_for_tests(SchedulerPolicy::IntraO3);
        (
            Storengine::new(config),
            Flashvisor::new(config),
            Scratchpad::new(&PlatformSpec::paper_prototype()),
        )
    }

    #[test]
    fn journaling_writes_mapping_pages_and_tracks_period() {
        let (mut s, mut v, _sp) = setup();
        assert!(s.journal_due(SimTime::from_ms(10)));
        let done = s.journal(SimTime::from_ms(10), &mut v).unwrap();
        assert!(done > SimTime::from_ms(10));
        assert_eq!(s.stats().journal_dumps, 1);
        assert!(s.stats().journal_pages >= 1);
        assert!(!s.journal_due(SimTime::from_ms(10)));
        assert!(s.journal_due(SimTime::from_ms(12)));
    }

    #[test]
    fn repeated_journaling_recycles_the_metadata_block() {
        let (mut s, mut v, _sp) = setup();
        // The tiny geometry has 16 pages per block; journaling enough times
        // forces the erase-and-rewrite path.
        let mut t = SimTime::ZERO;
        for i in 0..40 {
            t = s
                .journal(SimTime::from_ms(2 * i as u64), &mut v)
                .unwrap()
                .max(t);
        }
        assert_eq!(s.stats().journal_dumps, 40);
        assert!(t > SimTime::ZERO);
    }

    #[test]
    fn gc_reclaims_space_after_overwrites() {
        let (mut s, mut v, mut sp) = setup();
        // Fill a few logical groups, then overwrite them so their old
        // physical groups become garbage.
        let group = v.config().page_group_bytes;
        v.write_section(SimTime::ZERO, 0, 4 * group, &mut sp)
            .unwrap();
        v.write_section(SimTime::from_ms(1), 0, 4 * group, &mut sp)
            .unwrap();
        let free_before = v.free_physical_groups();
        // Run GC passes over the whole device; at least one pass must
        // reclaim the overwritten groups (round-robin visits every block).
        let mut reclaimed = 0;
        let mut now = SimTime::from_ms(10);
        for _ in 0..v.config().flash_geometry.total_blocks() {
            let out = s.collect_garbage(now, &mut v).unwrap();
            reclaimed += out.groups_reclaimed;
            now = out.finished;
        }
        assert!(s.stats().blocks_reclaimed > 0);
        assert!(v.free_physical_groups() >= free_before);
        // Relocated-but-live data is still mapped.
        assert!(v.physical_group_of(0).is_some());
        let _ = reclaimed;
    }

    #[test]
    fn greedy_gc_preserves_all_mapped_data() {
        // The GreedyMinValid regression: the pass must migrate exactly the
        // groups covering its victim block (the block row), keep relocation
        // destinations out of that row, and therefore never erase mapped
        // data it did not move. Read-back of every logical group after a
        // full greedy drain proves it.
        let mut config = FlashAbacusConfig::tiny_for_tests(SchedulerPolicy::IntraO3);
        config.gc_victim = GcVictimPolicy::GreedyMinValid;
        let mut s = Storengine::new(config);
        let mut v = Flashvisor::new(config);
        let mut sp = Scratchpad::new(&PlatformSpec::paper_prototype());
        let group = config.page_group_bytes;
        v.write_section(SimTime::ZERO, 0, 8 * group, &mut sp)
            .unwrap();
        // Overwrite to create garbage in the first block row.
        v.write_section(SimTime::from_ms(1), 0, 8 * group, &mut sp)
            .unwrap();
        let mut now = SimTime::from_ms(10);
        for _ in 0..6 {
            let out = s.collect_garbage(now, &mut v).unwrap();
            now = out.finished;
        }
        assert!(s.stats().blocks_reclaimed > 0);
        // Every logical group is still mapped and every one of its pages
        // is readable — nothing mapped was erased unmigrated.
        let t = v.read_section(now, 0, 8 * group, &mut sp).unwrap();
        assert_eq!(t.groups, 8);
        assert!(t.finished > now);
        // The device keeps working after greedy GC: fresh writes and
        // overwrites (which draw reclaimed row groups off the free
        // structure) must program cleanly.
        v.write_section(t.finished, 16 * group, 4 * group, &mut sp)
            .unwrap();
        v.write_section(SimTime::from_ms(60), 0, 8 * group, &mut sp)
            .unwrap();
        let t = v
            .read_section(SimTime::from_ms(80), 0, 8 * group, &mut sp)
            .unwrap();
        assert_eq!(t.groups, 8);
    }

    #[test]
    fn gc_watermark_triggers_only_when_space_is_low() {
        let (s, mut v, mut sp) = setup();
        assert!(!s.gc_needed(&v));
        // Consume ~95% of the groups.
        let group = v.config().page_group_bytes;
        let total = v.config().total_page_groups();
        let to_use = (total as f64 * 0.95) as u64;
        v.write_section(SimTime::ZERO, 0, to_use * group, &mut sp)
            .unwrap();
        assert!(s.gc_needed(&v));
    }

    #[test]
    fn storengine_time_is_separate_from_flashvisor_time() {
        let (mut s, mut v, _sp) = setup();
        s.journal(SimTime::ZERO, &mut v).unwrap();
        assert!(s.cpu_busy_time(SimTime::from_ms(100)) > SimDuration::ZERO);
        // Flashvisor's CPU was never charged by journaling.
        assert_eq!(v.cpu_busy_time(SimTime::from_ms(100)), SimDuration::ZERO);
    }
}
