//! Storengine: background storage management.
//!
//! Splitting flash management from address translation is one of the
//! paper's key design decisions (§3.3, §4.3): Flashvisor stays on the
//! critical path only for translation and scheduling, while a second system
//! LWP — Storengine — periodically dumps the scratchpad mapping table to
//! flash (metadata journaling), reclaims physical blocks in round-robin
//! order, migrates still-valid pages out of victim blocks, and returns the
//! reclaimed space to the allocator. All of this runs in the background,
//! overlapped with kernel execution.

use crate::config::FlashAbacusConfig;
use crate::error::FaError;
use crate::flashvisor::Flashvisor;
use fa_flash::{FlashCommand, FlashError, OwnerId, PhysicalPageAddr};
use fa_sim::resource::FifoServer;
use fa_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// How a reclamation pass picks its victim block row.
///
/// Both policies run the same *row-coherent* pass: the victim is a
/// within-die block row (block `r` of every channel and die), the pass
/// migrates every group with a page in the row, relocation destinations
/// are excluded from the row, and the erase reclaims the whole row's group
/// range — so an erase can never destroy a mapped group the pass did not
/// migrate, and overwrite garbage in the row comes back to the allocator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GcVictimPolicy {
    /// Visit block rows in order, no valid-page counting — the paper's
    /// cheap §4.3 policy and the default.
    #[default]
    RoundRobin,
    /// Pick the row of the reclaimable block with the fewest valid pages
    /// from the backbone's incremental valid-page index (cheapest
    /// migration); falls back to the round-robin walk when nothing holds
    /// garbage.
    GreedyMinValid,
    /// Pick the row of the reclaimable block maximizing the classic
    /// cost-benefit score `age × garbage / valid`, where `age` is the time
    /// since the block last absorbed a program — stale garbage is cheap to
    /// reclaim now, hot blocks are about to gather more garbage. Block ages
    /// and garbage counts are maintained incrementally in the valid-page
    /// index, never rescanned. Falls back to the round-robin walk when
    /// nothing holds garbage.
    CostBenefit,
}

impl GcVictimPolicy {
    /// Short label for reports and perf records.
    pub fn label(self) -> &'static str {
        match self {
            GcVictimPolicy::RoundRobin => "RoundRobin",
            GcVictimPolicy::GreedyMinValid => "GreedyMinValid",
            GcVictimPolicy::CostBenefit => "CostBenefit",
        }
    }

    /// Every victim policy, in report order.
    pub fn all() -> [GcVictimPolicy; 3] {
        [
            GcVictimPolicy::RoundRobin,
            GcVictimPolicy::GreedyMinValid,
            GcVictimPolicy::CostBenefit,
        ]
    }
}

/// Statistics kept by Storengine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StorengineStats {
    /// Metadata journaling dumps performed.
    pub journal_dumps: u64,
    /// Pages written by journaling.
    pub journal_pages: u64,
    /// Blocks reclaimed by garbage collection.
    pub blocks_reclaimed: u64,
    /// Valid pages migrated out of victim blocks.
    pub pages_migrated: u64,
    /// Block erases issued.
    pub erases: u64,
    /// Page groups returned to the allocator by GC row reclaims. Together
    /// with `pages_migrated` this yields the migrated-bytes-per-
    /// reclaimed-byte efficiency the victim policies compete on.
    pub groups_reclaimed: u64,
}

/// Outcome of one garbage-collection pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcOutcome {
    /// Physical page groups returned to the free pool.
    pub groups_reclaimed: u64,
    /// Valid pages migrated.
    pub pages_migrated: u64,
    /// When the pass finished.
    pub finished: SimTime,
}

/// The planning half of a reclamation pass: which block row to erase and
/// which groups must be migrated out of it first. Planning touches only
/// Storengine's cursor and the incremental indexes — no device time — so
/// the system driver can plan a pass when a background event fires and
/// execute it immediately against the state the plan was derived from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GcPlan {
    /// Within-die block row this pass reclaims (block `row` of every
    /// channel and die).
    pub row: u64,
    /// Low end (inclusive) of the row's page-group range.
    pub group_low: u64,
    /// High end (exclusive) of the row's page-group range.
    pub group_high: u64,
    /// `(logical, physical)` groups to migrate, in logical order.
    pub victims: Vec<(u64, u64)>,
}

/// Progress of one reclamation pass across budget-bounded migration
/// slices: where the next slice resumes, what has been migrated so far,
/// and the simulated instant the issued traffic completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcPassProgress {
    /// Index into [`GcPlan::victims`] the next migration slice starts at.
    pub next_victim: usize,
    /// Groups migrated so far by this pass.
    pub migrated_groups: u64,
    /// Pages migrated so far by this pass.
    pub migrated_pages: u64,
    /// When the traffic issued so far completes (the next slice resumes
    /// here).
    pub finished: SimTime,
}

/// The storage-management LWP.
pub struct Storengine {
    config: FlashAbacusConfig,
    cpu: FifoServer,
    /// Nanoseconds per LWP cycle, derived once from the platform clock —
    /// `charge_cpu` runs per journal page and per GC slice.
    lwp_ns_per_cycle: f64,
    /// Round-robin cursor over physical blocks (channel, die, block).
    victim_cursor: u64,
    /// Running index of journal pages written, so successive dumps append
    /// to the reserved metadata blocks instead of rewriting page 0.
    journal_cursor: u64,
    last_journal: SimTime,
    stats: StorengineStats,
}

impl Storengine {
    /// Creates an idle Storengine.
    pub fn new(config: FlashAbacusConfig) -> Self {
        Storengine {
            config,
            cpu: FifoServer::new("storengine"),
            lwp_ns_per_cycle: 1.0e9 / config.platform.lwp_freq_hz as f64,
            victim_cursor: 0,
            journal_cursor: 0,
            last_journal: SimTime::ZERO,
            stats: StorengineStats::default(),
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> StorengineStats {
        self.stats
    }

    /// Busy fraction of the Storengine LWP up to `now`.
    pub fn cpu_utilization(&self, now: SimTime) -> f64 {
        self.cpu.utilization(now)
    }

    /// Total busy time of the Storengine LWP up to `now`.
    pub fn cpu_busy_time(&self, now: SimTime) -> SimDuration {
        self.cpu.busy_time(now)
    }

    fn charge_cpu(&mut self, now: SimTime, cycles: u64) -> SimTime {
        self.cpu
            .serve(
                now,
                SimDuration::from_ns_f64(cycles as f64 * self.lwp_ns_per_cycle),
            )
            .end
    }

    /// True when a journaling dump is due at `now`.
    pub fn journal_due(&self, now: SimTime) -> bool {
        now.saturating_since(self.last_journal) >= self.config.journal_interval
    }

    /// Dumps the mapping-table entries dirtied since the previous dump to
    /// flash (§4.3: page-table entries are persisted in reserved metadata
    /// pages of the backbone). The dump is incremental — journaling the
    /// whole table on every period would serialize multi-millisecond TLC
    /// programs behind foreground reads — and is charged to the Storengine
    /// LWP and the flash backbone, never to Flashvisor.
    pub fn journal(
        &mut self,
        now: SimTime,
        flashvisor: &mut Flashvisor,
    ) -> Result<SimTime, FaError> {
        let dirty_entries = flashvisor.take_dirty_mapping_entries();
        let dirty_bytes = (dirty_entries * 4).max(1);
        let page_bytes = self.config.flash_geometry.page_bytes as u64;
        let pages = dirty_bytes.div_ceil(page_bytes).max(1);
        // Storengine spends CPU preparing the snapshot (a few cycles per
        // entry), then streams it out.
        let prep_done = self.charge_cpu(now, (dirty_bytes / 16).max(200));
        let geometry = self.config.flash_geometry;
        let mut finished = prep_done;
        // Journal pages land in the highest-numbered block of every die,
        // striped across channels and dies — a reserved metadata area. The
        // cursor persists across dumps so successive dumps append rather
        // than rewriting (and erasing) the same pages.
        for _ in 0..pages {
            let i = self.journal_cursor;
            self.journal_cursor += 1;
            let channel = (i % geometry.channels as u64) as usize;
            let die =
                ((i / geometry.channels as u64) % geometry.dies_per_channel() as u64) as usize;
            let block = geometry.blocks_per_die() - 1;
            let page = ((i / (geometry.channels * geometry.dies_per_channel()) as u64)
                % geometry.pages_per_block as u64) as usize;
            let addr = PhysicalPageAddr::new(channel, die, block, page);
            // The metadata block may need erasing once its pages are used
            // up. All journal traffic carries the Journal owner, so it
            // contends at the tag queues under the background budget.
            let page_result: Result<(), FaError> = (|| {
                match flashvisor.backbone_mut().submit_tagged(
                    prep_done,
                    FlashCommand::program(addr),
                    OwnerId::Journal,
                ) {
                    Ok(c) => finished = finished.max(c.finished),
                    Err(_) => {
                        let erased = flashvisor.backbone_mut().submit_tagged(
                            prep_done,
                            FlashCommand::erase(addr),
                            OwnerId::Journal,
                        )?;
                        let c = flashvisor.backbone_mut().submit_tagged(
                            erased.finished,
                            FlashCommand::program(addr),
                            OwnerId::Journal,
                        )?;
                        finished = finished.max(c.finished);
                    }
                }
                Ok(())
            })();
            if let Err(e) = page_result {
                // Even a failed dump may have erased the metadata block;
                // drain the reclaim list before surfacing the error, or the
                // cleared groups would sit unreachable until the next
                // storage-management activity.
                flashvisor.reclaim_fully_erased();
                return Err(e);
            }
            self.stats.journal_pages += 1;
        }
        // A metadata-block erase may have cleared the last programmed pages
        // of data groups; return any unmapped ones to the allocator.
        flashvisor.reclaim_fully_erased();
        // Every page of the dump landed: the redo records it carried are
        // now persistent, so crash recovery may replay them. A failed dump
        // never reaches this point and its records stay volatile — exactly
        // the commits a crash would lose.
        flashvisor.flush_redo_to_journal();
        self.stats.journal_dumps += 1;
        self.last_journal = now;
        Ok(finished)
    }

    /// True when the free-space watermark calls for a reclamation pass.
    pub fn gc_needed(&self, flashvisor: &Flashvisor) -> bool {
        flashvisor.free_fraction() < self.config.gc_low_watermark
    }

    /// Plans one reclamation pass at instant `now`: picks the victim block
    /// row under the configured policy and enumerates the groups that must
    /// be migrated out of it (via the reverse index — O(groups per row),
    /// not a mapping scan). `now` feeds the cost-benefit block ages; the
    /// other policies ignore it. The journal's reserved metadata row is
    /// never a victim. Consumes no device time; the caller executes the
    /// plan with [`Storengine::execute_gc`] against the same Flashvisor
    /// state.
    pub fn plan_gc(&mut self, now: SimTime, flashvisor: &Flashvisor) -> GcPlan {
        let geometry = self.config.flash_geometry;
        let blocks_per_die = geometry.blocks_per_die() as u64;
        // The round-robin walk (also every policy's no-garbage fallback)
        // cycles over the data rows only, skipping the journal row.
        let data_rows = match self.config.journal_metadata_row() {
            Some(_) => blocks_per_die - 1,
            None => blocks_per_die,
        };
        let picked = match self.config.gc_victim {
            GcVictimPolicy::RoundRobin => None,
            GcVictimPolicy::GreedyMinValid => flashvisor.backbone().min_valid_garbage_block(),
            GcVictimPolicy::CostBenefit => flashvisor.backbone().cost_benefit_victim_block(now),
        };
        let row = match picked {
            Some(b) => geometry.block_index_to_addr(b).2 as u64,
            // RoundRobin, or nothing holds garbage: advance the cursor walk
            // so the pass still erases *something* reclaimable in the long
            // run.
            None => {
                let r = self.victim_cursor % data_rows.max(1);
                self.victim_cursor += 1;
                r
            }
        };
        let (group_low, group_high) = self.config.block_row_group_range(row);
        GcPlan {
            row,
            group_low,
            group_high,
            victims: flashvisor.victim_groups(group_low, group_high),
        }
    }

    /// Opens a reclamation pass: charges the page-table load to the
    /// Storengine LWP (the paper's Storengine reads the victim's entries
    /// from the backbone metadata area) and returns the progress record
    /// the migration steps advance.
    pub fn begin_gc_pass(&mut self, now: SimTime) -> GcPassProgress {
        GcPassProgress {
            next_victim: 0,
            migrated_groups: 0,
            migrated_pages: 0,
            finished: self.charge_cpu(now, 2_000),
        }
    }

    /// Migrates up to `max_groups` of the plan's victims, starting at
    /// `progress.next_victim`: read the old group's pages, program them
    /// into a destination outside the victim row, remap, and recycle the
    /// old group. All traffic is issued under [`OwnerId::Gc`]. A bounded
    /// `max_groups` is how the system driver slices a budgeted background
    /// pass into separate events, so foreground requests issue between
    /// slices instead of queueing behind a whole row's migration burst.
    pub fn migrate_gc_groups(
        &mut self,
        flashvisor: &mut Flashvisor,
        plan: &GcPlan,
        progress: &mut GcPassProgress,
        max_groups: usize,
    ) -> Result<(), FaError> {
        let geometry = self.config.flash_geometry;
        let pages_per_group = self.config.pages_per_group();
        let mut cursor = progress.finished;
        let end = plan
            .victims
            .len()
            .min(progress.next_victim.saturating_add(max_groups));
        while progress.next_victim < end {
            let (lg, old_pg) = plan.victims[progress.next_victim];
            progress.next_victim += 1;
            // A sliced pass interleaves with foreground writes, which may
            // have remapped or overwritten the group since planning; a
            // stale entry needs no migration (its garbage is reclaimed
            // with the row).
            if flashvisor.physical_group_of(lg) != Some(old_pg) {
                continue;
            }
            // Migrate: read valid pages of the old group, program them into
            // a new group, update the mapping.
            for i in 0..pages_per_group {
                let flat = old_pg * pages_per_group + i;
                if flat >= geometry.total_pages() {
                    continue;
                }
                let addr = geometry.flat_to_addr(flat);
                if let Ok(c) = flashvisor.backbone_mut().submit_tagged(
                    cursor,
                    FlashCommand::read(addr),
                    OwnerId::Gc,
                ) {
                    cursor = cursor.max(c.finished);
                }
            }
            // The relocation destination excludes the victim row, so the
            // erase at the end of the pass can never destroy freshly
            // relocated data.
            let destination =
                flashvisor.allocate_group_for_gc_excluding(plan.group_low, plan.group_high);
            let new_pg = match destination {
                Some(g) => g,
                // Every available group (pool or hot reserve) lies inside
                // the row this pass wants to erase: there is nowhere safe
                // to relocate to, so leave the group mapped where it is and
                // keep the pass non-destructive rather than aborting the
                // run — the space is still there, just not reachable by
                // this victim choice.
                None if flashvisor.available_groups() > 0 => continue,
                None => {
                    return Err(FaError::OutOfFlashSpace {
                        requested: 1,
                        available: 0,
                    })
                }
            };
            let mut programmed_ok = true;
            for i in 0..pages_per_group {
                let flat = new_pg * pages_per_group + i;
                if flat >= geometry.total_pages() {
                    continue;
                }
                let addr = geometry.flat_to_addr(flat);
                match flashvisor.backbone_mut().submit_tagged(
                    cursor,
                    FlashCommand::program(addr),
                    OwnerId::Gc,
                ) {
                    Ok(c) => cursor = cursor.max(c.finished),
                    // The destination could not take the data (a recycled
                    // group in a block whose write cursor does not line
                    // up). Leave the group mapped where it is and skip it —
                    // the erase check at the end of the pass sees the
                    // leftover mapping and skips the erase, so nothing
                    // mapped is lost.
                    Err(_) => programmed_ok = false,
                }
            }
            if !programmed_ok {
                flashvisor.rollback_failed_allocation(new_pg);
                continue;
            }
            flashvisor.remap_group(lg, new_pg);
            progress.migrated_pages += pages_per_group;
            progress.migrated_groups += 1;
            // The old group is NOT recycled here: its block is still
            // unerased, and a sliced pass interleaves with foreground
            // writes that would pop it and fail their programs. The row
            // erase at the end of the pass returns it (and everything else
            // in the range) to the allocator in one reusable ascending run.
            self.stats.pages_migrated += pages_per_group;
        }
        progress.finished = cursor;
        Ok(())
    }

    /// Closes a reclamation pass once every victim was visited. When the
    /// victim row holds no mapped group any more — every migration landed,
    /// and no interleaved foreground write claimed an in-row group — the
    /// whole row is erased (the erases parallelize across channels and
    /// dies) and its group range, including overwrite garbage no migration
    /// ever recycled, returns to the allocator as one ascending run.
    /// Otherwise the pass banks its migrations and skips the erase, so
    /// mapped data is never destroyed.
    pub fn finish_gc_pass(
        &mut self,
        flashvisor: &mut Flashvisor,
        plan: &GcPlan,
        progress: &GcPassProgress,
    ) -> Result<GcOutcome, FaError> {
        if !flashvisor
            .victim_groups(plan.group_low, plan.group_high)
            .is_empty()
        {
            // The migrations are banked (the mappings moved), but no space
            // comes back until a later pass can erase the row.
            return Ok(GcOutcome {
                groups_reclaimed: 0,
                pages_migrated: progress.migrated_pages,
                finished: progress.finished,
            });
        }
        let mut finished = progress.finished;
        let mut row_erase_failed = false;
        // Fast path: when no fault plan can touch an erase and every block
        // in the row is under its endurance limit, the whole row erases
        // through the channel-sharded engine — one lane per channel, dies
        // swept in order inside the lane, accounting replayed at the
        // barrier in the exact ch-major/die-minor order of the serial
        // loop below. Any block that could fail (worn out, or a fault
        // plan that scripts programs/erases) takes the serial loop so
        // mid-row error semantics are untouched.
        if flashvisor.backbone().row_erasable(plan.row as usize) {
            let shard_plan = flashvisor.shard_plan();
            let batch = flashvisor.backbone_mut().erase_row_sharded(
                shard_plan,
                progress.finished,
                plan.row as usize,
                OwnerId::Gc,
            );
            finished = finished.max(batch.finished);
            self.stats.erases += batch.commands;
            self.stats.blocks_reclaimed += batch.commands;
        } else {
            flashvisor.note_sharded_write_fallback();
            self.finish_gc_pass_serial_erase(
                flashvisor,
                plan,
                progress,
                &mut finished,
                &mut row_erase_failed,
            )?;
        }
        // The fully-erased drain first returns any group the erases cleared
        // (inside the range the reclaim below normalizes the order;
        // elsewhere, garbage the row shared a group with), then the range
        // reclaim recovers everything the row held: the migrated groups'
        // old locations and the overwrite garbage no migration ever
        // recycled. Both counts are this pass's reclaim — the drain usually
        // recycles the row's garbage before the range walk can see it. The
        // range reclaim assumes every block of the row erased, so after a
        // failed erase the surviving garbage must stay out of the
        // allocator and only the drain returns space this pass.
        let drained = flashvisor.reclaim_fully_erased();
        let ranged = if row_erase_failed {
            0
        } else {
            flashvisor.reclaim_group_range(plan.group_low, plan.group_high)
        };
        let reclaimed_groups = drained + ranged;
        self.stats.groups_reclaimed += reclaimed_groups;
        Ok(GcOutcome {
            groups_reclaimed: reclaimed_groups,
            pages_migrated: progress.migrated_pages,
            finished,
        })
    }

    /// The untouched serial erase loop `finish_gc_pass` falls back to when
    /// the sharded precheck misses: one erase per channel/die in ch-major
    /// order, tolerating injected failures block-by-block so mid-row error
    /// semantics match the pre-sharding behaviour exactly.
    fn finish_gc_pass_serial_erase(
        &mut self,
        flashvisor: &mut Flashvisor,
        plan: &GcPlan,
        progress: &GcPassProgress,
        finished: &mut SimTime,
        row_erase_failed: &mut bool,
    ) -> Result<(), FaError> {
        let geometry = self.config.flash_geometry;
        for ch in 0..geometry.channels {
            for d in 0..geometry.dies_per_channel() {
                let erase_addr = PhysicalPageAddr::new(ch, d, plan.row as usize, 0);
                match flashvisor.backbone_mut().submit_tagged(
                    progress.finished,
                    FlashCommand::erase(erase_addr),
                    OwnerId::Gc,
                ) {
                    Ok(erased) => {
                        *finished = (*finished).max(erased.finished);
                        self.stats.erases += 1;
                        self.stats.blocks_reclaimed += 1;
                    }
                    // An injected erase failure condemns only that block:
                    // its siblings still erase, its garbage stays put for a
                    // retry (or for row retirement once the block crosses
                    // the failure threshold), and the pass reclaims what
                    // actually cleared.
                    Err(FlashError::InjectedEraseFailure(_)) => {
                        *row_erase_failed = true;
                    }
                    // A real fault aborts the pass — but sibling blocks may
                    // already have erased; drain the reclaim list before
                    // surfacing the error, or their groups (and the wear
                    // events) would sit unaccounted until the next storage
                    // activity.
                    Err(e) => {
                        flashvisor.reclaim_fully_erased();
                        return Err(e.into());
                    }
                }
            }
        }
        Ok(())
    }

    /// Executes a planned reclamation pass in one go: migrate everything,
    /// then erase and reclaim the row.
    pub fn execute_gc(
        &mut self,
        now: SimTime,
        flashvisor: &mut Flashvisor,
        plan: &GcPlan,
    ) -> Result<GcOutcome, FaError> {
        let mut progress = self.begin_gc_pass(now);
        self.migrate_gc_groups(flashvisor, plan, &mut progress, usize::MAX)?;
        self.finish_gc_pass(flashvisor, plan, &progress)
    }

    /// Runs one reclamation pass synchronously: plan, then execute.
    pub fn collect_garbage(
        &mut self,
        now: SimTime,
        flashvisor: &mut Flashvisor,
    ) -> Result<GcOutcome, FaError> {
        let plan = self.plan_gc(now, flashvisor);
        self.execute_gc(now, flashvisor, &plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::SchedulerPolicy;
    use fa_platform::mem::Scratchpad;
    use fa_platform::PlatformSpec;

    fn setup() -> (Storengine, Flashvisor, Scratchpad) {
        let config = FlashAbacusConfig::tiny_for_tests(SchedulerPolicy::IntraO3);
        (
            Storengine::new(config),
            Flashvisor::new(config),
            Scratchpad::new(&PlatformSpec::paper_prototype()),
        )
    }

    #[test]
    fn journaling_writes_mapping_pages_and_tracks_period() {
        let (mut s, mut v, _sp) = setup();
        assert!(s.journal_due(SimTime::from_ms(10)));
        let done = s.journal(SimTime::from_ms(10), &mut v).unwrap();
        assert!(done > SimTime::from_ms(10));
        assert_eq!(s.stats().journal_dumps, 1);
        assert!(s.stats().journal_pages >= 1);
        assert!(!s.journal_due(SimTime::from_ms(10)));
        assert!(s.journal_due(SimTime::from_ms(12)));
    }

    #[test]
    fn repeated_journaling_recycles_the_metadata_block() {
        let (mut s, mut v, _sp) = setup();
        // The tiny geometry has 16 pages per block; journaling enough times
        // forces the erase-and-rewrite path.
        let mut t = SimTime::ZERO;
        for i in 0..40 {
            t = s
                .journal(SimTime::from_ms(2 * i as u64), &mut v)
                .unwrap()
                .max(t);
        }
        assert_eq!(s.stats().journal_dumps, 40);
        assert!(t > SimTime::ZERO);
    }

    #[test]
    fn gc_reclaims_space_after_overwrites() {
        let (mut s, mut v, mut sp) = setup();
        // Fill a few logical groups, then overwrite them so their old
        // physical groups become garbage.
        let group = v.config().page_group_bytes;
        v.write_section(SimTime::ZERO, 0, 4 * group, &mut sp)
            .unwrap();
        v.write_section(SimTime::from_ms(1), 0, 4 * group, &mut sp)
            .unwrap();
        let free_before = v.free_physical_groups();
        // Run GC passes over the whole device; at least one pass must
        // reclaim the overwritten groups (round-robin visits every block).
        let mut reclaimed = 0;
        let mut now = SimTime::from_ms(10);
        for _ in 0..v.config().flash_geometry.total_blocks() {
            let out = s.collect_garbage(now, &mut v).unwrap();
            reclaimed += out.groups_reclaimed;
            now = out.finished;
        }
        assert!(s.stats().blocks_reclaimed > 0);
        assert!(v.free_physical_groups() >= free_before);
        // Relocated-but-live data is still mapped.
        assert!(v.physical_group_of(0).is_some());
        let _ = reclaimed;
    }

    #[test]
    fn greedy_gc_preserves_all_mapped_data() {
        // The GreedyMinValid regression: the pass must migrate exactly the
        // groups covering its victim block (the block row), keep relocation
        // destinations out of that row, and therefore never erase mapped
        // data it did not move. Read-back of every logical group after a
        // full greedy drain proves it.
        let mut config = FlashAbacusConfig::tiny_for_tests(SchedulerPolicy::IntraO3);
        config.gc_victim = GcVictimPolicy::GreedyMinValid;
        let mut s = Storengine::new(config);
        let mut v = Flashvisor::new(config);
        let mut sp = Scratchpad::new(&PlatformSpec::paper_prototype());
        let group = config.page_group_bytes;
        v.write_section(SimTime::ZERO, 0, 8 * group, &mut sp)
            .unwrap();
        // Overwrite to create garbage in the first block row.
        v.write_section(SimTime::from_ms(1), 0, 8 * group, &mut sp)
            .unwrap();
        let mut now = SimTime::from_ms(10);
        for _ in 0..6 {
            let out = s.collect_garbage(now, &mut v).unwrap();
            now = out.finished;
        }
        assert!(s.stats().blocks_reclaimed > 0);
        // Every logical group is still mapped and every one of its pages
        // is readable — nothing mapped was erased unmigrated.
        let t = v.read_section(now, 0, 8 * group, &mut sp).unwrap();
        assert_eq!(t.groups, 8);
        assert!(t.finished > now);
        // The device keeps working after greedy GC: fresh writes and
        // overwrites (which draw reclaimed row groups off the free
        // structure) must program cleanly.
        v.write_section(t.finished, 16 * group, 4 * group, &mut sp)
            .unwrap();
        v.write_section(SimTime::from_ms(60), 0, 8 * group, &mut sp)
            .unwrap();
        let t = v
            .read_section(SimTime::from_ms(80), 0, 8 * group, &mut sp)
            .unwrap();
        assert_eq!(t.groups, 8);
    }

    #[test]
    fn gc_survives_pool_drained_into_hot_reserve() {
        // Regression: a hot write's reserve refill can empty the shared
        // pool while the reserve still holds free groups. A GC pass that
        // then needs a migration destination must draw from the reserve
        // (and the abort guards must count it) instead of failing the run
        // with OutOfFlashSpace while unmapped space exists.
        let mut config = FlashAbacusConfig::tiny_for_tests(SchedulerPolicy::IntraO3);
        config.hot_overwrite_threshold = Some(1);
        let mut s = Storengine::new(config);
        let mut v = Flashvisor::new(config);
        let mut sp = Scratchpad::new(&PlatformSpec::paper_prototype());
        let group = config.page_group_bytes;
        let row_groups = (config.flash_geometry.pages_per_block as u64
            * config.flash_geometry.channels as u64
            * config.flash_geometry.dies_per_channel() as u64)
            / config.pages_per_group();
        // Fill the first two rows, then overwrite all but one group of
        // row 0: the overwrites are hot (threshold 1), so they relocate
        // through the reserve and row 0 becomes almost pure garbage.
        v.write_section(SimTime::ZERO, 0, 2 * row_groups * group, &mut sp)
            .unwrap();
        v.write_section(
            SimTime::from_ms(1),
            group,
            (row_groups - 1) * group,
            &mut sp,
        )
        .unwrap();
        // Fill fresh cold groups until the shared pool is empty; free
        // space now exists only inside the hot reserve.
        let remaining = v.free_physical_groups();
        v.write_section(
            SimTime::from_ms(2),
            2 * row_groups * group,
            remaining * group,
            &mut sp,
        )
        .unwrap();
        assert_eq!(v.free_physical_groups(), 0, "pool should be drained");
        assert!(
            !v.hot_reserved_groups().is_empty(),
            "reserve should still hold staged groups"
        );
        // The round-robin pass over row 0 must migrate its one live group;
        // the only possible destination is in the hot reserve.
        let out = s
            .collect_garbage(SimTime::from_ms(3), &mut v)
            .expect("GC must not abort while the hot reserve holds free groups");
        assert!(out.pages_migrated > 0, "pass had a group to migrate");
        assert!(
            out.groups_reclaimed >= row_groups - 1,
            "erasing the garbage row reclaims it (got {})",
            out.groups_reclaimed
        );
        // The migrated data is still mapped and readable.
        let t = v
            .read_section(SimTime::from_ms(5), 0, 4 * group, &mut sp)
            .unwrap();
        assert_eq!(t.groups, 4);
    }

    #[test]
    fn gc_watermark_triggers_only_when_space_is_low() {
        let (s, mut v, mut sp) = setup();
        assert!(!s.gc_needed(&v));
        // Consume ~95% of the groups.
        let group = v.config().page_group_bytes;
        let total = v.config().total_page_groups();
        let to_use = (total as f64 * 0.95) as u64;
        v.write_section(SimTime::ZERO, 0, to_use * group, &mut sp)
            .unwrap();
        assert!(s.gc_needed(&v));
    }

    #[test]
    fn storengine_time_is_separate_from_flashvisor_time() {
        let (mut s, mut v, _sp) = setup();
        s.journal(SimTime::ZERO, &mut v).unwrap();
        assert!(s.cpu_busy_time(SimTime::from_ms(100)) > SimDuration::ZERO);
        // Flashvisor's CPU was never charged by journaling.
        assert_eq!(v.cpu_busy_time(SimTime::from_ms(100)), SimDuration::ZERO);
    }
}
