//! Storengine: background storage management.
//!
//! Splitting flash management from address translation is one of the
//! paper's key design decisions (§3.3, §4.3): Flashvisor stays on the
//! critical path only for translation and scheduling, while a second system
//! LWP — Storengine — periodically dumps the scratchpad mapping table to
//! flash (metadata journaling), reclaims physical blocks in round-robin
//! order, migrates still-valid pages out of victim blocks, and returns the
//! reclaimed space to the allocator. All of this runs in the background,
//! overlapped with kernel execution.

use crate::config::FlashAbacusConfig;
use crate::error::FaError;
use crate::flashvisor::Flashvisor;
use fa_flash::{FlashCommand, PhysicalPageAddr};
use fa_sim::resource::FifoServer;
use fa_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Statistics kept by Storengine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StorengineStats {
    /// Metadata journaling dumps performed.
    pub journal_dumps: u64,
    /// Pages written by journaling.
    pub journal_pages: u64,
    /// Blocks reclaimed by garbage collection.
    pub blocks_reclaimed: u64,
    /// Valid pages migrated out of victim blocks.
    pub pages_migrated: u64,
    /// Block erases issued.
    pub erases: u64,
}

/// Outcome of one garbage-collection pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcOutcome {
    /// Physical page groups returned to the free pool.
    pub groups_reclaimed: u64,
    /// Valid pages migrated.
    pub pages_migrated: u64,
    /// When the pass finished.
    pub finished: SimTime,
}

/// The storage-management LWP.
pub struct Storengine {
    config: FlashAbacusConfig,
    cpu: FifoServer,
    /// Round-robin cursor over physical blocks (channel, die, block).
    victim_cursor: u64,
    /// Running index of journal pages written, so successive dumps append
    /// to the reserved metadata blocks instead of rewriting page 0.
    journal_cursor: u64,
    last_journal: SimTime,
    stats: StorengineStats,
}

impl Storengine {
    /// Creates an idle Storengine.
    pub fn new(config: FlashAbacusConfig) -> Self {
        Storengine {
            config,
            cpu: FifoServer::new("storengine"),
            victim_cursor: 0,
            journal_cursor: 0,
            last_journal: SimTime::ZERO,
            stats: StorengineStats::default(),
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> StorengineStats {
        self.stats
    }

    /// Busy fraction of the Storengine LWP up to `now`.
    pub fn cpu_utilization(&self, now: SimTime) -> f64 {
        self.cpu.utilization(now)
    }

    /// Total busy time of the Storengine LWP up to `now`.
    pub fn cpu_busy_time(&self, now: SimTime) -> SimDuration {
        self.cpu.busy_time(now)
    }

    fn charge_cpu(&mut self, now: SimTime, cycles: u64) -> SimTime {
        let per_cycle_ns = 1.0e9 / self.config.platform.lwp_freq_hz as f64;
        self.cpu
            .serve(now, SimDuration::from_ns_f64(cycles as f64 * per_cycle_ns))
            .end
    }

    /// True when a journaling dump is due at `now`.
    pub fn journal_due(&self, now: SimTime) -> bool {
        now.saturating_since(self.last_journal) >= self.config.journal_interval
    }

    /// Dumps the mapping-table entries dirtied since the previous dump to
    /// flash (§4.3: page-table entries are persisted in reserved metadata
    /// pages of the backbone). The dump is incremental — journaling the
    /// whole table on every period would serialize multi-millisecond TLC
    /// programs behind foreground reads — and is charged to the Storengine
    /// LWP and the flash backbone, never to Flashvisor.
    pub fn journal(
        &mut self,
        now: SimTime,
        flashvisor: &mut Flashvisor,
    ) -> Result<SimTime, FaError> {
        let dirty_entries = flashvisor.take_dirty_mapping_entries();
        let dirty_bytes = (dirty_entries * 4).max(1);
        let page_bytes = self.config.flash_geometry.page_bytes as u64;
        let pages = dirty_bytes.div_ceil(page_bytes).max(1);
        // Storengine spends CPU preparing the snapshot (a few cycles per
        // entry), then streams it out.
        let prep_done = self.charge_cpu(now, (dirty_bytes / 16).max(200));
        let geometry = self.config.flash_geometry;
        let mut finished = prep_done;
        // Journal pages land in the highest-numbered block of every die,
        // striped across channels and dies — a reserved metadata area. The
        // cursor persists across dumps so successive dumps append rather
        // than rewriting (and erasing) the same pages.
        for _ in 0..pages {
            let i = self.journal_cursor;
            self.journal_cursor += 1;
            let channel = (i % geometry.channels as u64) as usize;
            let die =
                ((i / geometry.channels as u64) % geometry.dies_per_channel() as u64) as usize;
            let block = geometry.blocks_per_die() - 1;
            let page = ((i / (geometry.channels * geometry.dies_per_channel()) as u64)
                % geometry.pages_per_block as u64) as usize;
            let addr = PhysicalPageAddr::new(channel, die, block, page);
            // The metadata block may need erasing once its pages are used up.
            match flashvisor
                .backbone_mut()
                .submit(prep_done, FlashCommand::program(addr))
            {
                Ok(c) => finished = finished.max(c.finished),
                Err(_) => {
                    let erased = flashvisor
                        .backbone_mut()
                        .submit(prep_done, FlashCommand::erase(addr))?;
                    let c = flashvisor
                        .backbone_mut()
                        .submit(erased.finished, FlashCommand::program(addr))?;
                    finished = finished.max(c.finished);
                }
            }
            self.stats.journal_pages += 1;
        }
        self.stats.journal_dumps += 1;
        self.last_journal = now;
        Ok(finished)
    }

    /// True when the free-space watermark calls for a reclamation pass.
    pub fn gc_needed(&self, flashvisor: &Flashvisor) -> bool {
        flashvisor.free_fraction() < self.config.gc_low_watermark
    }

    /// Runs one round-robin reclamation pass: selects the next victim block
    /// (no valid-page counting — §4.3's cheap policy), migrates its valid
    /// pages to freshly allocated locations, erases it, and recycles the
    /// page groups it contributed.
    pub fn collect_garbage(
        &mut self,
        now: SimTime,
        flashvisor: &mut Flashvisor,
    ) -> Result<GcOutcome, FaError> {
        let geometry = self.config.flash_geometry;
        let pages_per_group = self.config.pages_per_group();
        let total_blocks = geometry.total_blocks();
        // Pick the next victim block in round-robin order.
        let victim_index = self.victim_cursor % total_blocks;
        self.victim_cursor += 1;
        let blocks_per_die = geometry.blocks_per_die() as u64;
        let dies_per_channel = geometry.dies_per_channel() as u64;
        let channel = (victim_index / (blocks_per_die * dies_per_channel)) as usize;
        let die = ((victim_index / blocks_per_die) % dies_per_channel) as usize;
        let block = (victim_index % blocks_per_die) as usize;

        // Load the page-table entries for the victim (reads from flash, the
        // paper's Storengine loads them from the backbone metadata area).
        let mut cursor = self.charge_cpu(now, 2_000);

        // Find the logical groups whose physical groups live in this block.
        let group_low = (victim_index * geometry.pages_per_block as u64) / pages_per_group;
        let group_high =
            ((victim_index + 1) * geometry.pages_per_block as u64).div_ceil(pages_per_group);
        let victims: Vec<(u64, u64)> = flashvisor
            .mapped_groups()
            .filter(|(_, pg)| {
                // A physical group lives in this block if its first page's
                // flat index falls inside the block's page range. Page
                // groups stripe across channels, so this is approximate for
                // geometries whose groups span blocks; the tests pin the
                // exact behaviour for the prototype layout.
                *pg >= group_low && *pg < group_high
            })
            .collect();

        let mut migrated = 0u64;
        let mut reclaimed_groups = 0u64;
        for (lg, old_pg) in victims {
            // Migrate: read valid pages of the old group, program them into
            // a new group, update the mapping.
            for i in 0..pages_per_group {
                let flat = old_pg * pages_per_group + i;
                if flat >= geometry.total_pages() {
                    continue;
                }
                let addr = geometry.flat_to_addr(flat);
                if let Ok(c) = flashvisor
                    .backbone_mut()
                    .submit(cursor, FlashCommand::read(addr))
                {
                    cursor = cursor.max(c.finished);
                }
            }
            // Allocation for the migrated copy reuses the normal write path
            // bookkeeping via remap: pick the next free group through a
            // write-sized CPU charge and the backbone programs.
            let new_pg = match self.allocate_for_migration(flashvisor) {
                Some(g) => g,
                None => {
                    return Err(FaError::OutOfFlashSpace {
                        requested: 1,
                        available: 0,
                    })
                }
            };
            for i in 0..pages_per_group {
                let flat = new_pg * pages_per_group + i;
                if flat >= geometry.total_pages() {
                    continue;
                }
                let addr = geometry.flat_to_addr(flat);
                if let Ok(c) = flashvisor
                    .backbone_mut()
                    .submit(cursor, FlashCommand::program(addr))
                {
                    cursor = cursor.max(c.finished);
                }
            }
            flashvisor.remap_group(lg, new_pg);
            migrated += pages_per_group;
            reclaimed_groups += 1;
            flashvisor.recycle_group(old_pg);
            self.stats.pages_migrated += pages_per_group;
        }

        // Erase the victim block.
        let erase_addr = PhysicalPageAddr::new(channel, die, block, 0);
        let erased = flashvisor
            .backbone_mut()
            .submit(cursor, FlashCommand::erase(erase_addr))?;
        self.stats.erases += 1;
        self.stats.blocks_reclaimed += 1;
        Ok(GcOutcome {
            groups_reclaimed: reclaimed_groups,
            pages_migrated: migrated,
            finished: erased.finished,
        })
    }

    /// Allocates a destination group for migration without recursing into
    /// Flashvisor's public write path (which would re-count statistics).
    fn allocate_for_migration(&mut self, flashvisor: &mut Flashvisor) -> Option<u64> {
        // Reuse a recycled group if one exists, otherwise take the next
        // log-structured group by performing the same bookkeeping Flashvisor
        // would: we approximate by scanning for the first unallocated group
        // past the cursor via free-space accounting.
        if flashvisor.free_physical_groups() == 0 {
            return None;
        }
        // Delegate to Flashvisor's allocator by recycling nothing and using
        // a tiny private hook: write_section would double-count stats, so we
        // expose allocation through recycle/physical accounting instead.
        flashvisor.allocate_group_for_gc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::SchedulerPolicy;
    use fa_platform::mem::Scratchpad;
    use fa_platform::PlatformSpec;

    fn setup() -> (Storengine, Flashvisor, Scratchpad) {
        let config = FlashAbacusConfig::tiny_for_tests(SchedulerPolicy::IntraO3);
        (
            Storengine::new(config),
            Flashvisor::new(config),
            Scratchpad::new(&PlatformSpec::paper_prototype()),
        )
    }

    #[test]
    fn journaling_writes_mapping_pages_and_tracks_period() {
        let (mut s, mut v, _sp) = setup();
        assert!(s.journal_due(SimTime::from_ms(10)));
        let done = s.journal(SimTime::from_ms(10), &mut v).unwrap();
        assert!(done > SimTime::from_ms(10));
        assert_eq!(s.stats().journal_dumps, 1);
        assert!(s.stats().journal_pages >= 1);
        assert!(!s.journal_due(SimTime::from_ms(10)));
        assert!(s.journal_due(SimTime::from_ms(12)));
    }

    #[test]
    fn repeated_journaling_recycles_the_metadata_block() {
        let (mut s, mut v, _sp) = setup();
        // The tiny geometry has 16 pages per block; journaling enough times
        // forces the erase-and-rewrite path.
        let mut t = SimTime::ZERO;
        for i in 0..40 {
            t = s
                .journal(SimTime::from_ms(2 * i as u64), &mut v)
                .unwrap()
                .max(t);
        }
        assert_eq!(s.stats().journal_dumps, 40);
        assert!(t > SimTime::ZERO);
    }

    #[test]
    fn gc_reclaims_space_after_overwrites() {
        let (mut s, mut v, mut sp) = setup();
        // Fill a few logical groups, then overwrite them so their old
        // physical groups become garbage.
        let group = v.config().page_group_bytes;
        v.write_section(SimTime::ZERO, 0, 4 * group, &mut sp)
            .unwrap();
        v.write_section(SimTime::from_ms(1), 0, 4 * group, &mut sp)
            .unwrap();
        let free_before = v.free_physical_groups();
        // Run GC passes over the whole device; at least one pass must
        // reclaim the overwritten groups (round-robin visits every block).
        let mut reclaimed = 0;
        let mut now = SimTime::from_ms(10);
        for _ in 0..v.config().flash_geometry.total_blocks() {
            let out = s.collect_garbage(now, &mut v).unwrap();
            reclaimed += out.groups_reclaimed;
            now = out.finished;
        }
        assert!(s.stats().blocks_reclaimed > 0);
        assert!(v.free_physical_groups() >= free_before);
        // Relocated-but-live data is still mapped.
        assert!(v.physical_group_of(0).is_some());
        let _ = reclaimed;
    }

    #[test]
    fn gc_watermark_triggers_only_when_space_is_low() {
        let (s, mut v, mut sp) = setup();
        assert!(!s.gc_needed(&v));
        // Consume ~95% of the groups.
        let group = v.config().page_group_bytes;
        let total = v.config().total_page_groups();
        let to_use = (total as f64 * 0.95) as u64;
        v.write_section(SimTime::ZERO, 0, to_use * group, &mut sp)
            .unwrap();
        assert!(s.gc_needed(&v));
    }

    #[test]
    fn storengine_time_is_separate_from_flashvisor_time() {
        let (mut s, mut v, _sp) = setup();
        s.journal(SimTime::ZERO, &mut v).unwrap();
        assert!(s.cpu_busy_time(SimTime::from_ms(100)) > SimDuration::ZERO);
        // Flashvisor's CPU was never charged by journaling.
        assert_eq!(v.cpu_busy_time(SimTime::from_ms(100)), SimDuration::ZERO);
    }
}
