//! FlashAbacus: a self-governing flash-based accelerator.
//!
//! This crate is the paper's primary contribution: the software that lets a
//! low-power multicore accelerator with an integrated flash backbone govern
//! both kernel execution and storage access by itself, with no host OS,
//! file system, or I/O runtime in the loop.
//!
//! * [`rangelock`] — the readers/writer range lock Flashvisor uses to
//!   protect flash-mapped data sections from conflicting kernels (§4.3).
//! * [`flashvisor`] — flash virtualization: the page-group mapping table
//!   held in scratchpad, logical→physical translation, data-section reads
//!   and writes against the flash backbone, and access control.
//! * [`freespace`] — incremental free-space management: the O(1)-pop
//!   free-group structure, per-stripe occupancy counters, and the
//!   placement policies Flashvisor allocates through.
//! * [`storengine`] — the storage-management LWP: metadata journaling,
//!   round-robin block reclamation (garbage collection), valid-page
//!   migration, and wear accounting, all off the critical path (§4.3).
//! * [`scheduler`] — the four multi-kernel scheduling policies: static and
//!   dynamic inter-kernel, in-order and out-of-order intra-kernel (§4.1,
//!   §4.2).
//! * [`system`] — the full-device simulation driver: kernel offload over
//!   PCIe, the PSC boot protocol, scheduling, data staging through
//!   Flashvisor, energy accounting, and metric extraction.
//! * [`openloop`] — open-loop multi-tenant traffic: seeded arrivals
//!   (`FA_ARRIVALS`), admission control with queueing and shedding, and
//!   the online QoS governor that retunes per-tenant flash tag budgets
//!   from a sliding window over the owner statistics.
//! * [`metrics`] — the result types every experiment and figure consumes.
//! * [`config`] — configuration of the whole accelerator.
//!
//! # Quick start
//!
//! ```
//! use flashabacus::config::FlashAbacusConfig;
//! use flashabacus::scheduler::SchedulerPolicy;
//! use flashabacus::system::FlashAbacusSystem;
//! use fa_kernel::instance::{instantiate_many, InstancePlan};
//! use fa_workloads::synthetic::{synthetic_app, SyntheticSpec};
//!
//! // Build a small synthetic workload: two instances of a parallel kernel.
//! let template = synthetic_app("demo", &SyntheticSpec {
//!     instructions: 2_000_000,
//!     input_bytes: 2 << 20,
//!     output_bytes: 256 << 10,
//!     ..Default::default()
//! });
//! let apps = instantiate_many(&[template], &InstancePlan {
//!     instances_per_app: 2,
//!     ..Default::default()
//! });
//!
//! // Run it on the out-of-order intra-kernel scheduler.
//! let config = FlashAbacusConfig::paper_prototype(SchedulerPolicy::IntraO3);
//! let mut system = FlashAbacusSystem::new(config);
//! let outcome = system.run(&apps).expect("workload runs to completion");
//! assert_eq!(outcome.kernel_latencies.len(), 2);
//! assert!(outcome.throughput_mb_s() > 0.0);
//! ```

pub mod config;
pub mod error;
pub mod flashvisor;
pub mod freespace;
pub mod metrics;
pub mod openloop;
pub mod rangelock;
pub mod scheduler;
pub mod storengine;
pub mod system;

pub use config::{FlashAbacusConfig, GovernorConfig, QosConfig, ScaleoutConfig};
pub use error::FaError;
pub use flashvisor::Flashvisor;
pub use freespace::{FreeSpaceManager, PlacementPolicy};
pub use metrics::{EnergySummary, KernelLatency, OwnerFlashStats, RunOutcome};
pub use openloop::{
    AdmissionController, AdmissionDecision, AdmissionRecord, OpenLoopReport, QosGovernor,
    TenantOutcome,
};
pub use rangelock::{LockMode, RangeLockTable};
pub use scheduler::SchedulerPolicy;
pub use storengine::{GcPlan, GcVictimPolicy, Storengine};
pub use system::FlashAbacusSystem;
