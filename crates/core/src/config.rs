//! Configuration of the FlashAbacus device.

use crate::freespace::PlacementPolicy;
use crate::scheduler::SchedulerPolicy;
use crate::storengine::GcVictimPolicy;
use fa_energy::PowerSpec;
use fa_flash::{FlashGeometry, FlashTiming, QosBudgets};
use fa_platform::PlatformSpec;
use fa_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Quality-of-service knobs on the flash data path.
///
/// The defaults reproduce the pre-QoS device byte for byte: storage
/// management executes synchronously at the flush instant and every owner
/// enjoys unlimited tag-queue admission. Turning `background_gc` on models
/// Storengine passes as deferred background events that contend with
/// foreground traffic for the channels; the budgets then bound how many
/// tags any one owner (a kernel, or the GC/journal streams) may hold per
/// channel controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QosConfig {
    /// Outstanding-command budget per foreground owner (kernel) at each
    /// channel's tag queue; `None` = unlimited (the default).
    pub per_owner_tag_budget: Option<usize>,
    /// Outstanding-command budget for each background stream (GC,
    /// journaling) at each channel's tag queue; `None` = unlimited.
    pub gc_budget: Option<usize>,
    /// Model Storengine GC passes as background events interleaved with
    /// foreground screens instead of running synchronously at the flush
    /// instant.
    pub background_gc: bool,
}

impl QosConfig {
    /// The per-owner budgets in the form the flash backbone consumes.
    pub fn budgets(&self) -> QosBudgets {
        QosBudgets {
            per_owner: self.per_owner_tag_budget,
            background: self.gc_budget,
        }
    }
}

/// The online QoS governor's knobs: how often budgets are recomputed and
/// the range they move in.
///
/// Every `window`, the governor diffs each active tenant's flash command
/// count (from [`fa_flash::FlashBackbone::owner_stats`]) against the
/// previous tick and installs per-owner tag-budget overrides: the heaviest
/// tenant of the window is squeezed to `min_budget`, an idle tenant gets
/// `max_budget`, and everyone else interpolates linearly. This replaces the
/// static [`QosConfig`] per-owner budget for tenants while they run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GovernorConfig {
    /// Sliding-window length between budget recomputations.
    pub window: SimDuration,
    /// Budget handed to the window's heaviest tenant.
    pub min_budget: usize,
    /// Budget handed to an idle tenant (and the cap for everyone).
    pub max_budget: usize,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            window: SimDuration::from_ms(5),
            min_budget: 1,
            max_budget: 8,
        }
    }
}

/// Configuration of the open-loop multi-tenant traffic engine: how many
/// tenants may run at once, how deep the admission queue is, and whether
/// the online QoS governor retunes per-tenant budgets while they run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScaleoutConfig {
    /// Maximum tenants in flight; arrivals beyond it queue or shed. Also
    /// the number of flash slots the engine carves out, so it bounds the
    /// campaign's logical footprint.
    pub max_in_flight: usize,
    /// Maximum queued (admitted-later) tenants; arrivals past a full queue
    /// are shed.
    pub queue_limit: usize,
    /// Online QoS governor; `None` leaves the static [`QosConfig`] budgets
    /// in force for the whole campaign.
    pub governor: Option<GovernorConfig>,
}

impl Default for ScaleoutConfig {
    fn default() -> Self {
        ScaleoutConfig {
            max_in_flight: 6,
            queue_limit: 64,
            governor: None,
        }
    }
}

/// Full configuration of a simulated FlashAbacus accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlashAbacusConfig {
    /// The compute-platform specification (Table 1).
    pub platform: PlatformSpec,
    /// Flash backbone geometry.
    pub flash_geometry: FlashGeometry,
    /// Flash backbone timing.
    pub flash_timing: FlashTiming,
    /// Power figures for the energy model.
    pub power: PowerSpec,
    /// The multi-kernel scheduling policy to use.
    pub scheduler: SchedulerPolicy,
    /// Bytes covered by one Flashvisor page group (64 KB in the prototype:
    /// 4 channels × 2 planes × 8 KB, §4.3).
    pub page_group_bytes: u64,
    /// Flashvisor LWP cycles spent translating and issuing one page-group
    /// request (mapping lookup plus request construction).
    pub flashvisor_request_cycles: u64,
    /// Flashvisor LWP cycles spent on one scheduling decision (screen or
    /// kernel dispatch), on top of the hardware message-queue latency.
    pub scheduling_decision_cycles: u64,
    /// Aggregate SRIO bandwidth between the network and the flash backbone.
    pub srio_bytes_per_sec: f64,
    /// Channel-controller tag-queue depth.
    pub channel_tag_queue: usize,
    /// Block erase-endurance budget used by the wear model.
    pub endurance_cycles: u64,
    /// Where the free-space manager places newly allocated page groups.
    /// `FirstFree` (the default) reproduces the log-structured cursor
    /// allocator exactly; `ChannelStriped` round-robins across the
    /// channel/die stripe classes; `LeastWorn` allocates from the block
    /// row with the fewest accumulated erase cycles.
    pub placement: PlacementPolicy,
    /// How Storengine picks its GC victim block. `RoundRobin` (the
    /// default) is the paper's cheap §4.3 policy; `GreedyMinValid` uses
    /// the incremental valid-page index to pick the block with the fewest
    /// pages to migrate; `CostBenefit` maximizes the classic
    /// `age × garbage / valid` score over the same index.
    pub gc_victim: GcVictimPolicy,
    /// Hot/cold separation: a logical group overwritten at least this many
    /// times is classified *hot*, and its writes are steered to dedicated
    /// active blocks so cold blocks stop absorbing churn. `None` (the
    /// default) disables the classification and reproduces the unified
    /// write stream exactly.
    pub hot_overwrite_threshold: Option<u32>,
    /// Fraction of free page groups below which Storengine starts
    /// reclaiming blocks.
    pub gc_low_watermark: f64,
    /// Interval between Storengine metadata-journaling dumps.
    pub journal_interval: SimDuration,
    /// Whether kernel output writes are absorbed by the DDR3L write buffer
    /// (true in the prototype, §2.2) or must reach flash before a kernel is
    /// reported complete.
    pub buffered_writes: bool,
    /// Background-GC and per-owner QoS knobs (defaults are off/unlimited,
    /// reproducing the synchronous device exactly).
    pub qos: QosConfig,
}

impl FlashAbacusConfig {
    /// The paper's prototype configuration with the chosen scheduler.
    pub fn paper_prototype(scheduler: SchedulerPolicy) -> Self {
        FlashAbacusConfig {
            platform: PlatformSpec::paper_prototype(),
            flash_geometry: FlashGeometry::paper_prototype(),
            flash_timing: FlashTiming::paper_prototype(),
            power: PowerSpec::paper_prototype(),
            scheduler,
            page_group_bytes: 64 * 1024,
            flashvisor_request_cycles: 350,
            scheduling_decision_cycles: 600,
            srio_bytes_per_sec: fa_flash::spec::SRIO_BYTES_PER_SEC,
            channel_tag_queue: fa_flash::spec::CHANNEL_TAG_QUEUE_DEPTH,
            endurance_cycles: fa_flash::spec::TLC_ENDURANCE_CYCLES,
            placement: PlacementPolicy::FirstFree,
            gc_victim: GcVictimPolicy::RoundRobin,
            hot_overwrite_threshold: None,
            gc_low_watermark: 0.10,
            journal_interval: SimDuration::from_ms(100),
            buffered_writes: true,
            qos: QosConfig::default(),
        }
    }

    /// A small configuration (small flash, fast timings) for unit tests.
    pub fn tiny_for_tests(scheduler: SchedulerPolicy) -> Self {
        FlashAbacusConfig {
            platform: PlatformSpec::paper_prototype(),
            // 2 channels × 1 die × 128 blocks × 32 pages × 4 KB = 32 MiB:
            // big enough for the unit-test workloads, small enough that GC
            // paths are easy to exercise.
            flash_geometry: FlashGeometry {
                channels: 2,
                packages_per_channel: 1,
                dies_per_package: 1,
                planes_per_die: 1,
                blocks_per_plane: 128,
                pages_per_block: 32,
                page_bytes: 4096,
            },
            flash_timing: FlashTiming::fast_for_tests(),
            power: PowerSpec::paper_prototype(),
            scheduler,
            page_group_bytes: 8 * 1024,
            flashvisor_request_cycles: 100,
            scheduling_decision_cycles: 100,
            srio_bytes_per_sec: 2.5e9,
            channel_tag_queue: 8,
            endurance_cycles: 1_000,
            placement: PlacementPolicy::FirstFree,
            gc_victim: GcVictimPolicy::RoundRobin,
            hot_overwrite_threshold: None,
            gc_low_watermark: 0.20,
            journal_interval: SimDuration::from_ms(1),
            buffered_writes: true,
            qos: QosConfig::default(),
        }
    }

    /// Number of pages in one page group.
    pub fn pages_per_group(&self) -> u64 {
        (self.page_group_bytes / self.flash_geometry.page_bytes as u64).max(1)
    }

    /// Number of page groups in the whole backbone.
    pub fn total_page_groups(&self) -> u64 {
        self.flash_geometry.total_pages() / self.pages_per_group()
    }

    /// Scratchpad bytes needed by the page-group mapping table (one 4-byte
    /// entry per group; the paper reports 2 MB for 32 GB at 64 KB groups).
    pub fn mapping_table_bytes(&self) -> u64 {
        self.total_page_groups() * 4
    }

    /// The `[low, high)` slice of the page-group space the *seed era's*
    /// round-robin GC pass scanned for victim block `victim_index`:
    /// block-sized slices of the group space, visited in block order.
    /// Production GC is row-coherent now (both policies migrate
    /// [`FlashAbacusConfig::block_row_group_range`]); this definition
    /// remains as the perf harness's discovery baseline so the recorded
    /// `BENCH_PR*.json` timings keep comparing the same work.
    pub fn gc_scan_group_range(&self, victim_index: u64) -> (u64, u64) {
        let pages_per_block = self.flash_geometry.pages_per_block as u64;
        let pages_per_group = self.pages_per_group();
        (
            (victim_index * pages_per_block) / pages_per_group,
            ((victim_index + 1) * pages_per_block).div_ceil(pages_per_group),
        )
    }

    /// The within-die block row reserved for Storengine's metadata journal
    /// (the highest-numbered block of every die; see
    /// [`crate::storengine::Storengine::journal`]), or `None` when the
    /// geometry is too small to spare a row. Flashvisor fences this row's
    /// group range off in the free-space manager so the data cursor can
    /// never allocate into it, and GC never picks it as a victim.
    pub fn journal_metadata_row(&self) -> Option<u64> {
        let blocks_per_die = self.flash_geometry.blocks_per_die() as u64;
        (blocks_per_die > 1).then_some(blocks_per_die - 1)
    }

    /// The `[low, high)` range of page groups whose pages fall inside
    /// within-die block row `row` — block `row` of *every* channel and
    /// die. Because flat pages are contiguous per row (channel-first,
    /// die-second striping), the range covers every group holding a page
    /// of row `row` (including any group straddling a row boundary).
    /// This is the migration set a row-coherent GC pass (GreedyMinValid)
    /// uses, so erasing any one block of the row never destroys a mapped
    /// group that was not migrated.
    pub fn block_row_group_range(&self, row: u64) -> (u64, u64) {
        let row_pages = self.flash_geometry.pages_per_block as u64
            * self.flash_geometry.channels as u64
            * self.flash_geometry.dies_per_channel() as u64;
        let pages_per_group = self.pages_per_group();
        (
            (row * row_pages) / pages_per_group,
            ((row + 1) * row_pages).div_ceil(pages_per_group),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_page_group_matches_paper() {
        let c = FlashAbacusConfig::paper_prototype(SchedulerPolicy::IntraO3);
        assert_eq!(c.page_group_bytes, 64 * 1024);
        assert_eq!(c.pages_per_group(), 8);
        // 32 GB at 64 KB groups = 512 K groups; 4-byte entries = 2 MB, which
        // is the scratchpad budget quoted in §4.3.
        assert_eq!(c.total_page_groups(), 512 * 1024);
        assert_eq!(c.mapping_table_bytes(), 2 * 1024 * 1024);
        assert!(c.mapping_table_bytes() <= c.platform.scratchpad_bytes as u64);
    }

    #[test]
    fn tiny_config_is_consistent() {
        let c = FlashAbacusConfig::tiny_for_tests(SchedulerPolicy::InterSt);
        assert!(c.pages_per_group() >= 1);
        assert!(c.total_page_groups() > 0);
    }
}
