//! Range locks over the flash-mapped address space.
//!
//! Flashvisor does not attach per-page permission bits to the mapping table
//! — that would force protection metadata through every journaling and GC
//! cycle (§4.3). Instead it takes a *range lock* when a kernel maps a data
//! section: the lock records the byte range and whether the section is
//! mapped for reading or writing, and a new mapping is refused when its
//! range overlaps an existing mapping with a conflicting mode (read vs
//! write or write vs write). The paper implements the structure as an
//! augmented red-black tree keyed by the range's start page; we use the
//! standard library's B-tree map, which offers the same ordered-map
//! operations.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Whether a data section is mapped for reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LockMode {
    /// The kernel reads this range of flash.
    Read,
    /// The kernel writes this range of flash.
    Write,
}

impl LockMode {
    /// Two mappings conflict unless both are reads.
    pub fn conflicts_with(self, other: LockMode) -> bool {
        !(self == LockMode::Read && other == LockMode::Read)
    }
}

/// Identifier of a granted range lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LockId(u64);

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct LockEntry {
    id: LockId,
    start: u64,
    end: u64,
    mode: LockMode,
    owner: u32,
}

/// The range-lock table.
///
/// # Examples
///
/// ```
/// use flashabacus::rangelock::{LockMode, RangeLockTable};
///
/// let mut locks = RangeLockTable::new();
/// let a = locks.try_acquire(0, 4096, LockMode::Read, 1).unwrap();
/// // A second reader of an overlapping range is fine.
/// assert!(locks.try_acquire(1024, 8192, LockMode::Read, 2).is_some());
/// // A writer over the same range is refused until readers release.
/// assert!(locks.try_acquire(0, 2048, LockMode::Write, 3).is_none());
/// locks.release(a);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RangeLockTable {
    /// Locks keyed by `(start, id)` so overlapping ranges can coexist under
    /// distinct keys while keeping ordered traversal by start address.
    locks: BTreeMap<(u64, u64), LockEntry>,
    /// Lock id → start address, so a single release is an indexed removal
    /// rather than a scan of the whole table.
    by_id: BTreeMap<u64, u64>,
    /// Owner → the `(start, id)` keys it holds, so kernel teardown
    /// (`release_owner`) removes exactly its own locks instead of
    /// re-filtering every entry in the table.
    by_owner: BTreeMap<u32, BTreeSet<(u64, u64)>>,
    next_id: u64,
    grants: u64,
    denials: u64,
}

impl RangeLockTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        RangeLockTable::default()
    }

    /// Number of locks currently held.
    pub fn held(&self) -> usize {
        self.locks.len()
    }

    /// Total number of granted acquisitions.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Total number of denied acquisitions.
    pub fn denials(&self) -> u64 {
        self.denials
    }

    /// Returns the lock (if any) that would conflict with mapping
    /// `[start, end)` in `mode`.
    pub fn find_conflict(
        &self,
        start: u64,
        end: u64,
        mode: LockMode,
    ) -> Option<(u64, u64, LockMode)> {
        if start >= end {
            return None;
        }
        self.locks
            .values()
            .find(|l| l.start < end && start < l.end && mode.conflicts_with(l.mode))
            .map(|l| (l.start, l.end, l.mode))
    }

    /// Attempts to acquire a lock over `[start, end)` for `owner`. Returns
    /// `None` when the range conflicts with an existing lock (the request
    /// must be retried after the conflicting kernel unmaps, exactly as
    /// Flashvisor blocks the mapping message).
    pub fn try_acquire(
        &mut self,
        start: u64,
        end: u64,
        mode: LockMode,
        owner: u32,
    ) -> Option<LockId> {
        if start >= end {
            return None;
        }
        if self.find_conflict(start, end, mode).is_some() {
            self.denials += 1;
            return None;
        }
        let id = LockId(self.next_id);
        self.next_id += 1;
        self.grants += 1;
        self.locks.insert(
            (start, id.0),
            LockEntry {
                id,
                start,
                end,
                mode,
                owner,
            },
        );
        self.by_id.insert(id.0, start);
        self.by_owner
            .entry(owner)
            .or_default()
            .insert((start, id.0));
        Some(id)
    }

    /// Releases a previously granted lock. Releasing an unknown id is a
    /// no-op (the double release of an already unmapped section).
    pub fn release(&mut self, id: LockId) {
        let Some(start) = self.by_id.remove(&id.0) else {
            return;
        };
        if let Some(entry) = self.locks.remove(&(start, id.0)) {
            if let Some(keys) = self.by_owner.get_mut(&entry.owner) {
                keys.remove(&(start, id.0));
                if keys.is_empty() {
                    self.by_owner.remove(&entry.owner);
                }
            }
        }
    }

    /// Releases every lock held by `owner` (kernel teardown). Indexed by
    /// the per-owner key set, so teardown cost is proportional to the
    /// owner's own locks, not the table size.
    pub fn release_owner(&mut self, owner: u32) {
        let Some(keys) = self.by_owner.remove(&owner) else {
            return;
        };
        for key in keys {
            self.locks.remove(&key);
            self.by_id.remove(&key.1);
        }
    }

    /// The owner of the first held lock overlapping `[start, end)` — the
    /// cross-layer identity Flashvisor stamps on the flash commands a
    /// data-section transfer issues. `None` when nothing covers the range.
    pub fn owner_covering(&self, start: u64, end: u64) -> Option<u32> {
        if start >= end {
            return None;
        }
        self.locks
            .values()
            .find(|l| l.start < end && start < l.end)
            .map(|l| l.owner)
    }

    /// All currently held ranges, ordered by start address.
    pub fn held_ranges(&self) -> Vec<(u64, u64, LockMode, u32)> {
        self.locks
            .values()
            .map(|l| (l.start, l.end, l.mode, l.owner))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn readers_share_writers_exclude() {
        let mut t = RangeLockTable::new();
        let r1 = t.try_acquire(0, 100, LockMode::Read, 1).unwrap();
        let _r2 = t.try_acquire(50, 150, LockMode::Read, 2).unwrap();
        assert!(t.try_acquire(20, 30, LockMode::Write, 3).is_none());
        assert_eq!(t.denials(), 1);
        t.release(r1);
        // Still conflicts with r2's [50,150) only if overlapping.
        assert!(t.try_acquire(0, 40, LockMode::Write, 3).is_some());
        assert!(t.try_acquire(100, 160, LockMode::Write, 3).is_none());
    }

    #[test]
    fn write_blocks_read_and_write() {
        let mut t = RangeLockTable::new();
        t.try_acquire(1000, 2000, LockMode::Write, 7).unwrap();
        assert!(t.try_acquire(1500, 1600, LockMode::Read, 8).is_none());
        assert!(t.try_acquire(1999, 3000, LockMode::Write, 8).is_none());
        assert!(t.try_acquire(2000, 3000, LockMode::Write, 8).is_some());
        assert!(t.try_acquire(0, 1000, LockMode::Read, 8).is_some());
    }

    #[test]
    fn empty_and_inverted_ranges_are_rejected() {
        let mut t = RangeLockTable::new();
        assert!(t.try_acquire(10, 10, LockMode::Read, 1).is_none());
        assert!(t.try_acquire(20, 10, LockMode::Write, 1).is_none());
        assert_eq!(t.held(), 0);
    }

    #[test]
    fn release_owner_drops_all_of_a_kernels_locks() {
        let mut t = RangeLockTable::new();
        t.try_acquire(0, 10, LockMode::Read, 1).unwrap();
        t.try_acquire(10, 20, LockMode::Write, 1).unwrap();
        t.try_acquire(20, 30, LockMode::Read, 2).unwrap();
        assert_eq!(t.held(), 3);
        t.release_owner(1);
        assert_eq!(t.held(), 1);
        assert_eq!(t.held_ranges()[0].3, 2);
    }

    #[test]
    fn release_unknown_id_is_noop() {
        let mut t = RangeLockTable::new();
        let id = t.try_acquire(0, 10, LockMode::Read, 1).unwrap();
        t.release(id);
        t.release(id);
        assert_eq!(t.held(), 0);
    }

    #[test]
    fn indexed_release_paths_stay_consistent() {
        let mut t = RangeLockTable::new();
        let a = t.try_acquire(0, 10, LockMode::Write, 1).unwrap();
        let _b = t.try_acquire(10, 20, LockMode::Write, 1).unwrap();
        let c = t.try_acquire(20, 30, LockMode::Write, 2).unwrap();
        // Single release, then owner teardown of the remaining owner-1 lock.
        t.release(a);
        t.release_owner(1);
        assert_eq!(t.held(), 1);
        assert_eq!(t.held_ranges(), vec![(20, 30, LockMode::Write, 2)]);
        // Tearing down owner 1 again (nothing held) and double-releasing c
        // are both no-ops.
        t.release_owner(1);
        t.release(c);
        t.release(c);
        assert_eq!(t.held(), 0);
        // The indices did not leak: every freed range is re-acquirable.
        assert!(t.try_acquire(0, 30, LockMode::Write, 3).is_some());
    }

    #[test]
    fn find_conflict_reports_the_blocking_range() {
        let mut t = RangeLockTable::new();
        t.try_acquire(100, 200, LockMode::Write, 1).unwrap();
        let c = t.find_conflict(150, 160, LockMode::Read).unwrap();
        assert_eq!(c, (100, 200, LockMode::Write));
        assert!(t.find_conflict(200, 300, LockMode::Read).is_none());
    }

    proptest! {
        /// After any sequence of acquisitions, no two held locks with a
        /// conflicting mode overlap — the core protection invariant.
        #[test]
        fn no_conflicting_overlaps_ever_coexist(
            ops in proptest::collection::vec(
                (0u64..1000, 1u64..200, prop::bool::ANY, 0u32..8), 0..64)
        ) {
            let mut t = RangeLockTable::new();
            for (start, len, write, owner) in ops {
                let mode = if write { LockMode::Write } else { LockMode::Read };
                let _ = t.try_acquire(start, start + len, mode, owner);
            }
            let held = t.held_ranges();
            for (i, a) in held.iter().enumerate() {
                for b in held.iter().skip(i + 1) {
                    let overlap = a.0 < b.1 && b.0 < a.1;
                    if overlap {
                        prop_assert!(
                            a.2 == LockMode::Read && b.2 == LockMode::Read,
                            "conflicting overlap: {a:?} vs {b:?}"
                        );
                    }
                }
            }
            // Owner teardown through the per-owner index drains the table
            // completely — the indices never leak an entry.
            for owner in 0..8 {
                t.release_owner(owner);
            }
            prop_assert_eq!(t.held(), 0);
        }
    }
}
