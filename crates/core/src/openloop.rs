//! Open-loop multi-tenant traffic: seeded arrivals, admission control, and
//! the online QoS governor.
//!
//! The closed-loop driver in [`crate::system`] runs a fixed batch to
//! completion; this module runs *production-shaped load*: an
//! [`ArrivalPlan`] (`FA_ARRIVALS`) injects tenants over simulated time,
//! an [`AdmissionController`] bounds how many run at once (queueing or
//! shedding the overflow), and an optional [`QosGovernor`] periodically
//! recomputes per-tenant flash tag budgets from a sliding window over
//! [`fa_flash::FlashBackbone::owner_stats`] — replacing the static
//! [`crate::config::QosConfig`] budgets while tenants run.
//!
//! # Execution model
//!
//! Each admitted tenant occupies one of `max_in_flight` flash *slots*
//! (equal-sized, group-aligned regions, reused as tenants retire — reuse
//! makes long campaigns overwrite-heavy, which is exactly the churn the
//! allocator and GC invariants are tested under). A tenant is one
//! lightweight flow: its screens execute serially on the least-loaded
//! worker LWP, its input is staged from flash at dispatch, and its output
//! is flushed at completion. All flash traffic is issued at
//! event-processing instants, which the event loop visits in
//! non-decreasing time order — the same causality contract the
//! closed-loop frontier enforces, so the FIFO resource models (and the
//! sharded backbone engine) stay valid.
//!
//! # Determinism contract
//!
//! The arrival schedule is a pure function of the `FA_ARRIVALS` seed;
//! admission decisions are a pure function of the schedule and completion
//! times; completion times come from the deterministic simulation. Ties
//! are broken by fixed priority (completions, then governor ticks, then
//! arrivals) and tenant id. Nothing depends on `FA_SHARDS`, host thread
//! scheduling, or map iteration order, so the per-tenant report and
//! admission trace are byte-identical across repeats and shard counts
//! (pinned by `tests/scaleout_determinism.rs`).

use crate::config::{GovernorConfig, ScaleoutConfig};
use crate::error::FaError;
use crate::metrics::KernelLatency;
use crate::metrics::RunOutcome;
use crate::rangelock::LockMode;
use crate::system::{ComputeInterval, FlashAbacusSystem, ScreenSlice};
use fa_flash::{FlashBackbone, OwnerId};
use fa_kernel::model::{AppId, Application};
use fa_sim::arrivals::ArrivalPlan;
use fa_sim::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};

/// What the admission controller decided for one arrival (or, for
/// `Promoted`, for the head of the queue when a slot freed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// A slot was free: the tenant dispatched at its arrival instant.
    Admitted,
    /// Slots full, queue had room: the tenant waits in arrival order.
    Queued,
    /// Slots and queue both full: the tenant is dropped.
    Shed,
    /// A queued tenant moved into the slot a completion freed.
    Promoted,
}

impl AdmissionDecision {
    /// Stable label used in the admission trace digest.
    pub fn label(&self) -> &'static str {
        match self {
            AdmissionDecision::Admitted => "admitted",
            AdmissionDecision::Queued => "queued",
            AdmissionDecision::Shed => "shed",
            AdmissionDecision::Promoted => "promoted",
        }
    }
}

/// One entry of the admission trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionRecord {
    /// Instant of the decision.
    pub at: SimTime,
    /// The tenant decided about.
    pub tenant: u32,
    /// The decision.
    pub decision: AdmissionDecision,
}

/// Bounds in-flight tenants and queues or sheds the overflow.
///
/// Invariants (property-tested below): in-flight never exceeds the cap,
/// `admitted + queued + shed == arrivals` at every instant, and queued
/// tenants promote in arrival (FIFO) order.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    cap: usize,
    queue_limit: usize,
    in_flight: usize,
    queue: VecDeque<u32>,
    arrivals: u64,
    admitted: u64,
    queued: u64,
    shed: u64,
    promoted: u64,
}

impl AdmissionController {
    /// A controller admitting at most `cap` tenants with `queue_limit`
    /// waiting slots. A cap of zero would deadlock every arrival, so it is
    /// clamped to one.
    pub fn new(cap: usize, queue_limit: usize) -> Self {
        AdmissionController {
            cap: cap.max(1),
            queue_limit,
            in_flight: 0,
            queue: VecDeque::new(),
            arrivals: 0,
            admitted: 0,
            queued: 0,
            shed: 0,
            promoted: 0,
        }
    }

    /// Decides one arrival. `Admitted` takes a slot immediately.
    pub fn arrive(&mut self, tenant: u32) -> AdmissionDecision {
        self.arrivals += 1;
        if self.in_flight < self.cap {
            self.in_flight += 1;
            self.admitted += 1;
            AdmissionDecision::Admitted
        } else if self.queue.len() < self.queue_limit {
            self.queue.push_back(tenant);
            self.queued += 1;
            AdmissionDecision::Queued
        } else {
            self.shed += 1;
            AdmissionDecision::Shed
        }
    }

    /// Retires one in-flight tenant; the queue head (if any) takes the
    /// freed slot and is returned for dispatch.
    pub fn complete(&mut self) -> Option<u32> {
        self.in_flight = self.in_flight.saturating_sub(1);
        let promoted = self.queue.pop_front();
        if promoted.is_some() {
            self.in_flight += 1;
            self.promoted += 1;
        }
        promoted
    }

    /// Tenants currently holding slots.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Tenants currently waiting.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The admission cap.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// `(arrivals, admitted, queued, shed, promoted)` counters.
    pub fn counters(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.arrivals,
            self.admitted,
            self.queued,
            self.shed,
            self.promoted,
        )
    }
}

/// The online QoS governor: every `window` it diffs each active tenant's
/// flash command count against the previous tick and installs per-owner
/// tag-budget overrides — the window's heaviest tenant is squeezed to
/// `min_budget`, the lightest gets `max_budget`, the rest interpolate
/// linearly over the window's delta *spread* (integer arithmetic, so the
/// schedule is exact). A window with no spread — every active tenant
/// equally busy or equally idle — installs `max_budget` for everyone:
/// without a noisy neighbour to isolate there is nothing to squeeze, and
/// throttling a uniform mix would only slow slot turnover. Overrides are
/// cleared when a tenant retires.
#[derive(Debug, Clone)]
pub struct QosGovernor {
    config: GovernorConfig,
    next_tick: SimTime,
    /// Command count per tenant at the previous tick (the sliding window's
    /// trailing edge). `BTreeMap` for deterministic iteration.
    last_commands: BTreeMap<u32, u64>,
    updates: u64,
}

impl QosGovernor {
    /// A governor whose first tick fires one window after `start`.
    pub fn new(config: GovernorConfig, start: SimTime) -> Self {
        QosGovernor {
            config,
            next_tick: start + config.window,
            last_commands: BTreeMap::new(),
            updates: 0,
        }
    }

    /// The next tick instant.
    pub fn next_tick(&self) -> SimTime {
        self.next_tick
    }

    /// Budget-recomputation ticks executed.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Runs one tick at `now`: recomputes and installs every active
    /// tenant's budget override from its command delta over the window.
    pub fn rebalance(&mut self, active: &BTreeSet<u32>, backbone: &mut FlashBackbone) {
        let stats = backbone.owner_stats();
        let mut deltas: Vec<(u32, u64)> = Vec::with_capacity(active.len());
        for &tenant in active {
            let commands = stats
                .get(&OwnerId::Kernel(tenant))
                .map(|s| s.commands())
                .unwrap_or(0);
            let last = self.last_commands.get(&tenant).copied().unwrap_or(0);
            deltas.push((tenant, commands.saturating_sub(last)));
            self.last_commands.insert(tenant, commands);
        }
        let max_delta = deltas.iter().map(|&(_, d)| d).max().unwrap_or(0);
        let min_delta = deltas.iter().map(|&(_, d)| d).min().unwrap_or(0);
        let spread = max_delta - min_delta;
        let (lo, hi) = (self.config.min_budget.max(1), self.config.max_budget.max(1));
        for (tenant, delta) in deltas {
            // Linear interpolation with round-to-nearest over the spread:
            // delta == min_delta → hi, delta == max_delta → lo. No spread
            // means no noisy neighbour, so nobody is squeezed.
            let budget = if spread == 0 {
                hi
            } else {
                let above = delta - min_delta;
                hi - ((hi - lo) as u64 * above + spread / 2).div_euclid(spread) as usize
            };
            backbone.set_owner_budget_override(OwnerId::Kernel(tenant), Some(budget));
        }
        self.updates += 1;
        self.next_tick += self.config.window;
    }

    /// Clears a retiring tenant's override and window state.
    pub fn retire(&mut self, tenant: u32, backbone: &mut FlashBackbone) {
        backbone.set_owner_budget_override(OwnerId::Kernel(tenant), None);
        self.last_commands.remove(&tenant);
    }
}

/// Per-tenant outcome of an open-loop campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantOutcome {
    /// Dense tenant id (arrival order).
    pub tenant: u32,
    /// Template index this tenant instantiated.
    pub template: usize,
    /// Arrival instant (from the seeded schedule).
    pub arrived_at: SimTime,
    /// Dispatch instant; `None` for shed tenants.
    pub admitted_at: Option<SimTime>,
    /// Completion instant (output flushed); `None` for shed tenants.
    pub completed_at: Option<SimTime>,
    /// Flash pages this tenant read.
    pub reads: u64,
    /// Flash pages this tenant programmed.
    pub programs: u64,
    /// Flash payload bytes this tenant moved.
    pub bytes: u64,
}

impl TenantOutcome {
    /// Arrival-to-completion sojourn (queueing included), if completed.
    pub fn sojourn(&self) -> Option<SimDuration> {
        self.completed_at
            .map(|c| c.saturating_since(self.arrived_at))
    }
}

/// Everything an open-loop campaign produced: the standard [`RunOutcome`]
/// (with the tenant fields populated), the per-tenant records, and the
/// admission trace.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// The standard run outcome (energy, timelines, owner stats, plus the
    /// tenant aggregates).
    pub outcome: RunOutcome,
    /// One record per tenant the arrival plan injected, in tenant order.
    pub tenants: Vec<TenantOutcome>,
    /// Every admission decision, in decision order.
    pub admissions: Vec<AdmissionRecord>,
}

impl OpenLoopReport {
    /// Selection-based quantile of completed tenants' sojourn times, in
    /// seconds; 0 when nothing completed.
    pub fn sojourn_quantile(&self, q: f64) -> f64 {
        let mut sojourns: Vec<SimDuration> = self
            .tenants
            .iter()
            .filter_map(TenantOutcome::sojourn)
            .collect();
        if sojourns.is_empty() {
            return 0.0;
        }
        sojourns.sort_unstable();
        let idx = ((sojourns.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        sojourns[idx].as_secs_f64()
    }

    /// Fraction of *arrived* tenants whose sojourn met `limit` — shed and
    /// never-completed tenants count as SLO violations, which is what
    /// makes shedding a visible trade on the capacity curve.
    pub fn slo_attainment(&self, limit: SimDuration) -> f64 {
        if self.tenants.is_empty() {
            return 0.0;
        }
        let met = self
            .tenants
            .iter()
            .filter(|t| t.sojourn().is_some_and(|s| s <= limit))
            .count();
        met as f64 / self.tenants.len() as f64
    }

    /// A canonical byte-comparable digest of the whole campaign: every
    /// per-tenant record, every admission decision, and the aggregate
    /// counters. Two runs agree exactly iff their digests are equal.
    pub fn digest(&self) -> String {
        let mut out = String::new();
        for t in &self.tenants {
            let adm = t.admitted_at.map(|a| a.as_ns() as i128).unwrap_or(-1);
            let done = t.completed_at.map(|c| c.as_ns() as i128).unwrap_or(-1);
            out.push_str(&format!(
                "tenant {} tpl {} arr {} adm {} done {} reads {} programs {} bytes {}\n",
                t.tenant,
                t.template,
                t.arrived_at.as_ns(),
                adm,
                done,
                t.reads,
                t.programs,
                t.bytes,
            ));
        }
        for a in &self.admissions {
            out.push_str(&format!(
                "adm {} tenant {} {}\n",
                a.at.as_ns(),
                a.tenant,
                a.decision.label()
            ));
        }
        out.push_str(&format!(
            "summary finished {} arrived {} admitted {} queued {} shed {} \
             p50 {:016x} p99 {:016x} p999 {:016x} fairness {:016x} governor {}\n",
            self.outcome.finished_at.as_ns(),
            self.outcome.tenants_arrived,
            self.outcome.tenants_admitted,
            self.outcome.tenants_queued,
            self.outcome.tenants_shed,
            self.outcome.tenant_sojourn_p50_s.to_bits(),
            self.outcome.tenant_sojourn_p99_s.to_bits(),
            self.outcome.tenant_sojourn_p999_s.to_bits(),
            self.outcome.tenant_fairness_index.to_bits(),
            self.outcome.governor_updates,
        ));
        out
    }
}

/// Jain's fairness index over per-tenant service: `(Σx)² / (n·Σx²)`.
fn jain_fairness(service: &[u64]) -> f64 {
    if service.is_empty() {
        return 0.0;
    }
    let sum: f64 = service.iter().map(|&x| x as f64).sum();
    let sq: f64 = service.iter().map(|&x| (x as f64) * (x as f64)).sum();
    if sq == 0.0 {
        return 0.0;
    }
    sum * sum / (service.len() as f64 * sq)
}

/// A tenant dispatched and computing; its output flushes at `done`.
struct InFlightTenant {
    app: Application,
    compute_end: SimTime,
}

impl FlashAbacusSystem {
    /// Runs a seeded open-loop campaign: `plan` injects tenants (each an
    /// instance of one of `templates`, placed in a reusable flash slot),
    /// `scaleout` bounds concurrency and optionally enables the online
    /// QoS governor. Returns the per-tenant report; see the module docs
    /// for the execution model and determinism contract.
    pub fn run_open_loop(
        &mut self,
        templates: &[Application],
        plan: &ArrivalPlan,
        scaleout: &ScaleoutConfig,
    ) -> Result<OpenLoopReport, FaError> {
        if templates.is_empty() || templates.iter().any(|t| t.kernels.is_empty()) {
            return Err(FaError::InvalidWorkload(
                "open-loop campaign needs non-empty tenant templates".into(),
            ));
        }
        if plan.templates > templates.len() {
            return Err(FaError::InvalidWorkload(format!(
                "arrival plan draws from {} templates but only {} were supplied",
                plan.templates,
                templates.len()
            )));
        }

        // Carve out the slots: one group-aligned region per in-flight
        // tenant, sized for the largest template. Slots are reused as
        // tenants retire, so the campaign's logical footprint is bounded
        // by the admission cap, not the tenant count.
        let group_bytes = self.config().page_group_bytes;
        let slot_bytes = templates
            .iter()
            .map(Application::flash_bytes)
            .max()
            .unwrap_or(0)
            .div_ceil(group_bytes)
            .max(1)
            * group_bytes;
        let slot_count = scaleout.max_in_flight.max(1);
        let required_groups = slot_count as u64 * (slot_bytes / group_bytes);
        let available = self.flashvisor.available_groups();
        if required_groups > available {
            return Err(FaError::OutOfFlashSpace {
                requested: required_groups,
                available,
            });
        }

        let schedule = plan.schedule();
        let mut tenants: Vec<TenantOutcome> = schedule
            .iter()
            .map(|a| TenantOutcome {
                tenant: a.tenant,
                template: a.template,
                arrived_at: a.at,
                admitted_at: None,
                completed_at: None,
                reads: 0,
                programs: 0,
                bytes: 0,
            })
            .collect();

        let mut admission = AdmissionController::new(slot_count, scaleout.queue_limit);
        let mut governor = scaleout.governor.map(|g| QosGovernor::new(g, plan.start));
        let mut admissions: Vec<AdmissionRecord> = Vec::with_capacity(schedule.len());
        // Lowest-numbered free slot first: a pure function of the
        // admission sequence, so slot assignment is deterministic.
        let mut free_slots: BinaryHeap<Reverse<usize>> = (0..slot_count).map(Reverse).collect();
        let mut slot_of_tenant: BTreeMap<u32, usize> = BTreeMap::new();
        let mut in_flight: BTreeMap<u32, InFlightTenant> = BTreeMap::new();
        let mut active: BTreeSet<u32> = BTreeSet::new();
        // Completion events, earliest first; ties break by tenant id.
        let mut completions: BinaryHeap<Reverse<(SimTime, u32)>> = BinaryHeap::new();
        let mut worker_booted = vec![false; self.workers.len()];
        let mut next_arrival = 0usize;
        let mut finished_at = SimTime::ZERO;

        loop {
            // Candidate events, with tie priority completion < governor
            // tick < arrival (a completion at t frees the slot a same-t
            // arrival may take; a governor tick at t sees the post-retire
            // active set).
            let completion_at = completions.peek().map(|Reverse((t, _))| *t);
            let campaign_live =
                next_arrival < schedule.len() || !in_flight.is_empty() || admission.queue_len() > 0;
            let governor_at = match (&governor, campaign_live) {
                (Some(g), true) => Some(g.next_tick()),
                _ => None,
            };
            let arrival_at = schedule.get(next_arrival).map(|a| a.at);
            let next_event = [(completion_at, 0u8), (governor_at, 1u8), (arrival_at, 2u8)]
                .into_iter()
                .filter_map(|(t, pri)| t.map(|t| (t, pri)))
                .min();
            let Some((now, priority)) = next_event else {
                break;
            };

            // Background storage tasks strictly earlier than the next
            // event run first (foreground wins ties), mirroring the
            // closed-loop loop's interleaving.
            if self.background.peek_time().is_some_and(|t| t < now) {
                let (at, task) = self.background.pop().expect("peeked task vanished");
                self.run_storage_task_tolerant(at, task)?;
                self.maybe_power_loss(at)?;
                continue;
            }

            match priority {
                0 => {
                    // Completion: flush the tenant's output, release its
                    // slot and locks, clear its governor override, and
                    // dispatch the promoted queue head (if any) now.
                    let Reverse((_, tenant)) = completions.pop().expect("peeked completion");
                    let flight = in_flight
                        .remove(&tenant)
                        .expect("completing tenant in flight");
                    let mut done = flight.compute_end;
                    for kernel in &flight.app.kernels {
                        let slice = ScreenSlice {
                            input_start: 0,
                            input_len: 0,
                            output_start: kernel.data_section.input_bytes,
                            output_len: kernel.data_section.output_bytes,
                        };
                        if slice.output_len > 0 {
                            done =
                                self.flush_output(done, kernel.data_section.flash_base, &slice)?;
                        }
                    }
                    self.flashvisor.unmap_owner(tenant);
                    active.remove(&tenant);
                    if let Some(g) = governor.as_mut() {
                        g.retire(tenant, self.flashvisor.backbone_mut());
                    }
                    let slot = slot_of_tenant
                        .remove(&tenant)
                        .expect("completing tenant holds a slot");
                    free_slots.push(Reverse(slot));
                    tenants[tenant as usize].completed_at = Some(done);
                    finished_at = finished_at.max(done);
                    self.maybe_power_loss(flight.compute_end)?;
                    if let Some(promoted) = admission.complete() {
                        admissions.push(AdmissionRecord {
                            at: flight.compute_end,
                            tenant: promoted,
                            decision: AdmissionDecision::Promoted,
                        });
                        let Reverse(slot) = free_slots.pop().expect("freed slot available");
                        slot_of_tenant.insert(promoted, slot);
                        tenants[promoted as usize].admitted_at = Some(flight.compute_end);
                        let template = tenants[promoted as usize].template;
                        let end = self.dispatch_tenant(
                            &templates[template],
                            promoted,
                            slot as u64 * slot_bytes,
                            flight.compute_end,
                            &mut worker_booted,
                            &mut in_flight,
                        )?;
                        active.insert(promoted);
                        completions.push(Reverse((end, promoted)));
                    }
                }
                1 => {
                    let g = governor.as_mut().expect("governor tick without governor");
                    g.rebalance(&active, self.flashvisor.backbone_mut());
                }
                _ => {
                    let arrival = schedule[next_arrival];
                    next_arrival += 1;
                    let decision = admission.arrive(arrival.tenant);
                    admissions.push(AdmissionRecord {
                        at: arrival.at,
                        tenant: arrival.tenant,
                        decision,
                    });
                    if decision == AdmissionDecision::Admitted {
                        let Reverse(slot) = free_slots.pop().expect("admission implies free slot");
                        slot_of_tenant.insert(arrival.tenant, slot);
                        tenants[arrival.tenant as usize].admitted_at = Some(arrival.at);
                        let end = self.dispatch_tenant(
                            &templates[arrival.template],
                            arrival.tenant,
                            slot as u64 * slot_bytes,
                            arrival.at,
                            &mut worker_booted,
                            &mut in_flight,
                        )?;
                        active.insert(arrival.tenant);
                        completions.push(Reverse((end, arrival.tenant)));
                    }
                }
            }
        }

        // Drain remaining background storage campaigns to quiescence, and
        // fire a power loss armed past the end of all activity, exactly
        // like the closed-loop driver.
        while let Some((at, task)) = self.background.pop() {
            self.run_storage_task_tolerant(at, task)?;
            self.maybe_power_loss(at)?;
        }
        if self.power_loss_clock().armed() {
            let at = self
                .power_loss_clock()
                .at()
                .expect("armed clock has an instant");
            self.maybe_power_loss(finished_at.max(at))?;
        }

        // Per-tenant flash service from the owner stats: every tenant has
        // a unique owner id, so the cumulative stats are per-tenant totals.
        {
            let stats = self.flashvisor.backbone().owner_stats();
            for t in tenants.iter_mut() {
                if let Some(s) = stats.get(&OwnerId::Kernel(t.tenant)) {
                    t.reads = s.reads;
                    t.programs = s.programs;
                    t.bytes = s.bytes;
                }
            }
        }

        // The standard outcome: one latency record per completed tenant
        // (arrival plays the role offload plays in closed-loop runs).
        let mut kernel_latencies = Vec::new();
        let mut bytes_processed = 0u64;
        for t in &tenants {
            if let Some(done) = t.completed_at {
                kernel_latencies.push(KernelLatency {
                    app_name: templates[t.template].name.clone(),
                    app_index: t.tenant as usize,
                    kernel_index: 0,
                    offloaded_at: t.arrived_at,
                    completed_at: done,
                });
                bytes_processed += templates[t.template].flash_bytes();
            }
        }
        let mut outcome =
            self.collect_common_outcome(finished_at, kernel_latencies, bytes_processed);
        let (arrivals, admitted, queued, shed, _) = admission.counters();
        outcome.tenants_arrived = arrivals;
        outcome.tenants_admitted = admitted;
        outcome.tenants_queued = queued;
        outcome.tenants_shed = shed;
        outcome.governor_updates = governor.as_ref().map(|g| g.updates()).unwrap_or(0);
        let service: Vec<u64> = tenants
            .iter()
            .filter(|t| t.completed_at.is_some())
            .map(|t| t.bytes)
            .collect();
        outcome.tenant_fairness_index = jain_fairness(&service);

        let mut report = OpenLoopReport {
            outcome,
            tenants,
            admissions,
        };
        report.outcome.tenant_sojourn_p50_s = report.sojourn_quantile(0.50);
        report.outcome.tenant_sojourn_p99_s = report.sojourn_quantile(0.99);
        report.outcome.tenant_sojourn_p999_s = report.sojourn_quantile(0.999);
        Ok(report)
    }

    /// Dispatches one tenant at `at`: instantiates its template in the
    /// slot, maps its data sections under its owner id, stages the input,
    /// and runs every screen serially on the least-loaded worker. Returns
    /// the compute-end instant (the output flushes at the completion
    /// event, keeping flash requests in non-decreasing time order).
    fn dispatch_tenant(
        &mut self,
        template: &Application,
        tenant: u32,
        slot_base: u64,
        at: SimTime,
        worker_booted: &mut [bool],
        in_flight: &mut BTreeMap<u32, InFlightTenant>,
    ) -> Result<SimTime, FaError> {
        let app = template.instantiate(AppId(tenant), slot_base);

        // The tenant's input already resides in flash (preload maps any
        // groups a previous slot occupant did not leave mapped; it
        // consumes no simulated time).
        for kernel in &app.kernels {
            self.flashvisor.preload_range(
                kernel.data_section.flash_base,
                kernel.data_section.input_bytes,
            )?;
        }
        for kernel in &app.kernels {
            let ds = kernel.data_section;
            if ds.input_bytes > 0 {
                self.flashvisor.map_section(
                    ds.flash_base,
                    ds.input_bytes,
                    LockMode::Read,
                    tenant,
                )?;
            }
            if ds.output_bytes > 0 {
                self.flashvisor.map_section(
                    ds.flash_base + ds.input_bytes,
                    ds.output_bytes,
                    LockMode::Write,
                    tenant,
                )?;
            }
        }

        // Scheduling decision on Flashvisor plus the message-queue hop.
        let decided = self.flashvisor.charge_scheduling_decision(at);
        let mut dispatched = self.msgq.send(decided);

        // Least-loaded worker: earliest effective start, lowest index on
        // ties — a pure function of simulated state.
        let worker = (0..self.workers.len())
            .min_by_key(|&w| (self.workers[w].next_free().max(dispatched), w))
            .expect("at least one worker LWP");
        if !worker_booted[worker] {
            dispatched = self.workers[worker]
                .boot_kernel(dispatched, 0x1000_0000 + worker as u64 * 0x10_0000);
            worker_booted[worker] = true;
        }

        // Serial flow: stage each kernel's whole input, then run its
        // screens back to back on the chosen worker.
        let mut cursor = dispatched;
        for kernel in &app.kernels {
            let input_slice = ScreenSlice {
                input_start: 0,
                input_len: kernel.data_section.input_bytes,
                output_start: kernel.data_section.input_bytes,
                output_len: 0,
            };
            let data_ready =
                self.stage_input(cursor, kernel.data_section.flash_base, &input_slice)?;
            cursor = cursor.max(data_ready);
            for mblock in &kernel.microblocks {
                for screen in &mblock.screens {
                    let est = self.workers[worker].estimate(&screen.mix, screen.bytes_touched());
                    let start = cursor.max(self.workers[worker].next_free());
                    let res = self.workers[worker].execute(start, &est);
                    self.energy.record(
                        fa_energy::Component::Lwp,
                        fa_energy::ActivityCategory::Computation,
                        res.start,
                        res.end,
                    );
                    let spec = *self.workers[worker].spec();
                    self.compute_intervals.push(ComputeInterval {
                        start: res.start,
                        end: res.end,
                        busy_fus: est.occupancy.mean_busy_fus(&spec, est.cycles),
                    });
                    cursor = res.end;
                }
            }
        }
        in_flight.insert(
            tenant,
            InFlightTenant {
                app,
                compute_end: cursor,
            },
        );
        Ok(cursor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn admission_basic_lifecycle() {
        let mut a = AdmissionController::new(2, 1);
        assert_eq!(a.arrive(0), AdmissionDecision::Admitted);
        assert_eq!(a.arrive(1), AdmissionDecision::Admitted);
        assert_eq!(a.arrive(2), AdmissionDecision::Queued);
        assert_eq!(a.arrive(3), AdmissionDecision::Shed);
        assert_eq!(a.in_flight(), 2);
        assert_eq!(a.complete(), Some(2));
        assert_eq!(a.in_flight(), 2);
        assert_eq!(a.complete(), None);
        assert_eq!(a.in_flight(), 1);
        let (arrivals, admitted, queued, shed, promoted) = a.counters();
        assert_eq!(
            (arrivals, admitted, queued, shed, promoted),
            (4, 2, 1, 1, 1)
        );
    }

    #[test]
    fn governor_squeezes_the_heavy_tenant() {
        use fa_flash::{FlashCommand, FlashGeometry, FlashTiming, PhysicalPageAddr};
        let geometry = FlashGeometry::tiny_for_tests();
        let mut backbone =
            FlashBackbone::new(geometry, FlashTiming::fast_for_tests(), 2.5e9, 8, 1_000);
        // Tenant 7 moves traffic; tenant 9 stays idle.
        for p in 0..8 {
            backbone
                .submit_tagged(
                    SimTime::ZERO,
                    FlashCommand::program(PhysicalPageAddr::new(0, 0, 0, p)),
                    OwnerId::Kernel(7),
                )
                .unwrap();
        }
        let config = GovernorConfig {
            window: SimDuration::from_ms(1),
            min_budget: 1,
            max_budget: 8,
        };
        let mut g = QosGovernor::new(config, SimTime::ZERO);
        let active: BTreeSet<u32> = [7, 9].into_iter().collect();
        g.rebalance(&active, &mut backbone);
        assert_eq!(g.updates(), 1);
        let over = |b: &FlashBackbone, t: u32| {
            b.channel(0)
                .expect("channel 0 exists")
                .owner_budget_override(OwnerId::Kernel(t))
        };
        assert_eq!(over(&backbone, 7), Some(1));
        assert_eq!(over(&backbone, 9), Some(8));
        // A quiet second window relaxes the heavy tenant back to the cap.
        g.rebalance(&active, &mut backbone);
        assert_eq!(over(&backbone, 7), Some(8));
        // Retirement clears the override entirely.
        g.retire(7, &mut backbone);
        assert_eq!(over(&backbone, 7), None);
    }

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain_fairness(&[]), 0.0);
        assert_eq!(jain_fairness(&[0, 0]), 0.0);
        assert!((jain_fairness(&[5, 5, 5, 5]) - 1.0).abs() < 1e-12);
        // One tenant hogging everything → 1/n.
        assert!((jain_fairness(&[10, 0, 0, 0]) - 0.25).abs() < 1e-12);
    }

    proptest! {
        /// Satellite: under any arrival burst interleaved with completions,
        /// in-flight never exceeds the cap, the arrival-time decisions
        /// always partition the arrivals (shed + admitted + queued ==
        /// arrivals), and queued tenants admit in arrival order.
        #[test]
        fn admission_controller_invariants(
            cap in 1usize..8,
            queue_limit in 0usize..8,
            // true = arrival, false = completion (ignored when idle).
            ops in prop::collection::vec(prop::bool::ANY, 1..200),
        ) {
            let mut a = AdmissionController::new(cap, queue_limit);
            let mut next_tenant = 0u32;
            let mut queued_order: VecDeque<u32> = VecDeque::new();
            let mut live = 0usize;
            for op in ops {
                if op {
                    let t = next_tenant;
                    next_tenant += 1;
                    match a.arrive(t) {
                        AdmissionDecision::Admitted => { live += 1; }
                        AdmissionDecision::Queued => queued_order.push_back(t),
                        AdmissionDecision::Shed => {}
                        AdmissionDecision::Promoted => {
                            prop_assert!(false, "arrive() never promotes");
                        }
                    }
                } else if live > 0 {
                    let promoted = a.complete();
                    if let Some(p) = promoted {
                        // FIFO promotion order; the freed slot is refilled,
                        // so the live count is unchanged.
                        prop_assert_eq!(Some(p), queued_order.pop_front());
                    } else {
                        live -= 1;
                    }
                }
                // In-flight never exceeds the cap...
                prop_assert!(a.in_flight() <= a.cap());
                // ...and the shadow model agrees with the controller.
                prop_assert_eq!(a.in_flight(), live);
                let (arrivals, admitted, queued, shed, _) = a.counters();
                // The arrival-time decisions partition the arrivals.
                prop_assert_eq!(admitted + queued + shed, arrivals);
                // The queue can never outgrow its limit.
                prop_assert!(a.queue_len() <= queue_limit);
            }
        }
    }
}
