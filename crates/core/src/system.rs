//! The full FlashAbacus device simulation.
//!
//! [`FlashAbacusSystem`] ties every substrate together: the host offloads
//! kernel description tables over PCIe into DDR3L, Flashvisor boots worker
//! LWPs through the power/sleep controller, the configured scheduler
//! distributes kernels (or their screens) across the workers, kernel data
//! sections are staged from the flash backbone through Flashvisor, outputs
//! are written back log-structured, Storengine journals metadata and
//! reclaims blocks in the background, and the energy accountant integrates
//! component power over all of it.
//!
//! The simulation is *reservation driven*: every hardware component exposes
//! "request at time t → completion at time t'" semantics, and a single
//! completion-ordered dispatch loop drives all four scheduling policies so
//! that every shared resource sees its requests in non-decreasing simulated
//! time (output write-back is deferred to the retire step for the same
//! reason). The ordering rules of the multi-app execution chain are
//! enforced by `fa_kernel::chain` and violations panic, so scheduler bugs
//! cannot silently produce wrong timings.

use crate::config::FlashAbacusConfig;
use crate::error::FaError;
use crate::flashvisor::Flashvisor;
use crate::metrics::{EnergySummary, KernelLatency, OwnerFlashStats, RunOutcome};
use crate::rangelock::LockMode;
use crate::scheduler::{all_kernels, intra_next_ready, static_assignment, SchedulerPolicy};
use crate::storengine::{GcPassProgress, GcPlan, Storengine};
use fa_energy::{ActivityCategory, Component, EnergyAccountant};
use fa_flash::{FaultPlan, FlashError};
use fa_kernel::chain::{ExecutionChain, ScreenRef};
use fa_kernel::descriptor::KernelDescriptionTable;
use fa_kernel::model::Application;
use fa_platform::lwp::{LwpCore, LwpSpec};
use fa_platform::mem::MemorySystem;
use fa_platform::noc::{Crossbar, MessageQueue, PcieLink};
use fa_sim::crash::PowerLossClock;
use fa_sim::deferred::DeferredWorkQueue;
use fa_sim::stats::TimeSeries;
use fa_sim::time::{SimDuration, SimTime};
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// An injected media failure is an event the storage stack absorbs
/// (remap, retire, retry) — never a reason to abort the run.
pub(crate) fn is_injected_fault(e: &FaError) -> bool {
    matches!(
        e,
        FaError::Flash(FlashError::InjectedProgramFailure(_) | FlashError::InjectedEraseFailure(_))
    )
}

/// Background storage-management work, scheduled as deferred events that
/// contend with foreground traffic instead of executing instantaneously at
/// the flush instant (`qos.background_gc`).
#[derive(Debug, Clone)]
pub(crate) enum StorageTask {
    /// Start a new Storengine reclamation pass. `remaining` bounds the
    /// campaign the triggering flush started, mirroring the synchronous
    /// guard of [`FlashAbacusSystem::run_background_storage`].
    GcPass { remaining: u32 },
    /// Continue a pass whose migrations are sliced by the GC tag budget:
    /// each event migrates at most `gc_budget` groups, then yields the
    /// channels to foreground traffic until its own commands complete —
    /// the deferred-admission behaviour of an over-budget owner, applied
    /// at the pass level.
    GcSlice {
        plan: GcPlan,
        progress: GcPassProgress,
        remaining: u32,
    },
}

/// Per-screen placement of a kernel's data section: which slice of the
/// section each screen reads and writes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ScreenSlice {
    pub(crate) input_start: u64,
    pub(crate) input_len: u64,
    pub(crate) output_start: u64,
    pub(crate) output_len: u64,
}

/// A pending screen completion in the dispatch loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Completion {
    end: SimTime,
    screen: ScreenRef,
    worker: usize,
}

impl Ord for Completion {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest end.
        other
            .end
            .cmp(&self.end)
            .then_with(|| other.screen.cmp(&self.screen))
    }
}

impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A record of one compute interval, kept to rebuild the FU timeline.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ComputeInterval {
    pub(crate) start: SimTime,
    pub(crate) end: SimTime,
    pub(crate) busy_fus: f64,
}

/// Maximum screens in flight per worker: one executing plus one whose input
/// is being prefetched, so data transfers overlap execution (§5's
/// methodology notes that accelerator latency overlaps with DMA time).
const WORKER_QUEUE_DEPTH: usize = 2;

/// Per-worker scheduling state used by the unified dispatch loop.
#[derive(Debug, Clone, Copy)]
struct WorkerState {
    /// Earliest instant new work could start.
    free_at: SimTime,
    /// Screens currently dispatched to this worker (executing or staged).
    in_flight: usize,
    /// The worker has been booted through the PSC protocol at least once.
    booted: bool,
    /// Inter-kernel policies: index (into the kernel list) of the kernel
    /// currently owned by this worker.
    current_kernel: Option<usize>,
}

/// The simulated FlashAbacus accelerator.
pub struct FlashAbacusSystem {
    config: FlashAbacusConfig,
    pub(crate) flashvisor: Flashvisor,
    pub(crate) storengine: Storengine,
    pub(crate) workers: Vec<LwpCore>,
    memory: MemorySystem,
    pcie: PcieLink,
    tier1: Crossbar,
    pub(crate) msgq: MessageQueue,
    pub(crate) energy: EnergyAccountant,
    pub(crate) compute_intervals: Vec<ComputeInterval>,
    gc_passes: u64,
    /// Deferred storage-management events (background-GC mode only).
    pub(crate) background: DeferredWorkQueue<StorageTask>,
    /// A background GC campaign is in flight: the watermark check at flush
    /// time must not start a second one.
    gc_campaign_active: bool,
    /// One-shot power-loss trigger, armed from the fault plan's
    /// `power_loss_ns`. Disarmed (and free) on fault-free runs.
    power_loss: PowerLossClock,
    /// Crash/recovery cycles executed so far.
    recoveries: u64,
}

impl FlashAbacusSystem {
    /// Builds a system from its configuration, installing the fault plan
    /// from `FA_FAULTS` when the variable is set (a malformed spec panics:
    /// silently ignoring a typo would invalidate the experiment).
    pub fn new(config: FlashAbacusConfig) -> Self {
        let mut system = Self::without_env_faults(config);
        match FaultPlan::from_env() {
            Ok(Some(plan)) => system.install_fault_plan(Arc::new(plan)),
            Ok(None) => {}
            Err(e) => panic!("invalid FA_FAULTS: {e}"),
        }
        system
    }

    /// Builds a system ignoring `FA_FAULTS` (tests and benches that manage
    /// fault plans programmatically).
    pub fn without_env_faults(config: FlashAbacusConfig) -> Self {
        let lwp_spec = LwpSpec::from_platform(&config.platform);
        let workers = (0..config.platform.worker_lwps())
            .map(|i| LwpCore::new(i + config.platform.system_lwps, lwp_spec))
            .collect();
        let mut energy = EnergyAccountant::new(config.power);
        energy.register_idle(Component::Lwp, config.platform.lwp_count);
        energy.register_idle(Component::Ddr3l, 1);
        energy.register_idle(Component::Fabric, 1);
        energy.register_idle(Component::FlashOrSsd, 1);
        energy.register_idle(Component::Pcie, 1);
        FlashAbacusSystem {
            flashvisor: Flashvisor::new(config),
            storengine: Storengine::new(config),
            workers,
            memory: MemorySystem::new(&config.platform),
            pcie: PcieLink::new(&config.platform),
            tier1: Crossbar::tier1(&config.platform),
            msgq: MessageQueue::new(&config.platform, 64),
            energy,
            compute_intervals: Vec::new(),
            gc_passes: 0,
            background: DeferredWorkQueue::new(),
            gc_campaign_active: false,
            power_loss: PowerLossClock::disarmed(),
            recoveries: 0,
            config,
        }
    }

    /// Installs an injectable fault plan: per-channel fault state in the
    /// backbone, redo-record keeping in Flashvisor, and the power-loss
    /// clock here when the plan schedules one.
    pub fn install_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.power_loss = PowerLossClock::new(plan.power_loss_ns.map(SimTime::from_ns));
        self.flashvisor.install_fault_plan(plan);
    }

    /// The power-loss clock (test and report surface).
    pub fn power_loss_clock(&self) -> &PowerLossClock {
        &self.power_loss
    }

    /// Crash/recovery cycles executed so far.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// The system configuration.
    pub fn config(&self) -> &FlashAbacusConfig {
        &self.config
    }

    /// Access to Flashvisor (inspection in tests and ablations).
    pub fn flashvisor(&self) -> &Flashvisor {
        &self.flashvisor
    }

    /// Access to Storengine (inspection in tests and ablations).
    pub fn storengine(&self) -> &Storengine {
        &self.storengine
    }

    /// Number of worker LWPs.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Runs an offloaded batch of applications to completion and returns
    /// the measured outcome.
    pub fn run(&mut self, apps: &[Application]) -> Result<RunOutcome, FaError> {
        if apps.is_empty() || apps.iter().all(|a| a.kernels.is_empty()) {
            return Err(FaError::InvalidWorkload(
                "no applications or kernels to run".into(),
            ));
        }

        // Phase 0: the input data already resides in the flash backbone.
        for app in apps {
            for kernel in &app.kernels {
                self.flashvisor.preload_range(
                    kernel.data_section.flash_base,
                    kernel.data_section.input_bytes,
                )?;
            }
        }

        // Phase 1: offload every kernel description table over PCIe.
        let (offload_times, offload_end) = self.offload(apps);

        // Phase 2: map data sections (range locks) and pre-compute per-screen
        // slices.
        let mut locks = Vec::new();
        for app in apps {
            for kernel in &app.kernels {
                let ds = kernel.data_section;
                if ds.input_bytes > 0 {
                    locks.push(self.flashvisor.map_section(
                        ds.flash_base,
                        ds.input_bytes,
                        LockMode::Read,
                        app.id.0,
                    )?);
                }
                if ds.output_bytes > 0 {
                    locks.push(self.flashvisor.map_section(
                        ds.flash_base + ds.input_bytes,
                        ds.output_bytes,
                        LockMode::Write,
                        app.id.0,
                    )?);
                }
            }
        }
        let slices = compute_screen_slices(apps);

        // Phase 3: schedule.
        let mut chain = ExecutionChain::new(apps);
        self.run_schedule(apps, &slices, &mut chain, &offload_times, offload_end)?;

        // Phase 4: release every mapping.
        for lock in locks {
            self.flashvisor.unmap_section(lock);
        }

        // Phase 5: collect metrics.
        Ok(self.build_outcome(apps, &chain, &offload_times))
    }

    /// Offloads every kernel description table over PCIe into DDR3L.
    /// Returns per-kernel offload completion times and the instant the last
    /// offload (plus the doorbell interrupt) lands.
    fn offload(&mut self, apps: &[Application]) -> (HashMap<(usize, usize), SimTime>, SimTime) {
        let mut times = HashMap::new();
        let mut cursor = SimTime::ZERO;
        for (ai, app) in apps.iter().enumerate() {
            for (ki, kernel) in app.kernels.iter().enumerate() {
                let kdt = KernelDescriptionTable::for_kernel(kernel);
                let bytes = kdt.offload_bytes();
                let pcie = self.pcie.dma(cursor, bytes);
                // The payload continues over the tier-1 crossbar into DDR3L.
                let xbar = self.tier1.transfer(pcie.end, bytes);
                let ddr = self.memory.ddr3l.transfer(xbar.end, bytes);
                self.energy.record(
                    Component::Pcie,
                    ActivityCategory::DataMovement,
                    pcie.start,
                    pcie.end,
                );
                self.energy.record(
                    Component::Ddr3l,
                    ActivityCategory::DataMovement,
                    ddr.start,
                    ddr.end,
                );
                times.insert((ai, ki), ddr.end);
                cursor = pcie.end;
            }
        }
        let last = times.values().copied().max().unwrap_or(SimTime::ZERO);
        // Doorbell interrupt to Flashvisor.
        let ready = self.pcie.doorbell(last);
        (times, ready)
    }

    /// Reads a screen's input slice from flash into DDR3L and returns when
    /// the data is ready for the LWP.
    pub(crate) fn stage_input(
        &mut self,
        now: SimTime,
        flash_base: u64,
        slice: &ScreenSlice,
    ) -> Result<SimTime, FaError> {
        if slice.input_len == 0 {
            return Ok(now);
        }
        let t = self.flashvisor.read_section(
            now,
            flash_base + slice.input_start,
            slice.input_len,
            &mut self.memory.scratchpad,
        )?;
        // Pages land in DDR3L through the tier-1 crossbar. Device-active
        // energy for the backbone and DDR3L is charged once at the end of
        // the run from their measured utilization (concurrent stagings
        // share the same devices, so per-request charging would double
        // count).
        let xbar = self.tier1.transfer(t.finished, slice.input_len);
        let ddr = self.memory.ddr3l.transfer(xbar.end, slice.input_len);
        Ok(ddr.end)
    }

    /// Writes a screen's output slice back to flash. With buffered writes
    /// (the prototype default) the caller does not wait for the returned
    /// completion; the flash programs still happen (and are charged) in the
    /// background.
    pub(crate) fn flush_output(
        &mut self,
        now: SimTime,
        flash_base: u64,
        slice: &ScreenSlice,
    ) -> Result<SimTime, FaError> {
        if slice.output_len == 0 {
            return Ok(now);
        }
        let ddr = self.memory.ddr3l.transfer(now, slice.output_len);
        let t = self.flashvisor.write_section(
            ddr.end,
            flash_base + slice.output_start,
            slice.output_len,
            &mut self.memory.scratchpad,
        )?;
        if self.config.qos.background_gc {
            self.schedule_background_storage(t.finished)?;
        } else {
            self.run_background_storage(t.finished)?;
        }
        if self.config.buffered_writes {
            Ok(ddr.end)
        } else {
            Ok(t.finished)
        }
    }

    /// Storengine housekeeping, synchronous mode: periodic journaling plus
    /// watermark-driven garbage collection, executed in full at the flush
    /// instant (the seed behaviour, and the `background_gc=false` default).
    fn run_background_storage(&mut self, now: SimTime) -> Result<(), FaError> {
        if self.storengine.journal_due(now) {
            match self.storengine.journal(now, &mut self.flashvisor) {
                Ok(_) => {}
                // A failed dump stays volatile and is retried next period.
                Err(e) if is_injected_fault(&e) => {}
                Err(e) => return Err(e),
            }
        }
        let mut guard = 0;
        while self.storengine.gc_needed(&self.flashvisor) && guard < 64 {
            let out = match self.storengine.collect_garbage(now, &mut self.flashvisor) {
                Ok(out) => out,
                // A pass that hit an injected failure retires what it
                // flushed out and the campaign tries the next victim.
                Err(e) if is_injected_fault(&e) => {
                    self.flashvisor.process_retirements(now)?;
                    guard += 1;
                    continue;
                }
                Err(e) => return Err(e),
            };
            self.gc_passes += 1;
            guard += 1;
            if out.groups_reclaimed == 0 && self.flashvisor.available_groups() == 0 {
                return Err(FaError::OutOfFlashSpace {
                    requested: 1,
                    available: 0,
                });
            }
        }
        if self.flashvisor.fault_plan().is_some() {
            self.flashvisor.process_retirements(now)?;
        }
        Ok(())
    }

    /// Storengine housekeeping, background mode: journaling stays a cheap
    /// synchronous metadata dump, but a tripped GC watermark *schedules* a
    /// reclamation campaign as deferred events instead of running it here —
    /// the passes then interleave with foreground screens in the dispatch
    /// loop and contend for the channels under the `Gc` owner.
    fn schedule_background_storage(&mut self, now: SimTime) -> Result<(), FaError> {
        if self.storengine.journal_due(now) {
            match self.storengine.journal(now, &mut self.flashvisor) {
                Ok(_) => {}
                Err(e) if is_injected_fault(&e) => {}
                Err(e) => return Err(e),
            }
        }
        if self.flashvisor.fault_plan().is_some() {
            self.flashvisor.process_retirements(now)?;
        }
        if !self.gc_campaign_active && self.storengine.gc_needed(&self.flashvisor) {
            // Same campaign bound as the synchronous guard (64 passes per
            // triggering flush).
            self.background
                .push(now, StorageTask::GcPass { remaining: 64 });
            self.gc_campaign_active = true;
        }
        Ok(())
    }

    /// Executes one deferred storage task at its scheduled instant and, for
    /// GC, keeps the campaign going while the watermark stays tripped.
    fn run_storage_task(&mut self, at: SimTime, task: StorageTask) -> Result<(), FaError> {
        match task {
            StorageTask::GcPass { remaining } => {
                // Mirror the synchronous loop's `while gc_needed` guard:
                // foreground reclamation (overwrite releases, journal
                // drains) may have refilled the pool since this pass was
                // scheduled, and then the pass must not run at all.
                if !self.storengine.gc_needed(&self.flashvisor) {
                    self.gc_campaign_active = false;
                    return Ok(());
                }
                let plan = self.storengine.plan_gc(at, &self.flashvisor);
                let progress = self.storengine.begin_gc_pass(at);
                self.advance_gc_pass(plan, progress, remaining)
            }
            StorageTask::GcSlice {
                plan,
                progress,
                remaining,
            } => self.advance_gc_pass(plan, progress, remaining),
        }
    }

    /// Runs one deferred storage task, absorbing injected media failures:
    /// the interrupted campaign ends (its plan may reference blocks the
    /// failure condemned), the bad blocks are retired, and the next flush
    /// re-evaluates the watermark to start a fresh campaign.
    pub(crate) fn run_storage_task_tolerant(
        &mut self,
        at: SimTime,
        task: StorageTask,
    ) -> Result<(), FaError> {
        match self.run_storage_task(at, task) {
            Ok(()) => Ok(()),
            Err(e) if is_injected_fault(&e) => {
                self.gc_campaign_active = false;
                self.flashvisor.process_retirements(at)?;
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Polls the power-loss clock at `now`; when it trips, runs the crash
    /// protocol: a final supercap-backed journal dump persists the redo
    /// records accumulated since the last periodic dump, volatile state is
    /// lost (pending background campaigns die with the power), and the
    /// mapping is rebuilt by journal replay before the run continues — the
    /// restart-after-power-loss experiment inside one simulated timeline.
    pub(crate) fn maybe_power_loss(&mut self, now: SimTime) -> Result<(), FaError> {
        if !self.power_loss.check(now) {
            return Ok(());
        }
        match self.storengine.journal(now, &mut self.flashvisor) {
            Ok(_) => {}
            // The supercap dump itself hit an injected failure: its redo
            // records stay unpersisted and are lost below, exactly what a
            // real crash would lose.
            Err(e) if is_injected_fault(&e) => {}
            Err(e) => return Err(e),
        }
        self.background = DeferredWorkQueue::new();
        self.gc_campaign_active = false;
        self.flashvisor.recover();
        self.recoveries += 1;
        Ok(())
    }

    /// Migrates the next budget-bounded slice of a background pass. An
    /// unfinished pass re-defers itself to the instant its slice's traffic
    /// completes; a finished pass erases/reclaims its row and schedules
    /// the campaign's next pass while the watermark stays tripped.
    fn advance_gc_pass(
        &mut self,
        plan: GcPlan,
        mut progress: GcPassProgress,
        remaining: u32,
    ) -> Result<(), FaError> {
        let slice = self
            .config
            .qos
            .gc_budget
            .map(|b| b.max(1))
            .unwrap_or(usize::MAX);
        self.storengine
            .migrate_gc_groups(&mut self.flashvisor, &plan, &mut progress, slice)?;
        if progress.next_victim < plan.victims.len() {
            self.background.push(
                progress.finished,
                StorageTask::GcSlice {
                    plan,
                    progress,
                    remaining,
                },
            );
            return Ok(());
        }
        let out = self
            .storengine
            .finish_gc_pass(&mut self.flashvisor, &plan, &progress)?;
        self.gc_passes += 1;
        if out.groups_reclaimed == 0 && self.flashvisor.available_groups() == 0 {
            return Err(FaError::OutOfFlashSpace {
                requested: 1,
                available: 0,
            });
        }
        if remaining > 1 && self.storengine.gc_needed(&self.flashvisor) {
            self.background.push(
                out.finished,
                StorageTask::GcPass {
                    remaining: remaining - 1,
                },
            );
        } else {
            self.gc_campaign_active = false;
        }
        Ok(())
    }

    /// Executes one screen on a worker LWP: optional IPC dispatch cost,
    /// input staging, compute. Output write-back is *not* performed here —
    /// the caller flushes at retire time so shared resources always see
    /// requests in non-decreasing simulated-time order.
    fn execute_screen(
        &mut self,
        apps: &[Application],
        slices: &HashMap<ScreenRef, ScreenSlice>,
        sref: ScreenRef,
        worker: usize,
        dispatch_at: SimTime,
        charge_ipc: bool,
    ) -> Result<SimTime, FaError> {
        let kernel = &apps[sref.app].kernels[sref.kernel];
        let screen = &kernel.microblocks[sref.microblock].screens[sref.screen];
        let slice = slices
            .get(&sref)
            .copied()
            .expect("every screen has a slice");

        // Dispatch overhead: a scheduling decision on Flashvisor plus a
        // message-queue hop to the worker.
        let dispatched = if charge_ipc {
            let decided = self.flashvisor.charge_scheduling_decision(dispatch_at);
            self.msgq.send(decided)
        } else {
            dispatch_at
        };

        // Stage the screen's input from flash.
        let data_ready = self.stage_input(dispatched, kernel.data_section.flash_base, &slice)?;

        // Compute on the worker.
        let est = self.workers[worker].estimate(&screen.mix, screen.bytes_touched());
        let start = data_ready.max(self.workers[worker].next_free());
        let res = self.workers[worker].execute(start, &est);
        self.energy.record(
            Component::Lwp,
            ActivityCategory::Computation,
            res.start,
            res.end,
        );
        let spec = *self.workers[worker].spec();
        self.compute_intervals.push(ComputeInterval {
            start: res.start,
            end: res.end,
            busy_fus: est.occupancy.mean_busy_fus(&spec, est.cycles),
        });
        Ok(res.end)
    }

    /// Picks the screen an idle worker should run next under the configured
    /// policy, together with whether the dispatch must pay kernel-boot and
    /// IPC costs. Returns `None` when this worker has nothing to do right
    /// now. Every arm is a frontier lookup on the chain — no policy rescans
    /// the batch, so a whole schedule of S screens does O(S) frontier work.
    #[allow(clippy::too_many_arguments)]
    fn pick_screen(
        &self,
        worker: usize,
        chain: &ExecutionChain,
        kernel_list: &[crate::scheduler::KernelRef],
        kernel_taken: &mut [bool],
        worker_state: &mut [WorkerState],
        template_of_app: &[usize],
    ) -> Option<(ScreenRef, bool)> {
        match self.config.scheduler {
            SchedulerPolicy::IntraIo | SchedulerPolicy::IntraO3 => {
                intra_next_ready(self.config.scheduler, chain).map(|s| (s, true))
            }
            SchedulerPolicy::InterSt | SchedulerPolicy::InterDy => {
                // Continue the worker's current kernel if it still has work.
                if let Some(kidx) = worker_state[worker].current_kernel {
                    let kref = kernel_list[kidx];
                    if chain.kernel_completion(kref.app, kref.kernel).is_none() {
                        // The kernel runs as a single instruction stream: no
                        // per-screen IPC once the kernel is bootstrapped.
                        return chain
                            .next_ready_of_kernel(kref.app, kref.kernel)
                            .map(|s| (s, false));
                    }
                }
                // Otherwise adopt the next unstarted kernel this worker may
                // take: any kernel (InterDy) or only kernels whose
                // application number maps to this worker (InterSt). The
                // "application number" is the number of the *application*,
                // not of the instance: every instance of the same benchmark
                // shares it, which is exactly why the static policy piles
                // homogeneous batches onto one LWP (§4.1, §5.1).
                let workers = worker_state.len();
                for (kidx, kref) in kernel_list.iter().enumerate() {
                    if kernel_taken[kidx] {
                        continue;
                    }
                    if self.config.scheduler == SchedulerPolicy::InterSt
                        && static_assignment(template_of_app[kref.app], workers) != worker
                    {
                        continue;
                    }
                    kernel_taken[kidx] = true;
                    worker_state[worker].current_kernel = Some(kidx);
                    // A freshly adopted kernel pays boot + IPC.
                    return chain
                        .next_ready_of_kernel(kref.app, kref.kernel)
                        .map(|s| (s, true));
                }
                None
            }
        }
    }

    /// The unified, completion-ordered dispatch loop driving all four
    /// policies.
    fn run_schedule(
        &mut self,
        apps: &[Application],
        slices: &HashMap<ScreenRef, ScreenSlice>,
        chain: &mut ExecutionChain,
        offload_times: &HashMap<(usize, usize), SimTime>,
        offload_end: SimTime,
    ) -> Result<(), FaError> {
        let worker_count = self.workers.len();
        let kernel_list = all_kernels(apps);
        let mut kernel_taken = vec![false; kernel_list.len()];
        // Map each application instance to its template ("application
        // number"): the first instance of every distinct benchmark defines
        // the number, all later instances of the same benchmark share it.
        let template_of_app: Vec<usize> = {
            let mut seen: Vec<&str> = Vec::new();
            apps.iter()
                .map(|a| {
                    if let Some(pos) = seen.iter().position(|n| *n == a.name) {
                        pos
                    } else {
                        seen.push(&a.name);
                        seen.len() - 1
                    }
                })
                .collect()
        };
        // Output flushes deferred until the batch completes (the DDR3L
        // write buffer absorbs them during execution, §2.2).
        let mut deferred_flushes: Vec<(u64, ScreenSlice)> = Vec::new();
        let mut worker_state = vec![
            WorkerState {
                free_at: offload_end,
                in_flight: 0,
                booted: false,
                current_kernel: None,
            };
            worker_count
        ];
        // At most WORKER_QUEUE_DEPTH screens are in flight per worker, so
        // the completion heap never outgrows this pre-sized allocation.
        let mut completions: BinaryHeap<Completion> =
            BinaryHeap::with_capacity(worker_count * WORKER_QUEUE_DEPTH + 1);
        // The retire frontier: dispatches (and therefore resource
        // reservations) never go backwards past this point, which keeps the
        // FIFO resource models causal.
        let mut frontier = offload_end;

        loop {
            if chain.is_complete() {
                break;
            }

            // Dispatch phase: give every worker with a free queue slot
            // (fewest-in-flight, earliest-free first) one screen if the
            // policy has one for it, repeating until no such worker can be
            // matched with a ready screen. The second slot prefetches the
            // next screen's input while the first computes.
            loop {
                let mut available: Vec<usize> = (0..worker_count)
                    .filter(|w| worker_state[*w].in_flight < WORKER_QUEUE_DEPTH)
                    .collect();
                available
                    .sort_by_key(|w| (worker_state[*w].in_flight, worker_state[*w].free_at, *w));
                let mut dispatched = false;
                for worker in available {
                    let picked = self.pick_screen(
                        worker,
                        chain,
                        &kernel_list,
                        &mut kernel_taken,
                        &mut worker_state,
                        &template_of_app,
                    );
                    let Some((sref, needs_ipc)) = picked else {
                        continue;
                    };
                    chain.mark_running(sref, worker);
                    // A screen may not start before its kernel was offloaded,
                    // and dispatches never precede the retire frontier.
                    let kernel_offloaded = offload_times
                        .get(&(sref.app, sref.kernel))
                        .copied()
                        .unwrap_or(offload_end);
                    let mut dispatch_at = frontier.max(kernel_offloaded);
                    if needs_ipc && !worker_state[worker].booted {
                        // First use of the worker: PSC sleep/boot sequence.
                        dispatch_at = self.workers[worker]
                            .boot_kernel(dispatch_at, 0x1000_0000 + worker as u64 * 0x10_0000);
                        worker_state[worker].booted = true;
                    }
                    let end =
                        self.execute_screen(apps, slices, sref, worker, dispatch_at, needs_ipc)?;
                    worker_state[worker].in_flight += 1;
                    completions.push(Completion {
                        end,
                        screen: sref,
                        worker,
                    });
                    dispatched = true;
                    // The ready set changed; rebuild the availability list.
                    break;
                }
                if !dispatched {
                    break;
                }
            }

            // Background storage phase: a deferred Storengine pass whose
            // start precedes the next foreground completion executes now,
            // so its channel traffic is in place when later foreground
            // reads arrive — GC genuinely contends instead of happening
            // atomically between screens. Foreground wins ties.
            let background_due = match (completions.peek(), self.background.peek_time()) {
                (Some(c), Some(t)) => t < c.end,
                (None, Some(_)) => true,
                _ => false,
            };
            if background_due {
                let (at, task) = self
                    .background
                    .pop()
                    .expect("peeked background task vanished");
                self.run_storage_task_tolerant(at, task)?;
                self.maybe_power_loss(at)?;
                continue;
            }

            // Retire phase: the earliest completion frees its worker and
            // unlocks successor microblocks. When the completion finishes a
            // kernel, the kernel's whole output region (accumulated in the
            // DDR3L write buffer during execution, §2.2) is flushed to flash
            // in one log-structured write.
            match completions.pop() {
                Some(c) => {
                    let kernel = &apps[c.screen.app].kernels[c.screen.kernel];
                    // The retiring screen is the last incomplete one of its
                    // kernel exactly when one screen remains (itself) — an
                    // O(1) counter lookup, not a per-retire kernel scan.
                    let finishes_kernel =
                        chain.kernel_screens_remaining(c.screen.app, c.screen.kernel) == 1;
                    let output_slice = ScreenSlice {
                        input_start: 0,
                        input_len: 0,
                        output_start: kernel.data_section.input_bytes,
                        output_len: kernel.data_section.output_bytes,
                    };
                    let done_at = if finishes_kernel && kernel.data_section.output_bytes > 0 {
                        if self.config.buffered_writes {
                            // The DDR3L write buffer holds the output; the
                            // flash programs happen once the batch is done so
                            // they do not block other kernels' reads.
                            deferred_flushes.push((kernel.data_section.flash_base, output_slice));
                            c.end
                        } else {
                            self.flush_output(c.end, kernel.data_section.flash_base, &output_slice)?
                        }
                    } else {
                        c.end
                    };
                    chain.mark_done(c.screen, done_at);
                    worker_state[c.worker].in_flight =
                        worker_state[c.worker].in_flight.saturating_sub(1);
                    worker_state[c.worker].free_at = done_at.max(worker_state[c.worker].free_at);
                    frontier = frontier.max(c.end);
                    self.maybe_power_loss(c.end)?;
                }
                None => {
                    return Err(FaError::SchedulerStalled(format!(
                        "{} screens completed of {}",
                        chain.completed_screens(),
                        chain.total_screens()
                    )));
                }
            }
        }
        // Drain the DDR3L write buffer: all deferred output regions are now
        // written back log-structured.
        for (flash_base, slice) in deferred_flushes {
            self.flush_output(frontier, flash_base, &slice)?;
        }
        // Run any remaining background storage campaigns to quiescence (in
        // simulated time; nothing left contends with them).
        while let Some((at, task)) = self.background.pop() {
            self.run_storage_task_tolerant(at, task)?;
            self.maybe_power_loss(at)?;
        }
        // A power-loss armed past the end of all activity still fires
        // before the run reports: the crash experiment must not silently
        // degenerate into a fault-free run because the workload was short.
        if self.power_loss.armed() {
            let at = self.power_loss.at().expect("armed clock has an instant");
            self.maybe_power_loss(frontier.max(at))?;
        }
        Ok(())
    }

    /// Builds the [`RunOutcome`] once the chain has completed.
    fn build_outcome(
        &mut self,
        apps: &[Application],
        chain: &ExecutionChain,
        offload_times: &HashMap<(usize, usize), SimTime>,
    ) -> RunOutcome {
        let mut kernel_latencies = Vec::new();
        let mut finished_at = SimTime::ZERO;
        for (ai, app) in apps.iter().enumerate() {
            for (ki, _) in app.kernels.iter().enumerate() {
                let completed = chain
                    .kernel_completion(ai, ki)
                    .expect("chain complete implies every kernel completed");
                finished_at = finished_at.max(completed);
                kernel_latencies.push(KernelLatency {
                    app_name: app.name.clone(),
                    app_index: ai,
                    kernel_index: ki,
                    offloaded_at: offload_times
                        .get(&(ai, ki))
                        .copied()
                        .unwrap_or(SimTime::ZERO),
                    completed_at: completed,
                });
            }
        }
        let bytes_processed: u64 = apps.iter().map(Application::flash_bytes).sum();
        self.collect_common_outcome(finished_at, kernel_latencies, bytes_processed)
    }

    /// The workload-independent tail of outcome collection: charges the
    /// run's device-active and storage-stack energy, builds the timelines,
    /// and projects the per-owner flash statistics. Shared by the
    /// closed-loop batch driver and the open-loop traffic engine
    /// (`openloop.rs`), which overrides the tenant fields afterwards.
    pub(crate) fn collect_common_outcome(
        &mut self,
        finished_at: SimTime,
        kernel_latencies: Vec<KernelLatency>,
        bytes_processed: u64,
    ) -> RunOutcome {
        // Device-active energy of the flash backbone and DDR3L, charged
        // proportionally to their measured activity over the run.
        let flash_activity = self.flashvisor.backbone().activity_factor(finished_at);
        self.energy.record_scaled(
            Component::FlashOrSsd,
            ActivityCategory::StorageAccess,
            SimTime::ZERO,
            finished_at,
            flash_activity,
        );
        let ddr_activity = self.memory.ddr3l.utilization(finished_at);
        self.energy.record_scaled(
            Component::Ddr3l,
            ActivityCategory::StorageAccess,
            SimTime::ZERO,
            finished_at,
            ddr_activity,
        );

        // Flashvisor and Storengine busy time is part of the accelerator's
        // storage-access energy (their work exists to serve storage).
        let fv_busy = self.flashvisor.cpu_busy_time(finished_at);
        let se_busy = self.storengine.cpu_busy_time(finished_at);
        self.energy.record(
            Component::Lwp,
            ActivityCategory::StorageAccess,
            SimTime::ZERO,
            SimTime::ZERO + fv_busy,
        );
        self.energy.record(
            Component::Lwp,
            ActivityCategory::StorageAccess,
            SimTime::ZERO,
            SimTime::ZERO + se_busy,
        );

        // Fold background power into the paper's three categories: there is
        // no host in the loop, so PCIe idles count as data movement, the
        // LWPs/DDR3L/fabric as computation, and the flash backbone as
        // storage access.
        let power = &self.config.power;
        let accel_idle_w =
            self.config.platform.lwp_count as f64 * power.lwp_idle_w + power.ddr3l_idle_w + 0.05;
        let breakdown = self.energy.breakdown(finished_at).with_idle_redistributed(
            0.02,
            accel_idle_w,
            power.flash_idle_w,
        );
        let bucket = timeline_bucket(finished_at);
        let power_timeline = self.energy.power_timeline(finished_at, bucket);
        let fu_timeline = build_fu_timeline(&self.compute_intervals, finished_at, bucket);

        // Per-owner flash traffic and read tails, in deterministic owner
        // order (kernels ascending, then GC, journal, unattributed).
        let backbone = self.flashvisor.backbone();
        let flash_owner_stats = backbone
            .owner_stats()
            .iter()
            .map(|(&owner, s)| {
                let qs = backbone
                    .read_latency_quantiles(owner, &[0.5, 0.99, 1.0])
                    .map(|v| v.iter().map(|d| d.as_secs_f64()).collect::<Vec<_>>())
                    .unwrap_or_else(|| vec![0.0; 3]);
                OwnerFlashStats {
                    owner: owner.label(),
                    reads: s.reads,
                    programs: s.programs,
                    erases: s.erases,
                    bytes: s.bytes,
                    read_p50_s: qs[0],
                    read_p99_s: qs[1],
                    read_max_s: qs[2],
                    peak_channel_tags: s.peak_tags,
                }
            })
            .collect();
        let foreground_read_p99_s = backbone
            .foreground_read_latency_quantile(0.99)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0);

        // Endurance: erase-cycle spread over the data blocks, and GC's
        // migration efficiency.
        let wear = self.flashvisor.data_block_wear();
        let se_stats = self.storengine.stats();
        let reclaimed_bytes = se_stats.groups_reclaimed * self.config.page_group_bytes;
        let gc_migrated_bytes_per_reclaimed_byte = if reclaimed_bytes == 0 {
            0.0
        } else {
            (se_stats.pages_migrated * self.config.flash_geometry.page_bytes as u64) as f64
                / reclaimed_bytes as f64
        };
        let fv_stats = self.flashvisor.stats();

        RunOutcome {
            scheduler: self.config.scheduler,
            finished_at,
            kernel_latencies,
            bytes_processed,
            energy: EnergySummary { breakdown },
            worker_utilization: self
                .workers
                .iter()
                .map(|w| w.utilization(finished_at))
                .collect(),
            flashvisor_utilization: self.flashvisor.cpu_utilization(finished_at),
            storengine_utilization: self.storengine.cpu_utilization(finished_at),
            fu_timeline,
            power_timeline,
            flash_group_reads: self.flashvisor.stats().group_reads,
            flash_group_writes: self.flashvisor.stats().group_writes,
            gc_passes: self.gc_passes,
            journal_dumps: self.storengine.stats().journal_dumps,
            flash_owner_stats,
            foreground_read_p99_s,
            wear_min_erases: wear.min_erases,
            wear_max_erases: wear.max_erases,
            wear_stddev_erases: wear.stddev_erases,
            gc_migrated_bytes_per_reclaimed_byte,
            hot_group_writes: fv_stats.hot_group_writes,
            cold_group_writes: fv_stats.cold_group_writes,
            hot_steer_rate: fv_stats.hot_steer_rate(),
            sharded_read_fallbacks: fv_stats.sharded_read_fallbacks,
            sharded_write_fallbacks: fv_stats.sharded_write_fallbacks,
            sharded_windows: self.flashvisor.backbone().sharded_windows(),
            tenants_arrived: 0,
            tenants_admitted: 0,
            tenants_queued: 0,
            tenants_shed: 0,
            tenant_sojourn_p50_s: 0.0,
            tenant_sojourn_p99_s: 0.0,
            tenant_sojourn_p999_s: 0.0,
            tenant_fairness_index: 0.0,
            governor_updates: 0,
        }
    }
}

/// Chooses a timeline bucket that yields a few hundred samples per run.
fn timeline_bucket(finished_at: SimTime) -> SimDuration {
    let target_samples = 400u64;
    let ns = (finished_at.as_ns() / target_samples).max(1_000);
    SimDuration::from_ns(ns)
}

/// Rebuilds the "busy functional units over time" series from the recorded
/// compute intervals.
fn build_fu_timeline(
    intervals: &[ComputeInterval],
    finished_at: SimTime,
    bucket: SimDuration,
) -> TimeSeries {
    let mut series = TimeSeries::new();
    if bucket.is_zero() || finished_at == SimTime::ZERO {
        return series;
    }
    let mut cursor = SimTime::ZERO;
    while cursor <= finished_at {
        let bucket_end = cursor + bucket;
        let mut fus = 0.0;
        for iv in intervals {
            let s = iv.start.max(cursor);
            let e = iv.end.min(bucket_end);
            if e > s {
                fus += iv.busy_fus * e.saturating_since(s).as_secs_f64() / bucket.as_secs_f64();
            }
        }
        series.record(cursor, fus);
        cursor = bucket_end;
    }
    series
}

/// Assigns each screen its slice of the kernel's input and output regions.
/// Slices are laid out in (microblock, screen) order, which mirrors how the
/// input vectors are partitioned across screens in the paper's FDTD example
/// (Figure 6b).
fn compute_screen_slices(apps: &[Application]) -> HashMap<ScreenRef, ScreenSlice> {
    let mut map = HashMap::new();
    for (ai, app) in apps.iter().enumerate() {
        for (ki, kernel) in app.kernels.iter().enumerate() {
            let mut in_cursor = 0u64;
            let mut out_cursor = kernel.data_section.input_bytes;
            for (mi, mblock) in kernel.microblocks.iter().enumerate() {
                for (si, screen) in mblock.screens.iter().enumerate() {
                    let sref = ScreenRef {
                        app: ai,
                        kernel: ki,
                        microblock: mi,
                        screen: si,
                    };
                    // Clamp so rounding in the workload builders can never
                    // walk outside the data section.
                    let input_len = screen
                        .input_bytes
                        .min(kernel.data_section.input_bytes.saturating_sub(in_cursor));
                    let output_len = screen.output_bytes.min(
                        (kernel.data_section.input_bytes + kernel.data_section.output_bytes)
                            .saturating_sub(out_cursor),
                    );
                    map.insert(
                        sref,
                        ScreenSlice {
                            input_start: in_cursor,
                            input_len,
                            output_start: out_cursor,
                            output_len,
                        },
                    );
                    in_cursor += input_len;
                    out_cursor += output_len;
                }
            }
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_kernel::instance::{instantiate_many, InstancePlan};
    use fa_workloads::synthetic::{synthetic_app, SyntheticSpec};

    fn small_workload(instances: usize, serial_fraction: f64) -> Vec<Application> {
        let template = synthetic_app(
            "unit",
            &SyntheticSpec {
                instructions: 400_000,
                serial_fraction,
                input_bytes: 256 * 1024,
                output_bytes: 32 * 1024,
                ldst_ratio: 0.4,
                mul_ratio: 0.1,
                parallel_screens: 4,
            },
        );
        instantiate_many(
            &[template],
            &InstancePlan {
                instances_per_app: instances,
                ..Default::default()
            },
        )
    }

    fn run(policy: SchedulerPolicy, apps: &[Application]) -> RunOutcome {
        let mut system = FlashAbacusSystem::new(FlashAbacusConfig::tiny_for_tests(policy));
        system.run(apps).expect("run completes")
    }

    #[test]
    fn all_policies_complete_and_report_consistent_metrics() {
        let apps = small_workload(3, 0.2);
        for policy in SchedulerPolicy::all() {
            let out = run(policy, &apps);
            assert_eq!(out.kernel_latencies.len(), 3, "{policy:?}");
            assert!(out.finished_at > SimTime::ZERO);
            assert!(out.throughput_mb_s() > 0.0);
            assert!(out.bytes_processed > 0);
            assert_eq!(out.worker_utilization.len(), 6);
            assert!(out.energy.total_j() > 0.0);
            assert!(out.flash_group_reads > 0, "{policy:?} read no data");
            // Every kernel completes no earlier than it was offloaded.
            for k in &out.kernel_latencies {
                assert!(k.completed_at >= k.offloaded_at);
            }
        }
    }

    #[test]
    fn dynamic_inter_kernel_beats_static_on_imbalanced_batches() {
        // Static pins every instance of the same application index to the
        // same worker when app indices collide modulo the worker count;
        // with 7 instances one worker gets two kernels while others idle.
        let apps = small_workload(7, 0.0);
        let st = run(SchedulerPolicy::InterSt, &apps);
        let dy = run(SchedulerPolicy::InterDy, &apps);
        assert!(
            dy.finished_at <= st.finished_at,
            "InterDy {:?} should not be slower than InterSt {:?}",
            dy.finished_at,
            st.finished_at
        );
    }

    #[test]
    fn out_of_order_tolerates_serial_microblocks_better_than_in_order() {
        // A workload whose kernels are half serial: in-order intra-kernel
        // scheduling leaves workers idle during every serial microblock,
        // while out-of-order borrows screens from other instances.
        let apps = small_workload(6, 0.5);
        let io = run(SchedulerPolicy::IntraIo, &apps);
        let o3 = run(SchedulerPolicy::IntraO3, &apps);
        assert!(
            o3.finished_at < io.finished_at,
            "IntraO3 {:?} should beat IntraIo {:?}",
            o3.finished_at,
            io.finished_at
        );
        assert!(o3.mean_worker_utilization() >= io.mean_worker_utilization());
    }

    #[test]
    fn intra_scheduling_shortens_single_kernel_latency_versus_inter() {
        // One compute-heavy kernel: inter-kernel policies execute it on a
        // single LWP, intra-kernel policies spread its screens over all six
        // workers.
        let template = synthetic_app(
            "wide",
            &SyntheticSpec {
                instructions: 6_000_000,
                serial_fraction: 0.0,
                input_bytes: 128 * 1024,
                output_bytes: 16 * 1024,
                ldst_ratio: 0.3,
                mul_ratio: 0.1,
                parallel_screens: 6,
            },
        );
        let apps = instantiate_many(
            &[template],
            &InstancePlan {
                instances_per_app: 1,
                ..Default::default()
            },
        );
        let inter = run(SchedulerPolicy::InterDy, &apps);
        let intra = run(SchedulerPolicy::IntraO3, &apps);
        let (_, inter_avg, _) = inter.latency_stats();
        let (_, intra_avg, _) = intra.latency_stats();
        assert!(
            intra_avg < inter_avg,
            "intra {intra_avg} should beat inter {inter_avg}"
        );
    }

    /// A config whose flash is small enough that the test workload trips
    /// the GC watermark mid-run, with unbuffered writes so flushes (and
    /// therefore storage management) overlap remaining foreground screens.
    /// Journaling is quiesced so its background traffic does not muddy
    /// what this config isolates: GC-vs-foreground channel contention.
    /// (The journal's metadata row is reserved in the allocator now, so
    /// the old cursor-collision hazard is gone either way.)
    fn gc_pressure_config(policy: SchedulerPolicy) -> FlashAbacusConfig {
        let mut config = FlashAbacusConfig::tiny_for_tests(policy);
        config.flash_geometry.blocks_per_plane = 16; // 4 MiB, 512 groups
                                                     // The 12-kernel workload keeps ~40% of the groups allocated; a
                                                     // watermark above that keeps Storengine reclaiming for the whole
                                                     // run, which is exactly the sustained contention the QoS tests
                                                     // need.
        config.gc_low_watermark = 0.65;
        config.buffered_writes = false;
        config.journal_interval = SimDuration::from_ms(10_000);
        config
    }

    /// Twelve small kernels over six workers: the first wave's flushes trip
    /// the watermark while the second wave still stages inputs, so GC
    /// migration traffic and foreground reads genuinely share the channels.
    fn gc_pressure_workload() -> Vec<Application> {
        let template = synthetic_app(
            "pressure",
            &SyntheticSpec {
                instructions: 400_000,
                serial_fraction: 0.0,
                input_bytes: 128 * 1024,
                output_bytes: 16 * 1024,
                ldst_ratio: 0.4,
                mul_ratio: 0.1,
                parallel_screens: 4,
            },
        );
        instantiate_many(
            &[template],
            &InstancePlan {
                instances_per_app: 12,
                ..Default::default()
            },
        )
    }

    #[test]
    fn background_gc_contends_and_completes() {
        let apps = gc_pressure_workload();
        let sync_config = gc_pressure_config(SchedulerPolicy::InterDy);
        let mut bg_config = sync_config;
        bg_config.qos.background_gc = true;
        let sync_out = FlashAbacusSystem::new(sync_config)
            .run(&apps)
            .expect("synchronous-GC run completes");
        let bg_out = FlashAbacusSystem::new(bg_config)
            .run(&apps)
            .expect("background-GC run completes");
        // The watermark tripped in both modes and GC traffic is owner-tagged.
        assert!(sync_out.gc_passes > 0, "watermark never tripped");
        assert!(bg_out.gc_passes > 0);
        let gc_row = bg_out
            .flash_owner_stats
            .iter()
            .find(|o| o.owner == "gc")
            .expect("gc owner appears in the stats");
        assert!(gc_row.programs > 0 && gc_row.erases > 0);
        // Foreground traffic is attributed to kernels, and both modes moved
        // the same foreground data.
        let fg_reads = |out: &RunOutcome| {
            out.flash_owner_stats
                .iter()
                .filter(|o| o.owner.starts_with("kernel"))
                .map(|o| o.reads)
                .sum::<u64>()
        };
        assert_eq!(fg_reads(&sync_out), fg_reads(&bg_out));
        assert!(bg_out.foreground_read_p99_s > 0.0);
    }

    #[test]
    fn gc_budget_improves_foreground_read_tail_under_contention() {
        // Background GC on in both runs; the only difference is the GC
        // stream's per-channel tag budget. Bounding GC's outstanding
        // commands must not hurt — and under contention should help — the
        // kernels' p99 read latency. Deterministic simulation makes this an
        // exact, repeatable comparison, which fig12's ablation and
        // BENCH_PR4.json record at larger scale.
        let apps = gc_pressure_workload();
        let mut unbudgeted = gc_pressure_config(SchedulerPolicy::InterDy);
        unbudgeted.qos.background_gc = true;
        let mut budgeted = unbudgeted;
        budgeted.qos.gc_budget = Some(1);
        let free_run = FlashAbacusSystem::new(unbudgeted)
            .run(&apps)
            .expect("unbudgeted run completes");
        let capped_run = FlashAbacusSystem::new(budgeted)
            .run(&apps)
            .expect("budgeted run completes");
        assert!(free_run.gc_passes > 0);
        assert!(
            capped_run.foreground_read_p99_s < free_run.foreground_read_p99_s,
            "budgeted p99 {} should beat unbudgeted p99 {}",
            capped_run.foreground_read_p99_s,
            free_run.foreground_read_p99_s
        );
        // The budget was actually enforced at the tag queues.
        let gc_peak = |out: &RunOutcome| {
            out.flash_owner_stats
                .iter()
                .find(|o| o.owner == "gc")
                .map(|o| o.peak_channel_tags)
                .unwrap_or(0)
        };
        assert!(gc_peak(&capped_run) <= 1);
        assert!(gc_peak(&free_run) >= gc_peak(&capped_run));
    }

    #[test]
    fn default_config_is_deterministic_with_owner_tagging() {
        // Owner tagging and the QoS stats collection are pure accounting
        // under the default config (budgets unlimited, synchronous GC):
        // two identical runs must agree bit for bit, including the new
        // latency quantiles. Equivalence to the recorded pre-QoS physics
        // is pinned separately by tests/results_golden.rs.
        let apps = small_workload(3, 0.2);
        let a = run(SchedulerPolicy::IntraO3, &apps);
        let b = run(SchedulerPolicy::IntraO3, &apps);
        assert_eq!(a.finished_at, b.finished_at);
        assert_eq!(
            a.foreground_read_p99_s.to_bits(),
            b.foreground_read_p99_s.to_bits()
        );
    }

    #[test]
    fn injected_faults_are_absorbed_and_reproducible() {
        // Acceptance: with a seeded fault plan, the same seed reproduces
        // the identical fault trace and end state twice. The plan mixes
        // light probabilistic faults with a scripted pair of program
        // failures on one block, so exactly that block is condemned
        // (retire_after=2) and its row deterministically retires while the
        // run still completes. Aggressive plans that retire a large slice
        // of this deliberately tight config legitimately end in device
        // death (OutOfFlashSpace), which the endurance bench exercises.
        let apps = gc_pressure_workload();
        let plan = FaultPlan::parse(
            "seed=7,program=0.0002,erase=0.0001,retire_after=2,\
             script=program@c0.d0.b3.n1,script=program@c0.d0.b3.n2",
        )
        .unwrap();
        let run_faulty = || {
            let mut system =
                FlashAbacusSystem::without_env_faults(gc_pressure_config(SchedulerPolicy::InterDy));
            system.install_fault_plan(Arc::new(plan.clone()));
            let out = system.run(&apps).expect("faulty run completes");
            let stats = system.flashvisor().backbone().fault_stats();
            let retired = system.flashvisor().retired_rows().to_vec();
            let mapped: Vec<(u64, u64)> = system.flashvisor().mapped_groups().collect();
            (out.finished_at, stats, retired, mapped)
        };
        let (t1, s1, r1, m1) = run_faulty();
        let (t2, s2, r2, m2) = run_faulty();
        assert!(s1.injected_program_failures >= 2, "scripted faults missed");
        assert!(r1.contains(&3), "scripted block row not retired: {r1:?}");
        assert_eq!(t1, t2);
        assert_eq!(s1, s2);
        assert_eq!(r1, r2);
        assert_eq!(m1, m2);
    }

    #[test]
    fn power_loss_recovery_preserves_the_logical_content_and_continues() {
        let apps = small_workload(3, 0.2);
        let config = FlashAbacusConfig::tiny_for_tests(SchedulerPolicy::IntraO3);
        let mut reference = FlashAbacusSystem::without_env_faults(config);
        let ref_out = reference.run(&apps).expect("reference run completes");
        // Crash roughly mid-run: the supercap-backed final dump persists
        // every commit, recovery replays the journal, and the run finishes
        // with the same logical groups mapped as the fault-free reference.
        let crash_ns = ref_out.finished_at.as_ns() / 2;
        let plan = FaultPlan::parse(&format!("power_loss_ns={crash_ns}")).unwrap();
        let mut crashing = FlashAbacusSystem::without_env_faults(config);
        crashing.install_fault_plan(Arc::new(plan));
        crashing.run(&apps).expect("crashing run completes");
        assert_eq!(crashing.recoveries(), 1);
        assert!(crashing.power_loss_clock().tripped());
        let logical = |s: &FlashAbacusSystem| {
            let mut v: Vec<u64> = s.flashvisor().mapped_groups().map(|(lg, _)| lg).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(logical(&reference), logical(&crashing));
    }

    #[test]
    fn empty_workload_is_rejected() {
        let mut system =
            FlashAbacusSystem::new(FlashAbacusConfig::tiny_for_tests(SchedulerPolicy::IntraO3));
        assert!(matches!(system.run(&[]), Err(FaError::InvalidWorkload(_))));
    }

    #[test]
    fn energy_breakdown_contains_compute_and_storage() {
        let apps = small_workload(2, 0.1);
        let out = run(SchedulerPolicy::IntraO3, &apps);
        assert!(out.energy.breakdown.computation_j > 0.0);
        assert!(out.energy.breakdown.storage_access_j > 0.0);
        // FlashAbacus has no host in the loop during execution, so data
        // movement is only the one-time PCIe offload — it must be a small
        // share of the total.
        let dm_fraction = out.energy.breakdown.data_movement_j / out.energy.total_j();
        assert!(dm_fraction < 0.25, "data movement fraction {dm_fraction}");
    }

    #[test]
    fn timelines_cover_the_run() {
        let apps = small_workload(2, 0.0);
        let out = run(SchedulerPolicy::IntraO3, &apps);
        assert!(!out.fu_timeline.is_empty());
        assert!(!out.power_timeline.is_empty());
        // Peak busy FU count cannot exceed 8 FUs × 6 workers.
        let peak = out
            .fu_timeline
            .points()
            .iter()
            .map(|p| p.1)
            .fold(0.0, f64::max);
        assert!(peak > 0.0 && peak <= 48.0, "peak {peak}");
    }

    #[test]
    fn completion_cdf_is_monotone() {
        let apps = small_workload(5, 0.3);
        let out = run(SchedulerPolicy::InterDy, &apps);
        let cdf = out.completion_cdf();
        assert_eq!(cdf.len(), 5);
        for pair in cdf.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
            assert!(pair[0].1 < pair[1].1);
        }
    }

    #[test]
    fn parallel_instances_overlap_on_workers() {
        // Six compute-heavy instances on six workers should finish far
        // sooner than six times a single instance's span under any parallel
        // policy.
        fn compute_heavy(instances: usize) -> Vec<Application> {
            let template = synthetic_app(
                "heavy",
                &SyntheticSpec {
                    instructions: 4_000_000,
                    serial_fraction: 0.0,
                    input_bytes: 128 * 1024,
                    output_bytes: 16 * 1024,
                    ldst_ratio: 0.35,
                    mul_ratio: 0.1,
                    parallel_screens: 1,
                },
            );
            instantiate_many(
                &[template],
                &InstancePlan {
                    instances_per_app: instances,
                    ..Default::default()
                },
            )
        }
        let one = run(SchedulerPolicy::InterDy, &compute_heavy(1));
        let six = run(SchedulerPolicy::InterDy, &compute_heavy(6));
        let one_exec = one
            .finished_at
            .saturating_since(one.kernel_latencies[0].offloaded_at);
        let six_exec = six
            .finished_at
            .saturating_since(six.kernel_latencies[0].offloaded_at);
        assert!(
            six_exec.as_ns() < one_exec.as_ns() * 4,
            "six instances took {six_exec} vs one instance {one_exec}"
        );
    }

    #[test]
    fn screen_slices_partition_the_data_section() {
        let apps = small_workload(1, 0.4);
        let slices = compute_screen_slices(&apps);
        let kernel = &apps[0].kernels[0];
        let total_in: u64 = slices.values().map(|s| s.input_len).sum();
        let total_out: u64 = slices.values().map(|s| s.output_len).sum();
        assert!(total_in <= kernel.data_section.input_bytes);
        assert!(total_in >= kernel.data_section.input_bytes - 64);
        assert!(total_out <= kernel.data_section.output_bytes);
        // Slices are disjoint within the input region.
        let mut ranges: Vec<(u64, u64)> = slices
            .values()
            .filter(|s| s.input_len > 0)
            .map(|s| (s.input_start, s.input_start + s.input_len))
            .collect();
        ranges.sort_unstable();
        for pair in ranges.windows(2) {
            assert!(pair[0].1 <= pair[1].0);
        }
    }
}
