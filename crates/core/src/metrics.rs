//! Result types produced by full-system runs.
//!
//! Every figure of the evaluation is a projection of these records:
//! throughput (Figure 10, 16a), per-kernel latency statistics and CDFs
//! (Figures 11 and 12), energy breakdowns (Figures 3e, 13, 16b), LWP
//! utilization (Figure 14), and the function-unit / power timelines
//! (Figure 15).

use crate::scheduler::SchedulerPolicy;
use fa_energy::EnergyBreakdown;
use fa_sim::stats::{Histogram, TimeSeries};
use fa_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Latency record for one kernel of the offloaded batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelLatency {
    /// Name of the application instance (benchmark name).
    pub app_name: String,
    /// Application index in the batch.
    pub app_index: usize,
    /// Kernel index within the application.
    pub kernel_index: usize,
    /// When the kernel became eligible to run (end of its offload).
    pub offloaded_at: SimTime,
    /// When the kernel's last screen finished.
    pub completed_at: SimTime,
}

impl KernelLatency {
    /// The latency the paper reports: offload-to-completion.
    pub fn latency(&self) -> SimDuration {
        self.completed_at.saturating_since(self.offloaded_at)
    }
}

/// Per-owner flash data-path statistics of a run: who issued how much
/// traffic, and what read tail latency each owner saw. One row per owner
/// that touched the backbone, ordered kernels first, then the GC and
/// journal streams (the QoS figures key on this).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OwnerFlashStats {
    /// Owner label (`kernel<N>`, `gc`, `journal`, `unattributed`).
    pub owner: String,
    /// Pages read.
    pub reads: u64,
    /// Pages programmed.
    pub programs: u64,
    /// Blocks erased.
    pub erases: u64,
    /// Payload bytes moved over the SRIO front-end.
    pub bytes: u64,
    /// Median end-to-end page-read latency, seconds.
    pub read_p50_s: f64,
    /// 99th-percentile end-to-end page-read latency, seconds.
    pub read_p99_s: f64,
    /// Worst end-to-end page-read latency, seconds.
    pub read_max_s: f64,
    /// Peak simultaneous tag-queue occupancy this owner reached on any one
    /// channel.
    pub peak_channel_tags: usize,
}

/// Energy totals of a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergySummary {
    /// The three-way breakdown plus idle floor.
    pub breakdown: EnergyBreakdown,
}

impl EnergySummary {
    /// Total joules.
    pub fn total_j(&self) -> f64 {
        self.breakdown.total_j()
    }
}

/// Outcome of one full-system run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Which scheduler produced this outcome.
    pub scheduler: SchedulerPolicy,
    /// When the last kernel (and, for unbuffered writes, the last flash
    /// write) completed.
    pub finished_at: SimTime,
    /// Per-kernel completion records, in offload order.
    pub kernel_latencies: Vec<KernelLatency>,
    /// Total bytes of input read plus output produced across the batch.
    pub bytes_processed: u64,
    /// Energy summary over the run.
    pub energy: EnergySummary,
    /// Per-worker-LWP busy fraction over the run.
    pub worker_utilization: Vec<f64>,
    /// Busy fraction of the Flashvisor LWP.
    pub flashvisor_utilization: f64,
    /// Busy fraction of the Storengine LWP.
    pub storengine_utilization: f64,
    /// Total busy functional units across all workers, sampled over time
    /// (Figure 15a).
    pub fu_timeline: TimeSeries,
    /// Instantaneous power over time (Figure 15b).
    pub power_timeline: TimeSeries,
    /// Page-group reads issued by Flashvisor.
    pub flash_group_reads: u64,
    /// Page-group writes issued by Flashvisor.
    pub flash_group_writes: u64,
    /// Garbage-collection passes run by Storengine.
    pub gc_passes: u64,
    /// Metadata journal dumps run by Storengine.
    pub journal_dumps: u64,
    /// Per-owner flash traffic and read tail latency (kernels, GC,
    /// journal), for the QoS figures.
    pub flash_owner_stats: Vec<OwnerFlashStats>,
    /// 99th-percentile foreground (kernel-owned) page-read latency in
    /// seconds — the tail the per-owner budgets exist to protect. Zero
    /// when the run read nothing.
    pub foreground_read_p99_s: f64,
    /// Fewest erase cycles any data block absorbed (the journal's reserved
    /// metadata row is excluded from all three wear metrics).
    pub wear_min_erases: u64,
    /// Most erase cycles any data block absorbed. `max − min` is the wear
    /// spread the `LeastWorn` placement policy exists to narrow.
    pub wear_max_erases: u64,
    /// Population standard deviation of per-data-block erase cycles.
    pub wear_stddev_erases: f64,
    /// Bytes GC migrated per byte it returned to the allocator — the
    /// write-amplification-style efficiency the victim policies compete
    /// on (lower is better; 0 when GC reclaimed nothing).
    pub gc_migrated_bytes_per_reclaimed_byte: f64,
    /// Group writes classified hot by the overwrite-count threshold.
    pub hot_group_writes: u64,
    /// Group writes classified cold (all of them when hot/cold separation
    /// is disabled).
    pub cold_group_writes: u64,
    /// Fraction of hot-classified writes served from the dedicated hot
    /// active blocks; 0 when nothing was classified hot.
    pub hot_steer_rate: f64,
    /// Read sections that fell off the sharded fast path onto the serial
    /// loop (fault plans affecting reads, unmapped groups, readability
    /// precheck misses). A fault plan silently forcing the serial path
    /// shows up here instead of only as a throughput anomaly.
    pub sharded_read_fallbacks: u64,
    /// Write sections and GC erase rows that fell off the sharded fast
    /// path onto the serial loop (fault plans affecting writes, placement
    /// forecast exhaustion, programmability/erasability precheck misses).
    pub sharded_write_fallbacks: u64,
    /// Conservative windows (barrier syncs) the sharded engine completed
    /// across every read sweep, program sweep, and erase row of the run.
    /// Invariant across `FA_SHARDS` values — the window count is a
    /// function of event times and lookahead only — so it is safe in
    /// byte-compared reports; a churn round under a finite lookahead
    /// completes more than one window per batch.
    pub sharded_windows: u64,
    /// Open-loop campaigns only: tenants the arrival process injected.
    /// Zero for closed-loop batch runs.
    pub tenants_arrived: u64,
    /// Tenants admitted straight into a free slot at arrival.
    pub tenants_admitted: u64,
    /// Tenants parked in the admission queue at arrival (admitted later,
    /// in arrival order, as slots freed).
    pub tenants_queued: u64,
    /// Tenants shed because both the slots and the queue were full.
    pub tenants_shed: u64,
    /// Median tenant sojourn (arrival to completion, queueing included),
    /// seconds; zero when no tenant completed.
    pub tenant_sojourn_p50_s: f64,
    /// 99th-percentile tenant sojourn, seconds.
    pub tenant_sojourn_p99_s: f64,
    /// 99.9th-percentile tenant sojourn, seconds.
    pub tenant_sojourn_p999_s: f64,
    /// Jain's fairness index over completed tenants' flash bytes moved
    /// (1.0 = perfectly even service, → 1/n under starvation); zero when
    /// no tenant completed.
    pub tenant_fairness_index: f64,
    /// Budget-recomputation ticks the online QoS governor executed.
    pub governor_updates: u64,
}

impl RunOutcome {
    /// Aggregate data-processing throughput in MB/s (the metric of
    /// Figures 10 and 16a): bytes processed divided by total execution time.
    pub fn throughput_mb_s(&self) -> f64 {
        let secs = self.finished_at.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.bytes_processed as f64 / 1.0e6 / secs
    }

    /// Mean worker-LWP utilization (Figure 14's metric).
    pub fn mean_worker_utilization(&self) -> f64 {
        if self.worker_utilization.is_empty() {
            return 0.0;
        }
        self.worker_utilization.iter().sum::<f64>() / self.worker_utilization.len() as f64
    }

    /// Kernel latency statistics: (min, average, max), in seconds
    /// (Figure 11's metric).
    pub fn latency_stats(&self) -> (f64, f64, f64) {
        if self.kernel_latencies.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        let mut sum = 0.0;
        for k in &self.kernel_latencies {
            let l = k.latency().as_secs_f64();
            min = min.min(l);
            max = max.max(l);
            sum += l;
        }
        (min, sum / self.kernel_latencies.len() as f64, max)
    }

    /// Empirical CDF of kernel completion times in seconds (Figure 12's
    /// metric): completion instants sorted ascending with their cumulative
    /// count.
    pub fn completion_cdf(&self) -> Vec<(f64, usize)> {
        let mut times: Vec<f64> = self
            .kernel_latencies
            .iter()
            .map(|k| k.completed_at.as_secs_f64())
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite completion times"));
        times
            .into_iter()
            .enumerate()
            .map(|(i, t)| (t, i + 1))
            .collect()
    }

    /// Kernel latencies as a histogram (for quantile queries).
    pub fn latency_histogram(&self) -> Histogram {
        let mut h = Histogram::new();
        for k in &self.kernel_latencies {
            h.record(k.latency().as_secs_f64());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_energy::EnergyBreakdown;

    fn outcome() -> RunOutcome {
        RunOutcome {
            scheduler: SchedulerPolicy::IntraO3,
            finished_at: SimTime::from_ms(100),
            kernel_latencies: vec![
                KernelLatency {
                    app_name: "A".into(),
                    app_index: 0,
                    kernel_index: 0,
                    offloaded_at: SimTime::from_ms(1),
                    completed_at: SimTime::from_ms(41),
                },
                KernelLatency {
                    app_name: "B".into(),
                    app_index: 1,
                    kernel_index: 0,
                    offloaded_at: SimTime::from_ms(2),
                    completed_at: SimTime::from_ms(100),
                },
            ],
            bytes_processed: 50 * 1_000_000,
            energy: EnergySummary {
                breakdown: EnergyBreakdown {
                    data_movement_j: 1.0,
                    computation_j: 2.0,
                    storage_access_j: 3.0,
                    idle_j: 0.5,
                },
            },
            worker_utilization: vec![0.5, 0.7, 0.9],
            flashvisor_utilization: 0.2,
            storengine_utilization: 0.1,
            fu_timeline: TimeSeries::new(),
            power_timeline: TimeSeries::new(),
            flash_group_reads: 10,
            flash_group_writes: 5,
            gc_passes: 0,
            journal_dumps: 1,
            flash_owner_stats: Vec::new(),
            foreground_read_p99_s: 0.0,
            wear_min_erases: 0,
            wear_max_erases: 0,
            wear_stddev_erases: 0.0,
            gc_migrated_bytes_per_reclaimed_byte: 0.0,
            hot_group_writes: 0,
            cold_group_writes: 0,
            hot_steer_rate: 0.0,
            sharded_read_fallbacks: 0,
            sharded_write_fallbacks: 0,
            sharded_windows: 0,
            tenants_arrived: 0,
            tenants_admitted: 0,
            tenants_queued: 0,
            tenants_shed: 0,
            tenant_sojourn_p50_s: 0.0,
            tenant_sojourn_p99_s: 0.0,
            tenant_sojourn_p999_s: 0.0,
            tenant_fairness_index: 0.0,
            governor_updates: 0,
        }
    }

    #[test]
    fn throughput_is_bytes_over_time() {
        let o = outcome();
        // 50 MB in 0.1 s = 500 MB/s.
        assert!((o.throughput_mb_s() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn latency_stats_and_cdf() {
        let o = outcome();
        let (min, avg, max) = o.latency_stats();
        assert!((min - 0.040).abs() < 1e-9);
        assert!((max - 0.098).abs() < 1e-9);
        assert!((avg - 0.069).abs() < 1e-9);
        let cdf = o.completion_cdf();
        assert_eq!(cdf.len(), 2);
        assert_eq!(cdf[0].1, 1);
        assert_eq!(cdf[1].1, 2);
        assert!(cdf[0].0 < cdf[1].0);
    }

    #[test]
    fn utilization_and_energy_aggregate() {
        let o = outcome();
        assert!((o.mean_worker_utilization() - 0.7).abs() < 1e-9);
        assert!((o.energy.total_j() - 6.5).abs() < 1e-12);
        let mut h = o.latency_histogram();
        assert_eq!(h.quantile(1.0), Some(0.098));
    }

    #[test]
    fn empty_outcome_is_safe() {
        let mut o = outcome();
        o.kernel_latencies.clear();
        o.worker_utilization.clear();
        assert_eq!(o.latency_stats(), (0.0, 0.0, 0.0));
        assert_eq!(o.mean_worker_utilization(), 0.0);
        assert!(o.completion_cdf().is_empty());
    }
}
