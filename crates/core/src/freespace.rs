//! Incremental free-space management for physical page groups.
//!
//! Flashvisor allocates every data-section write (and every GC migration)
//! a physical page group. This module owns that bookkeeping as a proper
//! subsystem: an O(1)-pop free structure, per-stripe occupancy counters,
//! and a pluggable [`PlacementPolicy`] deciding *which* free group a write
//! lands on. Keeping the metadata next to the allocator — instead of
//! deriving it by scanning the mapping table — is what keeps the hot write
//! path allocator-bound on the hardware model, not on the simulator.
//!
//! Because pages stripe across channels first (see
//! [`fa_flash::FlashGeometry::flat_to_addr`]), a page group's *stripe
//! class* is the `(channel, die)` pair its leading page lands on.
//! [`PlacementPolicy::FirstFree`] reproduces the log-structured cursor +
//! recycled-FIFO allocator byte for byte; it is the default and keeps all
//! recorded figure output identical. [`PlacementPolicy::ChannelStriped`]
//! round-robins allocations across the stripe classes, spreading
//! consecutive groups over the channel/die fan-out when groups are
//! narrower than the full die array.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Which free group the allocator hands to the next write.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Log-structured: recycled groups in FIFO order first, then the next
    /// never-used group. Reproduces the pre-subsystem allocator exactly.
    #[default]
    FirstFree,
    /// Round-robin across stripe classes (the `(channel, die)` of each
    /// group's leading page), FIFO within a class.
    ChannelStriped,
}

impl PlacementPolicy {
    /// Short label for reports and perf records.
    pub fn label(self) -> &'static str {
        match self {
            PlacementPolicy::FirstFree => "FirstFree",
            PlacementPolicy::ChannelStriped => "ChannelStriped",
        }
    }
}

/// Policy-specific free-group storage. Both variants pop and push in O(1)
/// (amortized; the striped pop probes at most one queue per stripe class).
#[derive(Debug, Clone)]
enum FreePool {
    /// Never-used groups live implicitly in `cursor..total`; recycled
    /// groups queue in FIFO order and are reused before the cursor moves.
    FirstFree {
        cursor: u64,
        recycled: VecDeque<u64>,
    },
    /// One FIFO queue of free groups per stripe class, with a rotating
    /// class cursor.
    Striped {
        queues: Vec<VecDeque<u64>>,
        next_class: usize,
    },
}

/// The free-space manager: free-group structure plus occupancy accounting.
#[derive(Debug, Clone)]
pub struct FreeSpaceManager {
    total_groups: u64,
    pages_per_group: u64,
    channels: u64,
    dies_per_channel: u64,
    policy: PlacementPolicy,
    pool: FreePool,
    /// Groups currently free, maintained incrementally — never derived by
    /// scanning.
    free_count: u64,
    /// Per-group free flag, kept in lockstep with the pool: makes
    /// `recycle` idempotent and row reclamation exact.
    free_flags: Vec<bool>,
    /// Allocated groups per stripe class.
    occupancy: Vec<u64>,
}

impl FreeSpaceManager {
    /// Creates a manager with every group free.
    pub fn new(
        total_groups: u64,
        pages_per_group: u64,
        channels: usize,
        dies_per_channel: usize,
        policy: PlacementPolicy,
    ) -> Self {
        let channels = channels.max(1) as u64;
        let dies_per_channel = dies_per_channel.max(1) as u64;
        let classes = (channels * dies_per_channel) as usize;
        let mut manager = FreeSpaceManager {
            total_groups,
            pages_per_group: pages_per_group.max(1),
            channels,
            dies_per_channel,
            policy,
            pool: FreePool::FirstFree {
                cursor: 0,
                recycled: VecDeque::new(),
            },
            free_count: total_groups,
            free_flags: vec![true; total_groups as usize],
            occupancy: vec![0; classes],
        };
        if policy == PlacementPolicy::ChannelStriped {
            // Materialize the per-class queues once, in ascending group
            // order, so striped allocation stays deterministic.
            let mut queues = vec![VecDeque::new(); classes];
            for g in 0..total_groups {
                queues[manager.stripe_class(g)].push_back(g);
            }
            manager.pool = FreePool::Striped {
                queues,
                next_class: 0,
            };
        }
        manager
    }

    /// Total page groups under management.
    pub fn total_groups(&self) -> u64 {
        self.total_groups
    }

    /// Groups currently free. O(1).
    pub fn free_count(&self) -> u64 {
        self.free_count
    }

    /// The placement policy in force.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Number of stripe classes (channels × dies per channel).
    pub fn class_count(&self) -> usize {
        self.occupancy.len()
    }

    /// Stripe class of group `g`: the `(channel, die)` its leading page
    /// occupies, flattened as `channel * dies_per_channel + die`.
    pub fn stripe_class(&self, g: u64) -> usize {
        let flat = g * self.pages_per_group;
        let channel = flat % self.channels;
        let die = (flat / self.channels) % self.dies_per_channel;
        (channel * self.dies_per_channel + die) as usize
    }

    /// Allocated groups per stripe class, indexed like
    /// [`FreeSpaceManager::stripe_class`].
    pub fn occupancy(&self) -> &[u64] {
        &self.occupancy
    }

    /// Pops the next free group under the placement policy, or `None` when
    /// the device is full.
    pub fn allocate(&mut self) -> Option<u64> {
        let g = match &mut self.pool {
            FreePool::FirstFree { cursor, recycled } => {
                if let Some(g) = recycled.pop_front() {
                    g
                } else if *cursor < self.total_groups {
                    let g = *cursor;
                    *cursor += 1;
                    g
                } else {
                    return None;
                }
            }
            FreePool::Striped { queues, next_class } => {
                let classes = queues.len();
                let mut picked = None;
                for probe in 0..classes {
                    let class = (*next_class + probe) % classes;
                    if let Some(g) = queues[class].pop_front() {
                        *next_class = (class + 1) % classes;
                        picked = Some(g);
                        break;
                    }
                }
                picked?
            }
        };
        self.free_count -= 1;
        self.free_flags[g as usize] = false;
        let class = self.stripe_class(g);
        self.occupancy[class] += 1;
        Some(g)
    }

    /// True when group `g` is currently in the free structure.
    pub fn is_free(&self, g: u64) -> bool {
        self.free_flags.get(g as usize).copied().unwrap_or_default()
    }

    /// Returns a reclaimed group to the free structure. Recycling a group
    /// that is already free is a no-op, so a double recycle cannot put the
    /// same group in the pool twice.
    pub fn recycle(&mut self, g: u64) {
        if self.free_flags[g as usize] {
            return;
        }
        self.free_flags[g as usize] = true;
        let class = self.stripe_class(g);
        match &mut self.pool {
            FreePool::FirstFree { recycled, .. } => recycled.push_back(g),
            FreePool::Striped { queues, .. } => queues[class].push_back(g),
        }
        self.free_count += 1;
        // Saturating: recycling a never-allocated group (test scaffolding
        // does this) must not wrap the per-class gauge.
        self.occupancy[class] = self.occupancy[class].saturating_sub(1);
    }

    /// Reclaims the whole group range `[low, high)` after its backing
    /// erase-block row was erased: every in-range member already in the
    /// pool is pulled out, every in-range group is freed, and the range
    /// re-enters the free structure as one *ascending* run. Consuming an
    /// ascending run refills the erased blocks from page 0 in NAND
    /// programming order, which is what makes reclaimed rows actually
    /// reusable. The caller guarantees nothing in the range is mapped and
    /// all of its blocks are erased. Returns how many groups were newly
    /// freed (garbage that was never individually recycled).
    pub fn reclaim_range(&mut self, low: u64, high: u64) -> u64 {
        let high = high.min(self.total_groups);
        if low >= high {
            return 0;
        }
        let in_range = |g: &u64| *g < low || *g >= high;
        match &mut self.pool {
            FreePool::FirstFree { recycled, .. } => recycled.retain(in_range),
            FreePool::Striped { queues, .. } => {
                for q in queues.iter_mut() {
                    q.retain(in_range);
                }
            }
        }
        let mut newly_freed = 0;
        for g in low..high {
            let was_free = std::mem::replace(&mut self.free_flags[g as usize], true);
            let class = self.stripe_class(g);
            if !was_free {
                newly_freed += 1;
                self.free_count += 1;
                self.occupancy[class] = self.occupancy[class].saturating_sub(1);
            }
            match &mut self.pool {
                // Groups at or past the cursor are still represented by the
                // cursor itself (and allocate in ascending order from it).
                FreePool::FirstFree { cursor, recycled } => {
                    if g < *cursor {
                        recycled.push_back(g);
                    }
                }
                FreePool::Striped { queues, .. } => queues[class].push_back(g),
            }
        }
        newly_freed
    }

    /// Every group currently in the free structure, in pop order per
    /// policy. O(free); property-test oracle only.
    pub fn debug_free_groups(&self) -> Vec<u64> {
        match &self.pool {
            FreePool::FirstFree { cursor, recycled } => recycled
                .iter()
                .copied()
                .chain(*cursor..self.total_groups)
                .collect(),
            FreePool::Striped { queues, .. } => {
                queues.iter().flat_map(|q| q.iter().copied()).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_free_reproduces_cursor_then_fifo_order() {
        let mut m = FreeSpaceManager::new(8, 2, 2, 1, PlacementPolicy::FirstFree);
        assert_eq!(m.free_count(), 8);
        assert_eq!(m.allocate(), Some(0));
        assert_eq!(m.allocate(), Some(1));
        m.recycle(0);
        m.recycle(1);
        // Recycled groups come back in FIFO order, before the cursor moves.
        assert_eq!(m.allocate(), Some(0));
        assert_eq!(m.allocate(), Some(1));
        assert_eq!(m.allocate(), Some(2));
        assert_eq!(m.free_count(), 5);
    }

    #[test]
    fn exhaustion_returns_none_until_recycle() {
        let mut m = FreeSpaceManager::new(2, 1, 1, 1, PlacementPolicy::FirstFree);
        assert_eq!(m.allocate(), Some(0));
        assert_eq!(m.allocate(), Some(1));
        assert_eq!(m.allocate(), None);
        m.recycle(1);
        assert_eq!(m.free_count(), 1);
        assert_eq!(m.allocate(), Some(1));
    }

    #[test]
    fn striped_rotates_across_classes() {
        // 8 groups of 1 page on 2 channels × 2 dies: group g's leading page
        // is flat page g, so classes cycle 0,2,1,3 (channel first, then
        // die) as g increases.
        let mut m = FreeSpaceManager::new(8, 1, 2, 2, PlacementPolicy::ChannelStriped);
        assert_eq!(m.class_count(), 4);
        let picks: Vec<u64> = (0..4).map(|_| m.allocate().unwrap()).collect();
        let classes: Vec<usize> = picks.iter().map(|&g| m.stripe_class(g)).collect();
        // Four consecutive allocations cover all four stripe classes.
        let mut sorted = classes.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        // Occupancy gauges saw one allocation per class.
        assert_eq!(m.occupancy(), &[1, 1, 1, 1]);
    }

    #[test]
    fn striped_skips_empty_classes_and_exhausts_cleanly() {
        let mut m = FreeSpaceManager::new(4, 1, 2, 1, PlacementPolicy::ChannelStriped);
        let mut got = Vec::new();
        while let Some(g) = m.allocate() {
            got.push(g);
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(m.free_count(), 0);
        m.recycle(3);
        assert_eq!(m.allocate(), Some(3));
        assert_eq!(m.allocate(), None);
    }

    #[test]
    fn double_recycle_is_idempotent() {
        let mut m = FreeSpaceManager::new(4, 1, 1, 1, PlacementPolicy::FirstFree);
        let g = m.allocate().unwrap();
        assert!(!m.is_free(g));
        m.recycle(g);
        m.recycle(g);
        assert!(m.is_free(g));
        assert_eq!(m.free_count(), 4);
        assert_eq!(m.debug_free_groups().len(), 4);
    }

    #[test]
    fn reclaim_range_reinserts_an_ascending_run() {
        for policy in [PlacementPolicy::FirstFree, PlacementPolicy::ChannelStriped] {
            let mut m = FreeSpaceManager::new(8, 1, 1, 1, policy);
            // Allocate six groups, recycle two of them out of order, and
            // leave two allocated-but-unmapped (garbage).
            let held: Vec<u64> = (0..6).map(|_| m.allocate().unwrap()).collect();
            m.recycle(held[3]);
            m.recycle(held[1]);
            // Reclaim the whole row [0, 6): the two garbage groups are
            // newly freed, the recycled ones are re-ordered, and the pool
            // pops the run ascending.
            let newly = m.reclaim_range(0, 6);
            assert_eq!(newly, 4, "{policy:?}");
            assert_eq!(m.free_count(), 8, "{policy:?}");
            // Drain everything: the reclaimed range must come back as one
            // ascending contiguous run (free groups that were already
            // queued ahead of it may pop first).
            let drained: Vec<u64> = (0..8).map(|_| m.allocate().unwrap()).collect();
            assert_eq!(m.allocate(), None, "{policy:?}");
            let run: Vec<u64> = drained.iter().copied().filter(|g| *g < 6).collect();
            assert_eq!(run, vec![0, 1, 2, 3, 4, 5], "{policy:?}");
        }
    }

    #[test]
    fn occupancy_and_free_set_stay_consistent() {
        for policy in [PlacementPolicy::FirstFree, PlacementPolicy::ChannelStriped] {
            let mut m = FreeSpaceManager::new(16, 2, 2, 2, policy);
            let mut held = Vec::new();
            for _ in 0..10 {
                held.push(m.allocate().unwrap());
            }
            for g in held.drain(..5) {
                m.recycle(g);
            }
            let free = m.debug_free_groups();
            assert_eq!(free.len() as u64, m.free_count(), "{policy:?}");
            let occupied: u64 = m.occupancy().iter().sum();
            assert_eq!(occupied + m.free_count(), 16, "{policy:?}");
            // No group is simultaneously free twice.
            let mut dedup = free.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), free.len(), "{policy:?}");
        }
    }
}
