//! Incremental free-space management for physical page groups.
//!
//! Flashvisor allocates every data-section write (and every GC migration)
//! a physical page group. This module owns that bookkeeping as a proper
//! subsystem: an O(1)-pop free structure, per-stripe occupancy counters,
//! and a pluggable [`PlacementPolicy`] deciding *which* free group a write
//! lands on. Keeping the metadata next to the allocator — instead of
//! deriving it by scanning the mapping table — is what keeps the hot write
//! path allocator-bound on the hardware model, not on the simulator.
//!
//! Because pages stripe across channels first (see
//! [`fa_flash::FlashGeometry::flat_to_addr`]), a page group's *stripe
//! class* is the `(channel, die)` pair its leading page lands on, and its
//! *block row* is the within-die erase-block index its leading page falls
//! in (block `r` of every channel and die — the unit GC erases).
//!
//! Three placement policies share the structure:
//!
//! * [`PlacementPolicy::FirstFree`] reproduces the log-structured cursor +
//!   recycled-FIFO allocator byte for byte; it is the default and keeps all
//!   recorded figure output identical.
//! * [`PlacementPolicy::ChannelStriped`] round-robins allocations across
//!   the stripe classes, spreading consecutive groups over the channel/die
//!   fan-out when groups are narrower than the full die array.
//! * [`PlacementPolicy::LeastWorn`] allocates from the block row with the
//!   fewest accumulated erase cycles. The wear ledger is maintained
//!   *incrementally*: every block erase the backbone reports bumps one row
//!   counter ([`FreeSpaceManager::note_block_erase`]) and re-keys that row
//!   in a `BTreeSet<(wear, row)>` index, so the min-wear pop is O(log rows)
//!   and never recounts erase cycles from the dies.
//!
//! The manager can also *reserve* a group range outright
//! ([`FreeSpaceManager::reserve_range`]): reserved groups never leave the
//! manager, which is how the journal's metadata row is fenced off from the
//! data allocator.
//!
//! # Examples
//!
//! ```
//! use flashabacus::freespace::{FreeSpaceManager, PlacementPolicy};
//!
//! // 8 groups of 2 pages on a 2-channel, 1-die, 4-pages-per-block device:
//! // each block row holds 4 groups (rows are groups 0..4 and 4..8).
//! let mut m = FreeSpaceManager::new(8, 2, 2, 1, 4, PlacementPolicy::LeastWorn);
//! assert_eq!(m.row_of_group(5), 1);
//!
//! // Row 0 absorbs two block erases; the min-wear policy now starts
//! // allocating from row 1.
//! m.note_block_erase(0);
//! m.note_block_erase(0);
//! assert_eq!(m.row_wear(), &[2, 0]);
//! assert_eq!(m.allocate(), Some(4));
//!
//! // Reserving a range fences it from allocation entirely.
//! m.reserve_range(6, 8);
//! assert_eq!(m.free_count(), 5);
//! assert!(m.is_reserved(7));
//! ```

use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, VecDeque};

/// Which free group the allocator hands to the next write.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Log-structured: recycled groups in FIFO order first, then the next
    /// never-used group. Reproduces the pre-subsystem allocator exactly.
    #[default]
    FirstFree,
    /// Round-robin across stripe classes (the `(channel, die)` of each
    /// group's leading page), FIFO within a class.
    ChannelStriped,
    /// Wear-aware: allocate from the block row with the fewest accumulated
    /// erase cycles (ascending group order within the row), so erase wear
    /// levels across the device instead of piling onto the rows the
    /// recycled-FIFO order happens to favour.
    LeastWorn,
}

impl PlacementPolicy {
    /// Short label for reports and perf records.
    pub fn label(self) -> &'static str {
        match self {
            PlacementPolicy::FirstFree => "FirstFree",
            PlacementPolicy::ChannelStriped => "ChannelStriped",
            PlacementPolicy::LeastWorn => "LeastWorn",
        }
    }

    /// Every placement policy, in report order.
    pub fn all() -> [PlacementPolicy; 3] {
        [
            PlacementPolicy::FirstFree,
            PlacementPolicy::ChannelStriped,
            PlacementPolicy::LeastWorn,
        ]
    }
}

/// Policy-specific free-group storage. All variants pop and push in O(1)
/// amortized (the striped pop probes at most one queue per stripe class;
/// the wear-aware pop is O(log rows) for the min-wear lookup).
#[derive(Debug, Clone)]
enum FreePool {
    /// Never-used groups live implicitly in `cursor..total`; recycled
    /// groups queue in FIFO order and are reused before the cursor moves.
    FirstFree {
        cursor: u64,
        recycled: VecDeque<u64>,
    },
    /// One FIFO queue of free groups per stripe class, with a rotating
    /// class cursor.
    Striped {
        queues: Vec<VecDeque<u64>>,
        next_class: usize,
    },
    /// One FIFO queue of free groups per block row, indexed by
    /// `(accumulated row wear, row)` so the pop always draws from the
    /// least-worn row holding free groups.
    LeastWorn {
        queues: Vec<VecDeque<u64>>,
        by_wear: BTreeSet<(u64, u64)>,
    },
}

/// The free-space manager: free-group structure plus occupancy accounting.
#[derive(Debug, Clone)]
pub struct FreeSpaceManager {
    total_groups: u64,
    pages_per_group: u64,
    channels: u64,
    dies_per_channel: u64,
    pages_per_block: u64,
    policy: PlacementPolicy,
    pool: FreePool,
    /// Groups currently free, maintained incrementally — never derived by
    /// scanning.
    free_count: u64,
    /// Per-group free flag, kept in lockstep with the pool: makes
    /// `recycle` idempotent and row reclamation exact.
    free_flags: Vec<bool>,
    /// Per-group reserved flag: reserved groups are permanently outside the
    /// free structure (the journal's metadata row).
    reserved_flags: Vec<bool>,
    /// Reserved groups, O(1).
    reserved_count: u64,
    /// Per-group retired flag: groups whose block row was promoted into the
    /// bad-block table. Retired groups are permanently outside the free
    /// structure, like reserved ones, but they represent lost capacity
    /// (media failures), not metadata carve-outs.
    retired_flags: Vec<bool>,
    /// Retired groups, O(1).
    retired_count: u64,
    /// Allocated groups per stripe class.
    occupancy: Vec<u64>,
    /// Block erases absorbed per block row, maintained incrementally by
    /// [`FreeSpaceManager::note_block_erase`] — the wear ledger the
    /// `LeastWorn` policy allocates against.
    row_wear: Vec<u64>,
}

impl FreeSpaceManager {
    /// Creates a manager with every group free.
    pub fn new(
        total_groups: u64,
        pages_per_group: u64,
        channels: usize,
        dies_per_channel: usize,
        pages_per_block: usize,
        policy: PlacementPolicy,
    ) -> Self {
        let channels = channels.max(1) as u64;
        let dies_per_channel = dies_per_channel.max(1) as u64;
        let classes = (channels * dies_per_channel) as usize;
        let mut manager = FreeSpaceManager {
            total_groups,
            pages_per_group: pages_per_group.max(1),
            channels,
            dies_per_channel,
            pages_per_block: (pages_per_block as u64).max(1),
            policy,
            pool: FreePool::FirstFree {
                cursor: 0,
                recycled: VecDeque::new(),
            },
            free_count: total_groups,
            free_flags: vec![true; total_groups as usize],
            reserved_flags: vec![false; total_groups as usize],
            reserved_count: 0,
            retired_flags: vec![false; total_groups as usize],
            retired_count: 0,
            occupancy: vec![0; classes],
            row_wear: Vec::new(),
        };
        let rows = if total_groups == 0 {
            0
        } else {
            manager.row_of_group(total_groups - 1) + 1
        };
        manager.row_wear = vec![0; rows as usize];
        match policy {
            PlacementPolicy::FirstFree => {}
            PlacementPolicy::ChannelStriped => {
                // Materialize the per-class queues once, in ascending group
                // order, so striped allocation stays deterministic.
                let mut queues = vec![VecDeque::new(); classes];
                for g in 0..total_groups {
                    queues[manager.stripe_class(g)].push_back(g);
                }
                manager.pool = FreePool::Striped {
                    queues,
                    next_class: 0,
                };
            }
            PlacementPolicy::LeastWorn => {
                let mut queues = vec![VecDeque::new(); rows as usize];
                for g in 0..total_groups {
                    queues[manager.row_of_group(g) as usize].push_back(g);
                }
                let by_wear = (0..rows).map(|r| (0u64, r)).collect();
                manager.pool = FreePool::LeastWorn { queues, by_wear };
            }
        }
        manager
    }

    /// Total page groups under management.
    pub fn total_groups(&self) -> u64 {
        self.total_groups
    }

    /// Groups currently free. O(1).
    pub fn free_count(&self) -> u64 {
        self.free_count
    }

    /// Groups permanently reserved (never allocatable). O(1).
    pub fn reserved_count(&self) -> u64 {
        self.reserved_count
    }

    /// Groups retired with their bad block row (lost capacity). O(1).
    pub fn retired_count(&self) -> u64 {
        self.retired_count
    }

    /// The placement policy in force.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Number of stripe classes (channels × dies per channel).
    pub fn class_count(&self) -> usize {
        self.occupancy.len()
    }

    /// Stripe class of group `g`: the `(channel, die)` its leading page
    /// occupies, flattened as `channel * dies_per_channel + die`.
    pub fn stripe_class(&self, g: u64) -> usize {
        let flat = g * self.pages_per_group;
        let channel = flat % self.channels;
        let die = (flat / self.channels) % self.dies_per_channel;
        (channel * self.dies_per_channel + die) as usize
    }

    /// Block row of group `g`: the within-die erase-block index its leading
    /// page falls in. Each row spans `pages_per_block × channels × dies`
    /// flat pages (block `r` of every channel and die).
    pub fn row_of_group(&self, g: u64) -> u64 {
        let row_pages = self.pages_per_block * self.channels * self.dies_per_channel;
        (g * self.pages_per_group) / row_pages
    }

    /// The group range `[low, high)` whose leading pages fall in block row
    /// `row` — the unit [`FreeSpaceManager::retire_row`] removes.
    pub fn row_group_range(&self, row: u64) -> (u64, u64) {
        let row_pages = self.pages_per_block * self.channels * self.dies_per_channel;
        let per_row = (row_pages / self.pages_per_group).max(1);
        let low = (row * per_row).min(self.total_groups);
        (low, (low + per_row).min(self.total_groups))
    }

    /// Accumulated block erases per row, indexed by
    /// [`FreeSpaceManager::row_of_group`] — the incrementally maintained
    /// wear ledger (also the oracle surface the property tests recount).
    pub fn row_wear(&self) -> &[u64] {
        &self.row_wear
    }

    /// Records one block erase in block row `row`, re-keying the row in the
    /// min-wear index when the `LeastWorn` pool holds free groups there.
    /// O(log rows).
    pub fn note_block_erase(&mut self, row: u64) {
        let Some(wear) = self.row_wear.get_mut(row as usize) else {
            return;
        };
        let old = *wear;
        *wear += 1;
        if let FreePool::LeastWorn { queues, by_wear } = &mut self.pool {
            if !queues[row as usize].is_empty() {
                by_wear.remove(&(old, row));
                by_wear.insert((old + 1, row));
            }
        }
    }

    /// Allocated groups per stripe class, indexed like
    /// [`FreeSpaceManager::stripe_class`].
    pub fn occupancy(&self) -> &[u64] {
        &self.occupancy
    }

    /// Pops the next free group under the placement policy, or `None` when
    /// the device is full.
    pub fn allocate(&mut self) -> Option<u64> {
        let g = match &mut self.pool {
            FreePool::FirstFree { cursor, recycled } => {
                if let Some(g) = recycled.pop_front() {
                    g
                } else {
                    // The cursor range may contain reserved groups (the
                    // journal row) or retired ones (bad block rows); they
                    // are skipped, never handed out.
                    loop {
                        if *cursor >= self.total_groups {
                            return None;
                        }
                        let g = *cursor;
                        *cursor += 1;
                        if !self.reserved_flags[g as usize] && !self.retired_flags[g as usize] {
                            break g;
                        }
                    }
                }
            }
            FreePool::Striped { queues, next_class } => {
                let classes = queues.len();
                let mut picked = None;
                for probe in 0..classes {
                    let class = (*next_class + probe) % classes;
                    if let Some(g) = queues[class].pop_front() {
                        *next_class = (class + 1) % classes;
                        picked = Some(g);
                        break;
                    }
                }
                picked?
            }
            FreePool::LeastWorn { queues, by_wear } => {
                let &(wear, row) = by_wear.first()?;
                let queue = &mut queues[row as usize];
                let g = queue.pop_front().expect("indexed row has a free group");
                if queue.is_empty() {
                    by_wear.remove(&(wear, row));
                }
                g
            }
        };
        self.free_count -= 1;
        self.free_flags[g as usize] = false;
        let class = self.stripe_class(g);
        self.occupancy[class] += 1;
        Some(g)
    }

    /// True when group `g` is currently in the free structure.
    pub fn is_free(&self, g: u64) -> bool {
        self.free_flags.get(g as usize).copied().unwrap_or_default()
    }

    /// True when group `g` is permanently reserved.
    pub fn is_reserved(&self, g: u64) -> bool {
        self.reserved_flags
            .get(g as usize)
            .copied()
            .unwrap_or_default()
    }

    /// True when group `g` was retired with its bad block row.
    pub fn is_retired(&self, g: u64) -> bool {
        self.retired_flags
            .get(g as usize)
            .copied()
            .unwrap_or_default()
    }

    /// Retires every non-reserved group of block row `row`: the groups
    /// leave the free structure, the occupancy gauges, and the `LeastWorn`
    /// wear index permanently — a bad block contaminates the whole row it
    /// stripes across, so the row stops being placement-eligible. The
    /// caller guarantees nothing in the row is still mapped (Flashvisor
    /// migrates mapped groups out first). The row's `row_wear` entry is
    /// kept: retirement does not rewrite wear history. Idempotent; returns
    /// how many groups were newly retired.
    pub fn retire_row(&mut self, row: u64) -> u64 {
        let (low, high) = self.row_group_range(row);
        if low >= high {
            return 0;
        }
        let mut newly = 0;
        for g in low..high {
            let gi = g as usize;
            if self.reserved_flags[gi] || self.retired_flags[gi] {
                continue;
            }
            self.retired_flags[gi] = true;
            self.retired_count += 1;
            newly += 1;
            if std::mem::replace(&mut self.free_flags[gi], false) {
                self.free_count -= 1;
            } else {
                // An allocated (garbage) group stops counting as occupied:
                // occupied + free + reserved + retired stays a partition.
                let class = self.stripe_class(g);
                self.occupancy[class] = self.occupancy[class].saturating_sub(1);
            }
        }
        if newly == 0 {
            return 0;
        }
        // Physically remove retired members from the materialized pools
        // (the FirstFree cursor skips them at pop time instead).
        let keep = |g: &u64| *g < low || *g >= high;
        match &mut self.pool {
            FreePool::FirstFree { recycled, .. } => recycled.retain(keep),
            FreePool::Striped { queues, .. } => {
                for q in queues.iter_mut() {
                    q.retain(keep);
                }
            }
            FreePool::LeastWorn { queues, by_wear } => {
                let queue = &mut queues[row as usize];
                queue.retain(keep);
                if queue.is_empty() {
                    by_wear.remove(&(self.row_wear[row as usize], row));
                }
            }
        }
        newly
    }

    /// Permanently removes the group range `[low, high)` from the free
    /// structure: reserved groups are never allocated, never recycled, and
    /// never re-enter the pool through a row reclaim. Flashvisor reserves
    /// the journal's metadata row this way, so the data cursor cannot
    /// collide with journal pages on a nearly-full device.
    pub fn reserve_range(&mut self, low: u64, high: u64) {
        let high = high.min(self.total_groups);
        for g in low..high {
            if self.reserved_flags[g as usize] {
                continue;
            }
            self.reserved_flags[g as usize] = true;
            self.reserved_count += 1;
            if std::mem::replace(&mut self.free_flags[g as usize], false) {
                self.free_count -= 1;
            }
        }
        // Physically remove reserved members from the materialized pools
        // (the FirstFree cursor skips them at pop time instead).
        if low >= high {
            return;
        }
        let keep = |g: &u64| *g < low || *g >= high;
        let (row_low, row_high) = (self.row_of_group(low), self.row_of_group(high - 1));
        match &mut self.pool {
            FreePool::FirstFree { recycled, .. } => recycled.retain(keep),
            FreePool::Striped { queues, .. } => {
                for q in queues.iter_mut() {
                    q.retain(keep);
                }
            }
            FreePool::LeastWorn { queues, by_wear } => {
                for row in row_low..=row_high {
                    let queue = &mut queues[row as usize];
                    queue.retain(keep);
                    if queue.is_empty() {
                        by_wear.remove(&(self.row_wear[row as usize], row));
                    }
                }
            }
        }
    }

    /// Returns a reclaimed group to the free structure. Recycling a group
    /// that is already free (or reserved) is a no-op, so a double recycle
    /// cannot put the same group in the pool twice.
    pub fn recycle(&mut self, g: u64) {
        if self.free_flags[g as usize]
            || self.reserved_flags[g as usize]
            || self.retired_flags[g as usize]
        {
            return;
        }
        self.free_flags[g as usize] = true;
        let class = self.stripe_class(g);
        let row = self.row_of_group(g);
        match &mut self.pool {
            FreePool::FirstFree { recycled, .. } => recycled.push_back(g),
            FreePool::Striped { queues, .. } => queues[class].push_back(g),
            FreePool::LeastWorn { queues, by_wear } => {
                queues[row as usize].push_back(g);
                by_wear.insert((self.row_wear[row as usize], row));
            }
        }
        self.free_count += 1;
        // Saturating: recycling a never-allocated group (test scaffolding
        // does this) must not wrap the per-class gauge.
        self.occupancy[class] = self.occupancy[class].saturating_sub(1);
    }

    /// Reclaims the whole group range `[low, high)` after its backing
    /// erase-block row was erased: every in-range member already in the
    /// pool is pulled out, every in-range group is freed, and the range
    /// re-enters the free structure as one *ascending* run. Consuming an
    /// ascending run refills the erased blocks from page 0 in NAND
    /// programming order, which is what makes reclaimed rows actually
    /// reusable. Reserved groups are untouched. The caller guarantees
    /// nothing in the range is mapped and all of its blocks are erased.
    /// Returns how many groups were newly freed (garbage that was never
    /// individually recycled).
    pub fn reclaim_range(&mut self, low: u64, high: u64) -> u64 {
        let high = high.min(self.total_groups);
        if low >= high {
            return 0;
        }
        let in_range = |g: &u64| *g < low || *g >= high;
        // Pool membership is in lockstep with `free_flags`, so when no
        // in-range group is free there is nothing to pull out and the
        // O(free-pool) retain sweeps can be skipped — the common case for a
        // GC pass reclaiming a fully-garbage row.
        if (low..high).any(|g| self.free_flags[g as usize]) {
            let (row_low, row_high) = (self.row_of_group(low), self.row_of_group(high - 1));
            match &mut self.pool {
                FreePool::FirstFree { recycled, .. } => recycled.retain(in_range),
                FreePool::Striped { queues, .. } => {
                    for q in queues.iter_mut() {
                        q.retain(in_range);
                    }
                }
                FreePool::LeastWorn { queues, .. } => {
                    // In-range groups only ever sit in their own rows'
                    // queues, so the sweep is exact over just those rows.
                    for row in row_low..=row_high {
                        queues[row as usize].retain(in_range);
                    }
                }
            }
        }
        let mut newly_freed = 0;
        let mut touched_rows: Vec<u64> = Vec::new();
        for g in low..high {
            if self.reserved_flags[g as usize] || self.retired_flags[g as usize] {
                continue;
            }
            let was_free = std::mem::replace(&mut self.free_flags[g as usize], true);
            let class = self.stripe_class(g);
            let row = self.row_of_group(g);
            if !was_free {
                newly_freed += 1;
                self.free_count += 1;
                self.occupancy[class] = self.occupancy[class].saturating_sub(1);
            }
            match &mut self.pool {
                // Groups at or past the cursor are still represented by the
                // cursor itself (and allocate in ascending order from it).
                FreePool::FirstFree { cursor, recycled } => {
                    if g < *cursor {
                        recycled.push_back(g);
                    }
                }
                FreePool::Striped { queues, .. } => queues[class].push_back(g),
                FreePool::LeastWorn { queues, .. } => {
                    queues[row as usize].push_back(g);
                    if touched_rows.last() != Some(&row) {
                        touched_rows.push(row);
                    }
                }
            }
        }
        // Re-key the wear index for every row whose queue changed: a retain
        // may have emptied a row whose groups all re-entered, or a row may
        // have gained its first free groups.
        if let FreePool::LeastWorn { queues, by_wear } = &mut self.pool {
            for row in touched_rows {
                let key = (self.row_wear[row as usize], row);
                if queues[row as usize].is_empty() {
                    by_wear.remove(&key);
                } else {
                    by_wear.insert(key);
                }
            }
        }
        newly_freed
    }

    /// Rebuilds the free structure from scratch after a crash: group `g`
    /// is free exactly when `is_free(g)` says so *and* it is neither
    /// reserved nor retired. The pool re-enters in ascending group order
    /// per class/row, the occupancy gauges are recomputed as the
    /// complement, and the wear ledger (`row_wear`), the reservations, and
    /// the bad-block retirements are kept — they survive power loss (wear
    /// is physical; the bad-block table is journaled metadata). The result
    /// is a pure function of the flags and the predicate, so replaying the
    /// same journal always reproduces the same allocator.
    pub fn rebuild(&mut self, is_free: impl Fn(u64) -> bool) {
        self.free_count = 0;
        for slot in self.occupancy.iter_mut() {
            *slot = 0;
        }
        for g in 0..self.total_groups {
            let gi = g as usize;
            let fenced = self.reserved_flags[gi] || self.retired_flags[gi];
            let free = !fenced && is_free(g);
            self.free_flags[gi] = free;
            if free {
                self.free_count += 1;
            } else if !fenced {
                let class = self.stripe_class(g);
                self.occupancy[class] += 1;
            }
        }
        let free_ascending = (0..self.total_groups).filter(|&g| self.free_flags[g as usize]);
        self.pool = match self.policy {
            PlacementPolicy::FirstFree => FreePool::FirstFree {
                // Everything re-enters through the recycled FIFO (ascending,
                // so pops stay in NAND programming order); the cursor is
                // exhausted.
                cursor: self.total_groups,
                recycled: free_ascending.collect(),
            },
            PlacementPolicy::ChannelStriped => {
                let mut queues = vec![VecDeque::new(); self.occupancy.len()];
                for g in free_ascending {
                    queues[self.stripe_class(g)].push_back(g);
                }
                FreePool::Striped {
                    queues,
                    next_class: 0,
                }
            }
            PlacementPolicy::LeastWorn => {
                let mut queues = vec![VecDeque::new(); self.row_wear.len()];
                for g in free_ascending {
                    queues[self.row_of_group(g) as usize].push_back(g);
                }
                let by_wear = queues
                    .iter()
                    .enumerate()
                    .filter(|(_, q)| !q.is_empty())
                    .map(|(row, _)| (self.row_wear[row], row as u64))
                    .collect();
                FreePool::LeastWorn { queues, by_wear }
            }
        };
    }

    /// A pure simulation of consecutive [`FreeSpaceManager::allocate`]
    /// calls: yields exactly the groups the real allocator would hand out,
    /// in order, without mutating anything. The sharded write path plans a
    /// whole section's placements through this before committing a single
    /// side effect, so a precheck miss can still fall back to the untouched
    /// serial loop. Only valid while the manager is not mutated (including
    /// by `note_block_erase`, which re-keys the `LeastWorn` pop order).
    pub fn peek_allocations(&self) -> AllocationPeek<'_> {
        let sim = match &self.pool {
            FreePool::FirstFree { cursor, .. } => PeekState::FirstFree {
                recycled_idx: 0,
                cursor: *cursor,
            },
            FreePool::Striped { queues, next_class } => PeekState::Striped {
                offsets: vec![0; queues.len()],
                next_class: *next_class,
            },
            FreePool::LeastWorn { queues, by_wear } => PeekState::LeastWorn {
                offsets: vec![0; queues.len()],
                by_wear: by_wear.clone(),
            },
        };
        AllocationPeek { mgr: self, sim }
    }

    /// Every group currently in the free structure, in pop order per
    /// policy. O(free); property-test oracle only.
    pub fn debug_free_groups(&self) -> Vec<u64> {
        match &self.pool {
            FreePool::FirstFree { cursor, recycled } => recycled
                .iter()
                .copied()
                .chain((*cursor..self.total_groups).filter(|g| {
                    !self.reserved_flags[*g as usize] && !self.retired_flags[*g as usize]
                }))
                .collect(),
            FreePool::Striped { queues, .. } => {
                queues.iter().flat_map(|q| q.iter().copied()).collect()
            }
            FreePool::LeastWorn { queues, .. } => {
                queues.iter().flat_map(|q| q.iter().copied()).collect()
            }
        }
    }
}

/// Cursor state for [`FreeSpaceManager::peek_allocations`], mirroring each
/// pool variant's pop front without consuming it.
enum PeekState {
    FirstFree {
        recycled_idx: usize,
        cursor: u64,
    },
    Striped {
        offsets: Vec<usize>,
        next_class: usize,
    },
    LeastWorn {
        offsets: Vec<usize>,
        by_wear: BTreeSet<(u64, u64)>,
    },
}

/// Iterator over the groups the allocator *would* pop, in exact order. See
/// [`FreeSpaceManager::peek_allocations`].
pub struct AllocationPeek<'a> {
    mgr: &'a FreeSpaceManager,
    sim: PeekState,
}

impl Iterator for AllocationPeek<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        match (&mut self.sim, &self.mgr.pool) {
            (
                PeekState::FirstFree {
                    recycled_idx,
                    cursor,
                },
                FreePool::FirstFree { recycled, .. },
            ) => {
                if let Some(&g) = recycled.get(*recycled_idx) {
                    *recycled_idx += 1;
                    return Some(g);
                }
                loop {
                    if *cursor >= self.mgr.total_groups {
                        return None;
                    }
                    let g = *cursor;
                    *cursor += 1;
                    if !self.mgr.reserved_flags[g as usize] && !self.mgr.retired_flags[g as usize] {
                        return Some(g);
                    }
                }
            }
            (
                PeekState::Striped {
                    offsets,
                    next_class,
                },
                FreePool::Striped { queues, .. },
            ) => {
                let classes = queues.len();
                for probe in 0..classes {
                    let class = (*next_class + probe) % classes;
                    if let Some(&g) = queues[class].get(offsets[class]) {
                        offsets[class] += 1;
                        *next_class = (class + 1) % classes;
                        return Some(g);
                    }
                }
                None
            }
            (PeekState::LeastWorn { offsets, by_wear }, FreePool::LeastWorn { queues, .. }) => {
                let &(wear, row) = by_wear.first()?;
                let queue = &queues[row as usize];
                let g = queue[offsets[row as usize]];
                offsets[row as usize] += 1;
                if offsets[row as usize] >= queue.len() {
                    by_wear.remove(&(wear, row));
                }
                Some(g)
            }
            // The sim state was built from the pool it walks; variants
            // cannot diverge.
            _ => unreachable!("peek state matches the pool variant"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_free_reproduces_cursor_then_fifo_order() {
        let mut m = FreeSpaceManager::new(8, 2, 2, 1, 16, PlacementPolicy::FirstFree);
        assert_eq!(m.free_count(), 8);
        assert_eq!(m.allocate(), Some(0));
        assert_eq!(m.allocate(), Some(1));
        m.recycle(0);
        m.recycle(1);
        // Recycled groups come back in FIFO order, before the cursor moves.
        assert_eq!(m.allocate(), Some(0));
        assert_eq!(m.allocate(), Some(1));
        assert_eq!(m.allocate(), Some(2));
        assert_eq!(m.free_count(), 5);
    }

    #[test]
    fn exhaustion_returns_none_until_recycle() {
        let mut m = FreeSpaceManager::new(2, 1, 1, 1, 16, PlacementPolicy::FirstFree);
        assert_eq!(m.allocate(), Some(0));
        assert_eq!(m.allocate(), Some(1));
        assert_eq!(m.allocate(), None);
        m.recycle(1);
        assert_eq!(m.free_count(), 1);
        assert_eq!(m.allocate(), Some(1));
    }

    #[test]
    fn striped_rotates_across_classes() {
        // 8 groups of 1 page on 2 channels × 2 dies: group g's leading page
        // is flat page g, so classes cycle 0,2,1,3 (channel first, then
        // die) as g increases.
        let mut m = FreeSpaceManager::new(8, 1, 2, 2, 16, PlacementPolicy::ChannelStriped);
        assert_eq!(m.class_count(), 4);
        let picks: Vec<u64> = (0..4).map(|_| m.allocate().unwrap()).collect();
        let classes: Vec<usize> = picks.iter().map(|&g| m.stripe_class(g)).collect();
        // Four consecutive allocations cover all four stripe classes.
        let mut sorted = classes.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        // Occupancy gauges saw one allocation per class.
        assert_eq!(m.occupancy(), &[1, 1, 1, 1]);
    }

    #[test]
    fn striped_skips_empty_classes_and_exhausts_cleanly() {
        let mut m = FreeSpaceManager::new(4, 1, 2, 1, 16, PlacementPolicy::ChannelStriped);
        let mut got = Vec::new();
        while let Some(g) = m.allocate() {
            got.push(g);
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(m.free_count(), 0);
        m.recycle(3);
        assert_eq!(m.allocate(), Some(3));
        assert_eq!(m.allocate(), None);
    }

    #[test]
    fn double_recycle_is_idempotent() {
        let mut m = FreeSpaceManager::new(4, 1, 1, 1, 16, PlacementPolicy::FirstFree);
        let g = m.allocate().unwrap();
        assert!(!m.is_free(g));
        m.recycle(g);
        m.recycle(g);
        assert!(m.is_free(g));
        assert_eq!(m.free_count(), 4);
        assert_eq!(m.debug_free_groups().len(), 4);
    }

    #[test]
    fn reclaim_range_reinserts_an_ascending_run() {
        for policy in PlacementPolicy::all() {
            let mut m = FreeSpaceManager::new(8, 1, 1, 1, 4, policy);
            // Allocate six groups, recycle two of them out of order, and
            // leave two allocated-but-unmapped (garbage).
            let held: Vec<u64> = (0..6).map(|_| m.allocate().unwrap()).collect();
            m.recycle(held[3]);
            m.recycle(held[1]);
            // Reclaim the whole row [0, 6): the two garbage groups are
            // newly freed, the recycled ones are re-ordered, and the pool
            // pops the run ascending.
            let newly = m.reclaim_range(0, 6);
            assert_eq!(newly, 4, "{policy:?}");
            assert_eq!(m.free_count(), 8, "{policy:?}");
            // Drain everything: the reclaimed range must come back as one
            // ascending contiguous run (free groups that were already
            // queued ahead of it may pop first).
            let drained: Vec<u64> = (0..8).map(|_| m.allocate().unwrap()).collect();
            assert_eq!(m.allocate(), None, "{policy:?}");
            let run: Vec<u64> = drained.iter().copied().filter(|g| *g < 6).collect();
            assert_eq!(run, vec![0, 1, 2, 3, 4, 5], "{policy:?}");
        }
    }

    #[test]
    fn occupancy_and_free_set_stay_consistent() {
        for policy in PlacementPolicy::all() {
            let mut m = FreeSpaceManager::new(16, 2, 2, 2, 8, policy);
            let mut held = Vec::new();
            for _ in 0..10 {
                held.push(m.allocate().unwrap());
            }
            for g in held.drain(..5) {
                m.recycle(g);
            }
            let free = m.debug_free_groups();
            assert_eq!(free.len() as u64, m.free_count(), "{policy:?}");
            let occupied: u64 = m.occupancy().iter().sum();
            assert_eq!(occupied + m.free_count(), 16, "{policy:?}");
            // No group is simultaneously free twice.
            let mut dedup = free.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), free.len(), "{policy:?}");
        }
    }

    #[test]
    fn least_worn_prefers_the_freshest_row() {
        // 8 groups of 2 pages, 2 channels × 1 die × 4-page blocks: each row
        // holds 4 groups.
        let mut m = FreeSpaceManager::new(8, 2, 2, 1, 4, PlacementPolicy::LeastWorn);
        assert_eq!(m.row_wear().len(), 2);
        // Untouched device: rows tie at wear 0, lowest row wins, groups pop
        // ascending within the row.
        assert_eq!(m.allocate(), Some(0));
        assert_eq!(m.allocate(), Some(1));
        // Row 0 wears out; allocation moves to row 1.
        m.note_block_erase(0);
        assert_eq!(m.allocate(), Some(4));
        // Row 1 wears past row 0; allocation returns to row 0's remainder.
        m.note_block_erase(1);
        m.note_block_erase(1);
        assert_eq!(m.allocate(), Some(2));
        // Recycled groups rejoin the back of their row's queue under the
        // current wear, so the less-worn row keeps serving FIFO.
        m.recycle(4);
        m.note_block_erase(0);
        m.note_block_erase(0); // row 0 wear 3, row 1 wear 2
        assert_eq!(m.allocate(), Some(5));
        assert_eq!(m.row_wear(), &[3, 2]);
    }

    #[test]
    fn least_worn_drains_fully_and_recycles() {
        let mut m = FreeSpaceManager::new(8, 1, 1, 1, 4, PlacementPolicy::LeastWorn);
        let mut got = Vec::new();
        while let Some(g) = m.allocate() {
            got.push(g);
        }
        assert_eq!(got.len(), 8);
        assert_eq!(m.free_count(), 0);
        m.recycle(5);
        assert_eq!(m.allocate(), Some(5));
        assert_eq!(m.allocate(), None);
    }

    #[test]
    fn reserve_range_fences_groups_from_every_path() {
        for policy in PlacementPolicy::all() {
            let mut m = FreeSpaceManager::new(8, 1, 1, 1, 4, policy);
            m.reserve_range(6, 8);
            assert_eq!(m.free_count(), 6, "{policy:?}");
            assert_eq!(m.reserved_count(), 2, "{policy:?}");
            assert!(m.is_reserved(6) && m.is_reserved(7), "{policy:?}");
            // Reserved groups are never allocated...
            let mut got = Vec::new();
            while let Some(g) = m.allocate() {
                got.push(g);
            }
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3, 4, 5], "{policy:?}");
            // ...never recycled...
            m.recycle(6);
            assert_eq!(m.free_count(), 0, "{policy:?}");
            // ...and never resurrected by a row reclaim over their range.
            let newly = m.reclaim_range(4, 8);
            assert_eq!(newly, 2, "{policy:?}");
            let free = m.debug_free_groups();
            assert!(
                free.iter().all(|g| !m.is_reserved(*g)),
                "{policy:?}: reserved group leaked into the pool"
            );
        }
    }

    #[test]
    fn retire_row_removes_the_row_from_every_path() {
        for policy in PlacementPolicy::all() {
            // 8 groups of 1 page, 1 channel × 1 die × 4-page blocks: rows
            // are groups [0,4) and [4,8).
            let mut m = FreeSpaceManager::new(8, 1, 1, 1, 4, policy);
            assert_eq!(m.row_group_range(1), (4, 8));
            // Leave group 1 allocated (garbage) so retirement must also
            // rebalance the occupancy gauge.
            let g = loop {
                let g = m.allocate().unwrap();
                if g < 4 {
                    break g;
                }
                m.recycle(g);
            };
            let newly = m.retire_row(0);
            assert_eq!(newly, 4, "{policy:?}");
            assert_eq!(m.retired_count(), 4, "{policy:?}");
            assert!(m.is_retired(g), "{policy:?}");
            // Retired groups never allocate...
            let mut got = Vec::new();
            while let Some(g) = m.allocate() {
                got.push(g);
            }
            got.sort_unstable();
            assert!(got.iter().all(|&g| g >= 4), "{policy:?}: {got:?}");
            // ...never recycle...
            m.recycle(g);
            assert_eq!(m.free_count(), 0, "{policy:?}");
            // ...never resurrect through a row reclaim...
            assert_eq!(m.reclaim_range(0, 4), 0, "{policy:?}");
            assert!(m.debug_free_groups().is_empty(), "{policy:?}");
            // ...and the partition still balances.
            let occupied: u64 = m.occupancy().iter().sum();
            assert_eq!(
                occupied + m.free_count() + m.reserved_count() + m.retired_count(),
                8,
                "{policy:?}"
            );
            // Idempotent.
            assert_eq!(m.retire_row(0), 0, "{policy:?}");
        }
    }

    #[test]
    fn retire_row_skips_reserved_groups() {
        let mut m = FreeSpaceManager::new(8, 1, 1, 1, 4, PlacementPolicy::FirstFree);
        m.reserve_range(0, 2);
        assert_eq!(m.retire_row(0), 2);
        assert!(m.is_reserved(0) && !m.is_retired(0));
        assert!(m.is_retired(2) && m.is_retired(3));
        assert_eq!(m.reserved_count(), 2);
        assert_eq!(m.retired_count(), 2);
    }

    #[test]
    fn rebuild_reproduces_a_deterministic_ascending_pool() {
        for policy in PlacementPolicy::all() {
            // 16 groups of 2 pages, 2 channels × 2 dies × 4-page blocks:
            // rows are groups [0,8) and [8,16).
            let mut m = FreeSpaceManager::new(16, 2, 2, 2, 4, policy);
            m.reserve_range(14, 16);
            for _ in 0..6 {
                m.allocate().unwrap();
            }
            m.note_block_erase(0);
            m.retire_row(1);
            let wear_before = m.row_wear().to_vec();
            // Crash: rebuild with "mapped" groups 2 and 5 occupied, the
            // rest free.
            let mapped = [2u64, 5];
            m.rebuild(|g| !mapped.contains(&g));
            assert_eq!(m.row_wear(), &wear_before[..], "{policy:?}");
            assert!(m.is_reserved(14) && m.is_retired(m.row_group_range(1).0));
            let free = m.debug_free_groups();
            assert_eq!(free.len() as u64, m.free_count(), "{policy:?}");
            assert!(
                free.iter()
                    .all(|&g| !mapped.contains(&g) && !m.is_reserved(g) && !m.is_retired(g)),
                "{policy:?}"
            );
            let occupied: u64 = m.occupancy().iter().sum();
            assert_eq!(occupied, mapped.len() as u64, "{policy:?}");
            assert_eq!(
                occupied + m.free_count() + m.reserved_count() + m.retired_count(),
                16,
                "{policy:?}"
            );
            // A second identical rebuild pops the identical sequence.
            let mut twin = m.clone();
            twin.rebuild(|g| !mapped.contains(&g));
            let a: Vec<Option<u64>> = (0..4).map(|_| m.allocate()).collect();
            let b: Vec<Option<u64>> = (0..4).map(|_| twin.allocate()).collect();
            assert_eq!(a, b, "{policy:?}");
        }
    }

    #[test]
    fn peek_allocations_predicts_every_policy_exactly() {
        for policy in PlacementPolicy::all() {
            // Build a scrambled pool: allocations, out-of-order recycles, a
            // reservation, wear, and a row reclaim all reshape pop order.
            let mut m = FreeSpaceManager::new(16, 2, 2, 2, 4, policy);
            m.reserve_range(14, 16);
            let held: Vec<u64> = (0..7).map(|_| m.allocate().unwrap()).collect();
            m.recycle(held[4]);
            m.recycle(held[1]);
            m.note_block_erase(0);
            m.reclaim_range(8, 12);
            // The peek must forecast the full drain, then exhaustion.
            let predicted: Vec<u64> = m.peek_allocations().collect();
            assert_eq!(predicted.len() as u64, m.free_count(), "{policy:?}");
            let mut popped = Vec::new();
            while let Some(g) = m.allocate() {
                popped.push(g);
            }
            assert_eq!(predicted, popped, "{policy:?}");
            assert_eq!(m.peek_allocations().next(), None, "{policy:?}");
        }
    }

    #[test]
    fn reservation_is_idempotent_and_occupancy_balances() {
        let mut m = FreeSpaceManager::new(16, 2, 2, 2, 8, PlacementPolicy::FirstFree);
        m.reserve_range(12, 16);
        m.reserve_range(12, 16);
        assert_eq!(m.reserved_count(), 4);
        let mut held = Vec::new();
        for _ in 0..6 {
            held.push(m.allocate().unwrap());
        }
        let occupied: u64 = m.occupancy().iter().sum();
        assert_eq!(occupied + m.free_count() + m.reserved_count(), 16);
    }
}
