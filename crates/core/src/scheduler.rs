//! Multi-kernel scheduling policies.
//!
//! FlashAbacus governs kernel execution internally with two families of
//! schedulers (§4.1, §4.2):
//!
//! * **Inter-kernel** schedulers treat a whole kernel as the unit of work.
//!   The *static* variant pins every kernel of an application to the LWP
//!   selected by the application number; the *dynamic* variant hands each
//!   kernel to any free LWP in round-robin order.
//! * **Intra-kernel** schedulers split kernels into microblocks and
//!   screens. The *in-order* variant executes microblocks strictly in
//!   order, fanning the current microblock's screens across the worker
//!   LWPs. The *out-of-order* variant may additionally borrow ready
//!   screens from other microblocks, kernels, and applications whenever
//!   LWPs would otherwise idle, subject only to the dependency rule
//!   enforced by the multi-app execution chain.

use fa_kernel::chain::{ExecutionChain, ScreenRef};
use fa_kernel::model::Application;
use serde::{Deserialize, Serialize};

/// The four scheduling policies evaluated in the paper, plus identifiers
/// used throughout the benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerPolicy {
    /// Static inter-kernel scheduling (`InterSt`).
    InterSt,
    /// Dynamic inter-kernel scheduling (`InterDy`).
    InterDy,
    /// In-order intra-kernel scheduling (`IntraIo`).
    IntraIo,
    /// Out-of-order intra-kernel scheduling (`IntraO3`).
    IntraO3,
}

impl SchedulerPolicy {
    /// All policies in the order the paper's figures list them.
    pub fn all() -> [SchedulerPolicy; 4] {
        [
            SchedulerPolicy::InterSt,
            SchedulerPolicy::InterDy,
            SchedulerPolicy::IntraIo,
            SchedulerPolicy::IntraO3,
        ]
    }

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerPolicy::InterSt => "InterSt",
            SchedulerPolicy::InterDy => "InterDy",
            SchedulerPolicy::IntraIo => "IntraIo",
            SchedulerPolicy::IntraO3 => "IntraO3",
        }
    }

    /// True for the policies that schedule whole kernels onto single LWPs.
    pub fn is_inter_kernel(self) -> bool {
        matches!(self, SchedulerPolicy::InterSt | SchedulerPolicy::InterDy)
    }

    /// True for the policies that split kernels into screens.
    pub fn is_intra_kernel(self) -> bool {
        !self.is_inter_kernel()
    }
}

/// A whole-kernel unit of work used by the inter-kernel policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct KernelRef {
    /// Application index in the offload batch.
    pub app: usize,
    /// Kernel index within the application.
    pub kernel: usize,
}

/// Enumerates every kernel of a batch in offload order.
pub fn all_kernels(apps: &[Application]) -> Vec<KernelRef> {
    apps.iter()
        .enumerate()
        .flat_map(|(ai, a)| {
            (0..a.kernels.len()).map(move |ki| KernelRef {
                app: ai,
                kernel: ki,
            })
        })
        .collect()
}

/// For the static inter-kernel policy: the worker an application's kernels
/// are pinned to (the application number modulo the worker count, §4.1).
pub fn static_assignment(app_index: usize, workers: usize) -> usize {
    app_index % workers.max(1)
}

/// The next screen an intra-kernel policy would dispatch, without
/// materializing the whole ready set.
///
/// * `IntraIo` restricts dispatch to the earliest incomplete microblock of
///   the earliest incomplete kernel (strict program order); LWPs beyond
///   that microblock's screen count idle, which is exactly the serial-
///   microblock limitation the paper calls out.
/// * `IntraO3` may dispatch any ready screen in the chain.
///
/// Both answers come straight off the chain's incrementally maintained
/// frontier, so the per-dispatch decision is O(log S) rather than a batch
/// rescan.
///
/// # Panics
///
/// Panics if called with an inter-kernel policy.
pub fn intra_next_ready(policy: SchedulerPolicy, chain: &ExecutionChain) -> Option<ScreenRef> {
    match policy {
        SchedulerPolicy::IntraIo => {
            // Strict program order: only the globally earliest *incomplete*
            // microblock may contribute screens. While a serial microblock
            // is still executing, every other LWP idles — exactly the
            // limitation the paper attributes to in-order scheduling.
            let (app, kernel, microblock) = chain.earliest_incomplete_microblock()?;
            chain.next_ready_of_microblock(app, kernel, microblock)
        }
        SchedulerPolicy::IntraO3 => chain.first_ready(),
        other => panic!("{} is not an intra-kernel policy", other.label()),
    }
}

/// Selects the screens an intra-kernel policy may dispatch right now, as a
/// materialized list. Kept for tests, ablations, and oracles; the dispatch
/// loop itself uses [`intra_next_ready`], which never builds the list.
///
/// # Panics
///
/// Panics if called with an inter-kernel policy.
pub fn intra_ready_screens(policy: SchedulerPolicy, chain: &ExecutionChain) -> Vec<ScreenRef> {
    match policy {
        SchedulerPolicy::IntraIo => match chain.earliest_incomplete_microblock() {
            Some((app, kernel, microblock)) => chain
                .ready_screens_of_kernel(app, kernel)
                .into_iter()
                .filter(|r| r.microblock == microblock)
                .collect(),
            None => Vec::new(),
        },
        SchedulerPolicy::IntraO3 => chain.ready_screens(),
        other => panic!("{} is not an intra-kernel policy", other.label()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_kernel::model::{AppId, ApplicationBuilder, DataSection};
    use fa_platform::lwp::InstructionMix;
    use fa_sim::time::SimTime;

    fn apps() -> Vec<Application> {
        let mix = InstructionMix::new(10_000, 0.4, 0.1);
        let ds = DataSection {
            flash_base: 0,
            input_bytes: 4096,
            output_bytes: 0,
        };
        let a = ApplicationBuilder::new("A")
            .kernel("A-k0", ds, &[(1, mix, 4096, 0), (4, mix, 0, 0)])
            .build(AppId(0));
        let b = ApplicationBuilder::new("B")
            .kernel("B-k0", ds, &[(2, mix, 4096, 0)])
            .build(AppId(1));
        vec![a, b]
    }

    #[test]
    fn labels_and_classification() {
        assert_eq!(SchedulerPolicy::all().len(), 4);
        assert!(SchedulerPolicy::InterSt.is_inter_kernel());
        assert!(SchedulerPolicy::InterDy.is_inter_kernel());
        assert!(SchedulerPolicy::IntraIo.is_intra_kernel());
        assert!(SchedulerPolicy::IntraO3.is_intra_kernel());
        assert_eq!(SchedulerPolicy::IntraO3.label(), "IntraO3");
    }

    #[test]
    fn all_kernels_enumerates_in_offload_order() {
        let ks = all_kernels(&apps());
        assert_eq!(ks.len(), 2);
        assert_eq!(ks[0], KernelRef { app: 0, kernel: 0 });
        assert_eq!(ks[1], KernelRef { app: 1, kernel: 0 });
    }

    #[test]
    fn static_assignment_wraps_around_workers() {
        assert_eq!(static_assignment(0, 6), 0);
        assert_eq!(static_assignment(5, 6), 5);
        assert_eq!(static_assignment(6, 6), 0);
        assert_eq!(static_assignment(3, 0), 0);
    }

    #[test]
    fn inorder_policy_exposes_only_the_head_microblock() {
        let apps = apps();
        let chain = ExecutionChain::new(&apps);
        let io = intra_ready_screens(SchedulerPolicy::IntraIo, &chain);
        // Head is app 0 / kernel 0 / microblock 0, which is serial.
        assert_eq!(io.len(), 1);
        assert_eq!(io[0].app, 0);
        assert_eq!(io[0].microblock, 0);
        let o3 = intra_ready_screens(SchedulerPolicy::IntraO3, &chain);
        // Out-of-order also sees app 1's screens.
        assert_eq!(o3.len(), 3);
    }

    #[test]
    fn o3_borrows_across_kernels_when_head_is_serial() {
        let apps = apps();
        let mut chain = ExecutionChain::new(&apps);
        // Start the serial head screen; in-order now has nothing to offer,
        // out-of-order still exposes app 1's microblock.
        let head = chain.ready_screens_of_kernel(0, 0)[0];
        chain.mark_running(head, 0);
        assert!(intra_ready_screens(SchedulerPolicy::IntraIo, &chain)
            .iter()
            .all(|r| r.app == 1));
        assert_eq!(
            intra_ready_screens(SchedulerPolicy::IntraO3, &chain).len(),
            2
        );
        chain.mark_done(head, SimTime::from_us(1));
        let io = intra_ready_screens(SchedulerPolicy::IntraIo, &chain);
        assert!(io.iter().all(|r| r.app == 0 && r.microblock == 1));
    }

    #[test]
    #[should_panic(expected = "not an intra-kernel policy")]
    fn inter_policy_rejected_by_intra_helper() {
        let chain = ExecutionChain::new(&apps());
        intra_ready_screens(SchedulerPolicy::InterDy, &chain);
    }

    #[test]
    fn intra_next_ready_is_the_head_of_the_materialized_list() {
        let apps = apps();
        let mut chain = ExecutionChain::new(&apps);
        // Walk the whole batch to completion, checking the frontier-based
        // single-screen answer against the materialized list at each step.
        loop {
            for policy in [SchedulerPolicy::IntraIo, SchedulerPolicy::IntraO3] {
                assert_eq!(
                    intra_next_ready(policy, &chain),
                    intra_ready_screens(policy, &chain).first().copied(),
                    "{policy:?}"
                );
            }
            let Some(r) = intra_next_ready(SchedulerPolicy::IntraO3, &chain) else {
                break;
            };
            chain.mark_running(r, 0);
            chain.mark_done(r, SimTime::from_us(1));
        }
        assert!(chain.is_complete());
    }
}
