//! Error type for the FlashAbacus device model.

use fa_flash::FlashError;
use std::fmt;

/// Errors surfaced by the FlashAbacus system.
#[derive(Debug, Clone, PartialEq)]
pub enum FaError {
    /// The flash backbone rejected an operation.
    Flash(FlashError),
    /// The flash backbone ran out of free page groups and garbage
    /// collection could not reclaim enough space.
    OutOfFlashSpace {
        /// Page groups requested.
        requested: u64,
        /// Page groups available.
        available: u64,
    },
    /// A kernel attempted to map a data-section range that conflicts with a
    /// range another kernel holds (range-lock denial, §4.3).
    RangeConflict {
        /// The requested byte range.
        range: (u64, u64),
    },
    /// A logical address outside any mapped data section was accessed.
    UnmappedAddress(u64),
    /// The accelerator's DDR3L could not hold the requested data section.
    Ddr3lExhausted {
        /// Bytes requested.
        requested: u64,
    },
    /// The workload handed to the system was empty or malformed.
    InvalidWorkload(String),
    /// The scheduler reached a state where nothing can make progress.
    SchedulerStalled(String),
}

impl fmt::Display for FaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaError::Flash(e) => write!(f, "flash backbone error: {e}"),
            FaError::OutOfFlashSpace {
                requested,
                available,
            } => write!(
                f,
                "out of flash space: requested {requested} page groups, {available} available"
            ),
            FaError::RangeConflict { range } => {
                write!(f, "range lock conflict on [{}, {})", range.0, range.1)
            }
            FaError::UnmappedAddress(a) => write!(f, "unmapped logical flash address {a:#x}"),
            FaError::Ddr3lExhausted { requested } => {
                write!(f, "DDR3L exhausted: {requested} bytes requested")
            }
            FaError::InvalidWorkload(msg) => write!(f, "invalid workload: {msg}"),
            FaError::SchedulerStalled(msg) => write!(f, "scheduler stalled: {msg}"),
        }
    }
}

impl std::error::Error for FaError {}

impl From<FlashError> for FaError {
    fn from(e: FlashError) -> Self {
        FaError::Flash(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_flash::PhysicalPageAddr;

    #[test]
    fn errors_display_and_convert() {
        let e: FaError = FlashError::OutOfRange(PhysicalPageAddr::new(0, 0, 0, 0)).into();
        assert!(matches!(e, FaError::Flash(_)));
        assert!(e.to_string().contains("flash backbone"));
        assert!(FaError::UnmappedAddress(0x40).to_string().contains("0x40"));
        assert!(FaError::RangeConflict { range: (0, 10) }
            .to_string()
            .contains("[0, 10)"));
    }
}
