//! Deterministic pseudo-random number generation.
//!
//! Experiments must be bit-for-bit reproducible across runs and toolchain
//! updates, so instead of relying on an external generator whose stream
//! might change between crate versions we ship a small, well-known
//! SplitMix64/xoshiro256** pair. The quality is far beyond what workload
//! synthesis needs.

/// A deterministic pseudo-random number generator (xoshiro256** seeded via
/// SplitMix64).
///
/// # Examples
///
/// ```
/// use fa_sim::rng::DeterministicRng;
///
/// let mut a = DeterministicRng::seed_from(42);
/// let mut b = DeterministicRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.gen_range_f64(0.0, 1.0);
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone)]
pub struct DeterministicRng {
    state: [u64; 4],
}

fn splitmix64(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DeterministicRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut s = seed;
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        DeterministicRng { state }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // Use the upper 53 bits for a uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly distributed integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        lo + self.next_u64() % span
    }

    /// Returns a uniformly distributed integer in `[0, n)`, or 0 when `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Returns a uniformly distributed float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "empty range {lo}..{hi}");
        lo + self.next_f64() * (hi - lo)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        if slice.len() < 2 {
            return;
        }
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Derives an independent child generator, useful to give each
    /// component its own stream while keeping a single experiment seed.
    pub fn fork(&mut self, salt: u64) -> DeterministicRng {
        DeterministicRng::seed_from(self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DeterministicRng::seed_from(7);
        let mut b = DeterministicRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DeterministicRng::seed_from(1);
        let mut b = DeterministicRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should not coincide");
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = DeterministicRng::seed_from(3);
        for _ in 0..1000 {
            let v = rng.gen_range_u64(10, 20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniform_mean_is_reasonable() {
        let mut rng = DeterministicRng::seed_from(99);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DeterministicRng::seed_from(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn forked_streams_are_independent_but_deterministic() {
        let mut parent1 = DeterministicRng::seed_from(11);
        let mut parent2 = DeterministicRng::seed_from(11);
        let mut c1 = parent1.fork(1);
        let mut c2 = parent2.fork(1);
        assert_eq!(c1.next_u64(), c2.next_u64());
    }
}
