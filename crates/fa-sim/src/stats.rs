//! Measurement primitives used to produce the paper's figures.
//!
//! The evaluation needs throughput, min/avg/max latency, CDFs, per-component
//! busy-time (utilization), and time series of utilization and power. These
//! are collected with the small set of accumulators in this module.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// Running scalar statistics (count, mean, min, max, variance) without
/// storing samples.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Records one sample using Welford's algorithm.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 if empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Population variance, or 0 with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// A fixed-bucket histogram over `f64` samples, retaining the raw samples so
/// exact percentiles and CDFs can be extracted (sample counts in this
/// project are small: thousands, not billions).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Records a sample.
    pub fn record(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn sorted_samples(&mut self) -> &[f64] {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample in histogram"));
            self.sorted = true;
        }
        &self.samples
    }

    /// Returns the `q`-quantile (`0.0..=1.0`) by nearest-rank, or `None`
    /// when empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let sorted = self.sorted_samples();
        let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        Some(sorted[idx])
    }

    /// Returns `(value, cumulative_fraction)` pairs forming the empirical
    /// CDF, one point per sample.
    pub fn cdf(&mut self) -> Vec<(f64, f64)> {
        let n = self.samples.len();
        self.sorted_samples()
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n as f64))
            .collect()
    }

    /// Mean of all samples, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        }
    }
}

/// Tracks how long a component spends busy, to compute utilization as
/// busy-time / wall-time — exactly how the paper reports LWP utilization
/// (Figure 14) and function-unit utilization (Figure 15a).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UtilizationTracker {
    busy: SimDuration,
    busy_since: Option<SimTime>,
    intervals: u64,
}

impl UtilizationTracker {
    /// Creates an idle tracker.
    pub fn new() -> Self {
        UtilizationTracker::default()
    }

    /// Marks the component busy starting at `now`. Nested calls are ignored.
    pub fn begin_busy(&mut self, now: SimTime) {
        if self.busy_since.is_none() {
            self.busy_since = Some(now);
        }
    }

    /// Marks the component idle at `now`, accumulating the elapsed busy span.
    pub fn end_busy(&mut self, now: SimTime) {
        if let Some(start) = self.busy_since.take() {
            self.busy += now.saturating_since(start);
            self.intervals += 1;
        }
    }

    /// Adds a busy span directly (for components modelled analytically).
    pub fn add_busy(&mut self, span: SimDuration) {
        self.busy += span;
        self.intervals += 1;
    }

    /// Returns true if currently marked busy.
    pub fn is_busy(&self) -> bool {
        self.busy_since.is_some()
    }

    /// Total accumulated busy time, counting an open interval up to `now`.
    pub fn busy_time(&self, now: SimTime) -> SimDuration {
        match self.busy_since {
            Some(start) => self.busy + now.saturating_since(start),
            None => self.busy,
        }
    }

    /// Busy fraction in `[0, 1]` over the window ending at `now`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let wall = now.saturating_since(SimTime::ZERO);
        if wall.is_zero() {
            return 0.0;
        }
        (self.busy_time(now).as_secs_f64() / wall.as_secs_f64()).clamp(0.0, 1.0)
    }

    /// Number of closed busy intervals.
    pub fn intervals(&self) -> u64 {
        self.intervals
    }
}

/// A `(time, value)` series sampled at irregular instants; used for the
/// function-unit-utilization and power timelines of Figure 15.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a sample. Out-of-order samples are rejected.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the last recorded sample.
    pub fn record(&mut self, at: SimTime, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(at >= last, "time series sample out of order");
        }
        self.points.push((at, value));
    }

    /// All recorded points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Resamples the series onto a fixed grid of `bucket` width using the
    /// last-value-carried-forward rule; returns `(bucket_start, value)`.
    pub fn resample(&self, bucket: SimDuration) -> Vec<(SimTime, f64)> {
        if self.points.is_empty() || bucket.is_zero() {
            return Vec::new();
        }
        let end = self.points.last().expect("non-empty").0;
        let mut out = Vec::new();
        let mut cursor = SimTime::ZERO;
        let mut idx = 0usize;
        let mut last_value = 0.0;
        while cursor <= end {
            while idx < self.points.len() && self.points[idx].0 <= cursor {
                last_value = self.points[idx].1;
                idx += 1;
            }
            out.push((cursor, last_value));
            cursor += bucket;
        }
        out
    }

    /// Time-weighted mean of the series over its span (zero when empty or a
    /// single point).
    pub fn time_weighted_mean(&self) -> f64 {
        if self.points.len() < 2 {
            return self.points.first().map(|&(_, v)| v).unwrap_or(0.0);
        }
        let mut area = 0.0;
        for pair in self.points.windows(2) {
            let (t0, v0) = pair[0];
            let (t1, _) = pair[1];
            area += v0 * (t1.saturating_since(t0)).as_secs_f64();
        }
        let span = self
            .points
            .last()
            .expect("non-empty")
            .0
            .saturating_since(self.points[0].0)
            .as_secs_f64();
        if span == 0.0 {
            0.0
        } else {
            area / span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn running_stats_mean_min_max() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 6.0, 8.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 8.0);
        assert!((s.variance() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn histogram_quantiles_and_cdf() {
        let mut h = Histogram::new();
        for x in [5.0, 1.0, 3.0, 2.0, 4.0] {
            h.record(x);
        }
        assert_eq!(h.len(), 5);
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(5.0));
        assert_eq!(h.quantile(0.5), Some(3.0));
        let cdf = h.cdf();
        assert_eq!(cdf.first(), Some(&(1.0, 0.2)));
        assert_eq!(cdf.last(), Some(&(5.0, 1.0)));
        assert!((h.mean() - 3.0).abs() < 1e-12);
        assert_eq!(h.max(), 5.0);
    }

    #[test]
    fn empty_histogram_behaves() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert!(h.cdf().is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn utilization_tracks_busy_fraction() {
        let mut u = UtilizationTracker::new();
        u.begin_busy(SimTime::from_ns(0));
        u.end_busy(SimTime::from_ns(50));
        u.begin_busy(SimTime::from_ns(80));
        u.end_busy(SimTime::from_ns(100));
        assert_eq!(u.busy_time(SimTime::from_ns(100)).as_ns(), 70);
        assert!((u.utilization(SimTime::from_ns(100)) - 0.7).abs() < 1e-9);
        assert_eq!(u.intervals(), 2);
    }

    #[test]
    fn utilization_counts_open_interval() {
        let mut u = UtilizationTracker::new();
        u.begin_busy(SimTime::from_ns(10));
        assert!(u.is_busy());
        assert_eq!(u.busy_time(SimTime::from_ns(30)).as_ns(), 20);
    }

    #[test]
    fn nested_begin_busy_is_idempotent() {
        let mut u = UtilizationTracker::new();
        u.begin_busy(SimTime::from_ns(0));
        u.begin_busy(SimTime::from_ns(5));
        u.end_busy(SimTime::from_ns(10));
        assert_eq!(u.busy_time(SimTime::from_ns(10)).as_ns(), 10);
    }

    #[test]
    fn time_series_resample_and_mean() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::from_ns(0), 1.0);
        ts.record(SimTime::from_ns(100), 3.0);
        ts.record(SimTime::from_ns(200), 3.0);
        let grid = ts.resample(SimDuration::from_ns(50));
        assert_eq!(grid.len(), 5);
        assert_eq!(grid[0].1, 1.0);
        assert_eq!(grid[2].1, 3.0);
        // 1.0 for the first 100 ns, 3.0 for the next 100 ns.
        assert!((ts.time_weighted_mean() - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn time_series_rejects_out_of_order() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::from_ns(10), 1.0);
        ts.record(SimTime::from_ns(5), 2.0);
    }
}
