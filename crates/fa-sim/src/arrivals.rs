//! Seeded open-loop arrival processes.
//!
//! An [`ArrivalPlan`] describes *when tenants show up*: a Poisson process
//! (exponential inter-arrival gaps at a configured mean rate) or a bursty
//! on/off shape (Poisson arrivals inside fixed-length on-windows separated
//! by silent off-windows). The plan is parsed from the `FA_ARRIVALS`
//! environment variable exactly like `FA_FAULTS` parses a fault plan:
//! comma-separated `key=value` pairs, and a malformed spec is an error
//! (never silently ignored).
//!
//! The whole schedule is precomputed from the seed by
//! [`ArrivalPlan::schedule`] before the simulation starts, using one
//! [`DeterministicRng`] stream. Nothing about execution order, shard count,
//! or admission decisions feeds back into the arrival instants, which is
//! what makes an open-loop campaign reproducible byte for byte: the same
//! spec always produces the same `(tenant, instant, template)` list.

use crate::rng::DeterministicRng;
use crate::time::{SimDuration, SimTime};

/// The shape of the arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalShape {
    /// Memoryless arrivals: exponential inter-arrival gaps with mean
    /// `1 / rate_per_s`.
    Poisson,
    /// Bursty on/off arrivals: Poisson arrivals at `rate_per_s` inside
    /// fixed `on`-length windows, separated by silent `off`-length windows.
    OnOff,
}

/// One scheduled tenant arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Dense tenant id, assigned in arrival order starting at 0.
    pub tenant: u32,
    /// The simulated instant the tenant shows up.
    pub at: SimTime,
    /// Which kernel template (index into the caller's template list) this
    /// tenant instantiates.
    pub template: usize,
}

/// A seeded open-loop arrival plan (the `FA_ARRIVALS` specification).
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalPlan {
    /// Seed for the arrival-instant and template-pick streams.
    pub seed: u64,
    /// Mean arrival rate (tenants per simulated second) while the process
    /// is active.
    pub rate_per_s: f64,
    /// Total tenants the plan injects.
    pub tenants: u32,
    /// Poisson or bursty on/off.
    pub shape: ArrivalShape,
    /// Length of one active window (`OnOff` only).
    pub on: SimDuration,
    /// Length of one silent window (`OnOff` only).
    pub off: SimDuration,
    /// Number of kernel templates tenants draw from (uniformly, from the
    /// same seeded stream).
    pub templates: usize,
    /// Instant the process starts.
    pub start: SimTime,
}

impl Default for ArrivalPlan {
    fn default() -> Self {
        ArrivalPlan {
            seed: 0x0A11,
            rate_per_s: 100.0,
            tenants: 256,
            shape: ArrivalShape::Poisson,
            on: SimDuration::from_ms(50),
            off: SimDuration::from_ms(150),
            templates: 1,
            start: SimTime::ZERO,
        }
    }
}

impl ArrivalPlan {
    /// Parses a plan from the `FA_ARRIVALS` specification string:
    /// comma-separated `key=value` pairs. Keys: `seed` (u64), `rate`
    /// (tenants per simulated second, > 0), `tenants` (u32 > 0), `shape`
    /// (`poisson` | `onoff`), `on_ms`/`off_ms` (window lengths for
    /// `onoff`), `templates` (usize > 0), `start_ns` (u64).
    ///
    /// ```
    /// use fa_sim::arrivals::{ArrivalPlan, ArrivalShape};
    /// let plan =
    ///     ArrivalPlan::parse("seed=42,rate=200,tenants=1000,shape=onoff,on_ms=40,off_ms=120")
    ///         .unwrap();
    /// assert_eq!(plan.seed, 42);
    /// assert_eq!(plan.tenants, 1000);
    /// assert_eq!(plan.shape, ArrivalShape::OnOff);
    /// let schedule = plan.schedule();
    /// assert_eq!(schedule.len(), 1000);
    /// assert_eq!(schedule, plan.schedule()); // same seed, same instants
    /// ```
    pub fn parse(spec: &str) -> Result<ArrivalPlan, String> {
        let mut plan = ArrivalPlan::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("arrival spec entry without '=': {part:?}"))?;
            match key {
                "seed" => {
                    plan.seed = value.parse().map_err(|_| format!("bad seed: {value:?}"))?;
                }
                "rate" => {
                    let rate: f64 = value.parse().map_err(|_| format!("bad rate: {value:?}"))?;
                    if !(rate > 0.0 && rate.is_finite()) {
                        return Err(format!("rate must be a positive finite number: {value}"));
                    }
                    plan.rate_per_s = rate;
                }
                "tenants" => {
                    let n: u32 = value
                        .parse()
                        .map_err(|_| format!("bad tenants: {value:?}"))?;
                    if n == 0 {
                        return Err("tenants must be > 0".to_string());
                    }
                    plan.tenants = n;
                }
                "shape" => {
                    plan.shape = match value {
                        "poisson" => ArrivalShape::Poisson,
                        "onoff" => ArrivalShape::OnOff,
                        other => return Err(format!("unknown arrival shape {other:?}")),
                    };
                }
                "on_ms" => {
                    let ms: u64 = value.parse().map_err(|_| format!("bad on_ms: {value:?}"))?;
                    if ms == 0 {
                        return Err("on_ms must be > 0".to_string());
                    }
                    plan.on = SimDuration::from_ms(ms);
                }
                "off_ms" => {
                    let ms: u64 = value
                        .parse()
                        .map_err(|_| format!("bad off_ms: {value:?}"))?;
                    plan.off = SimDuration::from_ms(ms);
                }
                "templates" => {
                    let n: usize = value
                        .parse()
                        .map_err(|_| format!("bad templates: {value:?}"))?;
                    if n == 0 {
                        return Err("templates must be > 0".to_string());
                    }
                    plan.templates = n;
                }
                "start_ns" => {
                    plan.start = SimTime::from_ns(
                        value
                            .parse()
                            .map_err(|_| format!("bad start_ns: {value:?}"))?,
                    );
                }
                other => return Err(format!("unknown arrival spec key {other:?}")),
            }
        }
        Ok(plan)
    }

    /// Reads the `FA_ARRIVALS` environment variable: `Ok(None)` when unset
    /// or empty, the parsed plan otherwise.
    pub fn from_env() -> Result<Option<ArrivalPlan>, String> {
        match std::env::var("FA_ARRIVALS") {
            Ok(s) if !s.trim().is_empty() => ArrivalPlan::parse(&s).map(Some),
            _ => Ok(None),
        }
    }

    /// Precomputes the full arrival schedule from the seed: `tenants`
    /// entries with non-decreasing instants and seeded template picks.
    /// A pure function of the plan — execution never feeds back into it.
    pub fn schedule(&self) -> Vec<Arrival> {
        let mut rng = DeterministicRng::seed_from(self.seed);
        let mut out = Vec::with_capacity(self.tenants as usize);
        let mut t_ns = self.start.as_ns() as f64;
        // On/off bookkeeping (unused for Poisson): the current active
        // window's end, in nanoseconds.
        let mut window_end = t_ns + self.on.as_ns() as f64;
        while out.len() < self.tenants as usize {
            // Exponential gap with mean 1/rate seconds. `next_f64` is in
            // [0, 1), so `1 - u` is in (0, 1] and the log is finite.
            let u = rng.next_f64();
            let gap_ns = -(1.0 - u).ln() / self.rate_per_s * 1.0e9;
            match self.shape {
                ArrivalShape::Poisson => t_ns += gap_ns,
                ArrivalShape::OnOff => {
                    t_ns += gap_ns;
                    // A gap landing past the active window skips the silent
                    // window and restarts at the next burst's opening
                    // instant; the leftover gap is discarded, which keeps
                    // each burst memoryless.
                    if t_ns > window_end {
                        let burst_start = window_end + self.off.as_ns() as f64;
                        window_end = burst_start + self.on.as_ns() as f64;
                        t_ns = burst_start;
                    }
                }
            }
            let template = rng.gen_index(self.templates);
            out.push(Arrival {
                tenant: out.len() as u32,
                at: SimTime::from_ns(t_ns as u64),
                template,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let plan = ArrivalPlan::parse("seed=7,rate=500,tenants=2000").unwrap();
        let a = plan.schedule();
        let b = plan.schedule();
        assert_eq!(a, b);
        assert_eq!(a.len(), 2000);
        for pair in a.windows(2) {
            assert!(pair[0].at <= pair[1].at, "instants must be sorted");
        }
        assert_eq!(a[0].tenant, 0);
        assert_eq!(a.last().unwrap().tenant, 1999);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = ArrivalPlan::parse("seed=1,rate=100,tenants=64")
            .unwrap()
            .schedule();
        let b = ArrivalPlan::parse("seed=2,rate=100,tenants=64")
            .unwrap()
            .schedule();
        assert_ne!(a, b);
    }

    #[test]
    fn poisson_mean_rate_is_roughly_honoured() {
        let plan = ArrivalPlan::parse("seed=3,rate=1000,tenants=5000").unwrap();
        let schedule = plan.schedule();
        let span_s = schedule.last().unwrap().at.as_secs_f64();
        let observed = 5000.0 / span_s;
        assert!(
            (observed - 1000.0).abs() / 1000.0 < 0.1,
            "observed rate {observed}"
        );
    }

    #[test]
    fn onoff_leaves_silent_windows() {
        let plan =
            ArrivalPlan::parse("seed=5,rate=2000,tenants=400,shape=onoff,on_ms=10,off_ms=30")
                .unwrap();
        let schedule = plan.schedule();
        // The largest inter-arrival gap must span at least one off window —
        // the shape is genuinely bursty, not a relabeled Poisson stream.
        let max_gap = schedule
            .windows(2)
            .map(|p| p[1].at.saturating_since(p[0].at))
            .max()
            .unwrap();
        assert!(
            max_gap >= SimDuration::from_ms(30),
            "largest gap {max_gap} never spans an off window"
        );
    }

    #[test]
    fn template_picks_cover_the_template_set() {
        let plan = ArrivalPlan::parse("seed=11,rate=100,tenants=256,templates=3").unwrap();
        let schedule = plan.schedule();
        for t in 0..3usize {
            assert!(
                schedule.iter().any(|a| a.template == t),
                "template {t} never picked"
            );
        }
        assert!(schedule.iter().all(|a| a.template < 3));
    }

    #[test]
    fn malformed_specs_are_rejected() {
        assert!(ArrivalPlan::parse("rate=0").is_err());
        assert!(ArrivalPlan::parse("rate=abc").is_err());
        assert!(ArrivalPlan::parse("tenants=0").is_err());
        assert!(ArrivalPlan::parse("shape=square").is_err());
        assert!(ArrivalPlan::parse("bogus=1").is_err());
        assert!(ArrivalPlan::parse("noequals").is_err());
        assert!(ArrivalPlan::parse("templates=0").is_err());
        assert!(ArrivalPlan::parse("on_ms=0").is_err());
        // Empty entries are tolerated, like the fault spec.
        assert!(ArrivalPlan::parse("seed=1,,rate=10").is_ok());
    }
}
