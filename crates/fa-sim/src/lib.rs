//! Discrete-event simulation engine for the FlashAbacus reproduction.
//!
//! Every hardware substrate in this workspace (flash backbone, lightweight
//! processors, interconnect, host storage stack) is modelled as a set of
//! state machines advanced by a discrete-event loop. This crate provides the
//! shared building blocks:
//!
//! * [`arrivals`] — seeded open-loop arrival processes (`FA_ARRIVALS`):
//!   Poisson and bursty on/off tenant-arrival schedules precomputed from
//!   one seed, so open-loop campaigns replay byte for byte.
//! * [`time`] — nanosecond-resolution simulated time and durations.
//! * [`event`] — a generic, deterministic event queue.
//! * [`engine`] — a small driver that repeatedly pops events and hands them
//!   to a user-supplied dispatcher.
//! * [`deferred`] — time-ordered background work (storage management) that
//!   drivers merge with their foreground completion streams.
//! * [`crash`] — a one-shot power-loss trigger drivers poll to run the
//!   crash/recovery protocol at an arbitrary simulated instant.
//! * [`stats`] — counters, histograms, busy-time trackers and time series
//!   used to produce the paper's figures.
//! * [`resource`] — serialized-bandwidth and FIFO-server resource models
//!   used by links, buses, and flash channels.
//! * [`sharded`] — a conservative time-window sharded engine (classic
//!   PDES): per-shard event lanes, window barriers, and deterministic
//!   sequence-ordered message merge, for parallelism inside one run.
//! * [`rng`] — a tiny deterministic pseudo-random number generator so that
//!   every experiment is exactly reproducible.
//!
//! # Examples
//!
//! ```
//! use fa_sim::event::EventQueue;
//! use fa_sim::time::SimTime;
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.push(SimTime::from_ns(20), "late");
//! q.push(SimTime::from_ns(10), "early");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(t, SimTime::from_ns(10));
//! assert_eq!(ev, "early");
//! ```

pub mod arrivals;
pub mod crash;
pub mod deferred;
pub mod engine;
pub mod event;
pub mod resource;
pub mod rng;
pub mod sharded;
pub mod stats;
pub mod time;

pub use arrivals::{Arrival, ArrivalPlan, ArrivalShape};
pub use crash::PowerLossClock;
pub use deferred::DeferredWorkQueue;
pub use engine::{Engine, StepOutcome};
pub use event::EventQueue;
pub use resource::{FifoServer, SerializedResource};
pub use rng::DeterministicRng;
pub use sharded::{Outbox, ShardPlan, ShardedEngine, Stamped};
pub use stats::{Counter, Histogram, RunningStats, TimeSeries, UtilizationTracker};
pub use time::{SimDuration, SimTime};
