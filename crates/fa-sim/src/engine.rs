//! A minimal event-loop driver.
//!
//! Full-system drivers (`flashabacus::system`, `fa_baseline::system`) own
//! all component state and implement the dispatch logic themselves; this
//! engine factors out the mechanical parts: popping events in time order,
//! advancing the clock monotonically, and bounding the run.

use crate::deferred::DeferredWorkQueue;
use crate::event::EventQueue;
use crate::time::SimTime;

/// Result of driving the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// All events were drained; the simulation reached quiescence.
    Drained,
    /// The step budget was exhausted before the queue drained.
    BudgetExhausted,
    /// The time horizon was reached before the queue drained.
    HorizonReached,
}

/// A generic discrete-event engine around an [`EventQueue`].
///
/// # Examples
///
/// ```
/// use fa_sim::engine::{Engine, StepOutcome};
/// use fa_sim::time::{SimDuration, SimTime};
///
/// // Count down from three by rescheduling an event.
/// let mut engine: Engine<u32> = Engine::new();
/// engine.schedule(SimTime::ZERO, 3);
/// let mut seen = Vec::new();
/// let outcome = engine.run(|now, ev, eng| {
///     seen.push((now, ev));
///     if ev > 1 {
///         eng.push(now + SimDuration::from_ns(10), ev - 1);
///     }
/// });
/// assert_eq!(outcome, StepOutcome::Drained);
/// assert_eq!(seen.len(), 3);
/// assert_eq!(engine.now(), SimTime::from_ns(20));
/// ```
#[derive(Debug)]
pub struct Engine<E> {
    queue: EventQueue<E>,
    /// Deferred background work: delivered by the same `run` loop, but
    /// foreground events win ties at the same instant.
    background: DeferredWorkQueue<E>,
    now: SimTime,
    max_steps: u64,
    horizon: SimTime,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine with no step or time bound.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an engine whose queue has room for `capacity` pending events
    /// up front, for callers that know their event fan-out ahead of time.
    /// (The full-system drivers keep their own completion queues — see
    /// `flashabacus::system`, which pre-sizes its heap the same way.)
    pub fn with_capacity(capacity: usize) -> Self {
        Engine {
            queue: EventQueue::with_capacity(capacity),
            background: DeferredWorkQueue::new(),
            now: SimTime::ZERO,
            max_steps: u64::MAX,
            horizon: SimTime::MAX,
        }
    }

    /// Reserves room for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.queue.reserve(additional);
    }

    /// Bounds the total number of dispatched events. Used as a safety net
    /// against livelock in experiments.
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Bounds the simulated time horizon; events scheduled after the horizon
    /// are left in the queue.
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = horizon;
        self
    }

    /// Current simulated time (the timestamp of the last dispatched event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules an event.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulation time, which
    /// would indicate a causality bug in a component model.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: {at} < {}",
            self.now
        );
        self.queue.push(at, event);
    }

    /// Schedules a batch of events in one call (single up-front
    /// reservation, insertion order preserved as the tie-break).
    ///
    /// # Panics
    ///
    /// Panics if any event is earlier than the current simulation time.
    pub fn schedule_many<I>(&mut self, events: I)
    where
        I: IntoIterator<Item = (SimTime, E)>,
    {
        let now = self.now;
        self.queue
            .schedule_many(events.into_iter().inspect(|(at, _)| {
                assert!(*at >= now, "event scheduled in the past: {at} < {now}");
            }));
    }

    /// Defers `event` as *background* work starting no earlier than `at`:
    /// it is dispatched by the same [`Engine::run`] loop, but a foreground
    /// event scheduled for the same instant is always delivered first
    /// (storage management yields to the data path at ties).
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulation time.
    pub fn defer(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "background event scheduled in the past: {at} < {}",
            self.now
        );
        self.background.push(at, event);
    }

    /// Number of pending foreground events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Number of pending deferred background events.
    pub fn pending_background(&self) -> usize {
        self.background.len()
    }

    /// Total number of events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.queue.total_popped()
    }

    /// Runs until the queue drains, the step budget is exhausted, or the
    /// horizon is reached.
    ///
    /// The handler receives the event timestamp, the event, and a mutable
    /// reference to the queue (so it can schedule follow-up events).
    pub fn run<F>(&mut self, mut handler: F) -> StepOutcome
    where
        F: FnMut(SimTime, E, &mut EventQueue<E>),
    {
        let mut steps = 0u64;
        loop {
            if steps >= self.max_steps {
                return StepOutcome::BudgetExhausted;
            }
            // Merge the foreground queue and the deferred background work:
            // earliest timestamp wins, foreground first on ties.
            let background_first = match (self.queue.peek_time(), self.background.peek_time()) {
                (Some(fg), Some(bg)) => bg < fg,
                (None, Some(_)) => true,
                _ => false,
            };
            let next = if background_first {
                self.background.peek_time()
            } else {
                self.queue.peek_time()
            };
            match next {
                None => return StepOutcome::Drained,
                Some(t) if t > self.horizon => return StepOutcome::HorizonReached,
                Some(_) => {}
            }
            let (t, ev) = if background_first {
                self.background.pop().expect("peeked background vanished")
            } else {
                self.queue.pop().expect("peeked event vanished")
            };
            debug_assert!(t >= self.now, "event queue went backwards in time");
            self.now = t;
            handler(t, ev, &mut self.queue);
            steps += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn drains_in_order() {
        let mut engine: Engine<u8> = Engine::new();
        engine.schedule(SimTime::from_ns(30), 3);
        engine.schedule(SimTime::from_ns(10), 1);
        engine.schedule(SimTime::from_ns(20), 2);
        let mut order = Vec::new();
        let outcome = engine.run(|_, ev, _| order.push(ev));
        assert_eq!(outcome, StepOutcome::Drained);
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(engine.now(), SimTime::from_ns(30));
        assert_eq!(engine.dispatched(), 3);
    }

    #[test]
    fn step_budget_stops_runaway_loops() {
        let mut engine: Engine<()> = Engine::new().with_max_steps(5);
        engine.schedule(SimTime::ZERO, ());
        let outcome = engine.run(|now, _, q| q.push(now + SimDuration::from_ns(1), ()));
        assert_eq!(outcome, StepOutcome::BudgetExhausted);
        assert_eq!(engine.dispatched(), 5);
    }

    #[test]
    fn horizon_leaves_future_events_pending() {
        let mut engine: Engine<u8> = Engine::new().with_horizon(SimTime::from_ns(15));
        engine.schedule(SimTime::from_ns(10), 1);
        engine.schedule(SimTime::from_ns(20), 2);
        let mut seen = Vec::new();
        let outcome = engine.run(|_, ev, _| seen.push(ev));
        assert_eq!(outcome, StepOutcome::HorizonReached);
        assert_eq!(seen, vec![1]);
        assert_eq!(engine.pending(), 1);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut engine: Engine<u8> = Engine::new();
        engine.schedule(SimTime::from_ns(10), 1);
        engine.run(|_, _, _| {});
        engine.schedule(SimTime::from_ns(5), 2);
    }

    #[test]
    fn schedule_many_drains_in_order() {
        let mut engine: Engine<u8> = Engine::with_capacity(3);
        engine.schedule_many([
            (SimTime::from_ns(30), 3),
            (SimTime::from_ns(10), 1),
            (SimTime::from_ns(20), 2),
        ]);
        engine.reserve(1);
        let mut order = Vec::new();
        assert_eq!(engine.run(|_, ev, _| order.push(ev)), StepOutcome::Drained);
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn schedule_many_rejects_past_events() {
        let mut engine: Engine<u8> = Engine::new();
        engine.schedule(SimTime::from_ns(10), 1);
        engine.run(|_, _, _| {});
        engine.schedule_many([(SimTime::from_ns(5), 2)]);
    }

    #[test]
    fn deferred_background_events_interleave_and_yield_ties() {
        let mut engine: Engine<&'static str> = Engine::new();
        engine.schedule(SimTime::from_ns(10), "fg-10");
        engine.schedule(SimTime::from_ns(30), "fg-30");
        engine.defer(SimTime::from_ns(5), "bg-5");
        engine.defer(SimTime::from_ns(10), "bg-10");
        assert_eq!(engine.pending(), 2);
        assert_eq!(engine.pending_background(), 2);
        let mut order = Vec::new();
        let outcome = engine.run(|_, ev, _| order.push(ev));
        assert_eq!(outcome, StepOutcome::Drained);
        // Background runs when strictly earlier; foreground wins the tie
        // at t=10.
        assert_eq!(order, vec!["bg-5", "fg-10", "bg-10", "fg-30"]);
        assert_eq!(engine.pending_background(), 0);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn deferring_in_the_past_panics() {
        let mut engine: Engine<u8> = Engine::new();
        engine.schedule(SimTime::from_ns(10), 1);
        engine.run(|_, _, _| {});
        engine.defer(SimTime::from_ns(5), 2);
    }
}
