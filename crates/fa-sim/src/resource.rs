//! Shared-resource timing models.
//!
//! Two patterns recur throughout the simulated hardware:
//!
//! * A *serialized bandwidth resource*: a link, bus, or flash channel that
//!   can move one transfer at a time at a fixed byte rate (PCIe, SRIO,
//!   crossbar ports, NV-DDR2 channels, DDR3L, the host DMI link).
//! * A *FIFO server*: a unit that serves one request at a time with a
//!   caller-supplied service time (flash dies, host storage-stack stages).
//!
//! Both hand out `(start, end)` windows and keep utilization statistics, so
//! contention and queueing delay fall out naturally from the reservation
//! discipline without a full event-per-byte simulation.

use crate::stats::UtilizationTracker;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A resource that serializes transfers at a fixed bandwidth.
///
/// # Examples
///
/// ```
/// use fa_sim::resource::SerializedResource;
/// use fa_sim::time::SimTime;
///
/// // A 1 GB/s link moving two back-to-back 1 MB transfers.
/// let mut link = SerializedResource::new("pcie", 1e9);
/// let first = link.reserve(SimTime::ZERO, 1_000_000);
/// let second = link.reserve(SimTime::ZERO, 1_000_000);
/// assert_eq!(first.end, second.start);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SerializedResource {
    name: String,
    bytes_per_sec: f64,
    next_free: SimTime,
    busy: UtilizationTracker,
    bytes_moved: u64,
    transfers: u64,
}

/// A reservation window on a serialized resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// When the resource actually starts serving this request.
    pub start: SimTime,
    /// When the request completes.
    pub end: SimTime,
}

impl Reservation {
    /// Queueing delay plus service time relative to the request instant.
    pub fn latency_from(&self, requested: SimTime) -> SimDuration {
        self.end.saturating_since(requested)
    }
}

impl SerializedResource {
    /// Creates a resource with the given name and bandwidth in bytes/second.
    pub fn new(name: impl Into<String>, bytes_per_sec: f64) -> Self {
        SerializedResource {
            name: name.into(),
            bytes_per_sec,
            next_free: SimTime::ZERO,
            busy: UtilizationTracker::new(),
            bytes_moved: 0,
            transfers: 0,
        }
    }

    /// The resource name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Configured bandwidth in bytes per second.
    pub fn bandwidth(&self) -> f64 {
        self.bytes_per_sec
    }

    /// Earliest instant at which a new transfer could start.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Reserves the resource for a `bytes`-sized transfer requested at `now`
    /// and returns the granted service window.
    pub fn reserve(&mut self, now: SimTime, bytes: u64) -> Reservation {
        let start = now.max(self.next_free);
        let service = SimDuration::for_transfer(bytes, self.bytes_per_sec);
        let end = start + service;
        self.next_free = end;
        self.busy.add_busy(service);
        self.bytes_moved += bytes;
        self.transfers += 1;
        Reservation { start, end }
    }

    /// Reserves the resource for a `bytes`-sized transfer whose service
    /// time the caller has already computed (and typically cached) via
    /// [`SimDuration::for_transfer`]. Identical accounting to
    /// [`SerializedResource::reserve`]; hot loops that move fixed-size
    /// payloads use this to hoist the bytes-to-duration conversion out of
    /// the per-transfer path.
    pub fn reserve_prepaid(
        &mut self,
        now: SimTime,
        bytes: u64,
        service: SimDuration,
    ) -> Reservation {
        debug_assert_eq!(
            service,
            SimDuration::for_transfer(bytes, self.bytes_per_sec)
        );
        let start = now.max(self.next_free);
        let end = start + service;
        self.next_free = end;
        self.busy.add_busy(service);
        self.bytes_moved += bytes;
        self.transfers += 1;
        Reservation { start, end }
    }

    /// Reserves the resource for an explicit service duration (used when a
    /// transfer cost is dominated by protocol overhead rather than payload).
    pub fn reserve_duration(&mut self, now: SimTime, service: SimDuration) -> Reservation {
        let start = now.max(self.next_free);
        let end = start + service;
        self.next_free = end;
        self.busy.add_busy(service);
        self.transfers += 1;
        Reservation { start, end }
    }

    /// Total bytes moved through the resource.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Number of transfers served.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total busy time accumulated (up to `now`).
    pub fn busy_time(&self, now: SimTime) -> SimDuration {
        self.busy.busy_time(now)
    }

    /// Busy fraction over the window ending at `now`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.busy.utilization(now)
    }

    /// Achieved throughput in bytes/second over the window ending at `now`.
    pub fn achieved_throughput(&self, now: SimTime) -> f64 {
        let wall = now.saturating_since(SimTime::ZERO).as_secs_f64();
        if wall == 0.0 {
            0.0
        } else {
            self.bytes_moved as f64 / wall
        }
    }
}

/// A single-server FIFO queue with caller-supplied service times.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FifoServer {
    name: String,
    next_free: SimTime,
    busy: UtilizationTracker,
    served: u64,
    total_wait: SimDuration,
}

impl FifoServer {
    /// Creates an idle server.
    pub fn new(name: impl Into<String>) -> Self {
        FifoServer {
            name: name.into(),
            next_free: SimTime::ZERO,
            busy: UtilizationTracker::new(),
            served: 0,
            total_wait: SimDuration::ZERO,
        }
    }

    /// The server name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Earliest instant at which a new request could start service.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Enqueues a request arriving at `now` with the given service time and
    /// returns its service window.
    pub fn serve(&mut self, now: SimTime, service: SimDuration) -> Reservation {
        let start = now.max(self.next_free);
        let end = start + service;
        self.total_wait += start.saturating_since(now);
        self.next_free = end;
        self.busy.add_busy(service);
        self.served += 1;
        Reservation { start, end }
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Mean queueing delay experienced by requests so far.
    pub fn mean_wait(&self) -> SimDuration {
        if self.served == 0 {
            SimDuration::ZERO
        } else {
            self.total_wait / self.served
        }
    }

    /// Total busy time (up to `now`).
    pub fn busy_time(&self, now: SimTime) -> SimDuration {
        self.busy.busy_time(now)
    }

    /// Busy fraction over the window ending at `now`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.busy.utilization(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialized_transfers_queue_behind_each_other() {
        let mut r = SerializedResource::new("link", 1_000_000_000.0); // 1 GB/s
        let a = r.reserve(SimTime::ZERO, 1_000_000); // 1 ms
        let b = r.reserve(SimTime::from_ns(10), 2_000_000); // queued behind a
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(a.end, SimTime::from_ms(1));
        assert_eq!(b.start, a.end);
        assert_eq!(b.end.as_ns(), 3_000_000);
        assert_eq!(r.bytes_moved(), 3_000_000);
        assert_eq!(r.transfers(), 2);
    }

    #[test]
    fn idle_gap_is_not_counted_busy() {
        let mut r = SerializedResource::new("link", 1e9);
        r.reserve(SimTime::ZERO, 1_000); // 1 us busy
        r.reserve(SimTime::from_us(100), 1_000); // after a long idle gap
        let now = SimTime::from_us(101);
        assert_eq!(r.busy_time(now).as_ns(), 2_000);
        assert!(r.utilization(now) < 0.05);
    }

    #[test]
    fn reservation_latency_includes_queueing() {
        let mut r = SerializedResource::new("bus", 1e9);
        r.reserve(SimTime::ZERO, 5_000);
        let req_at = SimTime::from_ns(100);
        let res = r.reserve(req_at, 1_000);
        assert_eq!(res.start, SimTime::from_us(5));
        assert_eq!(res.latency_from(req_at).as_ns(), 5_000 - 100 + 1_000);
    }

    #[test]
    fn fifo_server_accumulates_wait() {
        let mut s = FifoServer::new("die");
        let a = s.serve(SimTime::ZERO, SimDuration::from_us(81));
        let b = s.serve(SimTime::ZERO, SimDuration::from_us(81));
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(b.start, SimTime::from_us(81));
        assert_eq!(s.served(), 2);
        assert_eq!(s.mean_wait().as_ns(), 81_000 / 2); // (0 + 81us)/2
    }

    #[test]
    fn zero_bandwidth_is_instantaneous() {
        let mut r = SerializedResource::new("ideal", 0.0);
        let res = r.reserve(SimTime::from_ns(5), 1 << 20);
        assert_eq!(res.start, res.end);
    }

    #[test]
    fn explicit_duration_reservation() {
        let mut r = SerializedResource::new("ctrl", 1e9);
        let res = r.reserve_duration(SimTime::ZERO, SimDuration::from_ns(250));
        assert_eq!(res.end.as_ns(), 250);
        assert_eq!(r.transfers(), 1);
    }
}
