//! Deterministic event queue.
//!
//! Events are ordered first by their scheduled time and then by insertion
//! order, so two events scheduled for the same instant are delivered in the
//! order they were pushed. This tie-breaking rule is what makes the whole
//! simulation deterministic and therefore every figure reproducible.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A single scheduled entry in the queue: the ordering key plus the arena
/// slot holding the event payload. Keeping the payload out of the heap
/// means every sift moves a small fixed-size key, not the event itself.
#[derive(Debug)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of simulation events.
///
/// # Examples
///
/// ```
/// use fa_sim::event::EventQueue;
/// use fa_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ns(5), "b");
/// q.push(SimTime::from_ns(5), "c");
/// q.push(SimTime::from_ns(1), "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, vec!["a", "b", "c"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled>,
    /// Pooled event payloads; heap entries reference slots here. Popped
    /// slots are recycled through `free`, so a steady-state queue performs
    /// no per-event allocation no matter how large the payload type is.
    arena: Vec<Option<E>>,
    /// Arena slots whose payload was taken, awaiting reuse.
    free: Vec<u32>,
    next_seq: u64,
    pushed: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue with room for `capacity` pending events, so
    /// drivers that know their fan-out pay no per-push reallocation.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            arena: Vec::with_capacity(capacity),
            free: Vec::new(),
            next_seq: 0,
            pushed: 0,
            popped: 0,
        }
    }

    /// Reserves room for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
        self.arena
            .reserve(additional.saturating_sub(self.free.len()));
    }

    /// Schedules `event` for delivery at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.arena[slot as usize] = Some(event);
                slot
            }
            None => {
                self.arena.push(Some(event));
                (self.arena.len() - 1) as u32
            }
        };
        self.heap.push(Scheduled { at, seq, slot });
    }

    /// Schedules a batch of events in one call, reserving space up front.
    /// Events keep their iteration order as the insertion-order tie-break,
    /// exactly as if they had been pushed one by one.
    pub fn schedule_many<I>(&mut self, events: I)
    where
        I: IntoIterator<Item = (SimTime, E)>,
    {
        let iter = events.into_iter();
        let (lower, _) = iter.size_hint();
        self.heap.reserve(lower);
        for (at, event) in iter {
            self.push(at, event);
        }
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| {
            self.popped += 1;
            let event = self.arena[s.slot as usize]
                .take()
                .expect("heap entry references an occupied arena slot");
            self.free.push(s.slot);
            (s.at, event)
        })
    }

    /// Returns the timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total number of events ever popped.
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.arena.clear();
        self.free.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_insertion() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), 1u32);
        q.push(SimTime::from_ns(10), 2);
        q.push(SimTime::from_ns(5), 3);
        q.push(SimTime::from_ns(20), 4);
        let out: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(out, vec![3, 1, 2, 4]);
    }

    #[test]
    fn counts_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_ns(7), ());
        q.push(SimTime::from_ns(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(3)));
        q.pop();
        q.pop();
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.total_popped(), 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn clear_discards_pending() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1u8);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn schedule_many_preserves_insertion_order_tie_break() {
        let mut q = EventQueue::with_capacity(4);
        q.schedule_many([
            (SimTime::from_ns(10), 1u32),
            (SimTime::from_ns(10), 2),
            (SimTime::from_ns(5), 3),
        ]);
        q.push(SimTime::from_ns(10), 4);
        let out: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(out, vec![3, 1, 2, 4]);
        assert_eq!(q.total_pushed(), 4);
    }

    #[test]
    fn arena_slots_recycle_after_pop() {
        let mut q = EventQueue::new();
        for round in 0..64u64 {
            q.push(SimTime::from_ns(round), round);
            assert_eq!(q.pop(), Some((SimTime::from_ns(round), round)));
        }
        // Steady-state churn reuses the freed slot instead of growing.
        assert_eq!(q.arena.len(), 1);
        assert_eq!(q.total_pushed(), 64);
    }

    #[test]
    fn reserve_does_not_disturb_pending_events() {
        let mut q = EventQueue::with_capacity(1);
        q.push(SimTime::from_ns(2), "b");
        q.reserve(64);
        q.push(SimTime::from_ns(1), "a");
        assert_eq!(q.pop(), Some((SimTime::from_ns(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_ns(2), "b")));
    }
}
