//! Simulated time.
//!
//! All components in the simulator agree on a single monotonically
//! increasing clock with nanosecond resolution. A nanosecond matches the
//! 1 GHz LWP clock of the paper's prototype (one core cycle == 1 ns) while
//! still comfortably representing millisecond-scale flash program
//! operations in a `u64`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute point in simulated time, in nanoseconds since simulation
/// start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `ns` nanoseconds after the epoch.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant `us` microseconds after the epoch.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant `ms` milliseconds after the epoch.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Returns the number of whole nanoseconds since the epoch.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Returns the time since the epoch expressed in microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the time since the epoch expressed in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Returns the duration elapsed since `earlier`, saturating to zero if
    /// `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of `self` and `other`.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of `self` and `other`.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The longest representable duration. Additions saturate, so this
    /// acts as an "unbounded" sentinel (e.g. an infinite lookahead for the
    /// sharded engine).
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `ns` nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration of `us` microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration of `ms` milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from a floating-point number of seconds, rounding
    /// to the nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * 1_000_000_000.0).round() as u64)
    }

    /// Creates a duration from a floating-point number of nanoseconds,
    /// rounding to the nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    pub fn from_ns_f64(ns: f64) -> Self {
        assert!(ns.is_finite() && ns >= 0.0, "invalid duration: {ns}");
        SimDuration(ns.round() as u64)
    }

    /// Returns the number of whole nanoseconds in this duration.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Returns the duration in microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the duration in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Returns true if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Saturating subtraction of durations.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Returns the time needed to move `bytes` bytes at `bytes_per_sec`.
    ///
    /// A zero bandwidth yields [`SimDuration::ZERO`]; callers use this for
    /// idealized (infinitely fast) paths.
    pub fn for_transfer(bytes: u64, bytes_per_sec: f64) -> SimDuration {
        if bytes_per_sec <= 0.0 || bytes == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(bytes as f64 / bytes_per_sec)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_ns_f64(self.0 as f64 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_us(3);
        let d = SimDuration::from_ns(500);
        assert_eq!((t + d).as_ns(), 3_500);
        assert_eq!(((t + d) - t).as_ns(), 500);
    }

    #[test]
    fn conversions_are_consistent() {
        assert_eq!(SimTime::from_ms(1).as_ns(), 1_000_000);
        assert_eq!(SimTime::from_us(81).as_ns(), 81_000);
        assert!((SimDuration::from_ms(2).as_secs_f64() - 0.002).abs() < 1e-12);
    }

    #[test]
    fn transfer_duration_matches_bandwidth() {
        // 1 GiB/s over 1 MiB should take ~1/1024 s.
        let d = SimDuration::for_transfer(1 << 20, (1u64 << 30) as f64);
        assert!((d.as_secs_f64() - 1.0 / 1024.0).abs() < 1e-9);
        assert_eq!(SimDuration::for_transfer(0, 1e9), SimDuration::ZERO);
        assert_eq!(SimDuration::for_transfer(100, 0.0), SimDuration::ZERO);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(20);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a).as_ns(), 10);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = SimTime::from_ns(1) - SimTime::from_ns(2);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_us(10);
        assert_eq!((d * 3).as_ns(), 30_000);
        assert_eq!((d / 2).as_ns(), 5_000);
        assert_eq!((d * 1.5).as_ns(), 15_000);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_ns).sum();
        assert_eq!(total.as_ns(), 10);
    }
}
