//! Deferred background work that contends with foreground events.
//!
//! The full-system drivers dispatch foreground completions from their own
//! queues; storage management (garbage collection, metadata journaling)
//! must *not* execute instantaneously inside a foreground step — it is
//! background work with a start time of its own that contends for the same
//! hardware. [`DeferredWorkQueue`] holds such work items keyed by the
//! earliest instant they may start, with the same deterministic
//! (time, insertion-order) delivery contract as [`EventQueue`], so a driver
//! can merge its foreground stream and the background stream by comparing
//! head timestamps.
//!
//! [`crate::engine::Engine`] integrates the queue directly: events pushed
//! through [`crate::engine::Engine::defer`] are delivered by the same
//! `run` loop, with foreground events winning ties at the same instant.

use crate::event::EventQueue;
use crate::time::SimTime;

/// A time-ordered queue of deferred background work items.
///
/// # Examples
///
/// ```
/// use fa_sim::deferred::DeferredWorkQueue;
/// use fa_sim::time::SimTime;
///
/// let mut q: DeferredWorkQueue<&'static str> = DeferredWorkQueue::new();
/// q.push(SimTime::from_ns(50), "gc-pass");
/// assert_eq!(q.peek_time(), Some(SimTime::from_ns(50)));
/// // Not ready before its start time…
/// assert!(q.pop_ready(SimTime::from_ns(40)).is_none());
/// // …delivered once the clock reaches it.
/// let (t, work) = q.pop_ready(SimTime::from_ns(50)).unwrap();
/// assert_eq!((t, work), (SimTime::from_ns(50), "gc-pass"));
/// ```
#[derive(Debug)]
pub struct DeferredWorkQueue<W> {
    queue: EventQueue<W>,
    started: u64,
}

impl<W> Default for DeferredWorkQueue<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> DeferredWorkQueue<W> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        DeferredWorkQueue {
            queue: EventQueue::new(),
            started: 0,
        }
    }

    /// Schedules `work` to start no earlier than `start`. Items sharing a
    /// start time are delivered in insertion order (deterministic).
    pub fn push(&mut self, start: SimTime, work: W) {
        self.queue.push(start, work);
    }

    /// Earliest start time of any pending work item.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Pops the earliest work item unconditionally.
    pub fn pop(&mut self) -> Option<(SimTime, W)> {
        let item = self.queue.pop();
        if item.is_some() {
            self.started += 1;
        }
        item
    }

    /// Pops the earliest work item only if its start time is at or before
    /// `now` — the merge primitive for drivers interleaving background work
    /// with a foreground completion stream.
    pub fn pop_ready(&mut self, now: SimTime) -> Option<(SimTime, W)> {
        match self.queue.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Pending work items.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no work is pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total work items ever started (popped).
    pub fn total_started(&self) -> u64 {
        self.started
    }

    /// Drops all pending work.
    pub fn clear(&mut self) {
        self.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_then_insertion_order() {
        let mut q = DeferredWorkQueue::new();
        q.push(SimTime::from_ns(10), 1u32);
        q.push(SimTime::from_ns(10), 2);
        q.push(SimTime::from_ns(5), 3);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, w)| w).collect();
        assert_eq!(order, vec![3, 1, 2]);
        assert_eq!(q.total_started(), 3);
    }

    #[test]
    fn pop_ready_respects_start_times() {
        let mut q = DeferredWorkQueue::new();
        q.push(SimTime::from_ns(30), "later");
        q.push(SimTime::from_ns(20), "sooner");
        assert!(q.pop_ready(SimTime::from_ns(19)).is_none());
        assert_eq!(
            q.pop_ready(SimTime::from_ns(25)),
            Some((SimTime::from_ns(20), "sooner"))
        );
        assert!(q.pop_ready(SimTime::from_ns(25)).is_none());
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
    }
}
