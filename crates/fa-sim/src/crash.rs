//! Power-loss scheduling for fault-injection experiments.
//!
//! A [`PowerLossClock`] arms a single simulated power-loss instant. The
//! driver polls it between events; the first poll at or past the armed
//! instant *trips* the clock — exactly once — and the driver runs its
//! crash protocol (final supercap-backed journal dump, then recovery by
//! journal replay). Subsequent polls return `false`, so the protocol
//! cannot re-fire and the run continues deterministically after recovery.

use crate::time::SimTime;

/// One-shot power-loss trigger.
///
/// # Examples
///
/// ```
/// use fa_sim::crash::PowerLossClock;
/// use fa_sim::time::SimTime;
///
/// let mut clock = PowerLossClock::new(Some(SimTime::from_ns(500)));
/// assert!(!clock.check(SimTime::from_ns(499)));
/// assert!(clock.check(SimTime::from_ns(500))); // trips exactly once
/// assert!(!clock.check(SimTime::from_ns(501)));
/// assert!(clock.tripped());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowerLossClock {
    at: Option<SimTime>,
    tripped: bool,
}

impl PowerLossClock {
    /// Arms the clock at `at`; `None` builds a clock that never fires.
    pub fn new(at: Option<SimTime>) -> Self {
        PowerLossClock { at, tripped: false }
    }

    /// A clock that never fires (fault-free runs).
    pub fn disarmed() -> Self {
        Self::new(None)
    }

    /// True when a power-loss instant is armed and has not fired yet.
    pub fn armed(&self) -> bool {
        self.at.is_some() && !self.tripped
    }

    /// The armed instant, if any.
    pub fn at(&self) -> Option<SimTime> {
        self.at
    }

    /// True once the clock has fired.
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// Polls the clock at simulated instant `now`. Returns `true` exactly
    /// once: on the first poll at or past the armed instant.
    pub fn check(&mut self, now: SimTime) -> bool {
        match self.at {
            Some(at) if !self.tripped && now >= at => {
                self.tripped = true;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_clock_never_fires() {
        let mut c = PowerLossClock::disarmed();
        assert!(!c.armed());
        assert!(!c.check(SimTime::from_ms(1_000)));
        assert!(!c.tripped());
    }

    #[test]
    fn fires_exactly_once_at_or_past_the_armed_instant() {
        let mut c = PowerLossClock::new(Some(SimTime::from_ns(100)));
        assert!(c.armed());
        assert!(!c.check(SimTime::from_ns(99)));
        assert!(c.check(SimTime::from_ns(250))); // first poll past the mark
        assert!(!c.check(SimTime::from_ns(251)));
        assert!(c.tripped());
        assert!(!c.armed());
        assert_eq!(c.at(), Some(SimTime::from_ns(100)));
    }
}
