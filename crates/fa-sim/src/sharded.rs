//! Channel-sharded conservative-window event execution.
//!
//! The serial [`Engine`](crate::engine::Engine) dispatches one event at a
//! time in global timestamp order. For workloads whose state decomposes
//! into independent *shards* (the flash backbone's channels being the
//! motivating case), that total order is stronger than necessary: events
//! bound for different shards only interact through explicitly exchanged
//! messages, so each shard can advance independently through a bounded
//! *window* of simulated time and exchange its cross-shard messages at a
//! synchronization barrier — classic conservative parallel discrete-event
//! simulation.
//!
//! The pieces:
//!
//! * [`ShardPlan`] — how many shards exist, which shard a key maps to, and
//!   how many OS workers to use (never more than the machine offers).
//! * [`ShardedEngine`] — per-shard time-ordered event lanes driven
//!   window-by-window. Within a window each shard's handler runs with
//!   exclusive access to that shard's state (in parallel across shards
//!   when workers are available); cross-shard messages are collected in
//!   per-shard [`Outbox`]es and merged *deterministically* — by global
//!   submission sequence number, never by thread completion order — at the
//!   window barrier.
//! * [`Stamped`] — a sequence-numbered, time-stamped cross-shard message.
//!
//! # Determinism
//!
//! Every event carries the globally unique sequence number it was
//! scheduled with. Handlers run shard-locally in per-lane time order, so
//! each outbox is produced in a deterministic order, and the barrier merge
//! orders messages by sequence number alone. The result is byte-identical
//! output for *any* shard count and *any* worker count — sharding changes
//! wall-clock time, never simulated behaviour. The engine's unit tests
//! pin this by replaying one workload at several shard counts.
//!
//! # Lookahead
//!
//! The window length is the engine's *lookahead*: the minimum simulated
//! time that must elapse before work done on one shard can influence
//! another. A caller whose cross-shard coupling happens only at explicit
//! barriers (the flash data path replays its global SRIO fan-in at the
//! barrier, see `fa-flash`) can pass [`SimDuration::MAX`] and run a whole
//! submission batch as a single window; callers with genuine cross-shard
//! feedback derive the lookahead from their minimum cross-shard latency
//! and the engine asserts that no delivered message schedules work inside
//! a window that has already run.

use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Shard layout: how many logical shards, and how work keys map to them.
///
/// The shard count is *logical* — it controls how state is partitioned and
/// is what results must be invariant to. The worker count is *physical* —
/// how many OS threads actually execute shards — and is capped by the
/// machine. A 4-shard run on a single-core box executes its shards inline,
/// one after the other, and must produce exactly the bytes the 4-shard run
/// on a 16-core box does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    shards: usize,
}

impl ShardPlan {
    /// A plan with `shards` logical shards (clamped to at least one).
    pub fn new(shards: usize) -> Self {
        ShardPlan {
            shards: shards.max(1),
        }
    }

    /// The serial plan: one shard.
    pub fn single() -> Self {
        Self::new(1)
    }

    /// Reads the shard count from the `FA_SHARDS` environment variable
    /// (default 1; zero or unparsable values fall back to 1).
    pub fn from_env() -> Self {
        let shards = std::env::var("FA_SHARDS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(1);
        Self::new(shards)
    }

    /// Number of logical shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key` (round-robin partition).
    pub fn shard_of(&self, key: usize) -> usize {
        key % self.shards
    }

    /// Physical workers to use: the shard count capped by the parallelism
    /// the machine reports. Results never depend on this.
    pub fn workers(&self) -> usize {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.shards.min(cores)
    }
}

/// A sequence-numbered, time-stamped cross-shard message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamped<M> {
    /// Global submission sequence number of the event that produced this
    /// message — the deterministic merge key at the barrier.
    pub seq: u64,
    /// Simulated instant the message carries (e.g. a completion time).
    pub at: SimTime,
    /// The payload.
    pub msg: M,
}

/// A shard's outgoing cross-shard messages for the current window.
///
/// Handlers run in per-lane time order, and lanes are filled in global
/// sequence order, so each outbox is sorted by `seq` by construction.
#[derive(Debug)]
pub struct Outbox<M> {
    msgs: Vec<Stamped<M>>,
}

impl<M> Outbox<M> {
    fn with_capacity(n: usize) -> Self {
        Outbox {
            msgs: Vec::with_capacity(n),
        }
    }

    /// Queues a message for delivery at the window barrier.
    pub fn send(&mut self, seq: u64, at: SimTime, msg: M) {
        self.msgs.push(Stamped { seq, at, msg });
    }

    /// Messages queued so far this window.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }
}

/// Merges per-shard outboxes into one stream ordered by sequence number.
///
/// Sequence numbers are globally unique, so the order depends only on the
/// events themselves — never on which worker finished first. The data-path
/// case produces per-outbox streams that are already seq-sorted, which the
/// sort detects and handles in linear time.
fn merge_outboxes<M>(outboxes: Vec<Outbox<M>>) -> Vec<Stamped<M>> {
    let total: usize = outboxes.iter().map(|o| o.msgs.len()).sum();
    let mut merged = Vec::with_capacity(total);
    for outbox in outboxes {
        merged.extend(outbox.msgs);
    }
    merged.sort_unstable_by_key(|m| m.seq);
    merged
}

/// A conservative time-window sharded discrete-event engine.
///
/// Events are scheduled with a shard *key*; each shard keeps its own
/// time-ordered lane. [`ShardedEngine::run`] repeatedly forms a window
/// `[earliest pending, earliest pending + lookahead]`, lets every shard
/// process its in-window events against its own state slice (in parallel
/// across shards when workers are available), then merges the shards'
/// outboxes by sequence number and hands each message to the caller's
/// `deliver` callback, which may schedule follow-up events — necessarily
/// at or after the barrier, which is what the lookahead guarantees.
#[derive(Debug)]
pub struct ShardedEngine<E> {
    plan: ShardPlan,
    lookahead: SimDuration,
    lanes: Vec<VecDeque<(SimTime, u64, E)>>,
    next_seq: u64,
    now: SimTime,
    windows: u64,
}

impl<E: Send> ShardedEngine<E> {
    /// Creates an engine for `plan` with the given lookahead horizon.
    pub fn new(plan: ShardPlan, lookahead: SimDuration) -> Self {
        Self::with_capacity(plan, lookahead, 0)
    }

    /// Creates an engine with per-lane capacity reserved up front (the
    /// data path knows its command fan-out before scheduling).
    pub fn with_capacity(plan: ShardPlan, lookahead: SimDuration, per_lane: usize) -> Self {
        ShardedEngine {
            plan,
            lookahead,
            lanes: (0..plan.shards())
                .map(|_| VecDeque::with_capacity(per_lane))
                .collect(),
            next_seq: 0,
            now: SimTime::ZERO,
            windows: 0,
        }
    }

    /// The shard plan in force.
    pub fn plan(&self) -> ShardPlan {
        self.plan
    }

    /// Pending events across all lanes.
    pub fn pending(&self) -> usize {
        self.lanes.iter().map(|l| l.len()).sum()
    }

    /// Windows (barrier syncs) completed so far.
    pub fn windows_completed(&self) -> u64 {
        self.windows
    }

    /// The current barrier time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules an event for the shard owning `key` and returns its
    /// global sequence number.
    ///
    /// Lanes are kept time-ordered (ties resolved by sequence number, i.e.
    /// submission order). Scheduling a time-ordered stream — the data-path
    /// case — is a pure O(1) append; out-of-order arrivals (barrier
    /// deliveries racing by sequence) sorted-insert from the back.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current barrier time — conservative
    /// synchronization forbids scheduling into a window that already ran.
    pub fn schedule(&mut self, key: usize, at: SimTime, event: E) -> u64 {
        assert!(
            at >= self.now,
            "event scheduled before the barrier: {at} < {}",
            self.now
        );
        let lane = &mut self.lanes[self.plan.shard_of(key)];
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut pos = lane.len();
        while pos > 0 && lane[pos - 1].0 > at {
            pos -= 1;
        }
        if pos == lane.len() {
            lane.push_back((at, seq, event));
        } else {
            lane.insert(pos, (at, seq, event));
        }
        seq
    }

    /// Drives all pending events to quiescence in conservative windows.
    ///
    /// `states` holds one exclusive state slice per shard. `handler` runs
    /// shard-locally: `(shard, state, at, seq, event, outbox)`. `deliver`
    /// runs serially at each barrier over the seq-merged messages and may
    /// return a follow-up event to schedule.
    pub fn run<S, M, FH, FD>(&mut self, states: &mut [S], handler: FH, mut deliver: FD)
    where
        S: Send,
        M: Send,
        FH: Fn(usize, &mut S, SimTime, u64, &E, &mut Outbox<M>) + Sync,
        FD: FnMut(Stamped<M>) -> Option<(usize, SimTime, E)>,
    {
        assert_eq!(
            states.len(),
            self.plan.shards(),
            "one state slice per shard"
        );
        let workers = self.plan.workers();
        let next_start = |lanes: &[VecDeque<(SimTime, u64, E)>]| {
            lanes
                .iter()
                .filter_map(|l| l.front().map(|&(t, _, _)| t))
                .min()
        };
        while let Some(start) = next_start(&self.lanes) {
            // The window covers [start, start + lookahead]; saturating add
            // makes SimDuration::MAX mean "one window for everything".
            let end = start + self.lookahead;
            let mut window_max = start;
            let batches: Vec<Vec<(SimTime, u64, E)>> = self
                .lanes
                .iter_mut()
                .map(|lane| {
                    let mut batch = Vec::new();
                    while lane.front().is_some_and(|&(t, _, _)| t <= end) {
                        let ev = lane.pop_front().expect("checked front");
                        window_max = window_max.max(ev.0);
                        batch.push(ev);
                    }
                    batch
                })
                .collect();
            let outboxes = run_shard_batches(workers, states, batches, &handler);
            self.windows += 1;
            self.now = window_max.max(self.now);
            for msg in merge_outboxes(outboxes) {
                if let Some((key, at, ev)) = deliver(msg) {
                    self.schedule(key, at, ev);
                }
            }
        }
    }
}

/// Executes one window's per-shard batches: inline when only one worker is
/// available (or there is one shard), on scoped threads otherwise. Shards
/// are assigned to workers round-robin and outboxes are returned indexed
/// by shard, so the result is independent of thread scheduling.
fn run_shard_batches<S, E, M, FH>(
    workers: usize,
    states: &mut [S],
    batches: Vec<Vec<(SimTime, u64, E)>>,
    handler: &FH,
) -> Vec<Outbox<M>>
where
    S: Send,
    E: Send,
    M: Send,
    FH: Fn(usize, &mut S, SimTime, u64, &E, &mut Outbox<M>) + Sync,
{
    let shards = states.len();
    if workers <= 1 || shards <= 1 {
        let mut outboxes = Vec::with_capacity(shards);
        for (shard, (state, batch)) in states.iter_mut().zip(batches).enumerate() {
            let mut outbox = Outbox::with_capacity(batch.len());
            for (at, seq, ev) in &batch {
                handler(shard, state, *at, *seq, ev, &mut outbox);
            }
            outboxes.push(outbox);
        }
        return outboxes;
    }
    type ShardWork<'a, S, E> = Vec<(usize, &'a mut S, Vec<(SimTime, u64, E)>)>;
    let mut work: Vec<ShardWork<S, E>> = (0..workers).map(|_| Vec::new()).collect();
    for (shard, (state, batch)) in states.iter_mut().zip(batches).enumerate() {
        work[shard % workers].push((shard, state, batch));
    }
    let mut outboxes: Vec<Option<Outbox<M>>> = (0..shards).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = work
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    let mut done = Vec::with_capacity(chunk.len());
                    for (shard, state, batch) in chunk {
                        let mut outbox = Outbox::with_capacity(batch.len());
                        for (at, seq, ev) in &batch {
                            handler(shard, state, *at, *seq, ev, &mut outbox);
                        }
                        done.push((shard, outbox));
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            for (shard, outbox) in handle.join().expect("shard worker panicked") {
                outboxes[shard] = Some(outbox);
            }
        }
    });
    outboxes
        .into_iter()
        .map(|o| o.expect("every shard ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy sharded workload mirroring the flash layout: 12 logical FIFO
    /// resources (the "channels") are partitioned over the shards, an
    /// event serves `cost` on its resource and emits its completion as a
    /// message, and deliveries bounce a follow-up to the *next* resource
    /// one lookahead later — genuine cross-shard feedback, legal because
    /// the reply lands at or after the barrier. The resource states are
    /// keyed by logical resource, not by shard, so the behaviour must be
    /// invariant to the shard count.
    const RESOURCES: usize = 12;

    #[derive(Debug, Clone, Copy)]
    struct Job {
        cost: u64,
        hops: u32,
        key: usize,
    }

    fn run_workload(shards: usize) -> Vec<(u64, u64)> {
        let plan = ShardPlan::new(shards);
        let lookahead = SimDuration::from_ns(1_000);
        let mut engine: ShardedEngine<Job> = ShardedEngine::new(plan, lookahead);
        for k in 0..RESOURCES {
            engine.schedule(
                k,
                SimTime::from_ns(10 * k as u64),
                Job {
                    cost: 50 + (k as u64 % 3) * 17,
                    hops: 2,
                    key: k,
                },
            );
        }
        // Shard s owns resources k with k % shards == s, at slot k / shards
        // — the same round-robin ownership map the flash backbone uses for
        // its channels.
        let mut states: Vec<Vec<SimTime>> = (0..plan.shards())
            .map(|s| {
                (s..RESOURCES)
                    .step_by(plan.shards())
                    .map(|_| SimTime::ZERO)
                    .collect()
            })
            .collect();
        let n_shards = plan.shards();
        let mut seen = Vec::new();
        engine.run(
            &mut states,
            |_, owned, at, seq, job, outbox| {
                // FIFO service on the job's own resource.
                let busy_until = &mut owned[job.key / n_shards];
                let start = at.max(*busy_until);
                let done = start + SimDuration::from_ns(job.cost);
                *busy_until = done;
                outbox.send(seq, done, *job);
            },
            |m| {
                seen.push((m.seq, m.at.as_ns()));
                if m.msg.hops > 0 {
                    // Bounce to the next resource, one lookahead later —
                    // the earliest a cross-shard effect may land.
                    let next = (m.msg.key + 1) % RESOURCES;
                    Some((
                        next,
                        m.at + SimDuration::from_ns(1_000),
                        Job {
                            cost: m.msg.cost,
                            hops: m.msg.hops - 1,
                            key: next,
                        },
                    ))
                } else {
                    None
                }
            },
        );
        assert_eq!(engine.pending(), 0);
        seen
    }

    #[test]
    fn shard_count_never_changes_results() {
        let baseline = run_workload(1);
        assert!(!baseline.is_empty());
        for shards in [2, 3, 4, 7, 16] {
            let log = run_workload(shards);
            assert_eq!(log, baseline, "{shards} shards diverged from serial");
        }
    }

    #[test]
    fn windows_advance_with_lookahead() {
        let plan = ShardPlan::new(2);
        let mut engine: ShardedEngine<u64> = ShardedEngine::new(plan, SimDuration::from_ns(100));
        for i in 0..4u64 {
            engine.schedule(i as usize, SimTime::from_ns(i * 1_000), i);
        }
        let mut states = vec![(), ()];
        let mut seen = Vec::new();
        engine.run(
            &mut states,
            |_, _, at, seq, ev, outbox: &mut Outbox<u64>| outbox.send(seq, at, *ev),
            |m| {
                seen.push(m.msg);
                None
            },
        );
        // Events 1 us apart with a 100 ns lookahead: every event is its
        // own window.
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert_eq!(engine.windows_completed(), 4);
        assert_eq!(engine.pending(), 0);
    }

    #[test]
    fn infinite_lookahead_is_one_window() {
        let plan = ShardPlan::new(3);
        let mut engine: ShardedEngine<u64> = ShardedEngine::new(plan, SimDuration::MAX);
        for i in 0..9u64 {
            engine.schedule(i as usize, SimTime::from_ns(i), i);
        }
        let mut states = vec![(), (), ()];
        let mut merged = Vec::new();
        engine.run(
            &mut states,
            |_, _, at, seq, ev, outbox: &mut Outbox<u64>| outbox.send(seq, at, *ev),
            |m| {
                merged.push(m.seq);
                None
            },
        );
        assert_eq!(engine.windows_completed(), 1);
        // Barrier merge is by sequence number — global submission order.
        assert_eq!(merged, (0..9).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "before the barrier")]
    fn scheduling_before_the_barrier_panics() {
        let plan = ShardPlan::new(2);
        let mut engine: ShardedEngine<u64> = ShardedEngine::new(plan, SimDuration::from_ns(10));
        engine.schedule(0, SimTime::from_ns(1_000), 0);
        let mut states = vec![(), ()];
        engine.run(
            &mut states,
            |_, _, at, seq, ev, outbox: &mut Outbox<u64>| outbox.send(seq, at, *ev),
            |_| None,
        );
        // The barrier has advanced past t=0 now.
        engine.schedule(1, SimTime::ZERO, 1);
    }

    #[test]
    fn plan_resolves_keys_and_workers() {
        let plan = ShardPlan::new(4);
        assert_eq!(plan.shards(), 4);
        assert_eq!(plan.shard_of(0), 0);
        assert_eq!(plan.shard_of(6), 2);
        assert!(plan.workers() >= 1 && plan.workers() <= 4);
        assert_eq!(ShardPlan::new(0).shards(), 1, "shard count clamps to 1");
    }
}
