//! The OpenMP/SIMD execution model on the accelerator.
//!
//! The conventional system uses the same eight-LWP silicon as FlashAbacus,
//! but its runtime executes one kernel at a time: parallel regions are
//! split across the active LWPs in single-instruction-multiple-data
//! fashion, and serial regions run on one LWP while the rest idle. There is
//! no Flashvisor or Storengine, so all eight LWPs are available to the
//! OpenMP runtime.

use crate::config::BaselineConfig;
use fa_kernel::model::Kernel;
use fa_platform::lwp::{LwpCore, LwpSpec};
use fa_sim::time::{SimDuration, SimTime};

/// One executed region, reported for FU-utilization timelines.
#[derive(Debug, Clone, Copy)]
pub struct RegionExecution {
    /// When the region started.
    pub start: SimTime,
    /// When the region finished.
    pub end: SimTime,
    /// Mean number of busy functional units across the whole accelerator
    /// during the region.
    pub busy_fus: f64,
}

/// Result of executing one kernel's compute phases.
#[derive(Debug, Clone)]
pub struct KernelExecution {
    /// When the compute finished.
    pub end: SimTime,
    /// Accumulated LWP busy time (across all active LWPs).
    pub lwp_busy: SimDuration,
    /// Per-region records.
    pub regions: Vec<RegionExecution>,
}

/// The SIMD accelerator.
#[derive(Debug, Clone)]
pub struct SimdAccelerator {
    cores: Vec<LwpCore>,
    active: usize,
}

impl SimdAccelerator {
    /// Creates the accelerator with `config.active_lwps` usable cores.
    pub fn new(config: &BaselineConfig) -> Self {
        let spec = LwpSpec::from_platform(&config.platform);
        SimdAccelerator {
            cores: (0..config.platform.lwp_count)
                .map(|i| LwpCore::new(i, spec))
                .collect(),
            active: config.active_lwps.clamp(1, config.platform.lwp_count),
        }
    }

    /// Number of LWPs the OpenMP runtime schedules onto.
    pub fn active_lwps(&self) -> usize {
        self.active
    }

    /// Executes one kernel's microblocks starting at `now`, with all data
    /// already resident in the accelerator DRAM. Serial microblocks run on
    /// LWP 0; parallel microblocks are split evenly across the active LWPs.
    pub fn execute_kernel(&mut self, now: SimTime, kernel: &Kernel) -> KernelExecution {
        let mut cursor = now;
        let mut lwp_busy = SimDuration::ZERO;
        let mut regions = Vec::new();
        for mblock in &kernel.microblocks {
            if mblock.is_serial() {
                let screen = &mblock.screens[0];
                let est = self.cores[0].estimate(&screen.mix, screen.bytes_touched());
                let start = cursor.max(self.cores[0].next_free());
                let res = self.cores[0].execute(start, &est);
                lwp_busy += est.duration;
                let spec = *self.cores[0].spec();
                regions.push(RegionExecution {
                    start: res.start,
                    end: res.end,
                    busy_fus: est.occupancy.mean_busy_fus(&spec, est.cycles),
                });
                cursor = res.end;
            } else {
                // OpenMP-style static partitioning: the microblock's whole
                // iteration space is rebalanced across the active LWPs
                // regardless of how many screens the kernel declares.
                let total_instr: u64 = mblock.screens.iter().map(|s| s.mix.instructions).sum();
                let total_bytes: u64 = mblock.screens.iter().map(|s| s.bytes_touched()).sum();
                let proto = mblock.screens[0].mix;
                let per_lwp = fa_platform::lwp::InstructionMix::new(
                    total_instr.div_ceil(self.active as u64),
                    proto.ldst_ratio,
                    proto.mul_ratio,
                );
                let mut slowest = cursor;
                let mut busy_fus_total = 0.0;
                for lwp in 0..self.active {
                    let est = self.cores[lwp].estimate(&per_lwp, total_bytes / self.active as u64);
                    let start = cursor.max(self.cores[lwp].next_free());
                    let res = self.cores[lwp].execute(start, &est);
                    lwp_busy += est.duration;
                    let spec = *self.cores[lwp].spec();
                    busy_fus_total += est.occupancy.mean_busy_fus(&spec, est.cycles);
                    slowest = slowest.max(res.end);
                }
                regions.push(RegionExecution {
                    start: cursor,
                    end: slowest,
                    busy_fus: busy_fus_total,
                });
                cursor = slowest;
            }
        }
        KernelExecution {
            end: cursor,
            lwp_busy,
            regions,
        }
    }

    /// Mean utilization of the active LWPs up to `now`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if self.active == 0 {
            return 0.0;
        }
        self.cores[..self.active]
            .iter()
            .map(|c| c.utilization(now))
            .sum::<f64>()
            / self.active as f64
    }

    /// Per-LWP utilization (all eight, including inactive ones) up to `now`.
    pub fn per_lwp_utilization(&self, now: SimTime) -> Vec<f64> {
        self.cores.iter().map(|c| c.utilization(now)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_kernel::model::{AppId, ApplicationBuilder, DataSection};
    use fa_platform::lwp::InstructionMix;

    fn kernel(serial_first: bool) -> Kernel {
        let mix = InstructionMix::new(800_000, 0.35, 0.1);
        let ds = DataSection {
            flash_base: 0,
            input_bytes: 1 << 20,
            output_bytes: 1 << 17,
        };
        let blocks: Vec<(usize, InstructionMix, u64, u64)> = if serial_first {
            vec![(1, mix, 1 << 19, 0), (8, mix, 1 << 19, 1 << 17)]
        } else {
            vec![(8, mix, 1 << 20, 1 << 17)]
        };
        ApplicationBuilder::new("T")
            .kernel("T-k0", ds, &blocks)
            .build(AppId(0))
            .kernels
            .remove(0)
    }

    #[test]
    fn parallel_regions_scale_with_active_lwps() {
        let k = kernel(false);
        let mut one = SimdAccelerator::new(&BaselineConfig::paper_baseline().with_active_lwps(1));
        let mut eight = SimdAccelerator::new(&BaselineConfig::paper_baseline().with_active_lwps(8));
        let t1 = one.execute_kernel(SimTime::ZERO, &k).end;
        let t8 = eight.execute_kernel(SimTime::ZERO, &k).end;
        let speedup = t1.as_ns() as f64 / t8.as_ns() as f64;
        assert!(speedup > 5.0, "speedup {speedup}");
    }

    #[test]
    fn serial_regions_limit_scaling() {
        let k = kernel(true);
        let mut one = SimdAccelerator::new(&BaselineConfig::paper_baseline().with_active_lwps(1));
        let mut eight = SimdAccelerator::new(&BaselineConfig::paper_baseline().with_active_lwps(8));
        let t1 = one.execute_kernel(SimTime::ZERO, &k).end;
        let t8 = eight.execute_kernel(SimTime::ZERO, &k).end;
        let speedup = t1.as_ns() as f64 / t8.as_ns() as f64;
        // Amdahl: with half the work serial the speedup is below 2 even on
        // eight cores.
        assert!(speedup < 2.5, "speedup {speedup}");
        assert!(speedup > 1.0);
    }

    #[test]
    fn regions_and_busy_time_are_reported() {
        let k = kernel(true);
        let mut acc = SimdAccelerator::new(&BaselineConfig::paper_baseline());
        let exec = acc.execute_kernel(SimTime::from_us(100), &k);
        assert_eq!(exec.regions.len(), 2);
        assert!(exec.lwp_busy > SimDuration::ZERO);
        assert!(exec.end > SimTime::from_us(100));
        assert!(exec.regions[1].busy_fus > exec.regions[0].busy_fus);
        assert!(acc.utilization(exec.end) > 0.0);
        assert_eq!(acc.per_lwp_utilization(exec.end).len(), 8);
    }
}
