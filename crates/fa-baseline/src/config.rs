//! Configuration of the conventional baseline system.

use fa_energy::PowerSpec;
use fa_platform::PlatformSpec;
use fa_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Parameters of the discrete NVMe SSD (an Intel SSD 750-class device, as
/// used in §3.1 and §5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SsdSpec {
    /// Sequential read bandwidth in bytes per second.
    pub read_bytes_per_sec: f64,
    /// Sequential write bandwidth in bytes per second.
    pub write_bytes_per_sec: f64,
    /// Fixed device latency added to every command.
    pub command_latency: SimDuration,
}

impl SsdSpec {
    /// An Intel 750-class PCIe NVMe SSD.
    pub fn nvme_750() -> Self {
        SsdSpec {
            read_bytes_per_sec: 2.2e9,
            write_bytes_per_sec: 0.9e9,
            command_latency: SimDuration::from_us(20),
        }
    }
}

/// Parameters of the host side of the conventional system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostSpec {
    /// Host DRAM bandwidth in bytes per second (DDR4, single channel pair).
    pub dram_bytes_per_sec: f64,
    /// CPU time the storage stack (I/O runtime, file system, block layer,
    /// NVMe driver) spends per I/O request.
    pub stack_cpu_per_request: SimDuration,
    /// CPU time the accelerator runtime and driver spend per offload chunk.
    pub runtime_cpu_per_chunk: SimDuration,
    /// Size of one storage I/O request.
    pub io_request_bytes: u64,
    /// Number of redundant copies a payload makes inside host DRAM on its
    /// way between the SSD and the accelerator (user↔kernel for the file
    /// read plus user↔driver for the accelerator runtime, §2.1).
    pub host_copies: u32,
}

impl HostSpec {
    /// A Xeon E5-2620 v3-class host with 32 GB of DDR4 (§5).
    pub fn xeon_host() -> Self {
        HostSpec {
            dram_bytes_per_sec: 20.0e9,
            // Synchronous file I/O keeps the issuing core busy for most of
            // the request: syscall entry, file-system and block layers,
            // NVMe doorbells, completion handling, and the copy-out.
            stack_cpu_per_request: SimDuration::from_us(40),
            runtime_cpu_per_chunk: SimDuration::from_us(60),
            io_request_bytes: 128 * 1024,
            host_copies: 2,
        }
    }
}

/// Full configuration of the conventional baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineConfig {
    /// The accelerator platform (same silicon as FlashAbacus, Table 1).
    pub platform: PlatformSpec,
    /// Power figures.
    pub power: PowerSpec,
    /// The discrete SSD.
    pub ssd: SsdSpec,
    /// The host.
    pub host: HostSpec,
    /// Number of LWPs the OpenMP runtime uses (all eight by default; the
    /// Figure 3 sensitivity study sweeps this).
    pub active_lwps: usize,
    /// Accelerator DRAM the runtime may fill per body-loop iteration.
    pub accel_buffer_bytes: u64,
}

impl BaselineConfig {
    /// The paper's conventional system: the Table 1 accelerator, all eight
    /// LWPs, an NVMe 750 SSD, and a Xeon host.
    pub fn paper_baseline() -> Self {
        BaselineConfig {
            platform: PlatformSpec::paper_prototype(),
            power: PowerSpec::paper_prototype(),
            ssd: SsdSpec::nvme_750(),
            host: HostSpec::xeon_host(),
            active_lwps: 8,
            accel_buffer_bytes: 512 << 20,
        }
    }

    /// A faster variant for unit tests (smaller I/O requests are not needed;
    /// only the buffer shrinks so chunking logic is exercised).
    pub fn tiny_for_tests() -> Self {
        BaselineConfig {
            accel_buffer_bytes: 1 << 20,
            ..Self::paper_baseline()
        }
    }

    /// The configuration with a different number of active LWPs (the
    /// Figure 3b/3c sweep).
    pub fn with_active_lwps(mut self, lwps: usize) -> Self {
        self.active_lwps = lwps.clamp(1, self.platform.lwp_count);
        self
    }
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig::paper_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_matches_section5() {
        let c = BaselineConfig::paper_baseline();
        assert_eq!(c.active_lwps, 8);
        assert!((c.ssd.read_bytes_per_sec - 2.2e9).abs() < 1.0);
        assert_eq!(c.host.io_request_bytes, 128 * 1024);
        assert_eq!(c.host.host_copies, 2);
    }

    #[test]
    fn lwp_sweep_is_clamped_to_the_platform() {
        let c = BaselineConfig::paper_baseline().with_active_lwps(0);
        assert_eq!(c.active_lwps, 1);
        let c = BaselineConfig::paper_baseline().with_active_lwps(99);
        assert_eq!(c.active_lwps, 8);
    }
}
