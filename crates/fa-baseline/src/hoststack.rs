//! The host storage software stack.
//!
//! In the conventional system every byte between the SSD and the
//! accelerator crosses the discrete software stacks of the two devices
//! (§2.1): the I/O runtime and file system on the storage side, and the
//! accelerator runtime plus driver on the accelerator side. Each stack
//! charges host-CPU time per request, and because OS-kernel modules cannot
//! touch user memory directly, payloads are copied repeatedly inside host
//! DRAM on the way through.

use crate::config::HostSpec;
use fa_sim::resource::{FifoServer, SerializedResource};
use fa_sim::time::{SimDuration, SimTime};

/// Outcome of pushing a payload through the host storage stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackTransfer {
    /// When the stack started working on the payload.
    pub start: SimTime,
    /// When the payload (all requests, all copies) was ready on the other
    /// side.
    pub end: SimTime,
    /// Host-CPU busy time consumed.
    pub cpu_busy: SimDuration,
    /// Bytes moved through host DRAM (payload × copies).
    pub dram_bytes: u64,
    /// Number of I/O requests the payload was split into.
    pub requests: u64,
}

/// The host CPU + DRAM portion of the storage and accelerator stacks.
#[derive(Debug, Clone)]
pub struct HostStorageStack {
    spec: HostSpec,
    cpu: FifoServer,
    dram: SerializedResource,
    total_cpu_busy: SimDuration,
    total_requests: u64,
}

impl HostStorageStack {
    /// Creates an idle stack model.
    pub fn new(spec: HostSpec) -> Self {
        HostStorageStack {
            spec,
            cpu: FifoServer::new("host-cpu"),
            dram: SerializedResource::new("host-dram", spec.dram_bytes_per_sec),
            total_cpu_busy: SimDuration::ZERO,
            total_requests: 0,
        }
    }

    /// The host specification.
    pub fn spec(&self) -> &HostSpec {
        &self.spec
    }

    /// Pushes `bytes` through the storage stack at `now`: request-granular
    /// CPU overhead plus the configured number of copies through host DRAM.
    pub fn transfer(&mut self, now: SimTime, bytes: u64) -> StackTransfer {
        if bytes == 0 {
            return StackTransfer {
                start: now,
                end: now,
                cpu_busy: SimDuration::ZERO,
                dram_bytes: 0,
                requests: 0,
            };
        }
        let requests = bytes.div_ceil(self.spec.io_request_bytes.max(1));
        // Per-request stack processing on the host CPU (serialized — the
        // storage stack executes on one core per file stream).
        let cpu_time = self.spec.stack_cpu_per_request * requests;
        let cpu_res = self.cpu.serve(now, cpu_time);
        // Redundant copies through host DRAM.
        let copy_bytes = bytes * self.spec.host_copies as u64;
        let dram_res = self.dram.reserve(cpu_res.start, copy_bytes);
        self.total_cpu_busy += cpu_time;
        self.total_requests += requests;
        StackTransfer {
            start: now,
            end: cpu_res.end.max(dram_res.end),
            cpu_busy: cpu_time,
            dram_bytes: copy_bytes,
            requests,
        }
    }

    /// Charges accelerator-runtime CPU time for one offload chunk.
    pub fn runtime_overhead(&mut self, now: SimTime) -> SimTime {
        let res = self.cpu.serve(now, self.spec.runtime_cpu_per_chunk);
        self.total_cpu_busy += self.spec.runtime_cpu_per_chunk;
        res.end
    }

    /// Total host CPU time spent in the stacks.
    pub fn total_cpu_busy(&self) -> SimDuration {
        self.total_cpu_busy
    }

    /// Total I/O requests processed.
    pub fn total_requests(&self) -> u64 {
        self.total_requests
    }

    /// Host DRAM bytes moved by stack copies.
    pub fn dram_bytes(&self) -> u64 {
        self.dram.bytes_moved()
    }

    /// Host CPU busy fraction up to `now`.
    pub fn cpu_utilization(&self, now: SimTime) -> f64 {
        self.cpu.utilization(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack() -> HostStorageStack {
        HostStorageStack::new(HostSpec::xeon_host())
    }

    #[test]
    fn transfer_splits_into_requests_and_copies() {
        let mut s = stack();
        let t = s.transfer(SimTime::ZERO, 1 << 20); // 1 MiB
        assert_eq!(t.requests, 8); // 128 KB requests
        assert_eq!(t.dram_bytes, 2 << 20); // two copies
        assert_eq!(t.cpu_busy, SimDuration::from_us(40) * 8);
        assert!(t.end > t.start);
    }

    #[test]
    fn zero_byte_transfer_is_free() {
        let mut s = stack();
        let t = s.transfer(SimTime::from_us(5), 0);
        assert_eq!(t.start, t.end);
        assert_eq!(t.requests, 0);
        assert_eq!(s.total_requests(), 0);
    }

    #[test]
    fn stack_cpu_serializes_across_transfers() {
        let mut s = stack();
        let a = s.transfer(SimTime::ZERO, 512 * 1024);
        let b = s.transfer(SimTime::ZERO, 512 * 1024);
        assert!(b.end > a.end);
        assert_eq!(s.total_requests(), 8);
        assert!(s.total_cpu_busy() >= SimDuration::from_us(40) * 8);
    }

    #[test]
    fn runtime_overhead_occupies_the_cpu() {
        let mut s = stack();
        let end = s.runtime_overhead(SimTime::ZERO);
        assert_eq!(end, SimTime::from_us(60));
        assert!(s.cpu_utilization(end) > 0.99);
    }

    #[test]
    fn small_transfers_still_pay_one_request() {
        let mut s = stack();
        let t = s.transfer(SimTime::ZERO, 100);
        assert_eq!(t.requests, 1);
    }
}
