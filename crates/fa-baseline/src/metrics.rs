//! Outcome types for conventional-system runs.

use fa_energy::EnergyBreakdown;
use fa_sim::stats::TimeSeries;
use fa_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Where the execution time of a run went — the decomposition of Figure 3d
/// (accelerator compute vs. SSD device time vs. host storage-stack time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// Time the accelerator spent computing (including compute that
    /// overlaps transfers, as the paper's methodology does).
    pub accelerator: SimDuration,
    /// Time the SSD device spent serving requests.
    pub ssd: SimDuration,
    /// Time the host storage stack (and accelerator runtime) spent
    /// processing requests and copying data.
    pub host_stack: SimDuration,
}

impl TimeBreakdown {
    /// Total accounted time.
    pub fn total(&self) -> SimDuration {
        self.accelerator + self.ssd + self.host_stack
    }

    /// Fractions `(accelerator, ssd, host_stack)` normalized to the total.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let total = self.total().as_secs_f64();
        if total <= 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.accelerator.as_secs_f64() / total,
            self.ssd.as_secs_f64() / total,
            self.host_stack.as_secs_f64() / total,
        )
    }
}

/// Per-kernel latency record of a conventional-system run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineKernelLatency {
    /// Benchmark name.
    pub app_name: String,
    /// Application index in the batch.
    pub app_index: usize,
    /// Kernel index within the application.
    pub kernel_index: usize,
    /// When the host started working on this kernel.
    pub started_at: SimTime,
    /// When the kernel's results were back on the SSD.
    pub completed_at: SimTime,
}

impl BaselineKernelLatency {
    /// Start-to-finish latency.
    pub fn latency(&self) -> SimDuration {
        self.completed_at.saturating_since(self.started_at)
    }
}

/// Outcome of one conventional-system run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaselineOutcome {
    /// When the whole batch finished.
    pub finished_at: SimTime,
    /// Per-kernel records in execution order.
    pub kernel_latencies: Vec<BaselineKernelLatency>,
    /// Bytes of input and output processed.
    pub bytes_processed: u64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Execution-time decomposition (Figure 3d).
    pub time_breakdown: TimeBreakdown,
    /// Per-LWP utilization over the run.
    pub lwp_utilization: Vec<f64>,
    /// Busy-functional-unit timeline (Figure 15a, SIMD curve).
    pub fu_timeline: TimeSeries,
    /// Power timeline (Figure 15b, SIMD curve).
    pub power_timeline: TimeSeries,
    /// Host CPU busy fraction.
    pub host_cpu_utilization: f64,
}

impl BaselineOutcome {
    /// Aggregate throughput in MB/s.
    pub fn throughput_mb_s(&self) -> f64 {
        let secs = self.finished_at.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.bytes_processed as f64 / 1.0e6 / secs
    }

    /// Mean LWP utilization.
    pub fn mean_lwp_utilization(&self) -> f64 {
        if self.lwp_utilization.is_empty() {
            return 0.0;
        }
        self.lwp_utilization.iter().sum::<f64>() / self.lwp_utilization.len() as f64
    }

    /// Kernel latency statistics `(min, average, max)` in seconds.
    pub fn latency_stats(&self) -> (f64, f64, f64) {
        if self.kernel_latencies.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        let mut sum = 0.0;
        for k in &self.kernel_latencies {
            let l = k.latency().as_secs_f64();
            min = min.min(l);
            max = max.max(l);
            sum += l;
        }
        (min, sum / self.kernel_latencies.len() as f64, max)
    }

    /// Empirical CDF of kernel completion times in seconds.
    pub fn completion_cdf(&self) -> Vec<(f64, usize)> {
        let mut times: Vec<f64> = self
            .kernel_latencies
            .iter()
            .map(|k| k.completed_at.as_secs_f64())
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite completion times"));
        times
            .into_iter()
            .enumerate()
            .map(|(i, t)| (t, i + 1))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_breakdown_fractions_sum_to_one() {
        let b = TimeBreakdown {
            accelerator: SimDuration::from_ms(10),
            ssd: SimDuration::from_ms(30),
            host_stack: SimDuration::from_ms(60),
        };
        let (a, s, h) = b.fractions();
        assert!((a + s + h - 1.0).abs() < 1e-9);
        assert!(h > s && s > a);
        let empty = TimeBreakdown::default();
        assert_eq!(empty.fractions(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn outcome_metrics_compute() {
        let o = BaselineOutcome {
            finished_at: SimTime::from_ms(200),
            kernel_latencies: vec![BaselineKernelLatency {
                app_name: "ATAX".into(),
                app_index: 0,
                kernel_index: 0,
                started_at: SimTime::from_ms(10),
                completed_at: SimTime::from_ms(200),
            }],
            bytes_processed: 100_000_000,
            energy: EnergyBreakdown::default(),
            time_breakdown: TimeBreakdown::default(),
            lwp_utilization: vec![0.2, 0.4],
            fu_timeline: TimeSeries::new(),
            power_timeline: TimeSeries::new(),
            host_cpu_utilization: 0.5,
        };
        assert!((o.throughput_mb_s() - 500.0).abs() < 1e-9);
        assert!((o.mean_lwp_utilization() - 0.3).abs() < 1e-12);
        let (min, avg, max) = o.latency_stats();
        assert_eq!(min, max);
        assert!((avg - 0.19).abs() < 1e-9);
        assert_eq!(o.completion_cdf().len(), 1);
    }
}
