//! The discrete NVMe SSD of the conventional system.

use crate::config::SsdSpec;
use fa_sim::resource::{Reservation, SerializedResource};
use fa_sim::time::{SimDuration, SimTime};

/// A bandwidth/latency model of a high-performance PCIe NVMe SSD.
///
/// The device serves reads and writes through a single internal data path
/// (flash channels behind the controller); each command pays a fixed device
/// latency plus the payload transfer at the direction-specific bandwidth.
#[derive(Debug, Clone)]
pub struct NvmeSsd {
    spec: SsdSpec,
    device: SerializedResource,
    reads: u64,
    writes: u64,
    bytes_read: u64,
    bytes_written: u64,
}

impl NvmeSsd {
    /// Creates an idle SSD.
    pub fn new(spec: SsdSpec) -> Self {
        NvmeSsd {
            spec,
            // The serialized resource carries the slower (write) bandwidth;
            // reads scale their service time explicitly below.
            device: SerializedResource::new("nvme-ssd", spec.read_bytes_per_sec),
            reads: 0,
            writes: 0,
            bytes_read: 0,
            bytes_written: 0,
        }
    }

    /// The SSD specification.
    pub fn spec(&self) -> &SsdSpec {
        &self.spec
    }

    /// Issues a read of `bytes`, returning its service window.
    pub fn read(&mut self, now: SimTime, bytes: u64) -> Reservation {
        let service = self.spec.command_latency
            + SimDuration::for_transfer(bytes, self.spec.read_bytes_per_sec);
        let res = self.device.reserve_duration(now, service);
        self.reads += 1;
        self.bytes_read += bytes;
        res
    }

    /// Issues a write of `bytes`, returning its service window.
    pub fn write(&mut self, now: SimTime, bytes: u64) -> Reservation {
        let service = self.spec.command_latency
            + SimDuration::for_transfer(bytes, self.spec.write_bytes_per_sec);
        let res = self.device.reserve_duration(now, service);
        self.writes += 1;
        self.bytes_written += bytes;
        res
    }

    /// Commands issued so far.
    pub fn commands(&self) -> u64 {
        self.reads + self.writes
    }

    /// Bytes read so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Total device busy time up to `now`.
    pub fn busy_time(&self, now: SimTime) -> SimDuration {
        self.device.busy_time(now)
    }

    /// Device busy fraction up to `now`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.device.utilization(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_bandwidth_dominates_large_transfers() {
        let mut ssd = NvmeSsd::new(SsdSpec::nvme_750());
        let res = ssd.read(SimTime::ZERO, 220 << 20); // 220 MiB
        let secs = res.end.saturating_since(res.start).as_secs_f64();
        // ≈ 0.105 s at 2.2 GB/s plus 20 µs of latency.
        assert!((secs - 0.1048).abs() < 0.01, "took {secs}s");
    }

    #[test]
    fn writes_are_slower_than_reads() {
        let mut a = NvmeSsd::new(SsdSpec::nvme_750());
        let mut b = NvmeSsd::new(SsdSpec::nvme_750());
        let r = a.read(SimTime::ZERO, 64 << 20);
        let w = b.write(SimTime::ZERO, 64 << 20);
        assert!(w.end > r.end);
    }

    #[test]
    fn small_requests_pay_the_command_latency() {
        let mut ssd = NvmeSsd::new(SsdSpec::nvme_750());
        let res = ssd.read(SimTime::ZERO, 4096);
        assert!(res.end.saturating_since(res.start) >= SimDuration::from_us(20));
    }

    #[test]
    fn commands_serialize_on_the_device() {
        let mut ssd = NvmeSsd::new(SsdSpec::nvme_750());
        let a = ssd.read(SimTime::ZERO, 1 << 20);
        let b = ssd.write(SimTime::ZERO, 1 << 20);
        assert_eq!(b.start, a.end);
        assert_eq!(ssd.commands(), 2);
        assert_eq!(ssd.bytes_read(), 1 << 20);
        assert_eq!(ssd.bytes_written(), 1 << 20);
    }
}
