//! The conventional heterogeneous-computing system driver.
//!
//! The execution model follows Figure 3a of the paper. For every kernel,
//! the host opens its input, then iterates a body loop: read a chunk of the
//! file from the SSD through the storage stack, push it over PCIe into the
//! accelerator's DRAM, execute the kernel's microblocks under the SIMD
//! model, pull the results back, and write them to the SSD through the
//! stack again. The accelerator stalls while data is in flight — the core
//! inefficiency FlashAbacus removes.

use crate::accelerator::SimdAccelerator;
use crate::config::BaselineConfig;
use crate::hoststack::HostStorageStack;
use crate::metrics::{BaselineKernelLatency, BaselineOutcome, TimeBreakdown};
use crate::ssd::NvmeSsd;
use fa_energy::{ActivityCategory, Component, EnergyAccountant};
use fa_kernel::model::Application;
use fa_platform::noc::PcieLink;
use fa_sim::stats::TimeSeries;
use fa_sim::time::{SimDuration, SimTime};

/// A record of one accelerator compute region (for the FU timeline).
#[derive(Debug, Clone, Copy)]
struct ComputeInterval {
    start: SimTime,
    end: SimTime,
    busy_fus: f64,
}

/// The conventional ("SIMD") system.
pub struct ConventionalSystem {
    config: BaselineConfig,
    ssd: NvmeSsd,
    stack: HostStorageStack,
    accelerator: SimdAccelerator,
    pcie: PcieLink,
    energy: EnergyAccountant,
    compute_intervals: Vec<ComputeInterval>,
    time_breakdown: TimeBreakdown,
}

impl ConventionalSystem {
    /// Builds the system from its configuration.
    pub fn new(config: BaselineConfig) -> Self {
        let mut energy = EnergyAccountant::new(config.power);
        energy.register_idle(Component::Lwp, config.platform.lwp_count);
        energy.register_idle(Component::Ddr3l, 1);
        energy.register_idle(Component::Fabric, 1);
        energy.register_idle(Component::FlashOrSsd, 1);
        energy.register_idle(Component::Pcie, 1);
        energy.register_idle(Component::HostCpu, 1);
        energy.register_idle(Component::HostDram, 1);
        ConventionalSystem {
            ssd: NvmeSsd::new(config.ssd),
            stack: HostStorageStack::new(config.host),
            accelerator: SimdAccelerator::new(&config),
            pcie: PcieLink::new(&config.platform),
            energy,
            compute_intervals: Vec::new(),
            time_breakdown: TimeBreakdown::default(),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &BaselineConfig {
        &self.config
    }

    /// Moves `bytes` from the SSD into the accelerator DRAM (or back when
    /// `to_accelerator` is false), charging every hop. Returns when the data
    /// is in place.
    fn move_data(&mut self, now: SimTime, bytes: u64, to_accelerator: bool) -> SimTime {
        if bytes == 0 {
            return now;
        }
        // Storage device leg.
        let ssd_res = if to_accelerator {
            self.ssd.read(now, bytes)
        } else {
            self.ssd.write(now, bytes)
        };
        self.energy.record(
            Component::FlashOrSsd,
            ActivityCategory::StorageAccess,
            ssd_res.start,
            ssd_res.end,
        );
        self.time_breakdown.ssd += ssd_res.end.saturating_since(ssd_res.start);

        // Host storage stack leg (CPU per request + copies in host DRAM).
        let stack_t = self.stack.transfer(ssd_res.end, bytes);
        self.energy.record(
            Component::HostCpu,
            ActivityCategory::DataMovement,
            stack_t.start,
            stack_t.start + stack_t.cpu_busy,
        );
        self.energy.record(
            Component::HostDram,
            ActivityCategory::DataMovement,
            stack_t.start,
            stack_t.end,
        );
        self.time_breakdown.host_stack += stack_t.end.saturating_since(stack_t.start);

        // Accelerator runtime + PCIe DMA leg.
        let runtime_done = self.stack.runtime_overhead(stack_t.end);
        self.energy.record(
            Component::HostCpu,
            ActivityCategory::DataMovement,
            stack_t.end,
            runtime_done,
        );
        let pcie_res = self.pcie.dma(runtime_done, bytes);
        self.energy.record(
            Component::Pcie,
            ActivityCategory::DataMovement,
            pcie_res.start,
            pcie_res.end,
        );
        self.energy.record(
            Component::Ddr3l,
            ActivityCategory::DataMovement,
            pcie_res.start,
            pcie_res.end,
        );
        self.time_breakdown.host_stack += pcie_res.end.saturating_since(runtime_done);
        pcie_res.end
    }

    /// Runs a batch of applications to completion. Kernels are processed in
    /// offload order, one at a time (the OpenMP runtime owns the whole
    /// accelerator for each kernel).
    pub fn run(&mut self, apps: &[Application]) -> BaselineOutcome {
        let mut kernel_latencies = Vec::new();
        let mut cursor = SimTime::ZERO;
        let mut bytes_processed = 0u64;

        for (ai, app) in apps.iter().enumerate() {
            for (ki, kernel) in app.kernels.iter().enumerate() {
                let started_at = cursor;
                let input = kernel.data_section.input_bytes;
                let output = kernel.data_section.output_bytes;
                bytes_processed += input + output;

                // Prologue: open the file, allocate SSD and accelerator
                // buffers (host CPU work).
                let prologue_end = self.stack.runtime_overhead(cursor);
                self.energy.record(
                    Component::HostCpu,
                    ActivityCategory::DataMovement,
                    cursor,
                    prologue_end,
                );
                cursor = prologue_end;

                // Body loop: chunk the input through the accelerator DRAM.
                let chunk = self.config.accel_buffer_bytes.max(1);
                let mut remaining = input;
                let mut produced = 0u64;
                while remaining > 0 || (input == 0 && produced == 0) {
                    let this_chunk = remaining.min(chunk);
                    // Read the chunk from storage into the accelerator.
                    let data_ready = self.move_data(cursor, this_chunk, true);

                    // Execute the kernel over this chunk. The kernel's
                    // compute cost scales with the fraction of the input the
                    // chunk represents.
                    let fraction = if input == 0 {
                        1.0
                    } else {
                        this_chunk as f64 / input as f64
                    };
                    let scaled = scale_kernel(kernel, fraction);
                    let exec = self.accelerator.execute_kernel(data_ready, &scaled);
                    for r in &exec.regions {
                        self.energy.record(
                            Component::Lwp,
                            ActivityCategory::Computation,
                            r.start,
                            r.end,
                        );
                        self.compute_intervals.push(ComputeInterval {
                            start: r.start,
                            end: r.end,
                            busy_fus: r.busy_fus,
                        });
                    }
                    self.time_breakdown.accelerator += exec.end.saturating_since(data_ready);

                    // Return the chunk's share of the output to the SSD.
                    let out_bytes = (output as f64 * fraction) as u64;
                    produced += out_bytes;
                    cursor = self.move_data(exec.end, out_bytes, false);

                    if remaining == 0 {
                        break;
                    }
                    remaining -= this_chunk;
                }

                // Epilogue: release file and memory resources.
                let epilogue_end = self.stack.runtime_overhead(cursor);
                self.energy.record(
                    Component::HostCpu,
                    ActivityCategory::DataMovement,
                    cursor,
                    epilogue_end,
                );
                cursor = epilogue_end;

                kernel_latencies.push(BaselineKernelLatency {
                    app_name: app.name.clone(),
                    app_index: ai,
                    kernel_index: ki,
                    started_at,
                    completed_at: cursor,
                });
            }
        }

        let finished_at = cursor;
        // Fold the background power of every component into the paper's
        // three categories: the host exists in this system only to move
        // data, the accelerator only to compute, the SSD only to serve
        // storage.
        let power = &self.config.power;
        let host_idle_w = power.host_cpu_idle_w + power.host_dram_idle_w + 0.02;
        let accel_idle_w =
            self.config.platform.lwp_count as f64 * power.lwp_idle_w + power.ddr3l_idle_w + 0.05;
        let breakdown = self.energy.breakdown(finished_at).with_idle_redistributed(
            host_idle_w,
            accel_idle_w,
            power.flash_idle_w,
        );
        let bucket = timeline_bucket(finished_at);
        let power_timeline = self.energy.power_timeline(finished_at, bucket);
        let fu_timeline = build_fu_timeline(&self.compute_intervals, finished_at, bucket);

        BaselineOutcome {
            finished_at,
            kernel_latencies,
            bytes_processed,
            energy: breakdown,
            time_breakdown: self.time_breakdown,
            lwp_utilization: self.accelerator.per_lwp_utilization(finished_at),
            fu_timeline,
            power_timeline,
            host_cpu_utilization: self.stack.cpu_utilization(finished_at),
        }
    }
}

/// Scales a kernel's instruction counts and byte footprints to a fraction
/// of its input (one body-loop chunk).
fn scale_kernel(kernel: &fa_kernel::model::Kernel, fraction: f64) -> fa_kernel::model::Kernel {
    if (fraction - 1.0).abs() < 1e-12 {
        return kernel.clone();
    }
    let mut scaled = kernel.clone();
    for mblock in &mut scaled.microblocks {
        for screen in &mut mblock.screens {
            screen.mix.instructions = (screen.mix.instructions as f64 * fraction).ceil() as u64;
            screen.input_bytes = (screen.input_bytes as f64 * fraction) as u64;
            screen.output_bytes = (screen.output_bytes as f64 * fraction) as u64;
        }
    }
    scaled
}

/// Chooses a timeline bucket that yields a few hundred samples per run.
fn timeline_bucket(finished_at: SimTime) -> SimDuration {
    let target_samples = 400u64;
    let ns = (finished_at.as_ns() / target_samples).max(1_000);
    SimDuration::from_ns(ns)
}

/// Rebuilds the busy-FU timeline from compute intervals.
fn build_fu_timeline(
    intervals: &[ComputeInterval],
    finished_at: SimTime,
    bucket: SimDuration,
) -> TimeSeries {
    let mut series = TimeSeries::new();
    if bucket.is_zero() || finished_at == SimTime::ZERO {
        return series;
    }
    let mut cursor = SimTime::ZERO;
    while cursor <= finished_at {
        let bucket_end = cursor + bucket;
        let mut fus = 0.0;
        for iv in intervals {
            let s = iv.start.max(cursor);
            let e = iv.end.min(bucket_end);
            if e > s {
                fus += iv.busy_fus * e.saturating_since(s).as_secs_f64() / bucket.as_secs_f64();
            }
        }
        series.record(cursor, fus);
        cursor = bucket_end;
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_kernel::instance::{instantiate_many, InstancePlan};
    use fa_workloads::polybench::{polybench_app, PolyBench};
    use fa_workloads::synthetic::{synthetic_app, SyntheticSpec};

    fn synthetic_batch(instances: usize, serial_fraction: f64) -> Vec<Application> {
        let template = synthetic_app(
            "base",
            &SyntheticSpec {
                instructions: 2_000_000,
                serial_fraction,
                input_bytes: 4 << 20,
                output_bytes: 512 << 10,
                ldst_ratio: 0.4,
                mul_ratio: 0.1,
                parallel_screens: 8,
            },
        );
        instantiate_many(
            &[template],
            &InstancePlan {
                instances_per_app: instances,
                ..Default::default()
            },
        )
    }

    #[test]
    fn run_produces_consistent_metrics() {
        let mut system = ConventionalSystem::new(BaselineConfig::paper_baseline());
        let out = system.run(&synthetic_batch(2, 0.2));
        assert_eq!(out.kernel_latencies.len(), 2);
        assert!(out.finished_at > SimTime::ZERO);
        assert!(out.throughput_mb_s() > 0.0);
        assert!(out.energy.total_j() > 0.0);
        assert!(out.time_breakdown.ssd > SimDuration::ZERO);
        assert!(out.time_breakdown.host_stack > SimDuration::ZERO);
        assert!(out.time_breakdown.accelerator > SimDuration::ZERO);
        assert_eq!(out.lwp_utilization.len(), 8);
        assert!(!out.fu_timeline.is_empty());
        assert!(!out.power_timeline.is_empty());
    }

    #[test]
    fn data_intensive_workloads_are_transfer_dominated() {
        // The premise of Figure 3d: for data-intensive PolyBench kernels the
        // SSD plus host-stack share of time dominates the accelerator share.
        let apps = vec![polybench_app(PolyBench::Atax, 64)];
        let mut system = ConventionalSystem::new(BaselineConfig::paper_baseline());
        let out = system.run(&apps);
        let (accel, ssd, stack) = out.time_breakdown.fractions();
        assert!(
            ssd + stack > accel,
            "transfer {:.2}+{:.2} should dominate compute {:.2}",
            ssd,
            stack,
            accel
        );
    }

    #[test]
    fn compute_intensive_workloads_are_compute_dominated() {
        let apps = vec![polybench_app(PolyBench::ThreeMm, 64)];
        let mut system = ConventionalSystem::new(BaselineConfig::paper_baseline());
        let out = system.run(&apps);
        let (accel, ssd, stack) = out.time_breakdown.fractions();
        assert!(
            accel > ssd + stack,
            "compute {accel:.2} should dominate transfers {:.2}",
            ssd + stack
        );
    }

    #[test]
    fn storage_energy_dominates_for_data_intensive_kernels() {
        // §3.1: storage-stack accesses consume the large majority of system
        // energy for data-intensive applications.
        let apps = vec![polybench_app(PolyBench::Mvt, 64)];
        let mut system = ConventionalSystem::new(BaselineConfig::paper_baseline());
        let out = system.run(&apps);
        let total = out.energy.total_j();
        let movement_and_storage = out.energy.data_movement_j + out.energy.storage_access_j;
        assert!(
            movement_and_storage / total > 0.5,
            "movement+storage fraction {}",
            movement_and_storage / total
        );
    }

    #[test]
    fn serial_fraction_degrades_throughput_and_utilization() {
        // Figure 3b/3c: increasing the serial share reduces throughput and
        // core utilization.
        let mut parallel = ConventionalSystem::new(BaselineConfig::paper_baseline());
        let mut serial = ConventionalSystem::new(BaselineConfig::paper_baseline());
        let out_p = parallel.run(&synthetic_batch(2, 0.0));
        let out_s = serial.run(&synthetic_batch(2, 0.5));
        assert!(out_p.throughput_mb_s() > out_s.throughput_mb_s());
        assert!(out_p.mean_lwp_utilization() > out_s.mean_lwp_utilization());
    }

    #[test]
    fn more_cores_help_parallel_workloads() {
        let mut one = ConventionalSystem::new(BaselineConfig::paper_baseline().with_active_lwps(1));
        let mut eight =
            ConventionalSystem::new(BaselineConfig::paper_baseline().with_active_lwps(8));
        let out1 = one.run(&synthetic_batch(1, 0.0));
        let out8 = eight.run(&synthetic_batch(1, 0.0));
        assert!(out8.finished_at < out1.finished_at);
    }

    #[test]
    fn chunking_handles_inputs_larger_than_the_buffer() {
        let mut system = ConventionalSystem::new(BaselineConfig::tiny_for_tests());
        // 4 MiB input with a 1 MiB buffer forces four body-loop iterations.
        let out = system.run(&synthetic_batch(1, 0.0));
        assert_eq!(out.kernel_latencies.len(), 1);
        assert!(out.finished_at > SimTime::ZERO);
        // All of the input plus output was eventually moved.
        assert!(out.bytes_processed >= 4 << 20);
    }
}
