//! Conventional heterogeneous-computing baseline ("SIMD").
//!
//! The paper compares FlashAbacus against the standard way of accelerating
//! data-intensive workloads on a low-power platform: the accelerator keeps
//! its data on a *discrete* NVMe SSD, and every byte the kernels touch must
//! travel SSD → host storage stack → host DRAM → PCIe → accelerator DRAM
//! (and back for results). The accelerator itself runs an OpenMP-style
//! single-instruction-multiple-data execution: one kernel at a time, its
//! parallel regions spread across all eight LWPs and its serial regions on
//! one (§5 "Accelerators", Figure 1, Figure 3).
//!
//! * [`config`] — the baseline system configuration.
//! * [`ssd`] — the discrete NVMe SSD model.
//! * [`hoststack`] — the host storage software stack: per-request CPU
//!   overhead, user/kernel crossings, and the redundant copies through host
//!   DRAM.
//! * [`accelerator`] — the OpenMP/SIMD execution model on the LWP platform.
//! * [`system`] — the full conventional-system driver.
//! * [`metrics`] — the outcome type (throughput, latency, energy, and the
//!   accelerator/SSD/host-stack time decomposition of Figure 3d).

pub mod accelerator;
pub mod config;
pub mod hoststack;
pub mod metrics;
pub mod ssd;
pub mod system;

pub use accelerator::SimdAccelerator;
pub use config::BaselineConfig;
pub use hoststack::HostStorageStack;
pub use metrics::{BaselineOutcome, TimeBreakdown};
pub use ssd::NvmeSsd;
pub use system::ConventionalSystem;
