//! Lightweight processor (LWP) model.
//!
//! Each LWP is a VLIW core with eight functional units: two multipliers,
//! four general-purpose units, and two load/store units (§2.2). The VLIW
//! design relies on the compiler for scheduling, so a simple static issue
//! model is faithful: the cycle count of a code region is determined by the
//! most contended functional-unit class plus memory stalls that the caches
//! cannot hide.
//!
//! The module also models the power/sleep controller (PSC) protocol that
//! Flashvisor uses to boot a kernel on a worker LWP (§4 "Execution"): the
//! target LWP is put to sleep, its boot-address register is written, an
//! inter-process interrupt forces the jump, and the LWP is woken again.

use crate::spec::PlatformSpec;
use fa_sim::resource::{FifoServer, Reservation};
use fa_sim::stats::UtilizationTracker;
use fa_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Static parameters of one LWP.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LwpSpec {
    /// Clock frequency in Hz.
    pub freq_hz: u64,
    /// Number of multiplier functional units.
    pub mul_fus: usize,
    /// Number of general-purpose (ALU) functional units.
    pub alu_fus: usize,
    /// Number of load/store functional units.
    pub ldst_fus: usize,
    /// Fraction of load/store instructions that miss the private caches and
    /// pay a DDR3L access.
    pub cache_miss_ratio: f64,
    /// Average DDR3L access penalty for a cache miss, in core cycles.
    pub miss_penalty_cycles: f64,
    /// Cycles needed by the PSC sleep → boot-register write → wake sequence.
    pub boot_cycles: u64,
}

impl LwpSpec {
    /// LWP parameters matching the prototype platform.
    pub fn from_platform(spec: &PlatformSpec) -> Self {
        LwpSpec {
            freq_hz: spec.lwp_freq_hz,
            mul_fus: 2,
            alu_fus: 4,
            ldst_fus: 2,
            // Data sections are staged into DDR3L and streamed through the
            // L1/L2 ahead of use, so only a small share of accesses pays a
            // DRAM round trip.
            cache_miss_ratio: 0.01,
            miss_penalty_cycles: 20.0,
            boot_cycles: 5_000,
        }
    }

    /// Total functional units per LWP.
    pub fn total_fus(&self) -> usize {
        self.mul_fus + self.alu_fus + self.ldst_fus
    }

    /// Duration of `cycles` clock cycles.
    pub fn cycles_to_duration(&self, cycles: f64) -> SimDuration {
        SimDuration::from_ns_f64(cycles * 1.0e9 / self.freq_hz as f64)
    }
}

impl Default for LwpSpec {
    fn default() -> Self {
        LwpSpec::from_platform(&PlatformSpec::paper_prototype())
    }
}

/// The instruction mix of a code region (a screen or a serial microblock).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstructionMix {
    /// Total instructions in the region.
    pub instructions: u64,
    /// Fraction of instructions that are loads or stores (Table 2's "LD/ST
    /// ratio").
    pub ldst_ratio: f64,
    /// Fraction of instructions that need a multiplier FU.
    pub mul_ratio: f64,
}

impl InstructionMix {
    /// Creates a mix, clamping the ratios into `[0, 1]` and ensuring their
    /// sum does not exceed 1.
    pub fn new(instructions: u64, ldst_ratio: f64, mul_ratio: f64) -> Self {
        let ldst = ldst_ratio.clamp(0.0, 1.0);
        let mul = mul_ratio.clamp(0.0, 1.0 - ldst);
        InstructionMix {
            instructions,
            ldst_ratio: ldst,
            mul_ratio: mul,
        }
    }

    /// Number of load/store instructions.
    pub fn ldst_instructions(&self) -> u64 {
        (self.instructions as f64 * self.ldst_ratio).round() as u64
    }

    /// Number of multiply instructions.
    pub fn mul_instructions(&self) -> u64 {
        (self.instructions as f64 * self.mul_ratio).round() as u64
    }

    /// Number of plain ALU instructions.
    pub fn alu_instructions(&self) -> u64 {
        self.instructions
            .saturating_sub(self.ldst_instructions())
            .saturating_sub(self.mul_instructions())
    }

    /// Splits the mix into `parts` equal slices (screen partitioning).
    pub fn split(&self, parts: usize) -> InstructionMix {
        let parts = parts.max(1) as u64;
        InstructionMix {
            instructions: self.instructions.div_ceil(parts),
            ldst_ratio: self.ldst_ratio,
            mul_ratio: self.mul_ratio,
        }
    }
}

/// Per-functional-unit-class busy cycles of an execution estimate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FuOccupancy {
    /// Busy cycles accumulated across the multiplier FUs.
    pub mul_cycles: f64,
    /// Busy cycles accumulated across the general-purpose FUs.
    pub alu_cycles: f64,
    /// Busy cycles accumulated across the load/store FUs.
    pub ldst_cycles: f64,
}

impl FuOccupancy {
    /// Average number of busy functional units over `total_cycles`, given
    /// the FU counts of `spec`. Bounded by the eight units per LWP.
    pub fn mean_busy_fus(&self, spec: &LwpSpec, total_cycles: f64) -> f64 {
        if total_cycles <= 0.0 {
            return 0.0;
        }
        let busy = self.mul_cycles + self.alu_cycles + self.ldst_cycles;
        (busy / total_cycles).min(spec.total_fus() as f64)
    }
}

/// Outcome of the issue model for one code region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionEstimate {
    /// Total core cycles, including memory stalls.
    pub cycles: f64,
    /// Wall-clock duration at the LWP frequency.
    pub duration: SimDuration,
    /// Busy cycles by functional-unit class.
    pub occupancy: FuOccupancy,
    /// Bytes the region reads or writes through the load/store units.
    pub bytes_touched: u64,
}

/// Power state of one LWP, driven by the power/sleep controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PowerState {
    /// Clock-gated; consumes negligible dynamic power.
    Sleeping,
    /// Executing or ready to execute.
    Active,
}

/// One lightweight processor instance.
#[derive(Debug, Clone)]
pub struct LwpCore {
    id: usize,
    spec: LwpSpec,
    state: PowerState,
    boot_address: Option<u64>,
    run_queue: FifoServer,
    busy: UtilizationTracker,
    executed_regions: u64,
    executed_instructions: u64,
    fu_busy_cycles: f64,
}

impl LwpCore {
    /// Creates an active, idle LWP.
    pub fn new(id: usize, spec: LwpSpec) -> Self {
        LwpCore {
            id,
            spec,
            state: PowerState::Active,
            boot_address: None,
            run_queue: FifoServer::new(format!("lwp{id}")),
            busy: UtilizationTracker::new(),
            executed_regions: 0,
            executed_instructions: 0,
            fu_busy_cycles: 0.0,
        }
    }

    /// The LWP identifier.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Static parameters.
    pub fn spec(&self) -> &LwpSpec {
        &self.spec
    }

    /// Current power state.
    pub fn power_state(&self) -> PowerState {
        self.state
    }

    /// Boot address last written by the PSC protocol, if any.
    pub fn boot_address(&self) -> Option<u64> {
        self.boot_address
    }

    /// Estimates the execution of an instruction mix on this LWP's VLIW
    /// pipeline: the bound is the most contended FU class, plus memory
    /// stalls for load/stores that miss the private caches.
    pub fn estimate(&self, mix: &InstructionMix, bytes_touched: u64) -> ExecutionEstimate {
        Self::estimate_with(&self.spec, mix, bytes_touched)
    }

    /// Issue-model estimate for an arbitrary [`LwpSpec`] (usable without a
    /// core instance, e.g. by schedulers planning ahead).
    pub fn estimate_with(
        spec: &LwpSpec,
        mix: &InstructionMix,
        bytes_touched: u64,
    ) -> ExecutionEstimate {
        let mul = mix.mul_instructions() as f64;
        let alu = mix.alu_instructions() as f64;
        let ldst = mix.ldst_instructions() as f64;
        let issue_cycles = (mul / spec.mul_fus as f64)
            .max(alu / spec.alu_fus as f64)
            .max(ldst / spec.ldst_fus as f64)
            .max(mix.instructions as f64 / spec.total_fus() as f64);
        let stall_cycles = ldst * spec.cache_miss_ratio * spec.miss_penalty_cycles;
        let cycles = issue_cycles + stall_cycles;
        ExecutionEstimate {
            cycles,
            duration: spec.cycles_to_duration(cycles),
            occupancy: FuOccupancy {
                mul_cycles: mul,
                alu_cycles: alu,
                ldst_cycles: ldst,
            },
            bytes_touched,
        }
    }

    /// Runs the PSC boot sequence: sleep, write the boot-address register,
    /// raise the inter-processor interrupt, wake. Returns when the LWP is
    /// ready to fetch the kernel.
    pub fn boot_kernel(&mut self, now: SimTime, kernel_ddr3l_addr: u64) -> SimTime {
        self.state = PowerState::Sleeping;
        self.boot_address = Some(kernel_ddr3l_addr);
        let ready = now + self.spec.cycles_to_duration(self.spec.boot_cycles as f64);
        self.state = PowerState::Active;
        ready
    }

    /// Puts the LWP to sleep (PSC clock gate).
    pub fn sleep(&mut self) {
        self.state = PowerState::Sleeping;
    }

    /// Wakes the LWP.
    pub fn wake(&mut self) {
        self.state = PowerState::Active;
    }

    /// Earliest instant at which new work could start on this LWP.
    pub fn next_free(&self) -> SimTime {
        self.run_queue.next_free()
    }

    /// Enqueues a code region for execution, returning its service window.
    /// Regions queue FIFO behind whatever the LWP is already running.
    pub fn execute(&mut self, now: SimTime, estimate: &ExecutionEstimate) -> Reservation {
        let res = self.run_queue.serve(now, estimate.duration);
        self.busy.add_busy(estimate.duration);
        self.executed_regions += 1;
        self.executed_instructions += estimate.occupancy.mul_cycles as u64
            + estimate.occupancy.alu_cycles as u64
            + estimate.occupancy.ldst_cycles as u64;
        self.fu_busy_cycles += estimate.occupancy.mul_cycles
            + estimate.occupancy.alu_cycles
            + estimate.occupancy.ldst_cycles;
        res
    }

    /// Total busy time up to `now`.
    pub fn busy_time(&self, now: SimTime) -> SimDuration {
        self.busy.busy_time(now)
    }

    /// Busy fraction over the window ending at `now` (Figure 14's metric).
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.busy.utilization(now)
    }

    /// Number of code regions executed.
    pub fn executed_regions(&self) -> u64 {
        self.executed_regions
    }

    /// Instructions retired so far.
    pub fn executed_instructions(&self) -> u64 {
        self.executed_instructions
    }

    /// Mean number of busy functional units over the busy window ending at
    /// `now` (Figure 15a's metric, per LWP).
    pub fn mean_busy_fus(&self, now: SimTime) -> f64 {
        let busy_cycles = self.busy_time(now).as_secs_f64() * self.spec.freq_hz as f64;
        if busy_cycles <= 0.0 {
            0.0
        } else {
            (self.fu_busy_cycles / busy_cycles).min(self.spec.total_fus() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> LwpSpec {
        LwpSpec::default()
    }

    #[test]
    fn fu_counts_match_paper() {
        let s = spec();
        assert_eq!(s.mul_fus, 2);
        assert_eq!(s.alu_fus, 4);
        assert_eq!(s.ldst_fus, 2);
        assert_eq!(s.total_fus(), 8);
    }

    #[test]
    fn ldst_heavy_mixes_are_bound_by_ldst_units() {
        let s = spec();
        let balanced = InstructionMix::new(10_000, 0.10, 0.10);
        let ldst_heavy = InstructionMix::new(10_000, 0.60, 0.10);
        let a = LwpCore::estimate_with(&s, &balanced, 0);
        let b = LwpCore::estimate_with(&s, &ldst_heavy, 0);
        assert!(b.cycles > a.cycles, "{} vs {}", b.cycles, a.cycles);
    }

    #[test]
    fn estimate_scales_linearly_with_instructions() {
        let s = spec();
        let small = LwpCore::estimate_with(&s, &InstructionMix::new(1_000, 0.3, 0.1), 0);
        let large = LwpCore::estimate_with(&s, &InstructionMix::new(10_000, 0.3, 0.1), 0);
        let ratio = large.cycles / small.cycles;
        assert!((ratio - 10.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn mix_split_partitions_instructions() {
        let mix = InstructionMix::new(1_000, 0.4, 0.2);
        let part = mix.split(4);
        assert_eq!(part.instructions, 250);
        assert_eq!(part.ldst_ratio, mix.ldst_ratio);
        let whole = mix.split(0);
        assert_eq!(whole.instructions, 1_000);
    }

    #[test]
    fn mix_ratios_are_clamped() {
        let mix = InstructionMix::new(100, 0.8, 0.6);
        assert!(mix.ldst_ratio + mix.mul_ratio <= 1.0 + 1e-12);
        assert_eq!(
            mix.ldst_instructions() + mix.mul_instructions() + mix.alu_instructions(),
            100
        );
    }

    #[test]
    fn execution_serializes_on_the_core() {
        let mut core = LwpCore::new(0, spec());
        let est = core.estimate(&InstructionMix::new(8_000, 0.3, 0.1), 4096);
        let a = core.execute(SimTime::ZERO, &est);
        let b = core.execute(SimTime::ZERO, &est);
        assert_eq!(b.start, a.end);
        assert_eq!(core.executed_regions(), 2);
        assert!(core.utilization(b.end) > 0.99);
    }

    #[test]
    fn boot_protocol_takes_time_and_sets_address() {
        let mut core = LwpCore::new(3, spec());
        let ready = core.boot_kernel(SimTime::from_us(10), 0xD0D3);
        assert!(ready > SimTime::from_us(10));
        assert_eq!(core.boot_address(), Some(0xD0D3));
        assert_eq!(core.power_state(), PowerState::Active);
    }

    #[test]
    fn sleep_and_wake_toggle_state() {
        let mut core = LwpCore::new(1, spec());
        core.sleep();
        assert_eq!(core.power_state(), PowerState::Sleeping);
        core.wake();
        assert_eq!(core.power_state(), PowerState::Active);
    }

    #[test]
    fn mean_busy_fus_is_bounded() {
        let mut core = LwpCore::new(0, spec());
        let est = core.estimate(&InstructionMix::new(100_000, 0.4, 0.2), 0);
        let res = core.execute(SimTime::ZERO, &est);
        let fus = core.mean_busy_fus(res.end);
        assert!(fus > 0.0 && fus <= 8.0, "fus = {fus}");
    }

    #[test]
    fn splitting_across_cores_shortens_each_share() {
        let s = spec();
        let mix = InstructionMix::new(400_000, 0.45, 0.1);
        let whole = LwpCore::estimate_with(&s, &mix, 0);
        let quarter = LwpCore::estimate_with(&s, &mix.split(4), 0);
        assert!(quarter.duration.as_ns() * 3 < whole.duration.as_ns());
    }
}
