//! On-chip network, message queues, and external links.
//!
//! The prototype separates its interconnect into a high-bandwidth tier-1
//! streaming crossbar (LWPs ↔ memories) and a slower tier-2 crossbar that
//! feeds the AMC and PCIe peripherals; the two are bridged by network
//! switches (§2.2). LWPs exchange control messages over hardware message
//! queues attached to the network — the IPC mechanism whose overhead shows
//! up in the paper's comparison of `InterDy` and `IntraO3`.

use crate::spec::PlatformSpec;
use fa_sim::resource::{Reservation, SerializedResource};
use fa_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A bandwidth-limited crossbar tier.
#[derive(Debug, Clone)]
pub struct Crossbar {
    link: SerializedResource,
    per_hop_latency: SimDuration,
}

impl Crossbar {
    /// Creates a crossbar with the given aggregate bandwidth and per-hop
    /// latency.
    pub fn new(name: impl Into<String>, bytes_per_sec: f64, per_hop_latency: SimDuration) -> Self {
        Crossbar {
            link: SerializedResource::new(name, bytes_per_sec),
            per_hop_latency,
        }
    }

    /// The prototype's tier-1 streaming crossbar (16 GB/s).
    pub fn tier1(spec: &PlatformSpec) -> Self {
        Crossbar::new(
            "tier1-xbar",
            spec.tier1_bytes_per_sec,
            SimDuration::from_ns(20),
        )
    }

    /// The prototype's tier-2 peripheral crossbar (5.2 GB/s).
    pub fn tier2(spec: &PlatformSpec) -> Self {
        Crossbar::new(
            "tier2-xbar",
            spec.tier2_bytes_per_sec,
            SimDuration::from_ns(60),
        )
    }

    /// Schedules a `bytes` transfer across the crossbar.
    pub fn transfer(&mut self, now: SimTime, bytes: u64) -> Reservation {
        let res = self.link.reserve(now, bytes);
        Reservation {
            start: res.start,
            end: res.end + self.per_hop_latency,
        }
    }

    /// Bytes moved so far.
    pub fn bytes_moved(&self) -> u64 {
        self.link.bytes_moved()
    }

    /// Busy fraction up to `now`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.link.utilization(now)
    }
}

/// The PCIe link between the host and the accelerator.
#[derive(Debug, Clone)]
pub struct PcieLink {
    link: SerializedResource,
    doorbell_latency: SimDuration,
}

impl PcieLink {
    /// Creates the prototype's PCIe 2.0 x2 link (≈1 GB/s).
    pub fn new(spec: &PlatformSpec) -> Self {
        PcieLink {
            link: SerializedResource::new("pcie", spec.pcie_bytes_per_sec),
            doorbell_latency: SimDuration::from_us(1),
        }
    }

    /// Schedules a DMA of `bytes` across the link.
    pub fn dma(&mut self, now: SimTime, bytes: u64) -> Reservation {
        self.link.reserve(now, bytes)
    }

    /// Latency of a doorbell/interrupt crossing the link (kernel-completion
    /// signalling, BAR writes).
    pub fn doorbell(&self, now: SimTime) -> SimTime {
        now + self.doorbell_latency
    }

    /// Bytes moved so far.
    pub fn bytes_moved(&self) -> u64 {
        self.link.bytes_moved()
    }

    /// Busy fraction up to `now`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.link.utilization(now)
    }
}

/// A one-way hardware message queue between two LWPs.
///
/// Messages carry a fixed latency and drain in FIFO order; the queue depth
/// is bounded, modelling the hardware queue attached to the network (§2.2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MessageQueue {
    latency: SimDuration,
    capacity: usize,
    in_flight: VecDeque<SimTime>,
    sent: u64,
    dropped_backpressure: u64,
}

impl MessageQueue {
    /// Creates a queue with the platform's message latency and the given
    /// capacity.
    pub fn new(spec: &PlatformSpec, capacity: usize) -> Self {
        MessageQueue {
            latency: SimDuration::from_ns(spec.msgq_latency_ns),
            capacity,
            in_flight: VecDeque::new(),
            sent: 0,
            dropped_backpressure: 0,
        }
    }

    /// One-way message latency.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// Sends a message at `now`; returns the delivery time. When the queue
    /// is full the send stalls until the head drains (back-pressure), which
    /// is counted in [`MessageQueue::backpressure_events`].
    pub fn send(&mut self, now: SimTime) -> SimTime {
        while let Some(front) = self.in_flight.front() {
            if *front <= now {
                self.in_flight.pop_front();
            } else {
                break;
            }
        }
        let start = if self.in_flight.len() >= self.capacity {
            self.dropped_backpressure += 1;
            *self
                .in_flight
                .front()
                .expect("queue full implies non-empty")
        } else {
            now
        };
        let delivered = start + self.latency;
        self.in_flight.push_back(delivered);
        self.sent += 1;
        delivered
    }

    /// Messages sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Number of sends that experienced back-pressure.
    pub fn backpressure_events(&self) -> u64 {
        self.dropped_backpressure
    }
}

/// A multi-hop DMA path: a transfer that crosses several serialized
/// resources in sequence (e.g. host DRAM → PCIe → tier-2 → DDR3L).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaPath {
    /// When the first hop started moving data.
    pub start: SimTime,
    /// When the last hop delivered the final byte.
    pub end: SimTime,
}

impl DmaPath {
    /// Total latency of the path.
    pub fn latency(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// A DMA engine that chains transfers across an ordered list of hops.
///
/// Store-and-forward at hop granularity: each hop begins once the previous
/// hop has fully delivered the payload. This slightly overestimates latency
/// versus cut-through hardware but preserves every bandwidth bottleneck.
#[derive(Debug, Default)]
pub struct DmaEngine {
    transfers: u64,
    bytes: u64,
}

impl DmaEngine {
    /// Creates an idle DMA engine.
    pub fn new() -> Self {
        DmaEngine::default()
    }

    /// Moves `bytes` across `hops` starting at `now`.
    pub fn transfer(
        &mut self,
        now: SimTime,
        bytes: u64,
        hops: &mut [&mut SerializedResource],
    ) -> DmaPath {
        let mut cursor = now;
        let mut first_start = None;
        for hop in hops.iter_mut() {
            let res = hop.reserve(cursor, bytes);
            if first_start.is_none() {
                first_start = Some(res.start);
            }
            cursor = res.end;
        }
        self.transfers += 1;
        self.bytes += bytes;
        DmaPath {
            start: first_start.unwrap_or(now),
            end: cursor,
        }
    }

    /// Number of DMA transfers issued.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total bytes moved.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> PlatformSpec {
        PlatformSpec::paper_prototype()
    }

    #[test]
    fn tier1_is_faster_than_tier2() {
        let mut t1 = Crossbar::tier1(&spec());
        let mut t2 = Crossbar::tier2(&spec());
        let a = t1.transfer(SimTime::ZERO, 1 << 20);
        let b = t2.transfer(SimTime::ZERO, 1 << 20);
        assert!(a.end < b.end);
    }

    #[test]
    fn pcie_dma_matches_1gbps_budget() {
        let mut p = PcieLink::new(&spec());
        let res = p.dma(SimTime::ZERO, 1 << 30);
        let secs = res.end.saturating_since(res.start).as_secs_f64();
        assert!((secs - 1.073).abs() < 0.05, "took {secs}s");
    }

    #[test]
    fn doorbell_adds_fixed_latency() {
        let p = PcieLink::new(&spec());
        assert_eq!(p.doorbell(SimTime::ZERO), SimTime::from_us(1));
    }

    #[test]
    fn message_queue_delivers_with_fixed_latency() {
        let mut q = MessageQueue::new(&spec(), 16);
        let d = q.send(SimTime::from_ns(100));
        assert_eq!(d.as_ns(), 100 + 200);
        assert_eq!(q.sent(), 1);
        assert_eq!(q.backpressure_events(), 0);
    }

    #[test]
    fn message_queue_backpressure_when_full() {
        let mut q = MessageQueue::new(&spec(), 2);
        q.send(SimTime::ZERO);
        q.send(SimTime::ZERO);
        let third = q.send(SimTime::ZERO);
        assert!(third.as_ns() > 200);
        assert_eq!(q.backpressure_events(), 1);
    }

    #[test]
    fn dma_chains_bottleneck_on_slowest_hop() {
        let s = spec();
        let mut host_mem = SerializedResource::new("host-dram", 20.0e9);
        let mut pcie = SerializedResource::new("pcie", s.pcie_bytes_per_sec);
        let mut ddr = SerializedResource::new("ddr3l", s.ddr3l_bytes_per_sec);
        let mut dma = DmaEngine::new();
        let bytes = 64u64 << 20;
        let path = dma.transfer(
            SimTime::ZERO,
            bytes,
            &mut [&mut host_mem, &mut pcie, &mut ddr],
        );
        // The PCIe hop (1 GB/s) dominates: 64 MiB ≈ 67 ms; the full chain is
        // store-and-forward so it is strictly longer but within ~2x.
        let ms = path.latency().as_secs_f64() * 1e3;
        assert!(ms > 67.0 && ms < 134.0, "latency {ms} ms");
        assert_eq!(dma.transfers(), 1);
        assert_eq!(dma.bytes(), bytes);
    }
}
