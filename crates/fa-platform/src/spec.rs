//! The Table 1 hardware specification.

use serde::{Deserialize, Serialize};

/// Static description of the accelerator platform (Table 1 of the paper).
///
/// # Examples
///
/// ```
/// let spec = fa_platform::PlatformSpec::paper_prototype();
/// assert_eq!(spec.lwp_count, 8);
/// assert_eq!(spec.lwp_freq_hz, 1_000_000_000);
/// assert!(spec.worker_lwps() == 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Number of lightweight processors.
    pub lwp_count: usize,
    /// LWP clock frequency in Hz (1 GHz in the prototype).
    pub lwp_freq_hz: u64,
    /// Typical active power of one LWP in watts.
    pub lwp_power_w: f64,
    /// Per-LWP L1 cache size in bytes.
    pub l1_bytes: usize,
    /// Per-LWP L2 cache size in bytes.
    pub l2_bytes: usize,
    /// Scratchpad capacity in bytes (4 MB, 8 banks).
    pub scratchpad_bytes: usize,
    /// Number of scratchpad banks.
    pub scratchpad_banks: usize,
    /// Scratchpad aggregate bandwidth in bytes/second (≈16 GB/s).
    pub scratchpad_bytes_per_sec: f64,
    /// DDR3L capacity in bytes (1 GB).
    pub ddr3l_bytes: usize,
    /// DDR3L bandwidth in bytes/second (6.4 GB/s).
    pub ddr3l_bytes_per_sec: f64,
    /// DDR3L typical power in watts.
    pub ddr3l_power_w: f64,
    /// Tier-1 (streaming) crossbar bandwidth in bytes/second (16 GB/s).
    pub tier1_bytes_per_sec: f64,
    /// Tier-2 (peripheral) crossbar bandwidth in bytes/second (5.2 GB/s).
    pub tier2_bytes_per_sec: f64,
    /// PCIe bandwidth toward the host in bytes/second (v2.0 x2 ≈ 1 GB/s).
    pub pcie_bytes_per_sec: f64,
    /// PCIe interface power in watts.
    pub pcie_power_w: f64,
    /// Flash backbone (SSD) typical power in watts.
    pub flash_power_w: f64,
    /// One-way hardware message-queue latency in nanoseconds.
    pub msgq_latency_ns: u64,
    /// Number of LWPs reserved for system roles (Flashvisor + Storengine).
    pub system_lwps: usize,
}

impl PlatformSpec {
    /// The prototype configuration from Table 1.
    pub fn paper_prototype() -> Self {
        PlatformSpec {
            lwp_count: 8,
            lwp_freq_hz: 1_000_000_000,
            lwp_power_w: 0.8,
            l1_bytes: 64 * 1024,
            l2_bytes: 512 * 1024,
            scratchpad_bytes: 4 * 1024 * 1024,
            scratchpad_banks: 8,
            scratchpad_bytes_per_sec: 16.0e9,
            ddr3l_bytes: 1024 * 1024 * 1024,
            ddr3l_bytes_per_sec: 6.4e9,
            ddr3l_power_w: 0.7,
            tier1_bytes_per_sec: 16.0e9,
            tier2_bytes_per_sec: 5.2e9,
            pcie_bytes_per_sec: 1.0e9,
            pcie_power_w: 0.17,
            flash_power_w: 11.0,
            msgq_latency_ns: 200,
            system_lwps: 2,
        }
    }

    /// Number of LWPs available to execute user kernels (total minus
    /// Flashvisor and Storengine).
    pub fn worker_lwps(&self) -> usize {
        self.lwp_count.saturating_sub(self.system_lwps)
    }

    /// Duration of one LWP clock cycle in nanoseconds (fractional).
    pub fn cycle_ns(&self) -> f64 {
        1.0e9 / self.lwp_freq_hz as f64
    }
}

impl Default for PlatformSpec {
    fn default() -> Self {
        PlatformSpec::paper_prototype()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_matches_table1() {
        let s = PlatformSpec::paper_prototype();
        assert_eq!(s.lwp_count, 8);
        assert_eq!(s.l1_bytes, 64 * 1024);
        assert_eq!(s.l2_bytes, 512 * 1024);
        assert_eq!(s.scratchpad_bytes, 4 << 20);
        assert_eq!(s.ddr3l_bytes, 1 << 30);
        assert!((s.ddr3l_bytes_per_sec - 6.4e9).abs() < 1.0);
        assert!((s.lwp_power_w - 0.8).abs() < 1e-9);
        assert_eq!(s.worker_lwps(), 6);
        assert!((s.cycle_ns() - 1.0).abs() < 1e-12);
    }
}
