//! Accelerator-side memory system: DDR3L, the banked scratchpad, and the
//! private L1/L2 caches.
//!
//! In the prototype, DDR3L backs the flash-mapped data sections of every
//! kernel (and absorbs most flash writes as an internal cache), while the
//! 8-bank SRAM scratchpad holds Flashvisor's administrative structures —
//! above all the page-group mapping table — and the message-queue entries,
//! serving them "as fast as an L2 cache" (§2.2).

use crate::spec::PlatformSpec;
use fa_sim::resource::{Reservation, SerializedResource};
use fa_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A private cache level description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheSpec {
    /// Capacity in bytes.
    pub capacity: usize,
    /// Access latency in core cycles.
    pub latency_cycles: u32,
}

impl CacheSpec {
    /// The prototype's 64 KB L1.
    pub fn l1_prototype() -> Self {
        CacheSpec {
            capacity: 64 * 1024,
            latency_cycles: 2,
        }
    }

    /// The prototype's 512 KB L2.
    pub fn l2_prototype() -> Self {
        CacheSpec {
            capacity: 512 * 1024,
            latency_cycles: 10,
        }
    }
}

/// The DDR3L main memory of the accelerator.
///
/// Modelled as a bandwidth-serialized device with a fixed capacity; the
/// Flashvisor maps kernel data sections here, so capacity pressure is what
/// forces applications to be split into multiple kernels on conventional
/// accelerators (§3).
#[derive(Debug, Clone)]
pub struct Ddr3l {
    capacity: usize,
    allocated: usize,
    channel: SerializedResource,
}

impl Ddr3l {
    /// Creates a DDR3L device from the platform spec.
    pub fn new(spec: &PlatformSpec) -> Self {
        Ddr3l {
            capacity: spec.ddr3l_bytes,
            allocated: 0,
            channel: SerializedResource::new("ddr3l", spec.ddr3l_bytes_per_sec),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently allocated to data sections and kernel images.
    pub fn allocated(&self) -> usize {
        self.allocated
    }

    /// Bytes still available.
    pub fn available(&self) -> usize {
        self.capacity - self.allocated
    }

    /// Reserves `bytes` of capacity, returning the base offset or `None`
    /// when the device is full.
    pub fn allocate(&mut self, bytes: usize) -> Option<u64> {
        if bytes > self.available() {
            return None;
        }
        let base = self.allocated as u64;
        self.allocated += bytes;
        Some(base)
    }

    /// Releases `bytes` of capacity (bump-style accounting: only totals are
    /// tracked, which is sufficient for the capacity-pressure experiments).
    pub fn free(&mut self, bytes: usize) {
        self.allocated = self.allocated.saturating_sub(bytes);
    }

    /// Schedules a transfer of `bytes` through the DDR3L channel.
    pub fn transfer(&mut self, now: SimTime, bytes: u64) -> Reservation {
        self.channel.reserve(now, bytes)
    }

    /// Bytes moved through the device so far.
    pub fn bytes_moved(&self) -> u64 {
        self.channel.bytes_moved()
    }

    /// Busy fraction up to `now`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.channel.utilization(now)
    }
}

/// The 8-bank SRAM scratchpad.
///
/// Requests are routed to a bank by address; banks serve independently, so
/// mapping-table lookups from Flashvisor and journaling traffic from
/// Storengine only contend when they hit the same bank.
#[derive(Debug, Clone)]
pub struct Scratchpad {
    banks: Vec<SerializedResource>,
    bank_bytes: usize,
    access_latency: SimDuration,
    accesses: u64,
}

impl Scratchpad {
    /// Creates the scratchpad from the platform spec.
    pub fn new(spec: &PlatformSpec) -> Self {
        let banks = (0..spec.scratchpad_banks)
            .map(|b| {
                SerializedResource::new(
                    format!("scratchpad-bank{b}"),
                    spec.scratchpad_bytes_per_sec / spec.scratchpad_banks as f64,
                )
            })
            .collect();
        Scratchpad {
            banks,
            bank_bytes: spec.scratchpad_bytes / spec.scratchpad_banks.max(1),
            access_latency: SimDuration::from_ns(4),
            accesses: 0,
        }
    }

    /// Number of banks.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Capacity of each bank in bytes.
    pub fn bank_bytes(&self) -> usize {
        self.bank_bytes
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.bank_bytes * self.banks.len()
    }

    /// Which bank serves byte address `addr`.
    pub fn bank_of(&self, addr: u64) -> usize {
        (addr / self.bank_bytes.max(1) as u64) as usize % self.banks.len().max(1)
    }

    /// Schedules an access of `bytes` at byte address `addr`.
    pub fn access(&mut self, now: SimTime, addr: u64, bytes: u64) -> Reservation {
        let bank = self.bank_of(addr);
        self.accesses += 1;
        let res = self.banks[bank].reserve(now, bytes);
        Reservation {
            start: res.start,
            end: res.end + self.access_latency,
        }
    }

    /// Number of accesses served.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Mean bank utilization up to `now`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if self.banks.is_empty() {
            return 0.0;
        }
        self.banks.iter().map(|b| b.utilization(now)).sum::<f64>() / self.banks.len() as f64
    }
}

/// Convenience bundle of the accelerator memory system.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    /// The DDR3L device.
    pub ddr3l: Ddr3l,
    /// The scratchpad.
    pub scratchpad: Scratchpad,
    /// L1 description (used by the energy model and reports).
    pub l1: CacheSpec,
    /// L2 description.
    pub l2: CacheSpec,
}

impl MemorySystem {
    /// Builds the full memory system from a platform spec.
    pub fn new(spec: &PlatformSpec) -> Self {
        MemorySystem {
            ddr3l: Ddr3l::new(spec),
            scratchpad: Scratchpad::new(spec),
            l1: CacheSpec {
                capacity: spec.l1_bytes,
                latency_cycles: CacheSpec::l1_prototype().latency_cycles,
            },
            l2: CacheSpec {
                capacity: spec.l2_bytes,
                latency_cycles: CacheSpec::l2_prototype().latency_cycles,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> PlatformSpec {
        PlatformSpec::paper_prototype()
    }

    #[test]
    fn ddr3l_capacity_accounting() {
        let mut d = Ddr3l::new(&spec());
        assert_eq!(d.capacity(), 1 << 30);
        let a = d.allocate(512 << 20).unwrap();
        assert_eq!(a, 0);
        let b = d.allocate(256 << 20).unwrap();
        assert_eq!(b, 512 << 20);
        assert!(d.allocate(512 << 20).is_none());
        d.free(256 << 20);
        assert!(d.allocate(400 << 20).is_some());
    }

    #[test]
    fn ddr3l_transfer_time_matches_bandwidth() {
        let mut d = Ddr3l::new(&spec());
        let res = d.transfer(SimTime::ZERO, 64 << 20);
        // 64 MiB at 6.4 GB/s ≈ 10.49 ms.
        let ms = res.end.saturating_since(res.start).as_secs_f64() * 1e3;
        assert!((ms - 10.49).abs() < 0.2, "took {ms} ms");
        assert_eq!(d.bytes_moved(), 64 << 20);
    }

    #[test]
    fn scratchpad_routes_by_bank() {
        let s = Scratchpad::new(&spec());
        assert_eq!(s.bank_count(), 8);
        assert_eq!(s.capacity(), 4 << 20);
        assert_eq!(s.bank_of(0), 0);
        assert_eq!(s.bank_of(s.bank_bytes() as u64), 1);
        assert_eq!(s.bank_of((s.capacity() as u64) + 3), 0);
    }

    #[test]
    fn scratchpad_banks_serve_in_parallel() {
        let mut s = Scratchpad::new(&spec());
        let bank_stride = s.bank_bytes() as u64;
        let a = s.access(SimTime::ZERO, 0, 64 * 1024);
        let b = s.access(SimTime::ZERO, bank_stride, 64 * 1024);
        // Different banks: both start immediately.
        assert_eq!(a.start, b.start);
        let c = s.access(SimTime::ZERO, 0, 64 * 1024);
        // Same bank as `a`: serialized behind it (ends strictly later).
        assert!(c.end > a.end);
        assert!(c.start > b.start);
        assert_eq!(s.accesses(), 3);
    }

    #[test]
    fn memory_system_bundles_prototype_parameters() {
        let m = MemorySystem::new(&spec());
        assert_eq!(m.l1.capacity, 64 * 1024);
        assert_eq!(m.l2.capacity, 512 * 1024);
        assert_eq!(m.scratchpad.bank_count(), 8);
        assert_eq!(m.ddr3l.capacity(), 1 << 30);
    }
}
