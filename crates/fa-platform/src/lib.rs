//! Low-power multicore platform model.
//!
//! The paper's compute complex is a commercially available embedded SoC:
//! eight VLIW lightweight processors (LWPs) at 1 GHz, each with eight
//! functional units and private L1/L2 caches, a 4 MB banked scratchpad, 1 GB
//! of DDR3L, a two-tier partial crossbar network, hardware message queues,
//! a PCIe 2.0 x2 host link, and the AMC/SRIO hop toward the flash backbone
//! (Table 1 and §2.2). This crate models each of those pieces:
//!
//! * [`spec`] — the Table 1 hardware specification as typed constants.
//! * [`lwp`] — the VLIW issue model, per-LWP run queue, and the power/sleep
//!   controller protocol used to boot kernels.
//! * [`mem`] — DDR3L, the banked scratchpad, and the private-cache model.
//! * [`noc`] — tier-1/tier-2 crossbars, hardware message queues, and the
//!   PCIe/SRIO links, plus a DMA helper for multi-hop transfers.

pub mod lwp;
pub mod mem;
pub mod noc;
pub mod spec;

pub use lwp::{ExecutionEstimate, FuOccupancy, InstructionMix, LwpCore, LwpSpec, PowerState};
pub use mem::{CacheSpec, Ddr3l, MemorySystem, Scratchpad};
pub use noc::{Crossbar, DmaEngine, DmaPath, MessageQueue, PcieLink};
pub use spec::PlatformSpec;
