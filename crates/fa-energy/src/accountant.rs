//! Activity-based energy accounting.

use crate::power::{Component, PowerSpec};
use fa_sim::stats::TimeSeries;
use fa_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The paper's three-way energy decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActivityCategory {
    /// Host-side work spent moving data between the SSD and the accelerator
    /// (redundant copies, user/kernel crossings, PCIe DMA set-up).
    DataMovement,
    /// The accelerator processing data.
    Computation,
    /// The storage device and I/O stack serving requests.
    StorageAccess,
}

/// One recorded busy interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Activity {
    component: Component,
    category: ActivityCategory,
    start: SimTime,
    end: SimTime,
    watts: f64,
}

/// Energy totals in joules, decomposed by category.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Joules attributed to data movement.
    pub data_movement_j: f64,
    /// Joules attributed to computation.
    pub computation_j: f64,
    /// Joules attributed to storage access.
    pub storage_access_j: f64,
    /// Joules of background/idle power over the measured window.
    pub idle_j: f64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.data_movement_j + self.computation_j + self.storage_access_j + self.idle_j
    }

    /// Fraction of total energy in a category (0 when the total is 0).
    pub fn fraction(&self, category: ActivityCategory) -> f64 {
        let total = self.total_j();
        if total <= 0.0 {
            return 0.0;
        }
        let part = match category {
            ActivityCategory::DataMovement => self.data_movement_j,
            ActivityCategory::Computation => self.computation_j,
            ActivityCategory::StorageAccess => self.storage_access_j,
        };
        part / total
    }

    /// Folds the idle/background energy into the three categories in
    /// proportion to the supplied weights, reproducing the paper's
    /// three-way presentation (its figures have no separate idle bar; the
    /// background power of each component is carried by the role that
    /// component plays in the system).
    pub fn with_idle_redistributed(
        &self,
        data_movement_weight: f64,
        computation_weight: f64,
        storage_weight: f64,
    ) -> EnergyBreakdown {
        let total_w = data_movement_weight + computation_weight + storage_weight;
        if total_w <= 0.0 || self.idle_j <= 0.0 {
            return *self;
        }
        EnergyBreakdown {
            data_movement_j: self.data_movement_j + self.idle_j * data_movement_weight / total_w,
            computation_j: self.computation_j + self.idle_j * computation_weight / total_w,
            storage_access_j: self.storage_access_j + self.idle_j * storage_weight / total_w,
            idle_j: 0.0,
        }
    }

    /// Returns a copy with every field scaled by `factor` (used to
    /// normalize against a baseline).
    pub fn scaled(&self, factor: f64) -> EnergyBreakdown {
        EnergyBreakdown {
            data_movement_j: self.data_movement_j * factor,
            computation_j: self.computation_j * factor,
            storage_access_j: self.storage_access_j * factor,
            idle_j: self.idle_j * factor,
        }
    }
}

/// Integrates component power over recorded busy intervals.
///
/// # Examples
///
/// ```
/// use fa_energy::{ActivityCategory, Component, EnergyAccountant, PowerSpec};
/// use fa_sim::time::SimTime;
///
/// let mut acct = EnergyAccountant::new(PowerSpec::paper_prototype());
/// acct.record(
///     Component::Lwp,
///     ActivityCategory::Computation,
///     SimTime::ZERO,
///     SimTime::from_ms(1),
/// );
/// let breakdown = acct.breakdown(SimTime::from_ms(1));
/// // One LWP charged at its incremental (active − idle) power of 0.72 W
/// // for 1 ms = 0.72 mJ of computation energy.
/// assert!((breakdown.computation_j - 0.00072).abs() < 1e-7);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyAccountant {
    spec: PowerSpec,
    activities: Vec<Activity>,
    /// Components whose idle power is charged over the whole window.
    idle_components: Vec<(Component, usize)>,
}

impl EnergyAccountant {
    /// Creates an accountant with the given power figures and no idle
    /// components registered.
    pub fn new(spec: PowerSpec) -> Self {
        EnergyAccountant {
            spec,
            activities: Vec::new(),
            idle_components: Vec::new(),
        }
    }

    /// Registers `count` instances of `component` whose idle power should be
    /// charged for the entire measurement window (e.g. eight LWPs, one
    /// DDR3L device). Active intervals are charged on top of idle power at
    /// `active - idle` watts so energy is not double counted.
    pub fn register_idle(&mut self, component: Component, count: usize) {
        self.idle_components.push((component, count));
    }

    /// Records a busy interval of `component` charged to `category`, using
    /// the component's configured active power.
    pub fn record(
        &mut self,
        component: Component,
        category: ActivityCategory,
        start: SimTime,
        end: SimTime,
    ) {
        self.record_scaled(component, category, start, end, 1.0);
    }

    /// Records a busy interval with the active power scaled by `scale`
    /// (e.g. a transfer using half the interface's lanes).
    pub fn record_scaled(
        &mut self,
        component: Component,
        category: ActivityCategory,
        start: SimTime,
        end: SimTime,
        scale: f64,
    ) {
        if end <= start || scale <= 0.0 {
            return;
        }
        let incremental =
            (self.spec.active_watts(component) - self.spec.idle_watts(component)).max(0.0);
        self.activities.push(Activity {
            component,
            category,
            start,
            end,
            watts: incremental * scale,
        });
    }

    /// Number of recorded activity intervals.
    pub fn activity_count(&self) -> usize {
        self.activities.len()
    }

    /// Computes the category breakdown over the window `[0, horizon]`.
    pub fn breakdown(&self, horizon: SimTime) -> EnergyBreakdown {
        let mut out = EnergyBreakdown::default();
        for a in &self.activities {
            let end = a.end.min(horizon);
            if end <= a.start {
                continue;
            }
            let joules = a.watts * (end.saturating_since(a.start)).as_secs_f64();
            match a.category {
                ActivityCategory::DataMovement => out.data_movement_j += joules,
                ActivityCategory::Computation => out.computation_j += joules,
                ActivityCategory::StorageAccess => out.storage_access_j += joules,
            }
        }
        let window = horizon.saturating_since(SimTime::ZERO).as_secs_f64();
        for (component, count) in &self.idle_components {
            out.idle_j += self.spec.idle_watts(*component) * *count as f64 * window;
        }
        out
    }

    /// Total energy in joules over the window `[0, horizon]`.
    pub fn total_joules(&self, horizon: SimTime) -> f64 {
        self.breakdown(horizon).total_j()
    }

    /// Reconstructs the instantaneous power curve sampled every `bucket`
    /// over `[0, horizon]` — the Figure 15b view. Idle power of registered
    /// components forms the floor; active intervals add on top.
    pub fn power_timeline(&self, horizon: SimTime, bucket: SimDuration) -> TimeSeries {
        let mut series = TimeSeries::new();
        if bucket.is_zero() {
            return series;
        }
        let idle_floor: f64 = self
            .idle_components
            .iter()
            .map(|(c, n)| self.spec.idle_watts(*c) * *n as f64)
            .sum();
        let mut cursor = SimTime::ZERO;
        while cursor <= horizon {
            let bucket_end = cursor + bucket;
            let mut watts = idle_floor;
            for a in &self.activities {
                // Power contribution proportional to the overlap between the
                // activity and this bucket.
                let ov_start = a.start.max(cursor);
                let ov_end = a.end.min(bucket_end);
                if ov_end > ov_start {
                    let overlap = ov_end.saturating_since(ov_start).as_secs_f64();
                    watts += a.watts * overlap / bucket.as_secs_f64();
                }
            }
            series.record(cursor, watts);
            cursor = bucket_end;
        }
        series
    }

    /// The configured power spec.
    pub fn spec(&self) -> &PowerSpec {
        &self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acct() -> EnergyAccountant {
        EnergyAccountant::new(PowerSpec::paper_prototype())
    }

    #[test]
    fn energy_is_power_times_time() {
        let mut a = acct();
        a.record(
            Component::HostCpu,
            ActivityCategory::DataMovement,
            SimTime::ZERO,
            SimTime::from_ms(100),
        );
        let b = a.breakdown(SimTime::from_ms(100));
        let expected = (85.0 - 18.0) * 0.1;
        assert!((b.data_movement_j - expected).abs() < 1e-9);
        assert_eq!(b.computation_j, 0.0);
    }

    #[test]
    fn categories_accumulate_independently() {
        let mut a = acct();
        a.record(
            Component::Lwp,
            ActivityCategory::Computation,
            SimTime::ZERO,
            SimTime::from_ms(10),
        );
        a.record(
            Component::FlashOrSsd,
            ActivityCategory::StorageAccess,
            SimTime::ZERO,
            SimTime::from_ms(20),
        );
        a.record(
            Component::Pcie,
            ActivityCategory::DataMovement,
            SimTime::from_ms(5),
            SimTime::from_ms(15),
        );
        let b = a.breakdown(SimTime::from_ms(20));
        assert!(b.computation_j > 0.0);
        assert!(b.storage_access_j > 0.0);
        assert!(b.data_movement_j > 0.0);
        assert!(b.total_j() >= b.computation_j + b.storage_access_j);
        let f = b.fraction(ActivityCategory::StorageAccess);
        assert!(f > 0.0 && f < 1.0);
    }

    #[test]
    fn horizon_clips_open_intervals() {
        let mut a = acct();
        a.record(
            Component::Lwp,
            ActivityCategory::Computation,
            SimTime::ZERO,
            SimTime::from_ms(100),
        );
        let clipped = a.breakdown(SimTime::from_ms(50));
        let full = a.breakdown(SimTime::from_ms(100));
        assert!((clipped.computation_j * 2.0 - full.computation_j).abs() < 1e-9);
    }

    #[test]
    fn idle_components_charge_background_power() {
        let mut a = acct();
        a.register_idle(Component::Lwp, 8);
        a.register_idle(Component::Ddr3l, 1);
        let b = a.breakdown(SimTime::from_ms(1000));
        let expected = (8.0 * 0.08 + 0.15) * 1.0;
        assert!((b.idle_j - expected).abs() < 1e-9);
    }

    #[test]
    fn zero_length_or_negative_scale_records_are_ignored() {
        let mut a = acct();
        a.record(
            Component::Lwp,
            ActivityCategory::Computation,
            SimTime::from_ms(5),
            SimTime::from_ms(5),
        );
        a.record_scaled(
            Component::Lwp,
            ActivityCategory::Computation,
            SimTime::ZERO,
            SimTime::from_ms(5),
            0.0,
        );
        assert_eq!(a.activity_count(), 0);
        assert_eq!(a.breakdown(SimTime::from_ms(10)).total_j(), 0.0);
    }

    #[test]
    fn power_timeline_rises_during_activity() {
        let mut a = acct();
        a.register_idle(Component::FlashOrSsd, 1);
        a.record(
            Component::FlashOrSsd,
            ActivityCategory::StorageAccess,
            SimTime::from_ms(10),
            SimTime::from_ms(20),
        );
        let series = a.power_timeline(SimTime::from_ms(30), SimDuration::from_ms(5));
        let points = series.points();
        assert!(!points.is_empty());
        let floor = points[0].1;
        let peak = points.iter().map(|p| p.1).fold(0.0, f64::max);
        assert!(peak > floor + 5.0, "peak {peak} floor {floor}");
        // After the activity ends the curve returns to the idle floor.
        assert!((points.last().unwrap().1 - floor).abs() < 1e-9);
    }

    #[test]
    fn scaled_breakdown_normalizes() {
        let mut a = acct();
        a.record(
            Component::HostCpu,
            ActivityCategory::DataMovement,
            SimTime::ZERO,
            SimTime::from_ms(10),
        );
        let b = a.breakdown(SimTime::from_ms(10));
        let half = b.scaled(0.5);
        assert!((half.total_j() * 2.0 - b.total_j()).abs() < 1e-12);
    }
}
