//! Per-component power figures.

use serde::{Deserialize, Serialize};

/// Components whose activity the energy model tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Component {
    /// One lightweight processor of the accelerator.
    Lwp,
    /// The accelerator's DDR3L memory.
    Ddr3l,
    /// The accelerator's scratchpad and crossbar fabric.
    Fabric,
    /// The PCIe interface between host and accelerator.
    Pcie,
    /// The flash backbone (or, for the baseline, the discrete NVMe SSD).
    FlashOrSsd,
    /// The host CPU.
    HostCpu,
    /// The host DRAM.
    HostDram,
}

/// Power figures in watts for every tracked component, split into active
/// and idle power so that both busy intervals and standby time can be
/// charged.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSpec {
    /// Active power of one LWP (Table 1: 0.8 W/core).
    pub lwp_active_w: f64,
    /// Idle (clock-gated) power of one LWP.
    pub lwp_idle_w: f64,
    /// DDR3L active power (Table 1: 0.7 W).
    pub ddr3l_active_w: f64,
    /// DDR3L idle power.
    pub ddr3l_idle_w: f64,
    /// Scratchpad + crossbar fabric active power.
    pub fabric_active_w: f64,
    /// PCIe interface power while transferring (Table 1: 0.17 W).
    pub pcie_active_w: f64,
    /// Flash backbone / SSD active power (Table 1: 11 W).
    pub flash_active_w: f64,
    /// Flash backbone / SSD idle power.
    pub flash_idle_w: f64,
    /// Host CPU active power (Xeon E5-2620 v3 class, per §5).
    pub host_cpu_active_w: f64,
    /// Host CPU idle power.
    pub host_cpu_idle_w: f64,
    /// Host DRAM active power (32 GB DDR4).
    pub host_dram_active_w: f64,
    /// Host DRAM idle (refresh) power.
    pub host_dram_idle_w: f64,
}

impl PowerSpec {
    /// Power figures for the paper's evaluation platform.
    pub fn paper_prototype() -> Self {
        PowerSpec {
            lwp_active_w: 0.8,
            lwp_idle_w: 0.08,
            ddr3l_active_w: 0.7,
            ddr3l_idle_w: 0.15,
            fabric_active_w: 0.5,
            pcie_active_w: 0.17,
            flash_active_w: 11.0,
            flash_idle_w: 1.2,
            host_cpu_active_w: 85.0,
            host_cpu_idle_w: 18.0,
            host_dram_active_w: 6.0,
            host_dram_idle_w: 1.5,
        }
    }

    /// Active power of a component.
    pub fn active_watts(&self, component: Component) -> f64 {
        match component {
            Component::Lwp => self.lwp_active_w,
            Component::Ddr3l => self.ddr3l_active_w,
            Component::Fabric => self.fabric_active_w,
            Component::Pcie => self.pcie_active_w,
            Component::FlashOrSsd => self.flash_active_w,
            Component::HostCpu => self.host_cpu_active_w,
            Component::HostDram => self.host_dram_active_w,
        }
    }

    /// Idle power of a component.
    pub fn idle_watts(&self, component: Component) -> f64 {
        match component {
            Component::Lwp => self.lwp_idle_w,
            Component::Ddr3l => self.ddr3l_idle_w,
            Component::Fabric => 0.05,
            Component::Pcie => 0.02,
            Component::FlashOrSsd => self.flash_idle_w,
            Component::HostCpu => self.host_cpu_idle_w,
            Component::HostDram => self.host_dram_idle_w,
        }
    }
}

impl Default for PowerSpec {
    fn default() -> Self {
        PowerSpec::paper_prototype()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_power_figures() {
        let p = PowerSpec::paper_prototype();
        assert!((p.lwp_active_w - 0.8).abs() < 1e-9);
        assert!((p.ddr3l_active_w - 0.7).abs() < 1e-9);
        assert!((p.pcie_active_w - 0.17).abs() < 1e-9);
        assert!((p.flash_active_w - 11.0).abs() < 1e-9);
    }

    #[test]
    fn active_power_exceeds_idle_power() {
        let p = PowerSpec::paper_prototype();
        for c in [
            Component::Lwp,
            Component::Ddr3l,
            Component::Fabric,
            Component::Pcie,
            Component::FlashOrSsd,
            Component::HostCpu,
            Component::HostDram,
        ] {
            assert!(
                p.active_watts(c) > p.idle_watts(c),
                "{c:?} active should exceed idle"
            );
        }
    }

    #[test]
    fn host_components_dominate_accelerator_components() {
        // The premise of the paper's energy argument: the host CPU + DRAM
        // cost far more than the whole accelerator.
        let p = PowerSpec::paper_prototype();
        let accel = 8.0 * p.lwp_active_w + p.ddr3l_active_w + p.fabric_active_w + p.pcie_active_w;
        assert!(p.host_cpu_active_w > 3.0 * accel);
    }
}
