//! Component power specifications and activity-based energy accounting.
//!
//! The paper's energy evaluation (Figures 3e, 13, 15b, 16b) decomposes
//! system energy into three parts: *data movement* (host CPU and DRAM work
//! spent shuttling data between the SSD and the accelerator), *computation*
//! (the accelerator actually processing data), and *storage access* (the
//! I/O stack and the storage device serving requests). This crate provides:
//!
//! * [`power`] — per-component power figures assembled from Table 1 and the
//!   host platform description (§5).
//! * [`accountant`] — an activity log that integrates power over busy
//!   intervals, reports the three-way breakdown, and can reconstruct the
//!   power-versus-time curve of Figure 15b.

pub mod accountant;
pub mod power;

pub use accountant::{ActivityCategory, EnergyAccountant, EnergyBreakdown};
pub use power::{Component, PowerSpec};
