//! Applications, kernels, microblocks, screens, and data sections.

use fa_platform::lwp::InstructionMix;
use serde::{Deserialize, Serialize};

/// Identifier of an application instance offloaded to the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AppId(pub u32);

/// Identifier of a kernel within the offloaded workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct KernelId {
    /// Owning application.
    pub app: AppId,
    /// Kernel index within the application.
    pub index: u32,
}

/// Broad workload class used by the evaluation to group results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// Dominated by storage traffic (high bytes-per-kilo-instruction).
    DataIntensive,
    /// Dominated by arithmetic (low bytes-per-kilo-instruction).
    ComputeIntensive,
}

/// The flash-mapped data section of a kernel.
///
/// The addresses are *word addresses in the flash backbone's logical
/// space*; Flashvisor translates them to physical pages (§4.3). Inputs are
/// read from flash into DDR3L before the microblocks that consume them run;
/// outputs are flushed back to flash when the kernel completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataSection {
    /// First logical flash byte address mapped by this kernel.
    pub flash_base: u64,
    /// Bytes of input data read from flash.
    pub input_bytes: u64,
    /// Bytes of output data written back to flash.
    pub output_bytes: u64,
}

impl DataSection {
    /// Total bytes of flash traffic this data section generates.
    pub fn total_bytes(&self) -> u64 {
        self.input_bytes + self.output_bytes
    }

    /// The logical flash range `[start, end)` occupied by the section.
    pub fn flash_range(&self) -> (u64, u64) {
        (self.flash_base, self.flash_base + self.total_bytes())
    }

    /// Returns a copy of the section rebased at `new_base`.
    pub fn rebased(&self, new_base: u64) -> DataSection {
        DataSection {
            flash_base: new_base,
            ..*self
        }
    }
}

/// One screen: a hazard-free slice of a microblock's iteration space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Screen {
    /// Index of the screen within its microblock.
    pub index: u32,
    /// Instruction mix executed by this screen.
    pub mix: InstructionMix,
    /// Bytes of the kernel's input this screen consumes.
    pub input_bytes: u64,
    /// Bytes of the kernel's output this screen produces.
    pub output_bytes: u64,
}

impl Screen {
    /// Total bytes the screen touches.
    pub fn bytes_touched(&self) -> u64 {
        self.input_bytes + self.output_bytes
    }
}

/// One microblock: a dependency-ordered group of code within a kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Microblock {
    /// Index of the microblock within its kernel (execution order).
    pub index: u32,
    /// Parallel screens; a *serial* microblock has exactly one.
    pub screens: Vec<Screen>,
}

impl Microblock {
    /// True if this microblock cannot be split across LWPs.
    pub fn is_serial(&self) -> bool {
        self.screens.len() <= 1
    }

    /// Total instructions across all screens.
    pub fn instructions(&self) -> u64 {
        self.screens.iter().map(|s| s.mix.instructions).sum()
    }

    /// Total bytes touched across all screens.
    pub fn bytes_touched(&self) -> u64 {
        self.screens.iter().map(Screen::bytes_touched).sum()
    }
}

/// One kernel of an application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    /// Kernel identity.
    pub id: KernelId,
    /// Human-readable name (benchmark name, e.g. `ATAX-k0`).
    pub name: String,
    /// Microblocks in dependency order.
    pub microblocks: Vec<Microblock>,
    /// The kernel's flash-mapped data section.
    pub data_section: DataSection,
}

impl Kernel {
    /// Total instructions across all microblocks.
    pub fn instructions(&self) -> u64 {
        self.microblocks.iter().map(Microblock::instructions).sum()
    }

    /// Number of microblocks that are serial (cannot be screened).
    pub fn serial_microblocks(&self) -> usize {
        self.microblocks.iter().filter(|m| m.is_serial()).count()
    }

    /// Total number of screens across all microblocks.
    pub fn screen_count(&self) -> usize {
        self.microblocks.iter().map(|m| m.screens.len()).sum()
    }

    /// Bytes-per-kilo-instruction: the computation-complexity metric of
    /// Table 2 (lower means more compute-intensive).
    pub fn bytes_per_kilo_instruction(&self) -> f64 {
        let instr = self.instructions();
        if instr == 0 {
            return 0.0;
        }
        self.data_section.total_bytes() as f64 / (instr as f64 / 1_000.0)
    }

    /// Classifies the kernel the way the paper groups Figure 10a's x-axis.
    pub fn workload_class(&self) -> WorkloadClass {
        if self.bytes_per_kilo_instruction() >= 20.0 {
            WorkloadClass::DataIntensive
        } else {
            WorkloadClass::ComputeIntensive
        }
    }
}

/// One application: a set of kernels offloaded together.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Application {
    /// Application identity.
    pub id: AppId,
    /// Benchmark name (e.g. `ATAX`).
    pub name: String,
    /// The application's kernels. Kernels of one application are mutually
    /// independent (§4.1); only microblocks inside one kernel are ordered.
    pub kernels: Vec<Kernel>,
}

impl Application {
    /// Total instructions across every kernel.
    pub fn instructions(&self) -> u64 {
        self.kernels.iter().map(Kernel::instructions).sum()
    }

    /// Total flash bytes touched by every kernel.
    pub fn flash_bytes(&self) -> u64 {
        self.kernels
            .iter()
            .map(|k| k.data_section.total_bytes())
            .sum()
    }

    /// Total number of screens across every kernel.
    pub fn screen_count(&self) -> usize {
        self.kernels.iter().map(Kernel::screen_count).sum()
    }

    /// Creates a deep copy with a new application id and data sections
    /// rebased to `flash_base`, laying the kernels' sections out
    /// back-to-back. Used to stamp out workload instances.
    pub fn instantiate(&self, new_id: AppId, flash_base: u64) -> Application {
        let mut cursor = flash_base;
        let kernels = self
            .kernels
            .iter()
            .map(|k| {
                let section = k.data_section.rebased(cursor);
                cursor += section.total_bytes();
                Kernel {
                    id: KernelId {
                        app: new_id,
                        index: k.id.index,
                    },
                    name: k.name.clone(),
                    microblocks: k.microblocks.clone(),
                    data_section: section,
                }
            })
            .collect();
        Application {
            id: new_id,
            name: self.name.clone(),
            kernels,
        }
    }
}

/// Builder that assembles an [`Application`] from per-microblock
/// descriptions; used heavily by `fa-workloads`.
#[derive(Debug, Clone)]
pub struct ApplicationBuilder {
    name: String,
    kernels: Vec<Kernel>,
    next_kernel_index: u32,
}

impl ApplicationBuilder {
    /// Starts a new application description.
    pub fn new(name: impl Into<String>) -> Self {
        ApplicationBuilder {
            name: name.into(),
            kernels: Vec::new(),
            next_kernel_index: 0,
        }
    }

    /// Adds a kernel built from `(screens_per_microblock, mix, in_bytes,
    /// out_bytes)` tuples, one per microblock. A screen count of one makes
    /// the microblock serial; larger counts split the microblock's
    /// instructions and bytes evenly across the screens.
    pub fn kernel(
        mut self,
        kernel_name: impl Into<String>,
        data_section: DataSection,
        microblocks: &[(usize, InstructionMix, u64, u64)],
    ) -> Self {
        let id = KernelId {
            app: AppId(0),
            index: self.next_kernel_index,
        };
        self.next_kernel_index += 1;
        let blocks = microblocks
            .iter()
            .enumerate()
            .map(|(mi, (screen_count, mix, in_bytes, out_bytes))| {
                let n = (*screen_count).max(1);
                let screens = (0..n)
                    .map(|si| Screen {
                        index: si as u32,
                        mix: mix.split(n),
                        input_bytes: in_bytes / n as u64,
                        output_bytes: out_bytes / n as u64,
                    })
                    .collect();
                Microblock {
                    index: mi as u32,
                    screens,
                }
            })
            .collect();
        self.kernels.push(Kernel {
            id,
            name: kernel_name.into(),
            microblocks: blocks,
            data_section,
        });
        self
    }

    /// Finalizes the application with the given id.
    pub fn build(self, id: AppId) -> Application {
        let kernels = self
            .kernels
            .into_iter()
            .map(|mut k| {
                k.id.app = id;
                k
            })
            .collect();
        Application {
            id,
            name: self.name,
            kernels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_app() -> Application {
        let mix = InstructionMix::new(100_000, 0.4, 0.1);
        ApplicationBuilder::new("SAMPLE")
            .kernel(
                "SAMPLE-k0",
                DataSection {
                    flash_base: 0,
                    input_bytes: 1 << 20,
                    output_bytes: 1 << 18,
                },
                &[(1, mix, 1 << 19, 0), (4, mix, 1 << 19, 1 << 18)],
            )
            .kernel(
                "SAMPLE-k1",
                DataSection {
                    flash_base: 1 << 21,
                    input_bytes: 1 << 19,
                    output_bytes: 1 << 19,
                },
                &[(2, mix, 1 << 19, 1 << 19)],
            )
            .build(AppId(7))
    }

    #[test]
    fn builder_produces_expected_shape() {
        let app = sample_app();
        assert_eq!(app.id, AppId(7));
        assert_eq!(app.kernels.len(), 2);
        assert_eq!(app.kernels[0].microblocks.len(), 2);
        assert!(app.kernels[0].microblocks[0].is_serial());
        assert!(!app.kernels[0].microblocks[1].is_serial());
        assert_eq!(app.kernels[0].serial_microblocks(), 1);
        assert_eq!(app.kernels[0].screen_count(), 5);
        assert_eq!(app.screen_count(), 7);
        assert_eq!(app.kernels[1].id.app, AppId(7));
    }

    #[test]
    fn screens_split_bytes_and_instructions_evenly() {
        let app = sample_app();
        let mb = &app.kernels[0].microblocks[1];
        assert_eq!(mb.screens.len(), 4);
        for s in &mb.screens {
            assert_eq!(s.mix.instructions, 25_000);
            assert_eq!(s.input_bytes, (1 << 19) / 4);
            assert_eq!(s.output_bytes, (1 << 18) / 4);
        }
        assert_eq!(mb.instructions(), 100_000);
    }

    #[test]
    fn bytes_per_kilo_instruction_classifies_workloads() {
        let data_heavy = ApplicationBuilder::new("HEAVY")
            .kernel(
                "HEAVY-k0",
                DataSection {
                    flash_base: 0,
                    input_bytes: 10 << 20,
                    output_bytes: 0,
                },
                &[(1, InstructionMix::new(100_000, 0.45, 0.1), 10 << 20, 0)],
            )
            .build(AppId(0));
        let compute_heavy = ApplicationBuilder::new("COMPUTE")
            .kernel(
                "COMPUTE-k0",
                DataSection {
                    flash_base: 0,
                    input_bytes: 1 << 20,
                    output_bytes: 0,
                },
                &[(1, InstructionMix::new(500_000_000, 0.3, 0.2), 1 << 20, 0)],
            )
            .build(AppId(1));
        assert_eq!(
            data_heavy.kernels[0].workload_class(),
            WorkloadClass::DataIntensive
        );
        assert_eq!(
            compute_heavy.kernels[0].workload_class(),
            WorkloadClass::ComputeIntensive
        );
    }

    #[test]
    fn instantiate_rebases_data_sections() {
        let app = sample_app();
        let inst = app.instantiate(AppId(42), 1 << 30);
        assert_eq!(inst.id, AppId(42));
        assert_eq!(inst.kernels[0].id.app, AppId(42));
        assert_eq!(inst.kernels[0].data_section.flash_base, 1 << 30);
        // The second kernel's section follows the first back-to-back.
        let expected = (1u64 << 30) + app.kernels[0].data_section.total_bytes();
        assert_eq!(inst.kernels[1].data_section.flash_base, expected);
        // The original is untouched.
        assert_eq!(app.kernels[0].data_section.flash_base, 0);
    }

    #[test]
    fn data_section_ranges() {
        let d = DataSection {
            flash_base: 100,
            input_bytes: 50,
            output_bytes: 30,
        };
        assert_eq!(d.total_bytes(), 80);
        assert_eq!(d.flash_range(), (100, 180));
        assert_eq!(d.rebased(1000).flash_range(), (1000, 1080));
    }
}
