//! The multi-app execution chain.
//!
//! FlashAbacus tracks screen-level progress in a per-application dependency
//! list (§4.2, Figure 8): every application owns a chain of nodes, one per
//! microblock of each of its kernels, and each node records the screens of
//! that microblock together with the LWP executing them and their status.
//! The chain encodes the only ordering rule of the execution model: *no
//! screen of a microblock may start before every screen of the previous
//! microblock of the same kernel has completed*. Kernels of the same
//! application — and of course different applications — are mutually
//! independent.
//!
//! All four schedulers consult this structure; the out-of-order intra-kernel
//! scheduler additionally uses [`ExecutionChain::ready_screens`] to borrow
//! screens across kernel and application boundaries.

use crate::model::Application;
use fa_sim::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Position of one screen inside the offloaded workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ScreenRef {
    /// Index of the application in the offload batch.
    pub app: usize,
    /// Kernel index within the application.
    pub kernel: usize,
    /// Microblock index within the kernel.
    pub microblock: usize,
    /// Screen index within the microblock.
    pub screen: usize,
}

/// Execution status of one screen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScreenState {
    /// Not yet dispatched.
    Pending,
    /// Dispatched to an LWP and executing.
    Running {
        /// The LWP executing the screen.
        lwp: usize,
    },
    /// Finished.
    Done,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ScreenNode {
    state: ScreenState,
    completed_at: Option<SimTime>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct MicroblockNode {
    screens: Vec<ScreenNode>,
}

impl MicroblockNode {
    fn all_done(&self) -> bool {
        self.screens
            .iter()
            .all(|s| matches!(s.state, ScreenState::Done))
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct KernelNode {
    microblocks: Vec<MicroblockNode>,
    completed_at: Option<SimTime>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct AppNode {
    kernels: Vec<KernelNode>,
    completed_at: Option<SimTime>,
}

/// Runtime dependency tracker over an offloaded batch of applications.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecutionChain {
    apps: Vec<AppNode>,
    total_screens: usize,
    completed_screens: usize,
    running: HashMap<ScreenRef, usize>,
}

impl ExecutionChain {
    /// Builds the chain for a batch of applications.
    pub fn new(apps: &[Application]) -> Self {
        let nodes: Vec<AppNode> = apps
            .iter()
            .map(|a| AppNode {
                kernels: a
                    .kernels
                    .iter()
                    .map(|k| KernelNode {
                        microblocks: k
                            .microblocks
                            .iter()
                            .map(|m| MicroblockNode {
                                screens: m
                                    .screens
                                    .iter()
                                    .map(|_| ScreenNode {
                                        state: ScreenState::Pending,
                                        completed_at: None,
                                    })
                                    .collect(),
                            })
                            .collect(),
                        completed_at: None,
                    })
                    .collect(),
                completed_at: None,
            })
            .collect();
        let total = nodes
            .iter()
            .flat_map(|a| &a.kernels)
            .flat_map(|k| &k.microblocks)
            .map(|m| m.screens.len())
            .sum();
        ExecutionChain {
            apps: nodes,
            total_screens: total,
            completed_screens: 0,
            running: HashMap::new(),
        }
    }

    /// Total number of screens tracked.
    pub fn total_screens(&self) -> usize {
        self.total_screens
    }

    /// Number of screens that have completed.
    pub fn completed_screens(&self) -> usize {
        self.completed_screens
    }

    /// True once every screen has completed.
    pub fn is_complete(&self) -> bool {
        self.completed_screens == self.total_screens
    }

    /// Returns the state of a screen, or `None` for an invalid reference.
    pub fn state(&self, at: ScreenRef) -> Option<ScreenState> {
        self.apps
            .get(at.app)?
            .kernels
            .get(at.kernel)?
            .microblocks
            .get(at.microblock)?
            .screens
            .get(at.screen)
            .map(|s| s.state)
    }

    /// True when every screen of the given microblock has completed.
    pub fn microblock_complete(&self, app: usize, kernel: usize, microblock: usize) -> bool {
        self.apps
            .get(app)
            .and_then(|a| a.kernels.get(kernel))
            .and_then(|k| k.microblocks.get(microblock))
            .map(MicroblockNode::all_done)
            .unwrap_or(false)
    }

    /// The earliest (app, kernel, microblock) in offload order that has not
    /// yet completed, if any. The in-order intra-kernel scheduler restricts
    /// dispatch to this microblock.
    pub fn earliest_incomplete_microblock(&self) -> Option<(usize, usize, usize)> {
        for (ai, app) in self.apps.iter().enumerate() {
            for (ki, kernel) in app.kernels.iter().enumerate() {
                for (mi, mblock) in kernel.microblocks.iter().enumerate() {
                    if !mblock.all_done() {
                        return Some((ai, ki, mi));
                    }
                }
            }
        }
        None
    }

    /// A microblock is *eligible* when every screen of the preceding
    /// microblock of the same kernel has completed (the first microblock is
    /// always eligible).
    pub fn microblock_eligible(&self, app: usize, kernel: usize, microblock: usize) -> bool {
        if microblock == 0 {
            return true;
        }
        self.apps
            .get(app)
            .and_then(|a| a.kernels.get(kernel))
            .and_then(|k| k.microblocks.get(microblock - 1))
            .map(MicroblockNode::all_done)
            .unwrap_or(false)
    }

    /// All screens that are pending and whose microblock is eligible,
    /// across every application and kernel, in deterministic
    /// (app, kernel, microblock, screen) order.
    pub fn ready_screens(&self) -> Vec<ScreenRef> {
        let mut ready = Vec::new();
        for (ai, app) in self.apps.iter().enumerate() {
            for (ki, kernel) in app.kernels.iter().enumerate() {
                for (mi, mblock) in kernel.microblocks.iter().enumerate() {
                    if !self.microblock_eligible(ai, ki, mi) {
                        continue;
                    }
                    for (si, screen) in mblock.screens.iter().enumerate() {
                        if matches!(screen.state, ScreenState::Pending) {
                            ready.push(ScreenRef {
                                app: ai,
                                kernel: ki,
                                microblock: mi,
                                screen: si,
                            });
                        }
                    }
                }
            }
        }
        ready
    }

    /// Ready screens restricted to one kernel (used by the in-order
    /// intra-kernel scheduler).
    pub fn ready_screens_of_kernel(&self, app: usize, kernel: usize) -> Vec<ScreenRef> {
        self.ready_screens()
            .into_iter()
            .filter(|r| r.app == app && r.kernel == kernel)
            .collect()
    }

    /// Marks a screen as running on `lwp`.
    ///
    /// # Panics
    ///
    /// Panics if the reference is invalid, the screen is not pending, or its
    /// microblock is not yet eligible — all of which indicate scheduler bugs.
    pub fn mark_running(&mut self, at: ScreenRef, lwp: usize) {
        assert!(
            self.microblock_eligible(at.app, at.kernel, at.microblock),
            "scheduling violates microblock ordering: {at:?}"
        );
        let node = self.screen_mut(at);
        assert!(
            matches!(node.state, ScreenState::Pending),
            "screen {at:?} dispatched twice"
        );
        node.state = ScreenState::Running { lwp };
        self.running.insert(at, lwp);
    }

    /// Marks a screen as completed at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the screen was not running.
    pub fn mark_done(&mut self, at: ScreenRef, now: SimTime) {
        {
            let node = self.screen_mut(at);
            assert!(
                matches!(node.state, ScreenState::Running { .. }),
                "screen {at:?} completed without running"
            );
            node.state = ScreenState::Done;
            node.completed_at = Some(now);
        }
        self.running.remove(&at);
        self.completed_screens += 1;
        // Roll the completion upward to kernel and application level.
        let kernel_done = self.apps[at.app].kernels[at.kernel]
            .microblocks
            .iter()
            .all(MicroblockNode::all_done);
        if kernel_done {
            let k = &mut self.apps[at.app].kernels[at.kernel];
            if k.completed_at.is_none() {
                k.completed_at = Some(now);
            }
        }
        let app_done = self.apps[at.app]
            .kernels
            .iter()
            .all(|k| k.completed_at.is_some());
        if app_done {
            let a = &mut self.apps[at.app];
            if a.completed_at.is_none() {
                a.completed_at = Some(now);
            }
        }
    }

    fn screen_mut(&mut self, at: ScreenRef) -> &mut ScreenNode {
        self.apps
            .get_mut(at.app)
            .and_then(|a| a.kernels.get_mut(at.kernel))
            .and_then(|k| k.microblocks.get_mut(at.microblock))
            .and_then(|m| m.screens.get_mut(at.screen))
            .unwrap_or_else(|| panic!("invalid screen reference {at:?}"))
    }

    /// Completion time of a kernel, if it has finished.
    pub fn kernel_completion(&self, app: usize, kernel: usize) -> Option<SimTime> {
        self.apps.get(app)?.kernels.get(kernel)?.completed_at
    }

    /// Completion time of an application, if it has finished.
    pub fn app_completion(&self, app: usize) -> Option<SimTime> {
        self.apps.get(app)?.completed_at
    }

    /// Completion times of every kernel that has finished, flattened in
    /// (app, kernel) order.
    pub fn kernel_completions(&self) -> Vec<(usize, usize, SimTime)> {
        let mut v = Vec::new();
        for (ai, a) in self.apps.iter().enumerate() {
            for (ki, k) in a.kernels.iter().enumerate() {
                if let Some(t) = k.completed_at {
                    v.push((ai, ki, t));
                }
            }
        }
        v
    }

    /// Screens currently marked running, with their LWP assignment.
    pub fn running_screens(&self) -> Vec<(ScreenRef, usize)> {
        let mut v: Vec<_> = self.running.iter().map(|(r, l)| (*r, *l)).collect();
        v.sort_by_key(|(r, _)| *r);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AppId, ApplicationBuilder, DataSection};
    use fa_platform::lwp::InstructionMix;

    fn two_apps() -> Vec<Application> {
        let mix = InstructionMix::new(10_000, 0.4, 0.1);
        let ds = DataSection {
            flash_base: 0,
            input_bytes: 4096,
            output_bytes: 4096,
        };
        let a0 = ApplicationBuilder::new("A0")
            .kernel("A0-k0", ds, &[(2, mix, 4096, 0), (1, mix, 0, 4096)])
            .kernel("A0-k1", ds, &[(1, mix, 4096, 4096)])
            .build(AppId(0));
        let a1 = ApplicationBuilder::new("A1")
            .kernel("A1-k0", ds, &[(3, mix, 4096, 4096)])
            .build(AppId(1));
        vec![a0, a1]
    }

    #[test]
    fn initial_ready_set_is_first_microblocks_only() {
        let chain = ExecutionChain::new(&two_apps());
        assert_eq!(chain.total_screens(), 2 + 1 + 1 + 3);
        let ready = chain.ready_screens();
        // k0 of app0 exposes 2 screens, k1 of app0 one, k0 of app1 three;
        // the second microblock of app0-k0 is not yet eligible.
        assert_eq!(ready.len(), 6);
        assert!(ready.iter().all(|r| r.microblock == 0));
    }

    #[test]
    fn second_microblock_becomes_ready_after_first_completes() {
        let mut chain = ExecutionChain::new(&two_apps());
        let first: Vec<ScreenRef> = chain.ready_screens_of_kernel(0, 0).into_iter().collect();
        assert_eq!(first.len(), 2);
        assert!(!chain.microblock_eligible(0, 0, 1));
        for (i, r) in first.iter().enumerate() {
            chain.mark_running(*r, i);
        }
        chain.mark_done(first[0], SimTime::from_us(5));
        assert!(!chain.microblock_eligible(0, 0, 1));
        chain.mark_done(first[1], SimTime::from_us(7));
        assert!(chain.microblock_eligible(0, 0, 1));
        let ready = chain.ready_screens_of_kernel(0, 0);
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].microblock, 1);
    }

    #[test]
    fn kernel_and_app_completion_propagate() {
        let mut chain = ExecutionChain::new(&two_apps());
        // Drive everything to completion in ready order.
        let mut t = 0u64;
        while !chain.is_complete() {
            let ready = chain.ready_screens();
            assert!(!ready.is_empty(), "livelock: nothing ready");
            for r in ready {
                chain.mark_running(r, 0);
                t += 10;
                chain.mark_done(r, SimTime::from_us(t));
            }
        }
        assert!(chain.kernel_completion(0, 0).is_some());
        assert!(chain.kernel_completion(0, 1).is_some());
        assert!(chain.kernel_completion(1, 0).is_some());
        assert!(chain.app_completion(0).is_some());
        assert!(chain.app_completion(1).is_some());
        assert_eq!(chain.kernel_completions().len(), 3);
        // Application completion is the max of its kernels'.
        let a0 = chain.app_completion(0).unwrap();
        assert!(a0 >= chain.kernel_completion(0, 0).unwrap());
        assert!(a0 >= chain.kernel_completion(0, 1).unwrap());
    }

    #[test]
    #[should_panic(expected = "dispatched twice")]
    fn double_dispatch_panics() {
        let mut chain = ExecutionChain::new(&two_apps());
        let r = chain.ready_screens()[0];
        chain.mark_running(r, 0);
        chain.mark_running(r, 1);
    }

    #[test]
    #[should_panic(expected = "violates microblock ordering")]
    fn scheduling_ineligible_microblock_panics() {
        let mut chain = ExecutionChain::new(&two_apps());
        chain.mark_running(
            ScreenRef {
                app: 0,
                kernel: 0,
                microblock: 1,
                screen: 0,
            },
            0,
        );
    }

    #[test]
    #[should_panic(expected = "completed without running")]
    fn completing_pending_screen_panics() {
        let mut chain = ExecutionChain::new(&two_apps());
        let r = chain.ready_screens()[0];
        chain.mark_done(r, SimTime::ZERO);
    }

    #[test]
    fn running_screens_reports_assignments() {
        let mut chain = ExecutionChain::new(&two_apps());
        let ready = chain.ready_screens();
        chain.mark_running(ready[0], 3);
        chain.mark_running(ready[1], 5);
        let running = chain.running_screens();
        assert_eq!(running.len(), 2);
        assert_eq!(running[0].1, 3);
        assert_eq!(running[1].1, 5);
    }
}
