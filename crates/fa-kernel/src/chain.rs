//! The multi-app execution chain.
//!
//! FlashAbacus tracks screen-level progress in a per-application dependency
//! list (§4.2, Figure 8): every application owns a chain of nodes, one per
//! microblock of each of its kernels, and each node records the screens of
//! that microblock together with the LWP executing them and their status.
//! The chain encodes the only ordering rule of the execution model: *no
//! screen of a microblock may start before every screen of the previous
//! microblock of the same kernel has completed*. Kernels of the same
//! application — and of course different applications — are mutually
//! independent.
//!
//! Readiness is maintained *incrementally*: the chain keeps a frontier of
//! every pending screen whose microblock is eligible, ordered by
//! [`ScreenRef`], and updates it in `mark_running`/`mark_done` as screens
//! change state. A screen enters the frontier exactly once (when its
//! microblock becomes eligible) and leaves it exactly once (when it is
//! dispatched), so scheduling a batch of S screens does O(S) total frontier
//! maintenance instead of the O(S²) a per-dispatch rescan would cost — the
//! self-governing scheduler's decision path (§4.1–§4.2) stays off the
//! critical path even for large offloads. All four schedulers consult this
//! structure through [`ExecutionChain::first_ready`],
//! [`ExecutionChain::next_ready_of_kernel`], and
//! [`ExecutionChain::next_ready_of_microblock`]; the out-of-order
//! intra-kernel scheduler additionally borrows screens across kernel and
//! application boundaries.

use crate::model::Application;
use fa_sim::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Position of one screen inside the offloaded workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ScreenRef {
    /// Index of the application in the offload batch.
    pub app: usize,
    /// Kernel index within the application.
    pub kernel: usize,
    /// Microblock index within the kernel.
    pub microblock: usize,
    /// Screen index within the microblock.
    pub screen: usize,
}

impl ScreenRef {
    /// The smallest possible reference within (app, kernel): the range start
    /// for frontier lookups scoped to one kernel.
    fn kernel_floor(app: usize, kernel: usize) -> ScreenRef {
        ScreenRef {
            app,
            kernel,
            microblock: 0,
            screen: 0,
        }
    }

    /// The smallest possible reference within (app, kernel, microblock).
    fn microblock_floor(app: usize, kernel: usize, microblock: usize) -> ScreenRef {
        ScreenRef {
            app,
            kernel,
            microblock,
            screen: 0,
        }
    }
}

/// Execution status of one screen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScreenState {
    /// Not yet dispatched.
    Pending,
    /// Dispatched to an LWP and executing.
    Running {
        /// The LWP executing the screen.
        lwp: usize,
    },
    /// Finished.
    Done,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ScreenNode {
    state: ScreenState,
    completed_at: Option<SimTime>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct MicroblockNode {
    screens: Vec<ScreenNode>,
    /// Count of screens in `Done` state, so completion checks are O(1).
    done_screens: usize,
}

impl MicroblockNode {
    fn all_done(&self) -> bool {
        self.done_screens == self.screens.len()
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct KernelNode {
    microblocks: Vec<MicroblockNode>,
    /// Count of done screens across all microblocks (O(1) kernel-completion
    /// checks).
    done_screens: usize,
    /// Total screens across all microblocks.
    total_screens: usize,
    completed_at: Option<SimTime>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct AppNode {
    kernels: Vec<KernelNode>,
    /// Count of kernels whose `completed_at` is set.
    completed_kernels: usize,
    completed_at: Option<SimTime>,
}

/// Runtime dependency tracker over an offloaded batch of applications.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecutionChain {
    apps: Vec<AppNode>,
    total_screens: usize,
    completed_screens: usize,
    /// Screens currently running, ordered by reference so enumeration needs
    /// no per-call sort.
    running: BTreeMap<ScreenRef, usize>,
    /// The incrementally maintained ready set: every pending screen whose
    /// microblock is eligible, in deterministic (app, kernel, microblock,
    /// screen) order.
    frontier: BTreeSet<ScreenRef>,
    /// Every (app, kernel, microblock) that still has unfinished screens,
    /// ordered lexicographically so the in-order scheduler's head microblock
    /// is a first() lookup.
    incomplete_microblocks: BTreeSet<(usize, usize, usize)>,
}

impl ExecutionChain {
    /// Builds the chain for a batch of applications.
    pub fn new(apps: &[Application]) -> Self {
        let nodes: Vec<AppNode> = apps
            .iter()
            .map(|a| AppNode {
                kernels: a
                    .kernels
                    .iter()
                    .map(|k| {
                        let microblocks: Vec<MicroblockNode> = k
                            .microblocks
                            .iter()
                            .map(|m| MicroblockNode {
                                screens: m
                                    .screens
                                    .iter()
                                    .map(|_| ScreenNode {
                                        state: ScreenState::Pending,
                                        completed_at: None,
                                    })
                                    .collect(),
                                done_screens: 0,
                            })
                            .collect();
                        let total = microblocks.iter().map(|m| m.screens.len()).sum();
                        KernelNode {
                            microblocks,
                            done_screens: 0,
                            total_screens: total,
                            completed_at: None,
                        }
                    })
                    .collect(),
                completed_kernels: 0,
                completed_at: None,
            })
            .collect();
        let total = nodes
            .iter()
            .flat_map(|a| &a.kernels)
            .map(|k| k.total_screens)
            .sum();
        let mut chain = ExecutionChain {
            apps: nodes,
            total_screens: total,
            completed_screens: 0,
            running: BTreeMap::new(),
            frontier: BTreeSet::new(),
            incomplete_microblocks: BTreeSet::new(),
        };
        // Seed the bookkeeping sets: every non-empty microblock is
        // incomplete, and each kernel's eligibility cascade starts at its
        // first microblock (skipping degenerate empty ones).
        for (ai, app) in chain.apps.iter().enumerate() {
            for (ki, kernel) in app.kernels.iter().enumerate() {
                for (mi, mblock) in kernel.microblocks.iter().enumerate() {
                    if !mblock.screens.is_empty() {
                        chain.incomplete_microblocks.insert((ai, ki, mi));
                    }
                }
            }
        }
        for ai in 0..chain.apps.len() {
            for ki in 0..chain.apps[ai].kernels.len() {
                chain.unlock_microblocks_from(ai, ki, 0);
            }
        }
        chain
    }

    /// Adds the screens of `microblock` (and of any directly following
    /// empty microblocks' successors) to the frontier. Called when the
    /// preceding microblock completes; every screen of an eligible
    /// microblock is still pending at that instant, so the whole microblock
    /// enters the frontier at once.
    fn unlock_microblocks_from(&mut self, app: usize, kernel: usize, mut microblock: usize) {
        loop {
            let Some(mblock) = self.apps[app].kernels[kernel].microblocks.get(microblock) else {
                return;
            };
            if mblock.screens.is_empty() {
                // Degenerate empty microblock: vacuously complete, so
                // eligibility cascades straight through it.
                microblock += 1;
                continue;
            }
            for si in 0..mblock.screens.len() {
                self.frontier.insert(ScreenRef {
                    app,
                    kernel,
                    microblock,
                    screen: si,
                });
            }
            return;
        }
    }

    /// Total number of screens tracked.
    pub fn total_screens(&self) -> usize {
        self.total_screens
    }

    /// Number of screens that have completed.
    pub fn completed_screens(&self) -> usize {
        self.completed_screens
    }

    /// True once every screen has completed.
    pub fn is_complete(&self) -> bool {
        self.completed_screens == self.total_screens
    }

    /// Returns the state of a screen, or `None` for an invalid reference.
    pub fn state(&self, at: ScreenRef) -> Option<ScreenState> {
        self.apps
            .get(at.app)?
            .kernels
            .get(at.kernel)?
            .microblocks
            .get(at.microblock)?
            .screens
            .get(at.screen)
            .map(|s| s.state)
    }

    /// True when every screen of the given microblock has completed.
    pub fn microblock_complete(&self, app: usize, kernel: usize, microblock: usize) -> bool {
        self.apps
            .get(app)
            .and_then(|a| a.kernels.get(kernel))
            .and_then(|k| k.microblocks.get(microblock))
            .map(MicroblockNode::all_done)
            .unwrap_or(false)
    }

    /// The earliest (app, kernel, microblock) in offload order that has not
    /// yet completed, if any. The in-order intra-kernel scheduler restricts
    /// dispatch to this microblock. O(1): the incomplete set is maintained
    /// incrementally.
    pub fn earliest_incomplete_microblock(&self) -> Option<(usize, usize, usize)> {
        self.incomplete_microblocks.first().copied()
    }

    /// A microblock is *eligible* when every screen of the preceding
    /// microblock of the same kernel has completed (the first microblock is
    /// always eligible). Degenerate screenless microblocks are skipped when
    /// looking backwards — they are vacuously complete but must not unlock
    /// their successor while real work before them is still outstanding.
    /// This matches the frontier's eligibility cascade exactly, so a screen
    /// passes this check if and only if it can appear in the frontier.
    pub fn microblock_eligible(&self, app: usize, kernel: usize, microblock: usize) -> bool {
        if microblock == 0 {
            return true;
        }
        let Some(k) = self.apps.get(app).and_then(|a| a.kernels.get(kernel)) else {
            return false;
        };
        let mut mi = microblock;
        while mi > 0 {
            match k.microblocks.get(mi - 1) {
                None => return false,
                Some(prev) if prev.screens.is_empty() => mi -= 1,
                Some(prev) => return prev.all_done(),
            }
        }
        true
    }

    /// The ready frontier: every pending screen whose microblock is
    /// eligible, in deterministic (app, kernel, microblock, screen) order.
    /// The iterator borrows the incrementally maintained set — no scan, no
    /// allocation.
    pub fn frontier(&self) -> impl Iterator<Item = ScreenRef> + '_ {
        self.frontier.iter().copied()
    }

    /// Number of screens currently ready for dispatch. O(1).
    pub fn ready_count(&self) -> usize {
        self.frontier.len()
    }

    /// The first ready screen in (app, kernel, microblock, screen) order,
    /// if any. The out-of-order intra-kernel scheduler's whole decision.
    pub fn first_ready(&self) -> Option<ScreenRef> {
        self.frontier.first().copied()
    }

    /// The first ready screen of one kernel, if any. A range lookup on the
    /// frontier — O(log S), not a batch scan. Inter-kernel policies call
    /// this once per dispatch.
    pub fn next_ready_of_kernel(&self, app: usize, kernel: usize) -> Option<ScreenRef> {
        self.frontier
            .range(ScreenRef::kernel_floor(app, kernel)..)
            .next()
            .copied()
            .filter(|r| r.app == app && r.kernel == kernel)
    }

    /// The first ready screen of one microblock, if any. The in-order
    /// intra-kernel scheduler pairs this with
    /// [`ExecutionChain::earliest_incomplete_microblock`].
    pub fn next_ready_of_microblock(
        &self,
        app: usize,
        kernel: usize,
        microblock: usize,
    ) -> Option<ScreenRef> {
        self.frontier
            .range(ScreenRef::microblock_floor(app, kernel, microblock)..)
            .next()
            .copied()
            .filter(|r| r.app == app && r.kernel == kernel && r.microblock == microblock)
    }

    /// All currently ready screens, materialized. O(ready) per call — kept
    /// for tests, oracles, and whole-frontier consumers; per-dispatch paths
    /// use [`ExecutionChain::first_ready`] and friends instead.
    pub fn ready_screens(&self) -> Vec<ScreenRef> {
        self.frontier().collect()
    }

    /// Ready screens restricted to one kernel (used by the in-order
    /// intra-kernel scheduler). A bounded range copy of the frontier, not a
    /// full-batch scan-and-filter.
    pub fn ready_screens_of_kernel(&self, app: usize, kernel: usize) -> Vec<ScreenRef> {
        self.frontier
            .range(ScreenRef::kernel_floor(app, kernel)..)
            .copied()
            .take_while(|r| r.app == app && r.kernel == kernel)
            .collect()
    }

    /// Number of screens of a kernel that have not yet completed. O(1).
    pub fn kernel_screens_remaining(&self, app: usize, kernel: usize) -> usize {
        self.apps
            .get(app)
            .and_then(|a| a.kernels.get(kernel))
            .map(|k| k.total_screens - k.done_screens)
            .unwrap_or(0)
    }

    /// Marks a screen as running on `lwp`.
    ///
    /// # Panics
    ///
    /// Panics if the reference is invalid, the screen is not pending, or its
    /// microblock is not yet eligible — all of which indicate scheduler bugs.
    pub fn mark_running(&mut self, at: ScreenRef, lwp: usize) {
        assert!(
            self.microblock_eligible(at.app, at.kernel, at.microblock),
            "scheduling violates microblock ordering: {at:?}"
        );
        let node = self.screen_mut(at);
        assert!(
            matches!(node.state, ScreenState::Pending),
            "screen {at:?} dispatched twice"
        );
        node.state = ScreenState::Running { lwp };
        let was_ready = self.frontier.remove(&at);
        debug_assert!(was_ready, "pending eligible screen missing from frontier");
        self.running.insert(at, lwp);
    }

    /// Marks a screen as completed at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the screen was not running.
    pub fn mark_done(&mut self, at: ScreenRef, now: SimTime) {
        {
            let node = self.screen_mut(at);
            assert!(
                matches!(node.state, ScreenState::Running { .. }),
                "screen {at:?} completed without running"
            );
            node.state = ScreenState::Done;
            node.completed_at = Some(now);
        }
        self.running.remove(&at);
        self.completed_screens += 1;

        let kernel = &mut self.apps[at.app].kernels[at.kernel];
        let mblock = &mut kernel.microblocks[at.microblock];
        mblock.done_screens += 1;
        let microblock_done = mblock.all_done();
        kernel.done_screens += 1;
        let kernel_done = kernel.done_screens == kernel.total_screens;

        if microblock_done {
            self.incomplete_microblocks
                .remove(&(at.app, at.kernel, at.microblock));
            // The next microblock of this kernel becomes eligible; its
            // screens (all still pending) join the frontier.
            self.unlock_microblocks_from(at.app, at.kernel, at.microblock + 1);
        }

        // Roll the completion upward to kernel and application level.
        if kernel_done {
            let app = &mut self.apps[at.app];
            let k = &mut app.kernels[at.kernel];
            if k.completed_at.is_none() {
                k.completed_at = Some(now);
                app.completed_kernels += 1;
                if app.completed_kernels == app.kernels.len() && app.completed_at.is_none() {
                    app.completed_at = Some(now);
                }
            }
        }
    }

    fn screen_mut(&mut self, at: ScreenRef) -> &mut ScreenNode {
        self.apps
            .get_mut(at.app)
            .and_then(|a| a.kernels.get_mut(at.kernel))
            .and_then(|k| k.microblocks.get_mut(at.microblock))
            .and_then(|m| m.screens.get_mut(at.screen))
            .unwrap_or_else(|| panic!("invalid screen reference {at:?}"))
    }

    /// Completion time of a kernel, if it has finished.
    pub fn kernel_completion(&self, app: usize, kernel: usize) -> Option<SimTime> {
        self.apps.get(app)?.kernels.get(kernel)?.completed_at
    }

    /// Completion time of an application, if it has finished.
    pub fn app_completion(&self, app: usize) -> Option<SimTime> {
        self.apps.get(app)?.completed_at
    }

    /// Completion times of every kernel that has finished, flattened in
    /// (app, kernel) order.
    pub fn kernel_completions(&self) -> Vec<(usize, usize, SimTime)> {
        let mut v = Vec::new();
        for (ai, a) in self.apps.iter().enumerate() {
            for (ki, k) in a.kernels.iter().enumerate() {
                if let Some(t) = k.completed_at {
                    v.push((ai, ki, t));
                }
            }
        }
        v
    }

    /// Number of screens currently running. O(1).
    pub fn running_count(&self) -> usize {
        self.running.len()
    }

    /// Screens currently marked running, with their LWP assignment, in
    /// (app, kernel, microblock, screen) order. The running set is kept
    /// ordered, so this is a straight copy — no per-call sort.
    pub fn running_screens(&self) -> Vec<(ScreenRef, usize)> {
        self.running.iter().map(|(r, l)| (*r, *l)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AppId, ApplicationBuilder, DataSection};
    use fa_platform::lwp::InstructionMix;

    fn two_apps() -> Vec<Application> {
        let mix = InstructionMix::new(10_000, 0.4, 0.1);
        let ds = DataSection {
            flash_base: 0,
            input_bytes: 4096,
            output_bytes: 4096,
        };
        let a0 = ApplicationBuilder::new("A0")
            .kernel("A0-k0", ds, &[(2, mix, 4096, 0), (1, mix, 0, 4096)])
            .kernel("A0-k1", ds, &[(1, mix, 4096, 4096)])
            .build(AppId(0));
        let a1 = ApplicationBuilder::new("A1")
            .kernel("A1-k0", ds, &[(3, mix, 4096, 4096)])
            .build(AppId(1));
        vec![a0, a1]
    }

    #[test]
    fn initial_ready_set_is_first_microblocks_only() {
        let chain = ExecutionChain::new(&two_apps());
        assert_eq!(chain.total_screens(), 2 + 1 + 1 + 3);
        let ready = chain.ready_screens();
        // k0 of app0 exposes 2 screens, k1 of app0 one, k0 of app1 three;
        // the second microblock of app0-k0 is not yet eligible.
        assert_eq!(ready.len(), 6);
        assert_eq!(ready.len(), chain.ready_count());
        assert!(ready.iter().all(|r| r.microblock == 0));
        assert_eq!(chain.first_ready(), Some(ready[0]));
    }

    #[test]
    fn second_microblock_becomes_ready_after_first_completes() {
        let mut chain = ExecutionChain::new(&two_apps());
        let first: Vec<ScreenRef> = chain.ready_screens_of_kernel(0, 0).into_iter().collect();
        assert_eq!(first.len(), 2);
        assert!(!chain.microblock_eligible(0, 0, 1));
        for (i, r) in first.iter().enumerate() {
            chain.mark_running(*r, i);
        }
        chain.mark_done(first[0], SimTime::from_us(5));
        assert!(!chain.microblock_eligible(0, 0, 1));
        chain.mark_done(first[1], SimTime::from_us(7));
        assert!(chain.microblock_eligible(0, 0, 1));
        let ready = chain.ready_screens_of_kernel(0, 0);
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].microblock, 1);
        assert_eq!(chain.next_ready_of_kernel(0, 0), Some(ready[0]));
    }

    #[test]
    fn kernel_and_app_completion_propagate() {
        let mut chain = ExecutionChain::new(&two_apps());
        // Drive everything to completion in ready order.
        let mut t = 0u64;
        while !chain.is_complete() {
            let ready = chain.ready_screens();
            assert!(!ready.is_empty(), "livelock: nothing ready");
            for r in ready {
                chain.mark_running(r, 0);
                t += 10;
                chain.mark_done(r, SimTime::from_us(t));
            }
        }
        assert!(chain.kernel_completion(0, 0).is_some());
        assert!(chain.kernel_completion(0, 1).is_some());
        assert!(chain.kernel_completion(1, 0).is_some());
        assert!(chain.app_completion(0).is_some());
        assert!(chain.app_completion(1).is_some());
        assert_eq!(chain.kernel_completions().len(), 3);
        // Application completion is the max of its kernels'.
        let a0 = chain.app_completion(0).unwrap();
        assert!(a0 >= chain.kernel_completion(0, 0).unwrap());
        assert!(a0 >= chain.kernel_completion(0, 1).unwrap());
        // Everything drained: no ready screens, no incomplete microblocks.
        assert_eq!(chain.ready_count(), 0);
        assert_eq!(chain.earliest_incomplete_microblock(), None);
        assert_eq!(chain.kernel_screens_remaining(0, 0), 0);
    }

    #[test]
    #[should_panic(expected = "dispatched twice")]
    fn double_dispatch_panics() {
        let mut chain = ExecutionChain::new(&two_apps());
        let r = chain.ready_screens()[0];
        chain.mark_running(r, 0);
        chain.mark_running(r, 1);
    }

    #[test]
    #[should_panic(expected = "violates microblock ordering")]
    fn scheduling_ineligible_microblock_panics() {
        let mut chain = ExecutionChain::new(&two_apps());
        chain.mark_running(
            ScreenRef {
                app: 0,
                kernel: 0,
                microblock: 1,
                screen: 0,
            },
            0,
        );
    }

    #[test]
    #[should_panic(expected = "completed without running")]
    fn completing_pending_screen_panics() {
        let mut chain = ExecutionChain::new(&two_apps());
        let r = chain.ready_screens()[0];
        chain.mark_done(r, SimTime::ZERO);
    }

    #[test]
    fn running_screens_reports_assignments() {
        let mut chain = ExecutionChain::new(&two_apps());
        let ready = chain.ready_screens();
        chain.mark_running(ready[0], 3);
        chain.mark_running(ready[1], 5);
        let running = chain.running_screens();
        assert_eq!(running.len(), 2);
        assert_eq!(chain.running_count(), 2);
        assert_eq!(running[0].1, 3);
        assert_eq!(running[1].1, 5);
    }

    #[test]
    fn empty_microblock_cascades_eligibility_without_unlocking_early() {
        // A degenerate screenless microblock between two real ones (only
        // constructible by hand — the builder clamps screen counts to ≥ 1)
        // must behave as pure pass-through: the third microblock becomes
        // eligible when the *first* completes, not immediately.
        let mix = InstructionMix::new(10_000, 0.4, 0.1);
        let ds = DataSection {
            flash_base: 0,
            input_bytes: 4096,
            output_bytes: 0,
        };
        let mut app = ApplicationBuilder::new("E")
            .kernel(
                "E-k0",
                ds,
                &[(2, mix, 4096, 0), (1, mix, 0, 0), (2, mix, 0, 0)],
            )
            .build(AppId(0));
        app.kernels[0].microblocks[1].screens.clear();
        let mut chain = ExecutionChain::new(&[app]);
        assert_eq!(chain.total_screens(), 4);
        // While the first microblock is incomplete the third is locked,
        // in both the eligibility check and the frontier.
        assert!(!chain.microblock_eligible(0, 0, 2));
        let ready = chain.ready_screens();
        assert_eq!(ready.len(), 2);
        assert!(ready.iter().all(|r| r.microblock == 0));
        // Completing the first microblock cascades through the empty one.
        for r in ready {
            chain.mark_running(r, 0);
            chain.mark_done(r, SimTime::from_us(1));
        }
        assert!(chain.microblock_eligible(0, 0, 2));
        let ready = chain.ready_screens();
        assert_eq!(ready.len(), 2);
        assert!(ready.iter().all(|r| r.microblock == 2));
        for r in ready {
            chain.mark_running(r, 0);
            chain.mark_done(r, SimTime::from_us(2));
        }
        assert!(chain.is_complete());
        assert!(chain.kernel_completion(0, 0).is_some());
    }

    #[test]
    fn frontier_range_lookups_match_the_materialized_sets() {
        let mut chain = ExecutionChain::new(&two_apps());
        // Interleave dispatches across kernels and check every scoped
        // accessor against the materialized frontier at each step.
        loop {
            let ready = chain.ready_screens();
            assert_eq!(ready, chain.frontier().collect::<Vec<_>>());
            assert_eq!(chain.first_ready(), ready.first().copied());
            for ai in 0..2 {
                for ki in 0..2 {
                    let scoped: Vec<ScreenRef> = ready
                        .iter()
                        .copied()
                        .filter(|r| r.app == ai && r.kernel == ki)
                        .collect();
                    assert_eq!(chain.ready_screens_of_kernel(ai, ki), scoped);
                    assert_eq!(chain.next_ready_of_kernel(ai, ki), scoped.first().copied());
                }
            }
            if let Some((ai, ki, mi)) = chain.earliest_incomplete_microblock() {
                let head = chain.next_ready_of_microblock(ai, ki, mi);
                assert_eq!(
                    head,
                    ready
                        .iter()
                        .copied()
                        .find(|r| r.app == ai && r.kernel == ki && r.microblock == mi)
                );
            }
            let Some(r) = chain.first_ready() else { break };
            chain.mark_running(r, 0);
            chain.mark_done(r, SimTime::from_us(1));
        }
        assert!(chain.is_complete());
    }
}
