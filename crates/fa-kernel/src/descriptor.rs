//! Kernel description tables.
//!
//! Kernels are offloaded to the accelerator as executable objects described
//! by a *kernel description table* — a variation of the ELF format (§4)
//! whose sections include the kernel code (`.text`), the flash-mapped data
//! section (`.ddr3_arr`), the heap, and the stack. All sections except the
//! data section resolve to the target LWP's L2 cache; the data section is
//! managed by Flashvisor.

use crate::model::{DataSection, Kernel};
use serde::{Deserialize, Serialize};

/// Kinds of section found in a kernel description table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SectionKind {
    /// Executable code (`.text`), resident in the LWP's L2.
    Text,
    /// Flash-mapped data section (`.ddr3_arr`), managed by Flashvisor.
    DataDdr3,
    /// Heap (`.heap`), resident in the LWP's L2.
    Heap,
    /// Stack (`.stack`), resident in the LWP's L2.
    Stack,
}

impl SectionKind {
    /// The conventional section name.
    pub fn name(self) -> &'static str {
        match self {
            SectionKind::Text => ".text",
            SectionKind::DataDdr3 => ".ddr3_arr",
            SectionKind::Heap => ".heap",
            SectionKind::Stack => ".stack",
        }
    }

    /// True if the section lives in the LWP's private L2 rather than DDR3L.
    pub fn is_l2_resident(self) -> bool {
        !matches!(self, SectionKind::DataDdr3)
    }
}

/// One section of a kernel description table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Section {
    /// The section kind.
    pub kind: SectionKind,
    /// Size of the section in bytes.
    pub bytes: u64,
}

/// The executable object a host offloads for one kernel.
///
/// # Examples
///
/// ```
/// use fa_kernel::descriptor::{KernelDescriptionTable, SectionKind};
/// use fa_kernel::model::{AppId, ApplicationBuilder, DataSection};
/// use fa_platform::lwp::InstructionMix;
///
/// let app = ApplicationBuilder::new("DEMO")
///     .kernel(
///         "DEMO-k0",
///         DataSection { flash_base: 0, input_bytes: 4096, output_bytes: 4096 },
///         &[(2, InstructionMix::new(10_000, 0.4, 0.1), 4096, 4096)],
///     )
///     .build(AppId(0));
/// let kdt = KernelDescriptionTable::for_kernel(&app.kernels[0]);
/// assert!(kdt.section(SectionKind::Text).unwrap().bytes > 0);
/// assert_eq!(kdt.section(SectionKind::DataDdr3).unwrap().bytes, 8192);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelDescriptionTable {
    /// Name of the kernel this table describes.
    pub kernel_name: String,
    /// Table sections.
    pub sections: Vec<Section>,
    /// The flash-mapped data-section descriptor handed to Flashvisor.
    pub data_section: DataSection,
}

/// Default per-kernel stack reservation.
const STACK_BYTES: u64 = 8 * 1024;
/// Default per-kernel heap reservation.
const HEAP_BYTES: u64 = 16 * 1024;
/// Static code is roughly two orders of magnitude smaller than the dynamic
/// instruction count of these loop-heavy kernels (the loops execute the
/// same VLIW bundles over and over).
const DYNAMIC_TO_STATIC_RATIO: u64 = 128;
/// `.text` is bounded by what fits in the L2 alongside heap and stack.
const MAX_TEXT_BYTES: u64 = 64 * 1024;
/// A kernel image is never smaller than one flash page worth of code.
const MIN_TEXT_BYTES: u64 = 4 * 1024;

impl KernelDescriptionTable {
    /// Builds the description table for a kernel.
    pub fn for_kernel(kernel: &Kernel) -> Self {
        let text =
            (kernel.instructions() / DYNAMIC_TO_STATIC_RATIO).clamp(MIN_TEXT_BYTES, MAX_TEXT_BYTES);
        KernelDescriptionTable {
            kernel_name: kernel.name.clone(),
            sections: vec![
                Section {
                    kind: SectionKind::Text,
                    bytes: text,
                },
                Section {
                    kind: SectionKind::DataDdr3,
                    bytes: kernel.data_section.total_bytes(),
                },
                Section {
                    kind: SectionKind::Heap,
                    bytes: HEAP_BYTES,
                },
                Section {
                    kind: SectionKind::Stack,
                    bytes: STACK_BYTES,
                },
            ],
            data_section: kernel.data_section,
        }
    }

    /// Looks up a section by kind.
    pub fn section(&self, kind: SectionKind) -> Option<&Section> {
        self.sections.iter().find(|s| s.kind == kind)
    }

    /// Bytes that must be transferred over PCIe to offload this kernel
    /// (everything except the flash-resident data section).
    pub fn offload_bytes(&self) -> u64 {
        self.sections
            .iter()
            .filter(|s| s.kind.is_l2_resident())
            .map(|s| s.bytes)
            .sum()
    }

    /// Bytes the target LWP must hold in its L2 while executing.
    pub fn l2_footprint(&self) -> u64 {
        self.offload_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AppId, ApplicationBuilder};
    use fa_platform::lwp::InstructionMix;

    fn kdt() -> KernelDescriptionTable {
        let app = ApplicationBuilder::new("T")
            .kernel(
                "T-k0",
                DataSection {
                    flash_base: 0,
                    input_bytes: 1 << 20,
                    output_bytes: 1 << 19,
                },
                &[(
                    4,
                    InstructionMix::new(1_000_000, 0.3, 0.1),
                    1 << 20,
                    1 << 19,
                )],
            )
            .build(AppId(0));
        KernelDescriptionTable::for_kernel(&app.kernels[0])
    }

    #[test]
    fn table_contains_all_elf_like_sections() {
        let t = kdt();
        for kind in [
            SectionKind::Text,
            SectionKind::DataDdr3,
            SectionKind::Heap,
            SectionKind::Stack,
        ] {
            assert!(t.section(kind).is_some(), "missing {kind:?}");
        }
        assert_eq!(
            t.section(SectionKind::DataDdr3).unwrap().bytes,
            (1 << 20) + (1 << 19)
        );
    }

    #[test]
    fn text_is_bounded_by_l2_budget() {
        let t = kdt();
        assert!(t.section(SectionKind::Text).unwrap().bytes <= 64 * 1024);
        assert!(t.l2_footprint() <= 512 * 1024);
        // Offloading a kernel is cheap relative to its data set: the image
        // must stay well under 100 KB.
        assert!(t.offload_bytes() < 100 * 1024);
    }

    #[test]
    fn offload_excludes_data_section() {
        let t = kdt();
        let all: u64 = t.sections.iter().map(|s| s.bytes).sum();
        assert_eq!(
            t.offload_bytes(),
            all - t.section(SectionKind::DataDdr3).unwrap().bytes
        );
    }

    #[test]
    fn section_names_follow_convention() {
        assert_eq!(SectionKind::Text.name(), ".text");
        assert_eq!(SectionKind::DataDdr3.name(), ".ddr3_arr");
        assert!(SectionKind::Heap.is_l2_resident());
        assert!(!SectionKind::DataDdr3.is_l2_resident());
    }
}
