//! Multi-kernel execution model.
//!
//! FlashAbacus executes *applications*, each consisting of one or more
//! *kernels*. A kernel is an executable object described by a
//! kernel-description table (an ELF-like format, §4) and is internally
//! organised into *microblocks* — groups of code whose execution must be
//! serialized because of data dependencies — and, within a microblock,
//! *screens* — slices of the iteration space with no write-after-write or
//! read-after-write hazards, which may run on different LWPs in parallel
//! (§4.2).
//!
//! This crate defines that software model:
//!
//! * [`descriptor`] — the kernel description table with its ELF-like
//!   sections.
//! * [`model`] — applications, kernels, microblocks, screens, data
//!   sections, and builders for them.
//! * [`chain`] — the multi-app execution chain: the runtime dependency
//!   structure the schedulers consult to find ready screens and record
//!   progress (§4.2, Figure 8).
//! * [`instance`] — helpers to stamp out the multiple instances of each
//!   application that the evaluation executes.

pub mod chain;
pub mod descriptor;
pub mod instance;
pub mod model;

pub use chain::{ExecutionChain, ScreenRef, ScreenState};
pub use descriptor::{KernelDescriptionTable, Section, SectionKind};
pub use instance::{instantiate_many, InstancePlan};
pub use model::{
    AppId, Application, ApplicationBuilder, DataSection, Kernel, KernelId, Microblock, Screen,
    WorkloadClass,
};
