//! Workload instance stamping.
//!
//! The evaluation never runs a benchmark once: the homogeneous experiments
//! launch six instances of each kernel, and the heterogeneous mixes launch
//! 24 instances (four per application, six applications per mix). These
//! helpers stamp out the instances, give each a unique [`AppId`], and lay
//! their flash-mapped data sections out contiguously in the backbone's
//! logical address space.

use crate::model::{AppId, Application};
use serde::{Deserialize, Serialize};

/// Describes how many copies of each template application to launch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstancePlan {
    /// Number of instances to create per template.
    pub instances_per_app: usize,
    /// First flash byte address to place data sections at.
    pub flash_base: u64,
    /// Alignment (in bytes) applied to every instance's base address.
    pub alignment: u64,
}

impl Default for InstancePlan {
    fn default() -> Self {
        InstancePlan {
            instances_per_app: 1,
            flash_base: 0,
            alignment: 64 * 1024,
        }
    }
}

impl InstancePlan {
    /// Plan used for the paper's homogeneous workloads: six instances of a
    /// single application (§5.1).
    pub fn homogeneous() -> Self {
        InstancePlan {
            instances_per_app: 6,
            ..Default::default()
        }
    }

    /// Plan used for the paper's heterogeneous mixes: four instances of
    /// each of six applications (§5.1).
    pub fn heterogeneous() -> Self {
        InstancePlan {
            instances_per_app: 4,
            ..Default::default()
        }
    }
}

fn align_up(value: u64, alignment: u64) -> u64 {
    if alignment <= 1 {
        return value;
    }
    value.div_ceil(alignment) * alignment
}

/// Stamps out `plan.instances_per_app` instances of every template, in
/// round-robin template order (instance 0 of every template, then instance
/// 1, ...), matching how the host would queue a mixed batch.
pub fn instantiate_many(templates: &[Application], plan: &InstancePlan) -> Vec<Application> {
    let mut out = Vec::with_capacity(templates.len() * plan.instances_per_app);
    let mut next_id = 0u32;
    let mut cursor = plan.flash_base;
    for round in 0..plan.instances_per_app {
        for template in templates {
            let _ = round;
            cursor = align_up(cursor, plan.alignment);
            let app = template.instantiate(AppId(next_id), cursor);
            cursor += app.flash_bytes();
            next_id += 1;
            out.push(app);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ApplicationBuilder, DataSection};
    use fa_platform::lwp::InstructionMix;
    use proptest::prelude::*;

    fn template(name: &str, bytes: u64) -> Application {
        ApplicationBuilder::new(name)
            .kernel(
                format!("{name}-k0"),
                DataSection {
                    flash_base: 0,
                    input_bytes: bytes,
                    output_bytes: bytes / 2,
                },
                &[(2, InstructionMix::new(50_000, 0.4, 0.1), bytes, bytes / 2)],
            )
            .build(AppId(0))
    }

    #[test]
    fn homogeneous_plan_makes_six_instances() {
        let t = template("ATAX", 1 << 20);
        let apps = instantiate_many(&[t], &InstancePlan::homogeneous());
        assert_eq!(apps.len(), 6);
        let ids: Vec<u32> = apps.iter().map(|a| a.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn heterogeneous_plan_interleaves_templates() {
        let t0 = template("ATAX", 1 << 20);
        let t1 = template("MVT", 1 << 19);
        let apps = instantiate_many(&[t0, t1], &InstancePlan::heterogeneous());
        assert_eq!(apps.len(), 8);
        assert_eq!(apps[0].name, "ATAX");
        assert_eq!(apps[1].name, "MVT");
        assert_eq!(apps[2].name, "ATAX");
    }

    #[test]
    fn data_sections_do_not_overlap() {
        let t0 = template("A", 300_000);
        let t1 = template("B", 123_456);
        let apps = instantiate_many(&[t0, t1], &InstancePlan::homogeneous());
        let mut ranges: Vec<(u64, u64)> = apps
            .iter()
            .flat_map(|a| a.kernels.iter().map(|k| k.data_section.flash_range()))
            .collect();
        ranges.sort_unstable();
        for pair in ranges.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "overlap: {pair:?}");
        }
    }

    #[test]
    fn alignment_is_respected() {
        let t = template("A", 100);
        let plan = InstancePlan {
            instances_per_app: 3,
            flash_base: 10,
            alignment: 4096,
        };
        let apps = instantiate_many(&[t], &plan);
        for a in &apps {
            assert_eq!(a.kernels[0].data_section.flash_base % 4096, 0);
        }
    }

    proptest! {
        #[test]
        fn instances_never_overlap(
            count in 1usize..6,
            bytes_a in 1u64..2_000_000,
            bytes_b in 1u64..2_000_000,
        ) {
            let t0 = template("A", bytes_a);
            let t1 = template("B", bytes_b);
            let plan = InstancePlan { instances_per_app: count, flash_base: 0, alignment: 8192 };
            let apps = instantiate_many(&[t0, t1], &plan);
            prop_assert_eq!(apps.len(), count * 2);
            let mut ranges: Vec<(u64, u64)> = apps
                .iter()
                .flat_map(|a| a.kernels.iter().map(|k| k.data_section.flash_range()))
                .collect();
            ranges.sort_unstable();
            for pair in ranges.windows(2) {
                prop_assert!(pair[0].1 <= pair[1].0);
            }
        }
    }
}
