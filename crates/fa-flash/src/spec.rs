//! Table 1 configuration helpers.

use crate::backbone::FlashBackbone;
use crate::geometry::FlashGeometry;
use crate::timing::FlashTiming;

/// Erase endurance assumed for the prototype's TLC parts.
pub const TLC_ENDURANCE_CYCLES: u64 = 3_000;

/// Tag-queue depth of each FPGA channel controller.
pub const CHANNEL_TAG_QUEUE_DEPTH: usize = 16;

/// Aggregate SRIO bandwidth between the AMC and FMC cards: four lanes at
/// 5 Gbps each, ≈2.5 GB/s of payload bandwidth (§2.2).
pub const SRIO_BYTES_PER_SEC: f64 = 2.5e9;

/// Builds the flash backbone exactly as specified by Table 1 of the paper:
/// 16 TLC packages (32 dies), 32 GB, four NV-DDR2 channels, 81 µs reads and
/// 2.6 ms programs, behind a 4-lane SRIO front-end.
///
/// # Examples
///
/// ```
/// let backbone = fa_flash::backbone_spec_table1();
/// assert_eq!(backbone.geometry().total_bytes(), 32 * (1 << 30));
/// assert_eq!(backbone.geometry().channels, 4);
/// ```
pub fn backbone_spec_table1() -> FlashBackbone {
    FlashBackbone::new(
        FlashGeometry::paper_prototype(),
        FlashTiming::paper_prototype(),
        SRIO_BYTES_PER_SEC,
        CHANNEL_TAG_QUEUE_DEPTH,
        TLC_ENDURANCE_CYCLES,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_backbone_matches_paper() {
        let b = backbone_spec_table1();
        assert_eq!(b.geometry().channels, 4);
        assert_eq!(b.geometry().total_dies(), 32);
        assert_eq!(b.timing().read_page.as_us_f64(), 81.0);
        assert_eq!(b.timing().program_page.as_us_f64(), 2600.0);
    }
}
