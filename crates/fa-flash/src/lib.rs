//! Flash backbone simulator.
//!
//! The paper's prototype attaches a *flash backbone* — four NV-DDR2
//! channels, each with four TLC packages (two dies per package) behind an
//! FPGA channel controller — to the accelerator's tier-2 network through
//! four SRIO lanes. This crate reproduces that storage complex as a
//! timing-accurate model:
//!
//! * [`geometry`] — channel/package/die/plane/block/page topology and
//!   physical addressing.
//! * [`timing`] — ONFi-style operation latencies (the paper reports 81 µs
//!   page reads and 2.6 ms page programs for 8 KB pages).
//! * [`die`] — per-die state machine: page program/erase state, erase
//!   counts, busy windows.
//! * [`controller`] — per-channel FPGA controller with inbound/outbound tag
//!   queues and the shared NV-DDR2 channel bus.
//! * [`backbone`] — the whole storage complex with the SRIO front-end; this
//!   is the unit Flashvisor and Storengine talk to.
//! * [`validindex`] — incremental backbone-wide valid-page accounting,
//!   bucketed by valid count, driving O(1)–O(log n) GC victim selection,
//!   plus optional page-group accounting for complete group reclamation.
//! * [`owner`] — owner identity ([`OwnerId`]) threaded from the
//!   translation layer down to the channel tag queues, per-owner QoS
//!   budgets, and per-owner statistics.
//! * [`fault`] — the injectable, deterministic fault model: seedable
//!   program/erase failures, scripted per-block faults, read-disturb, and
//!   the power-loss tick, decided by channel-local hashes so fault traces
//!   reproduce under any shard count.
//! * [`spec`] — the Table 1 default configuration.
//!
//! The model tracks *page state*, not page contents: what matters for the
//! evaluation is when operations complete, how channels and dies contend,
//! and how much work garbage collection must move.

pub mod backbone;
pub mod controller;
pub mod die;
pub mod error;
pub mod fault;
pub mod geometry;
pub mod owner;
pub mod spec;
pub mod timing;
pub mod validindex;

pub use backbone::{
    BackboneStats, BatchCompletion, FlashBackbone, FlashCommand, FlashCompletion, FlashOp,
};
pub use controller::ChannelController;
pub use die::{DieStats, FlashDie, PageState};
pub use error::FlashError;
pub use fault::{FaultOp, FaultPlan, FaultState, FaultStats, ScriptedFault};
pub use geometry::{FlashGeometry, PhysicalPageAddr};
pub use owner::{OwnerId, OwnerStats, QosBudgets};
pub use spec::backbone_spec_table1;
pub use timing::FlashTiming;
pub use validindex::ValidPageIndex;
