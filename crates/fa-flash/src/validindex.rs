//! Incremental valid-page index over the whole backbone.
//!
//! Storengine's victim selection needs two questions answered on every GC
//! pass: "how many valid pages does block *b* hold?" and "which block has
//! garbage to reclaim at the lowest migration cost?". Recounting page
//! states across the backbone makes both O(total pages); this index keeps
//! the answers current as the backbone executes commands, so both are
//! O(1)–O(log n).
//!
//! The structure is a per-block valid/programmed counter pair plus *garbage
//! buckets*: every block holding at least one superseded (invalid) page
//! sits in the bucket keyed by its current valid count. The greedy victim
//! policy pops the lowest-keyed non-empty bucket — the block that frees
//! space for the fewest migrated pages. `BTreeSet` buckets make the pick
//! deterministic (smallest block index wins ties), which the campaign
//! determinism contract relies on.
//!
//! The index is maintained by [`crate::backbone::FlashBackbone`] for every
//! command routed through it. Mutating a die directly (tests using
//! `die_mut`) bypasses the hooks; the property-test oracle recounts from
//! page states to catch any such drift in paths that matter.

use std::collections::BTreeSet;

/// Backbone-wide incremental valid-page accounting.
#[derive(Debug, Clone)]
pub struct ValidPageIndex {
    pages_per_block: u32,
    /// Valid pages per block, indexed by [`crate::FlashGeometry::block_index`].
    valid: Vec<u32>,
    /// Programmed pages (valid or superseded) per block.
    programmed: Vec<u32>,
    /// `buckets[v]` holds the blocks with `v` valid pages *and* at least
    /// one invalid page (i.e. something to reclaim).
    buckets: Vec<BTreeSet<u32>>,
    /// Valid counts whose bucket is non-empty, for O(log n) minimum lookup.
    occupied: BTreeSet<u32>,
    total_valid: u64,
}

impl ValidPageIndex {
    /// Creates an all-erased index for `total_blocks` blocks of
    /// `pages_per_block` pages each.
    pub fn new(total_blocks: usize, pages_per_block: usize) -> Self {
        ValidPageIndex {
            pages_per_block: pages_per_block as u32,
            valid: vec![0; total_blocks],
            programmed: vec![0; total_blocks],
            buckets: vec![BTreeSet::new(); pages_per_block + 1],
            occupied: BTreeSet::new(),
            total_valid: 0,
        }
    }

    fn garbage(&self, block: usize) -> u32 {
        self.programmed[block] - self.valid[block]
    }

    fn bucket_remove(&mut self, level: u32, block: u32) {
        let bucket = &mut self.buckets[level as usize];
        bucket.remove(&block);
        if bucket.is_empty() {
            self.occupied.remove(&level);
        }
    }

    fn bucket_insert(&mut self, level: u32, block: u32) {
        if self.buckets[level as usize].insert(block) {
            self.occupied.insert(level);
        }
    }

    /// Records one page program (or preload) landing in `block`.
    pub fn on_program(&mut self, block: u64) {
        let b = block as usize;
        let had_garbage = self.garbage(b) > 0;
        if had_garbage {
            self.bucket_remove(self.valid[b], block as u32);
        }
        self.programmed[b] += 1;
        self.valid[b] += 1;
        self.total_valid += 1;
        if had_garbage {
            self.bucket_insert(self.valid[b], block as u32);
        }
    }

    /// Records one page of `block` being superseded.
    pub fn on_invalidate(&mut self, block: u64) {
        let b = block as usize;
        if self.garbage(b) > 0 {
            self.bucket_remove(self.valid[b], block as u32);
        }
        self.valid[b] -= 1;
        self.total_valid -= 1;
        self.bucket_insert(self.valid[b], block as u32);
    }

    /// Records `block` being erased.
    pub fn on_erase(&mut self, block: u64) {
        let b = block as usize;
        if self.garbage(b) > 0 {
            self.bucket_remove(self.valid[b], block as u32);
        }
        self.total_valid -= self.valid[b] as u64;
        self.valid[b] = 0;
        self.programmed[b] = 0;
    }

    /// Valid pages currently held by `block`.
    pub fn valid_in(&self, block: u64) -> u32 {
        self.valid[block as usize]
    }

    /// Programmed (valid or superseded) pages currently held by `block`.
    pub fn programmed_in(&self, block: u64) -> u32 {
        self.programmed[block as usize]
    }

    /// Superseded pages reclaimable by erasing `block`.
    pub fn garbage_in(&self, block: u64) -> u32 {
        self.garbage(block as usize)
    }

    /// Valid pages across the whole backbone.
    pub fn total_valid(&self) -> u64 {
        self.total_valid
    }

    /// The reclaimable block with the fewest valid pages (cheapest
    /// migration), smallest block index on ties; `None` when no block holds
    /// garbage. O(log n).
    pub fn min_valid_garbage_block(&self) -> Option<u64> {
        let level = *self.occupied.first()?;
        self.buckets[level as usize]
            .first()
            .map(|&block| block as u64)
    }

    /// Pages per block the index was built for.
    pub fn pages_per_block(&self) -> u32 {
        self.pages_per_block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_track_garbage_blocks_only() {
        let mut idx = ValidPageIndex::new(4, 8);
        // Fully valid blocks never appear as victims.
        for _ in 0..8 {
            idx.on_program(0);
        }
        assert_eq!(idx.valid_in(0), 8);
        assert_eq!(idx.min_valid_garbage_block(), None);
        // Invalidation makes block 0 reclaimable at valid level 7.
        idx.on_invalidate(0);
        assert_eq!(idx.min_valid_garbage_block(), Some(0));
        assert_eq!(idx.garbage_in(0), 1);
        assert_eq!(idx.total_valid(), 7);
    }

    #[test]
    fn greedy_pick_prefers_fewest_valid_then_smallest_index() {
        let mut idx = ValidPageIndex::new(4, 8);
        for block in [1u64, 2, 3] {
            for _ in 0..4 {
                idx.on_program(block);
            }
        }
        idx.on_invalidate(1); // 3 valid, 1 garbage
        idx.on_invalidate(3); // 3 valid, 1 garbage
        idx.on_invalidate(3);
        idx.on_invalidate(3); // 1 valid, 3 garbage
        idx.on_invalidate(2); // 3 valid, 1 garbage
        assert_eq!(idx.min_valid_garbage_block(), Some(3));
        idx.on_erase(3);
        assert_eq!(idx.valid_in(3), 0);
        assert_eq!(idx.programmed_in(3), 0);
        // Blocks 1 and 2 tie at 3 valid pages; the smaller index wins.
        assert_eq!(idx.min_valid_garbage_block(), Some(1));
        assert_eq!(idx.total_valid(), 3 + 3 + 1 - 1);
    }

    #[test]
    fn erase_clears_membership_and_totals() {
        let mut idx = ValidPageIndex::new(2, 4);
        for _ in 0..4 {
            idx.on_program(1);
        }
        idx.on_invalidate(1);
        idx.on_erase(1);
        assert_eq!(idx.min_valid_garbage_block(), None);
        assert_eq!(idx.total_valid(), 0);
        // The block is reusable from scratch.
        idx.on_program(1);
        assert_eq!(idx.valid_in(1), 1);
    }

    #[test]
    fn reprogramming_a_garbage_block_moves_its_bucket() {
        let mut idx = ValidPageIndex::new(2, 8);
        for _ in 0..3 {
            idx.on_program(0);
        }
        idx.on_invalidate(0); // 2 valid, 1 garbage
        idx.on_program(0); // 3 valid, 1 garbage — bucket must move 2 → 3
        assert_eq!(idx.valid_in(0), 3);
        assert_eq!(idx.garbage_in(0), 1);
        assert_eq!(idx.min_valid_garbage_block(), Some(0));
    }
}
