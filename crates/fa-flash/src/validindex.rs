//! Incremental valid-page index over the whole backbone.
//!
//! Storengine's victim selection needs two questions answered on every GC
//! pass: "how many valid pages does block *b* hold?" and "which block has
//! garbage to reclaim at the lowest migration cost?". Recounting page
//! states across the backbone makes both O(total pages); this index keeps
//! the answers current as the backbone executes commands, so both are
//! O(1)–O(log n).
//!
//! The structure is a per-block valid/programmed counter pair plus *garbage
//! buckets*: every block holding at least one superseded (invalid) page
//! sits in the bucket keyed by its current valid count. The greedy victim
//! policy pops the lowest-keyed non-empty bucket — the block that frees
//! space for the fewest migrated pages. `BTreeSet` buckets make the pick
//! deterministic (smallest block index wins ties), which the campaign
//! determinism contract relies on.
//!
//! Two richer victim policies read further fields of the same structure:
//!
//! * **Wear.** Every [`ValidPageIndex::on_erase`] bumps a per-block erase
//!   counter and records the block in a pending *erase event* list. The
//!   translation layer drains that list ([`ValidPageIndex::take_erased_blocks`])
//!   to keep its min-wear placement structure current without ever
//!   rescanning the dies.
//! * **Age.** Every program stamps its block's `last_program_ns`, so the
//!   classic cost-benefit score `age × garbage / valid` is computable per
//!   garbage block from index state alone
//!   ([`ValidPageIndex::cost_benefit_victim`]).
//!
//! The index is maintained by [`crate::backbone::FlashBackbone`] for every
//! command routed through it. Mutating a die directly (tests using
//! `die_mut`) bypasses the hooks; the property-test oracle recounts from
//! page states to catch any such drift in paths that matter.
//!
//! # Examples
//!
//! ```
//! use fa_flash::ValidPageIndex;
//!
//! let mut idx = ValidPageIndex::new(2, 4);
//! // Two programs land in block 0; one page is later superseded.
//! idx.on_program(0, 0, 10);
//! idx.on_program(0, 1, 20);
//! idx.on_invalidate(0, 1);
//! assert_eq!(idx.valid_in(0), 1);
//! assert_eq!(idx.garbage_in(0), 1);
//! // Block 0 is now the cheapest (and only) reclaim candidate.
//! assert_eq!(idx.min_valid_garbage_block(), Some(0));
//! assert_eq!(idx.cost_benefit_victim(1_000), Some(0));
//! // Erasing it bumps the wear counter and queues an erase event.
//! idx.on_erase(0);
//! assert_eq!(idx.block_erase_count(0), 1);
//! assert_eq!(idx.take_erased_blocks(), vec![0]);
//! ```

use std::collections::{BTreeMap, BTreeSet};

/// Optional page-group accounting layered over the per-block counters.
///
/// A *page group* is `pages_per_group` consecutive flat pages — the
/// allocation unit of the translation layer above. The tracker answers the
/// question the group-reclaim leak fix needs: *which groups did this erase
/// make reusable?* It keeps per-group programmed/valid page counts plus,
/// per block, the groups holding programmed pages in that block (a group
/// stripes across channels, so it spans several blocks of one block row).
/// When an erase clears a group's last programmed page anywhere on the
/// device, the group lands in `fully_erased` for the caller to drain —
/// including overwritten (unmapped) garbage groups that no migration ever
/// recycled.
#[derive(Debug, Clone)]
struct GroupTracker {
    pages_per_group: u64,
    /// Programmed (not yet erased) pages per group.
    programmed: Vec<u32>,
    /// Valid pages per group.
    valid: Vec<u32>,
    /// Per block: group → (programmed, valid) pages of that group residing
    /// in this block.
    by_block: Vec<BTreeMap<u32, (u32, u32)>>,
    /// Groups whose last programmed page an erase just cleared, pending a
    /// drain by the reclaim path.
    fully_erased: Vec<u64>,
}

/// Backbone-wide incremental valid-page accounting.
#[derive(Debug, Clone)]
pub struct ValidPageIndex {
    pages_per_block: u32,
    /// Valid pages per block, indexed by [`crate::FlashGeometry::block_index`].
    valid: Vec<u32>,
    /// Programmed pages (valid or superseded) per block.
    programmed: Vec<u32>,
    /// `buckets[v]` holds the blocks with `v` valid pages *and* at least
    /// one invalid page (i.e. something to reclaim).
    buckets: Vec<BTreeSet<u32>>,
    /// Valid counts whose bucket is non-empty, for O(log n) minimum lookup.
    occupied: BTreeSet<u32>,
    total_valid: u64,
    /// Erase cycles per block, maintained on every [`ValidPageIndex::on_erase`].
    erase_counts: Vec<u64>,
    /// Blocks erased since the last [`ValidPageIndex::take_erased_blocks`]
    /// drain (one entry per erase, so repeated erases of one block are all
    /// visible to the wear structure above).
    erase_events: Vec<u64>,
    /// Instant (ns) of the last program landing in each block — the age
    /// base of the cost-benefit score.
    last_program_ns: Vec<u64>,
    /// Page-group accounting, when enabled.
    groups: Option<GroupTracker>,
}

impl ValidPageIndex {
    /// Creates an all-erased index for `total_blocks` blocks of
    /// `pages_per_block` pages each.
    pub fn new(total_blocks: usize, pages_per_block: usize) -> Self {
        ValidPageIndex {
            pages_per_block: pages_per_block as u32,
            valid: vec![0; total_blocks],
            programmed: vec![0; total_blocks],
            buckets: vec![BTreeSet::new(); pages_per_block + 1],
            occupied: BTreeSet::new(),
            total_valid: 0,
            erase_counts: vec![0; total_blocks],
            erase_events: Vec::new(),
            last_program_ns: vec![0; total_blocks],
            groups: None,
        }
    }

    /// Enables page-group accounting: `pages_per_group` consecutive flat
    /// pages form one of `total_groups` allocation groups. Must be enabled
    /// on an all-erased index (it is installed at construction time, before
    /// any command runs).
    pub fn enable_group_tracking(&mut self, pages_per_group: u64, total_groups: u64) {
        self.groups = Some(GroupTracker {
            pages_per_group: pages_per_group.max(1),
            programmed: vec![0; total_groups as usize],
            valid: vec![0; total_groups as usize],
            by_block: vec![BTreeMap::new(); self.valid.len()],
            fully_erased: Vec::new(),
        });
    }

    /// True when page-group accounting is enabled.
    pub fn tracks_groups(&self) -> bool {
        self.groups.is_some()
    }

    fn garbage(&self, block: usize) -> u32 {
        self.programmed[block] - self.valid[block]
    }

    fn bucket_remove(&mut self, level: u32, block: u32) {
        let bucket = &mut self.buckets[level as usize];
        bucket.remove(&block);
        if bucket.is_empty() {
            self.occupied.remove(&level);
        }
    }

    fn bucket_insert(&mut self, level: u32, block: u32) {
        if self.buckets[level as usize].insert(block) {
            self.occupied.insert(level);
        }
    }

    /// Records one page program (or preload) of flat page `flat` landing in
    /// `block` at instant `now_ns` (preloads pass 0: pre-experiment data is
    /// "as old as the run").
    pub fn on_program(&mut self, block: u64, flat: u64, now_ns: u64) {
        let b = block as usize;
        let had_garbage = self.garbage(b) > 0;
        if had_garbage {
            self.bucket_remove(self.valid[b], block as u32);
        }
        self.programmed[b] += 1;
        self.valid[b] += 1;
        self.total_valid += 1;
        self.last_program_ns[b] = self.last_program_ns[b].max(now_ns);
        if had_garbage {
            self.bucket_insert(self.valid[b], block as u32);
        }
        if let Some(t) = &mut self.groups {
            let g = (flat / t.pages_per_group) as usize;
            if g < t.programmed.len() {
                t.programmed[g] += 1;
                t.valid[g] += 1;
                let entry = t.by_block[b].entry(g as u32).or_insert((0, 0));
                entry.0 += 1;
                entry.1 += 1;
            }
        }
    }

    /// Records the page at flat index `flat` of `block` being superseded.
    pub fn on_invalidate(&mut self, block: u64, flat: u64) {
        let b = block as usize;
        if self.garbage(b) > 0 {
            self.bucket_remove(self.valid[b], block as u32);
        }
        self.valid[b] -= 1;
        self.total_valid -= 1;
        self.bucket_insert(self.valid[b], block as u32);
        if let Some(t) = &mut self.groups {
            let g = (flat / t.pages_per_group) as usize;
            if g < t.valid.len() {
                t.valid[g] -= 1;
                if let Some(entry) = t.by_block[b].get_mut(&(g as u32)) {
                    entry.1 -= 1;
                }
            }
        }
    }

    /// Records `block` being erased.
    pub fn on_erase(&mut self, block: u64) {
        let b = block as usize;
        if self.garbage(b) > 0 {
            self.bucket_remove(self.valid[b], block as u32);
        }
        self.total_valid -= self.valid[b] as u64;
        self.valid[b] = 0;
        self.programmed[b] = 0;
        self.erase_counts[b] += 1;
        self.erase_events.push(block);
        if let Some(t) = &mut self.groups {
            for (g, (programmed, valid)) in std::mem::take(&mut t.by_block[b]) {
                let g = g as usize;
                t.programmed[g] -= programmed;
                t.valid[g] -= valid;
                if t.programmed[g] == 0 {
                    // The erase cleared this group's last programmed page
                    // anywhere on the device: it is reusable again.
                    t.fully_erased.push(g as u64);
                }
            }
        }
    }

    /// Drains the groups whose last programmed page an erase cleared since
    /// the previous drain (empty without group tracking). The reclaim path
    /// above returns the unmapped ones to the allocator — the fix for the
    /// "erased but never recycled" overwrite-garbage leak.
    pub fn take_fully_erased_groups(&mut self) -> Vec<u64> {
        match &mut self.groups {
            Some(t) => std::mem::take(&mut t.fully_erased),
            None => Vec::new(),
        }
    }

    /// The garbage groups currently resident in `block`: groups holding at
    /// least one programmed page in the block but no valid page anywhere.
    /// Empty without group tracking.
    pub fn garbage_groups_in(&self, block: u64) -> Vec<u64> {
        match &self.groups {
            Some(t) => t.by_block[block as usize]
                .keys()
                .filter(|&&g| t.valid[g as usize] == 0)
                .map(|&g| g as u64)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Programmed (not yet erased) pages of group `g`, device-wide. Zero
    /// without group tracking.
    pub fn group_programmed_pages(&self, g: u64) -> u32 {
        self.groups
            .as_ref()
            .and_then(|t| t.programmed.get(g as usize).copied())
            .unwrap_or(0)
    }

    /// Valid pages of group `g`, device-wide. Zero without group tracking.
    pub fn group_valid_pages(&self, g: u64) -> u32 {
        self.groups
            .as_ref()
            .and_then(|t| t.valid.get(g as usize).copied())
            .unwrap_or(0)
    }

    /// Valid pages currently held by `block`.
    pub fn valid_in(&self, block: u64) -> u32 {
        self.valid[block as usize]
    }

    /// Programmed (valid or superseded) pages currently held by `block`.
    pub fn programmed_in(&self, block: u64) -> u32 {
        self.programmed[block as usize]
    }

    /// Superseded pages reclaimable by erasing `block`.
    pub fn garbage_in(&self, block: u64) -> u32 {
        self.garbage(block as usize)
    }

    /// Valid pages across the whole backbone.
    pub fn total_valid(&self) -> u64 {
        self.total_valid
    }

    /// The reclaimable block with the fewest valid pages (cheapest
    /// migration), smallest block index on ties; `None` when no block holds
    /// garbage. O(log n).
    pub fn min_valid_garbage_block(&self) -> Option<u64> {
        let level = *self.occupied.first()?;
        self.buckets[level as usize]
            .first()
            .map(|&block| block as u64)
    }

    /// Erase cycles recorded for `block` — the per-block wear counter the
    /// dies also track, mirrored here so wear queries never walk the dies.
    pub fn block_erase_count(&self, block: u64) -> u64 {
        self.erase_counts
            .get(block as usize)
            .copied()
            .unwrap_or_default()
    }

    /// Drains the blocks erased since the previous drain, one entry per
    /// erase in execution order. The translation layer feeds these into its
    /// incrementally maintained min-wear placement structure.
    pub fn take_erased_blocks(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.erase_events)
    }

    /// Instant (ns) of the last page program that landed in `block`.
    pub fn last_program_ns_of(&self, block: u64) -> u64 {
        self.last_program_ns
            .get(block as usize)
            .copied()
            .unwrap_or_default()
    }

    /// The reclaimable block maximizing the classic cost-benefit score
    /// `age × garbage / valid` at instant `now_ns`, where `age` is the time
    /// since the block last absorbed a program: stale blocks full of
    /// garbage are the best victims, hot blocks about to gather more
    /// garbage are the worst. `None` when no block holds garbage.
    ///
    /// Walks only the garbage buckets — O(blocks with garbage), never a
    /// device rescan — with exact integer cross-multiplied comparison so
    /// the pick is deterministic (score ties go to the first candidate in
    /// (valid-level, block-index) order).
    pub fn cost_benefit_victim(&self, now_ns: u64) -> Option<u64> {
        let mut best: Option<(u128, u128, u32)> = None;
        for &level in &self.occupied {
            for &block in &self.buckets[level as usize] {
                let b = block as usize;
                let age = now_ns.saturating_sub(self.last_program_ns[b]).max(1) as u128;
                let numerator = age * self.garbage(b) as u128;
                let denominator = self.valid[b].max(1) as u128;
                let better = match best {
                    None => true,
                    // score = num/den; compare num_a * den_b vs num_b * den_a
                    // exactly instead of dividing.
                    Some((bn, bd, _)) => numerator * bd > bn * denominator,
                };
                if better {
                    best = Some((numerator, denominator, block));
                }
            }
        }
        best.map(|(_, _, block)| block as u64)
    }

    /// Pages per block the index was built for.
    pub fn pages_per_block(&self) -> u32 {
        self.pages_per_block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_track_garbage_blocks_only() {
        let mut idx = ValidPageIndex::new(4, 8);
        // Fully valid blocks never appear as victims.
        for _ in 0..8 {
            idx.on_program(0, 0, 0);
        }
        assert_eq!(idx.valid_in(0), 8);
        assert_eq!(idx.min_valid_garbage_block(), None);
        // Invalidation makes block 0 reclaimable at valid level 7.
        idx.on_invalidate(0, 0);
        assert_eq!(idx.min_valid_garbage_block(), Some(0));
        assert_eq!(idx.garbage_in(0), 1);
        assert_eq!(idx.total_valid(), 7);
    }

    #[test]
    fn greedy_pick_prefers_fewest_valid_then_smallest_index() {
        let mut idx = ValidPageIndex::new(4, 8);
        for block in [1u64, 2, 3] {
            for _ in 0..4 {
                idx.on_program(block, 0, 0);
            }
        }
        idx.on_invalidate(1, 0); // 3 valid, 1 garbage
        idx.on_invalidate(3, 0); // 3 valid, 1 garbage
        idx.on_invalidate(3, 0);
        idx.on_invalidate(3, 0); // 1 valid, 3 garbage
        idx.on_invalidate(2, 0); // 3 valid, 1 garbage
        assert_eq!(idx.min_valid_garbage_block(), Some(3));
        idx.on_erase(3);
        assert_eq!(idx.valid_in(3), 0);
        assert_eq!(idx.programmed_in(3), 0);
        // Blocks 1 and 2 tie at 3 valid pages; the smaller index wins.
        assert_eq!(idx.min_valid_garbage_block(), Some(1));
        assert_eq!(idx.total_valid(), 3 + 3 + 1 - 1);
    }

    #[test]
    fn erase_clears_membership_and_totals() {
        let mut idx = ValidPageIndex::new(2, 4);
        for _ in 0..4 {
            idx.on_program(1, 0, 0);
        }
        idx.on_invalidate(1, 0);
        idx.on_erase(1);
        assert_eq!(idx.min_valid_garbage_block(), None);
        assert_eq!(idx.total_valid(), 0);
        // The block is reusable from scratch.
        idx.on_program(1, 0, 0);
        assert_eq!(idx.valid_in(1), 1);
    }

    #[test]
    fn group_tracking_reports_fully_erased_groups() {
        // 2 blocks × 4 pages, 2-page groups: group g covers flat pages
        // 2g..2g+2. Treat flat pages 0..4 as living in block 0 and 4..8 in
        // block 1 (the caller supplies the mapping).
        let mut idx = ValidPageIndex::new(2, 4);
        idx.enable_group_tracking(2, 4);
        assert!(idx.tracks_groups());
        for flat in 0..4u64 {
            idx.on_program(0, flat, 0);
        }
        assert_eq!(idx.group_programmed_pages(0), 2);
        assert_eq!(idx.group_valid_pages(1), 2);
        // Overwrite group 0: both its pages go invalid → it is garbage.
        idx.on_invalidate(0, 0);
        idx.on_invalidate(0, 1);
        assert_eq!(idx.group_valid_pages(0), 0);
        assert_eq!(idx.garbage_groups_in(0), vec![0]);
        // Nothing is reclaimable before the erase.
        assert!(idx.take_fully_erased_groups().is_empty());
        // The erase clears both resident groups; both report fully erased
        // (group 1 was still valid — the caller filters mapped groups).
        idx.on_erase(0);
        let mut erased = idx.take_fully_erased_groups();
        erased.sort_unstable();
        assert_eq!(erased, vec![0, 1]);
        // The drain is one-shot.
        assert!(idx.take_fully_erased_groups().is_empty());
        assert_eq!(idx.group_programmed_pages(0), 0);
    }

    #[test]
    fn group_spanning_two_blocks_reclaims_only_after_both_erases() {
        // Group 0's two pages: flat 0 in block 0, flat 1 in block 1 — the
        // striped layout where a group crosses a block row.
        let mut idx = ValidPageIndex::new(2, 4);
        idx.enable_group_tracking(2, 2);
        idx.on_program(0, 0, 0);
        idx.on_program(1, 1, 0);
        idx.on_invalidate(0, 0);
        idx.on_invalidate(1, 1);
        idx.on_erase(0);
        // One page still programmed in block 1: not reclaimable yet.
        assert!(idx.take_fully_erased_groups().is_empty());
        idx.on_erase(1);
        assert_eq!(idx.take_fully_erased_groups(), vec![0]);
    }

    #[test]
    fn reprogramming_a_garbage_block_moves_its_bucket() {
        let mut idx = ValidPageIndex::new(2, 8);
        for _ in 0..3 {
            idx.on_program(0, 0, 0);
        }
        idx.on_invalidate(0, 0); // 2 valid, 1 garbage
        idx.on_program(0, 0, 0); // 3 valid, 1 garbage — bucket must move 2 → 3
        assert_eq!(idx.valid_in(0), 3);
        assert_eq!(idx.garbage_in(0), 1);
        assert_eq!(idx.min_valid_garbage_block(), Some(0));
    }
}
