//! Incremental valid-page index over the whole backbone.
//!
//! Storengine's victim selection needs two questions answered on every GC
//! pass: "how many valid pages does block *b* hold?" and "which block has
//! garbage to reclaim at the lowest migration cost?". Recounting page
//! states across the backbone makes both O(total pages); this index keeps
//! the answers current as the backbone executes commands, so both are
//! O(1)–O(log n).
//!
//! The structure is a per-block valid/programmed counter pair plus *garbage
//! buckets*: every block holding at least one superseded (invalid) page
//! sits in the bucket keyed by its current valid count. The greedy victim
//! policy pops the lowest-keyed non-empty bucket — the block that frees
//! space for the fewest migrated pages. `BTreeSet` buckets make the pick
//! deterministic (smallest block index wins ties), which the campaign
//! determinism contract relies on.
//!
//! Two richer victim policies read further fields of the same structure:
//!
//! * **Wear.** Every [`ValidPageIndex::on_erase`] bumps a per-block erase
//!   counter and records the block in a pending *erase event* list. The
//!   translation layer drains that list ([`ValidPageIndex::take_erased_blocks`])
//!   to keep its min-wear placement structure current without ever
//!   rescanning the dies.
//! * **Age.** Every program stamps its block's `last_program_ns`, so the
//!   classic cost-benefit score `age × garbage / valid` is computable per
//!   garbage block from index state alone
//!   ([`ValidPageIndex::cost_benefit_victim`]).
//!
//! The index is maintained by [`crate::backbone::FlashBackbone`] for every
//! command routed through it. Mutating a die directly (tests using
//! `die_mut`) bypasses the hooks; the property-test oracle recounts from
//! page states to catch any such drift in paths that matter.
//!
//! # Examples
//!
//! ```
//! use fa_flash::ValidPageIndex;
//!
//! let mut idx = ValidPageIndex::new(2, 4);
//! // Two programs land in block 0; one page is later superseded.
//! idx.on_program(0, 0, 10);
//! idx.on_program(0, 1, 20);
//! idx.on_invalidate(0, 1);
//! assert_eq!(idx.valid_in(0), 1);
//! assert_eq!(idx.garbage_in(0), 1);
//! // Block 0 is now the cheapest (and only) reclaim candidate.
//! assert_eq!(idx.min_valid_garbage_block(), Some(0));
//! assert_eq!(idx.cost_benefit_victim(1_000), Some(0));
//! // Erasing it bumps the wear counter and queues an erase event.
//! idx.on_erase(0);
//! assert_eq!(idx.block_erase_count(0), 1);
//! assert_eq!(idx.take_erased_blocks(), vec![0]);
//! ```

/// Optional page-group accounting layered over the per-block counters.
///
/// A *page group* is `pages_per_group` consecutive flat pages — the
/// allocation unit of the translation layer above. The tracker answers the
/// question the group-reclaim leak fix needs: *which groups did this erase
/// make reusable?* It keeps per-group programmed/valid page counts plus,
/// per block, the groups holding programmed pages in that block (a group
/// stripes across channels, so it spans several blocks of one block row).
/// When an erase clears a group's last programmed page anywhere on the
/// device, the group lands in `fully_erased` for the caller to drain —
/// including overwritten (unmapped) garbage groups that no migration ever
/// recycled.
#[derive(Debug, Clone)]
struct GroupTracker {
    pages_per_group: u64,
    /// Programmed (not yet erased) pages per group.
    programmed: Vec<u32>,
    /// Valid pages per group.
    valid: Vec<u32>,
    /// Per block: the groups holding programmed pages in this block, as a
    /// sorted dense run of `(group, programmed, valid)`. NAND programs land
    /// on ascending pages within a block, and ascending pages map to
    /// non-decreasing flat indices (hence non-decreasing groups), so the
    /// hot-path maintenance is "increment the last entry or append" —
    /// contiguous memory, no tree nodes, no per-command allocation beyond
    /// amortized `Vec` growth. Out-of-order landings (preloads) fall back
    /// to a binary-search insert.
    by_block: Vec<Vec<(u32, u32, u32)>>,
    /// Groups whose last programmed page an erase just cleared, pending a
    /// drain by the reclaim path.
    fully_erased: Vec<u64>,
}

impl GroupTracker {
    /// Records one programmed page of group `g` residing in block `b`.
    fn note_program(&mut self, b: usize, g: u32) {
        let list = &mut self.by_block[b];
        match list.last_mut() {
            Some(entry) if entry.0 == g => {
                entry.1 += 1;
                entry.2 += 1;
            }
            Some(entry) if entry.0 < g => list.push((g, 1, 1)),
            None => list.push((g, 1, 1)),
            _ => match list.binary_search_by_key(&g, |entry| entry.0) {
                Ok(i) => {
                    list[i].1 += 1;
                    list[i].2 += 1;
                }
                Err(i) => list.insert(i, (g, 1, 1)),
            },
        }
    }
}

/// Backbone-wide incremental valid-page accounting.
#[derive(Debug, Clone)]
pub struct ValidPageIndex {
    pages_per_block: u32,
    /// Valid pages per block, indexed by [`crate::FlashGeometry::block_index`].
    valid: Vec<u32>,
    /// Programmed pages (valid or superseded) per block.
    programmed: Vec<u32>,
    /// Bucket `v` holds the blocks with `v` valid pages *and* at least one
    /// invalid page (i.e. something to reclaim). Stored as one block-index
    /// bitmap per valid level, flattened (`level × words_per_level` words):
    /// the per-command membership flips are single bit operations, and the
    /// per-GC-pass minimum lookups scan words in ascending order, which
    /// preserves the deterministic smallest-block-wins tie-break.
    buckets: Vec<u64>,
    words_per_level: usize,
    /// Blocks per bucket, so emptiness is known without scanning.
    level_counts: Vec<u32>,
    /// Bitmap over valid levels whose bucket is non-empty.
    occupied: Vec<u64>,
    total_valid: u64,
    /// Erase cycles per block, maintained on every [`ValidPageIndex::on_erase`].
    erase_counts: Vec<u64>,
    /// Blocks erased since the last [`ValidPageIndex::take_erased_blocks`]
    /// drain (one entry per erase, so repeated erases of one block are all
    /// visible to the wear structure above).
    erase_events: Vec<u64>,
    /// Instant (ns) of the last program landing in each block — the age
    /// base of the cost-benefit score.
    last_program_ns: Vec<u64>,
    /// Blocks promoted into the bad-block table: permanently excluded from
    /// the garbage buckets, so no victim policy ever proposes erasing a
    /// block the media already rejected. All-false unless a fault plan
    /// retired something.
    retired: Vec<bool>,
    /// Page-group accounting, when enabled.
    groups: Option<GroupTracker>,
}

impl ValidPageIndex {
    /// Creates an all-erased index for `total_blocks` blocks of
    /// `pages_per_block` pages each.
    pub fn new(total_blocks: usize, pages_per_block: usize) -> Self {
        let levels = pages_per_block + 1;
        let words_per_level = total_blocks.div_ceil(64);
        ValidPageIndex {
            pages_per_block: pages_per_block as u32,
            valid: vec![0; total_blocks],
            programmed: vec![0; total_blocks],
            buckets: vec![0; levels * words_per_level],
            words_per_level,
            level_counts: vec![0; levels],
            occupied: vec![0; levels.div_ceil(64)],
            total_valid: 0,
            erase_counts: vec![0; total_blocks],
            erase_events: Vec::new(),
            last_program_ns: vec![0; total_blocks],
            retired: vec![false; total_blocks],
            groups: None,
        }
    }

    /// Enables page-group accounting: `pages_per_group` consecutive flat
    /// pages form one of `total_groups` allocation groups. Must be enabled
    /// on an all-erased index (it is installed at construction time, before
    /// any command runs).
    pub fn enable_group_tracking(&mut self, pages_per_group: u64, total_groups: u64) {
        self.groups = Some(GroupTracker {
            pages_per_group: pages_per_group.max(1),
            programmed: vec![0; total_groups as usize],
            valid: vec![0; total_groups as usize],
            by_block: vec![Vec::new(); self.valid.len()],
            fully_erased: Vec::new(),
        });
    }

    /// True when page-group accounting is enabled.
    pub fn tracks_groups(&self) -> bool {
        self.groups.is_some()
    }

    /// The configured pages-per-group, when group tracking is enabled.
    pub fn group_size(&self) -> Option<u64> {
        self.groups.as_ref().map(|g| g.pages_per_group)
    }

    fn garbage(&self, block: usize) -> u32 {
        self.programmed[block] - self.valid[block]
    }

    fn bucket_remove(&mut self, level: u32, block: u32) {
        let l = level as usize;
        let word = &mut self.buckets[l * self.words_per_level + (block as usize >> 6)];
        let bit = 1u64 << (block & 63);
        if *word & bit != 0 {
            *word &= !bit;
            self.level_counts[l] -= 1;
            if self.level_counts[l] == 0 {
                self.occupied[l >> 6] &= !(1u64 << (l & 63));
            }
        }
    }

    fn bucket_insert(&mut self, level: u32, block: u32) {
        // Retired blocks never re-enter the victim structure, no matter how
        // much garbage they accumulate.
        if self.retired[block as usize] {
            return;
        }
        let l = level as usize;
        let word = &mut self.buckets[l * self.words_per_level + (block as usize >> 6)];
        let bit = 1u64 << (block & 63);
        if *word & bit == 0 {
            *word |= bit;
            self.level_counts[l] += 1;
            self.occupied[l >> 6] |= 1u64 << (l & 63);
        }
    }

    /// The set bit indices of `words`, ascending.
    fn set_bits(words: &[u64]) -> impl Iterator<Item = usize> + '_ {
        words.iter().enumerate().flat_map(|(i, &w)| {
            std::iter::successors((w != 0).then_some(w), |w| {
                let w = w & (w - 1);
                (w != 0).then_some(w)
            })
            .map(move |w| i * 64 + w.trailing_zeros() as usize)
        })
    }

    /// Records one page program (or preload) of flat page `flat` landing in
    /// `block` at instant `now_ns` (preloads pass 0: pre-experiment data is
    /// "as old as the run").
    pub fn on_program(&mut self, block: u64, flat: u64, now_ns: u64) {
        let b = block as usize;
        let had_garbage = self.garbage(b) > 0;
        if had_garbage {
            self.bucket_remove(self.valid[b], block as u32);
        }
        self.programmed[b] += 1;
        self.valid[b] += 1;
        self.total_valid += 1;
        self.last_program_ns[b] = self.last_program_ns[b].max(now_ns);
        if had_garbage {
            self.bucket_insert(self.valid[b], block as u32);
        }
        if let Some(t) = &mut self.groups {
            let g = (flat / t.pages_per_group) as usize;
            if g < t.programmed.len() {
                t.programmed[g] += 1;
                t.valid[g] += 1;
                t.note_program(b, g as u32);
            }
        }
    }

    /// Records a batch of page programs — the once-per-`submit_batch` entry
    /// point. Each `(block, flat)` entry is accounted exactly as a matching
    /// sequence of [`ValidPageIndex::on_program`] calls would, but the
    /// device-wide group counters are coalesced per run of same-group pages
    /// (a vectored group write is one such run striped across channels), so
    /// the per-page work is only the per-block counter touch.
    pub fn on_program_batch<I>(&mut self, entries: I, now_ns: u64)
    where
        I: IntoIterator<Item = (u64, u64)>,
    {
        // (group, pages) accumulated for the current same-group run.
        let mut pending: Option<(usize, u32)> = None;
        for (block, flat) in entries {
            let b = block as usize;
            let had_garbage = self.garbage(b) > 0;
            if had_garbage {
                self.bucket_remove(self.valid[b], block as u32);
            }
            self.programmed[b] += 1;
            self.valid[b] += 1;
            self.total_valid += 1;
            self.last_program_ns[b] = self.last_program_ns[b].max(now_ns);
            if had_garbage {
                self.bucket_insert(self.valid[b], block as u32);
            }
            if let Some(t) = &mut self.groups {
                let g = (flat / t.pages_per_group) as usize;
                if g < t.programmed.len() {
                    t.note_program(b, g as u32);
                    pending = match pending {
                        Some((run, pages)) if run == g => Some((run, pages + 1)),
                        Some((run, pages)) => {
                            t.programmed[run] += pages;
                            t.valid[run] += pages;
                            Some((g, 1))
                        }
                        None => Some((g, 1)),
                    };
                }
            }
        }
        if let (Some(t), Some((run, pages))) = (&mut self.groups, pending) {
            t.programmed[run] += pages;
            t.valid[run] += pages;
        }
    }

    /// Records the page at flat index `flat` of `block` being superseded.
    pub fn on_invalidate(&mut self, block: u64, flat: u64) {
        let b = block as usize;
        if self.garbage(b) > 0 {
            self.bucket_remove(self.valid[b], block as u32);
        }
        self.valid[b] -= 1;
        self.total_valid -= 1;
        self.bucket_insert(self.valid[b], block as u32);
        if let Some(t) = &mut self.groups {
            let g = (flat / t.pages_per_group) as usize;
            if g < t.valid.len() {
                t.valid[g] -= 1;
                let list = &mut t.by_block[b];
                if let Ok(i) = list.binary_search_by_key(&(g as u32), |entry| entry.0) {
                    list[i].2 -= 1;
                }
            }
        }
    }

    /// Records a batch of page invalidations — the vectored counterpart of
    /// [`ValidPageIndex::on_invalidate`], with the device-wide group valid
    /// counter coalesced per run of same-group pages (a group overwrite
    /// invalidates one such run striped across channels).
    pub fn on_invalidate_batch<I>(&mut self, entries: I)
    where
        I: IntoIterator<Item = (u64, u64)>,
    {
        // (group, pages) accumulated for the current same-group run.
        let mut pending: Option<(usize, u32)> = None;
        for (block, flat) in entries {
            let b = block as usize;
            if self.garbage(b) > 0 {
                self.bucket_remove(self.valid[b], block as u32);
            }
            self.valid[b] -= 1;
            self.total_valid -= 1;
            self.bucket_insert(self.valid[b], block as u32);
            if let Some(t) = &mut self.groups {
                let g = (flat / t.pages_per_group) as usize;
                if g < t.valid.len() {
                    let list = &mut t.by_block[b];
                    if let Ok(i) = list.binary_search_by_key(&(g as u32), |entry| entry.0) {
                        list[i].2 -= 1;
                    }
                    pending = match pending {
                        Some((run, pages)) if run == g => Some((run, pages + 1)),
                        Some((run, pages)) => {
                            t.valid[run] -= pages;
                            Some((g, 1))
                        }
                        None => Some((g, 1)),
                    };
                }
            }
        }
        if let (Some(t), Some((run, pages))) = (&mut self.groups, pending) {
            t.valid[run] -= pages;
        }
    }

    /// Records `block` being erased.
    pub fn on_erase(&mut self, block: u64) {
        let b = block as usize;
        if self.garbage(b) > 0 {
            self.bucket_remove(self.valid[b], block as u32);
        }
        self.total_valid -= self.valid[b] as u64;
        self.valid[b] = 0;
        self.programmed[b] = 0;
        self.erase_counts[b] += 1;
        self.erase_events.push(block);
        if let Some(t) = &mut self.groups {
            // Take the list out so the per-group counters can be updated
            // while walking it; hand back the emptied allocation afterwards
            // so a recycled block's next programs reuse the capacity.
            let mut resident = std::mem::take(&mut t.by_block[b]);
            for &(g, programmed, valid) in &resident {
                let g = g as usize;
                t.programmed[g] -= programmed;
                t.valid[g] -= valid;
                if t.programmed[g] == 0 {
                    // The erase cleared this group's last programmed page
                    // anywhere on the device: it is reusable again.
                    t.fully_erased.push(g as u64);
                }
            }
            resident.clear();
            t.by_block[b] = resident;
        }
    }

    /// Drains the groups whose last programmed page an erase cleared since
    /// the previous drain (empty without group tracking). The reclaim path
    /// above returns the unmapped ones to the allocator — the fix for the
    /// "erased but never recycled" overwrite-garbage leak.
    pub fn take_fully_erased_groups(&mut self) -> Vec<u64> {
        match &mut self.groups {
            Some(t) => std::mem::take(&mut t.fully_erased),
            None => Vec::new(),
        }
    }

    /// The garbage groups currently resident in `block`: groups holding at
    /// least one programmed page in the block but no valid page anywhere.
    /// Empty without group tracking.
    pub fn garbage_groups_in(&self, block: u64) -> Vec<u64> {
        match &self.groups {
            Some(t) => t.by_block[block as usize]
                .iter()
                .filter(|&&(g, _, _)| t.valid[g as usize] == 0)
                .map(|&(g, _, _)| g as u64)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Programmed (not yet erased) pages of group `g`, device-wide. Zero
    /// without group tracking.
    pub fn group_programmed_pages(&self, g: u64) -> u32 {
        self.groups
            .as_ref()
            .and_then(|t| t.programmed.get(g as usize).copied())
            .unwrap_or(0)
    }

    /// Valid pages of group `g`, device-wide. Zero without group tracking.
    pub fn group_valid_pages(&self, g: u64) -> u32 {
        self.groups
            .as_ref()
            .and_then(|t| t.valid.get(g as usize).copied())
            .unwrap_or(0)
    }

    /// Valid pages currently held by `block`.
    pub fn valid_in(&self, block: u64) -> u32 {
        self.valid[block as usize]
    }

    /// Programmed (valid or superseded) pages currently held by `block`.
    pub fn programmed_in(&self, block: u64) -> u32 {
        self.programmed[block as usize]
    }

    /// Superseded pages reclaimable by erasing `block`.
    pub fn garbage_in(&self, block: u64) -> u32 {
        self.garbage(block as usize)
    }

    /// Valid pages across the whole backbone.
    pub fn total_valid(&self) -> u64 {
        self.total_valid
    }

    /// The reclaimable block with the fewest valid pages (cheapest
    /// migration), smallest block index on ties; `None` when no block holds
    /// garbage. O(log n).
    pub fn min_valid_garbage_block(&self) -> Option<u64> {
        let level = Self::set_bits(&self.occupied).next()?;
        let base = level * self.words_per_level;
        Self::set_bits(&self.buckets[base..base + self.words_per_level])
            .next()
            .map(|block| block as u64)
    }

    /// Erase cycles recorded for `block` — the per-block wear counter the
    /// dies also track, mirrored here so wear queries never walk the dies.
    pub fn block_erase_count(&self, block: u64) -> u64 {
        self.erase_counts
            .get(block as usize)
            .copied()
            .unwrap_or_default()
    }

    /// Drains the blocks erased since the previous drain, one entry per
    /// erase in execution order. The translation layer feeds these into its
    /// incrementally maintained min-wear placement structure.
    pub fn take_erased_blocks(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.erase_events)
    }

    /// Instant (ns) of the last page program that landed in `block`.
    pub fn last_program_ns_of(&self, block: u64) -> u64 {
        self.last_program_ns
            .get(block as usize)
            .copied()
            .unwrap_or_default()
    }

    /// The reclaimable block maximizing the classic cost-benefit score
    /// `age × garbage / valid` at instant `now_ns`, where `age` is the time
    /// since the block last absorbed a program: stale blocks full of
    /// garbage are the best victims, hot blocks about to gather more
    /// garbage are the worst. `None` when no block holds garbage.
    ///
    /// Walks only the garbage buckets — O(blocks with garbage), never a
    /// device rescan — with exact integer cross-multiplied comparison so
    /// the pick is deterministic (score ties go to the first candidate in
    /// (valid-level, block-index) order).
    pub fn cost_benefit_victim(&self, now_ns: u64) -> Option<u64> {
        let mut best: Option<(u128, u128, u32)> = None;
        for level in Self::set_bits(&self.occupied) {
            let base = level * self.words_per_level;
            for block in Self::set_bits(&self.buckets[base..base + self.words_per_level]) {
                let block = block as u32;
                let b = block as usize;
                let age = now_ns.saturating_sub(self.last_program_ns[b]).max(1) as u128;
                let numerator = age * self.garbage(b) as u128;
                let denominator = self.valid[b].max(1) as u128;
                let better = match best {
                    None => true,
                    // score = num/den; compare num_a * den_b vs num_b * den_a
                    // exactly instead of dividing.
                    Some((bn, bd, _)) => numerator * bd > bn * denominator,
                };
                if better {
                    best = Some((numerator, denominator, block));
                }
            }
        }
        best.map(|(_, _, block)| block as u64)
    }

    /// Promotes `block` into the bad-block table: it leaves the garbage
    /// buckets immediately and never re-enters, so neither victim policy
    /// can propose erasing it again. Counters (valid, programmed, wear)
    /// keep tracking it — retirement hides the block from GC, it does not
    /// rewrite its state. Idempotent.
    pub fn retire_block(&mut self, block: u64) {
        let b = block as usize;
        if b >= self.retired.len() || self.retired[b] {
            return;
        }
        if self.garbage(b) > 0 {
            self.bucket_remove(self.valid[b], block as u32);
        }
        self.retired[b] = true;
    }

    /// True when `block` sits in the bad-block table.
    pub fn is_block_retired(&self, block: u64) -> bool {
        self.retired
            .get(block as usize)
            .copied()
            .unwrap_or_default()
    }

    /// Pages per block the index was built for.
    pub fn pages_per_block(&self) -> u32 {
        self.pages_per_block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_track_garbage_blocks_only() {
        let mut idx = ValidPageIndex::new(4, 8);
        // Fully valid blocks never appear as victims.
        for _ in 0..8 {
            idx.on_program(0, 0, 0);
        }
        assert_eq!(idx.valid_in(0), 8);
        assert_eq!(idx.min_valid_garbage_block(), None);
        // Invalidation makes block 0 reclaimable at valid level 7.
        idx.on_invalidate(0, 0);
        assert_eq!(idx.min_valid_garbage_block(), Some(0));
        assert_eq!(idx.garbage_in(0), 1);
        assert_eq!(idx.total_valid(), 7);
    }

    #[test]
    fn greedy_pick_prefers_fewest_valid_then_smallest_index() {
        let mut idx = ValidPageIndex::new(4, 8);
        for block in [1u64, 2, 3] {
            for _ in 0..4 {
                idx.on_program(block, 0, 0);
            }
        }
        idx.on_invalidate(1, 0); // 3 valid, 1 garbage
        idx.on_invalidate(3, 0); // 3 valid, 1 garbage
        idx.on_invalidate(3, 0);
        idx.on_invalidate(3, 0); // 1 valid, 3 garbage
        idx.on_invalidate(2, 0); // 3 valid, 1 garbage
        assert_eq!(idx.min_valid_garbage_block(), Some(3));
        idx.on_erase(3);
        assert_eq!(idx.valid_in(3), 0);
        assert_eq!(idx.programmed_in(3), 0);
        // Blocks 1 and 2 tie at 3 valid pages; the smaller index wins.
        assert_eq!(idx.min_valid_garbage_block(), Some(1));
        assert_eq!(idx.total_valid(), 3 + 3 + 1 - 1);
    }

    #[test]
    fn erase_clears_membership_and_totals() {
        let mut idx = ValidPageIndex::new(2, 4);
        for _ in 0..4 {
            idx.on_program(1, 0, 0);
        }
        idx.on_invalidate(1, 0);
        idx.on_erase(1);
        assert_eq!(idx.min_valid_garbage_block(), None);
        assert_eq!(idx.total_valid(), 0);
        // The block is reusable from scratch.
        idx.on_program(1, 0, 0);
        assert_eq!(idx.valid_in(1), 1);
    }

    #[test]
    fn group_tracking_reports_fully_erased_groups() {
        // 2 blocks × 4 pages, 2-page groups: group g covers flat pages
        // 2g..2g+2. Treat flat pages 0..4 as living in block 0 and 4..8 in
        // block 1 (the caller supplies the mapping).
        let mut idx = ValidPageIndex::new(2, 4);
        idx.enable_group_tracking(2, 4);
        assert!(idx.tracks_groups());
        for flat in 0..4u64 {
            idx.on_program(0, flat, 0);
        }
        assert_eq!(idx.group_programmed_pages(0), 2);
        assert_eq!(idx.group_valid_pages(1), 2);
        // Overwrite group 0: both its pages go invalid → it is garbage.
        idx.on_invalidate(0, 0);
        idx.on_invalidate(0, 1);
        assert_eq!(idx.group_valid_pages(0), 0);
        assert_eq!(idx.garbage_groups_in(0), vec![0]);
        // Nothing is reclaimable before the erase.
        assert!(idx.take_fully_erased_groups().is_empty());
        // The erase clears both resident groups; both report fully erased
        // (group 1 was still valid — the caller filters mapped groups).
        idx.on_erase(0);
        let mut erased = idx.take_fully_erased_groups();
        erased.sort_unstable();
        assert_eq!(erased, vec![0, 1]);
        // The drain is one-shot.
        assert!(idx.take_fully_erased_groups().is_empty());
        assert_eq!(idx.group_programmed_pages(0), 0);
    }

    #[test]
    fn group_spanning_two_blocks_reclaims_only_after_both_erases() {
        // Group 0's two pages: flat 0 in block 0, flat 1 in block 1 — the
        // striped layout where a group crosses a block row.
        let mut idx = ValidPageIndex::new(2, 4);
        idx.enable_group_tracking(2, 2);
        idx.on_program(0, 0, 0);
        idx.on_program(1, 1, 0);
        idx.on_invalidate(0, 0);
        idx.on_invalidate(1, 1);
        idx.on_erase(0);
        // One page still programmed in block 1: not reclaimable yet.
        assert!(idx.take_fully_erased_groups().is_empty());
        idx.on_erase(1);
        assert_eq!(idx.take_fully_erased_groups(), vec![0]);
    }

    #[test]
    fn retired_block_leaves_and_never_reenters_victim_selection() {
        let mut idx = ValidPageIndex::new(2, 8);
        for _ in 0..2 {
            idx.on_program(0, 0, 0);
        }
        idx.on_invalidate(0, 0); // garbage → block 0 enters the buckets
        assert_eq!(idx.min_valid_garbage_block(), Some(0));
        idx.retire_block(0);
        assert!(idx.is_block_retired(0));
        assert_eq!(idx.min_valid_garbage_block(), None);
        // Accumulating more garbage cannot resurrect a retired block.
        idx.on_invalidate(0, 1);
        assert_eq!(idx.min_valid_garbage_block(), None);
        assert_eq!(idx.cost_benefit_victim(1_000), None);
        // Counters keep tracking it; retirement only hides it from GC.
        assert_eq!(idx.valid_in(0), 0);
        assert_eq!(idx.garbage_in(0), 2);
        idx.retire_block(0); // idempotent
        assert!(idx.is_block_retired(0));
    }

    #[test]
    fn reprogramming_a_garbage_block_moves_its_bucket() {
        let mut idx = ValidPageIndex::new(2, 8);
        for _ in 0..3 {
            idx.on_program(0, 0, 0);
        }
        idx.on_invalidate(0, 0); // 2 valid, 1 garbage
        idx.on_program(0, 0, 0); // 3 valid, 1 garbage — bucket must move 2 → 3
        assert_eq!(idx.valid_in(0), 3);
        assert_eq!(idx.garbage_in(0), 1);
        assert_eq!(idx.min_valid_garbage_block(), Some(0));
    }
}
