//! Flash operation and interface timing.

use fa_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Timing parameters of the flash backbone.
///
/// Values follow the paper's prototype: 8 KB page reads take ≈81 µs,
/// programs ≈2.6 ms (TLC), and the NV-DDR2 (ONFi 3.0) channels run at
/// 200 MHz (Table 1), i.e. 400 MB/s of peak transfer bandwidth per channel
/// at double data rate. The FPGA controller adds a fixed per-command
/// overhead for tag-queue handling and clock-domain crossing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlashTiming {
    /// Array-read latency for one page (cell sensing, tR).
    pub read_page: SimDuration,
    /// Program latency for one page (tPROG).
    pub program_page: SimDuration,
    /// Block erase latency (tBERS).
    pub erase_block: SimDuration,
    /// Channel transfer bandwidth in bytes per second (NV-DDR2 bus).
    pub channel_bytes_per_sec: f64,
    /// Fixed per-command controller overhead (tag queue + command decode).
    pub controller_overhead: SimDuration,
}

impl FlashTiming {
    /// The paper's prototype timing.
    pub fn paper_prototype() -> Self {
        FlashTiming {
            read_page: SimDuration::from_us(81),
            program_page: SimDuration::from_us(2_600),
            erase_block: SimDuration::from_ms(5),
            // 200 MHz NV-DDR2, 8-bit bus, double data rate ⇒ 400 MB/s.
            channel_bytes_per_sec: 400.0e6,
            controller_overhead: SimDuration::from_ns(500),
        }
    }

    /// A fast timing profile for unit tests (keeps simulated times small).
    pub fn fast_for_tests() -> Self {
        FlashTiming {
            read_page: SimDuration::from_us(1),
            program_page: SimDuration::from_us(4),
            erase_block: SimDuration::from_us(16),
            channel_bytes_per_sec: 1.0e9,
            controller_overhead: SimDuration::from_ns(10),
        }
    }

    /// Time to move one page worth of data across the channel bus.
    pub fn page_transfer(&self, page_bytes: usize) -> SimDuration {
        SimDuration::for_transfer(page_bytes as u64, self.channel_bytes_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_latencies_match_table() {
        let t = FlashTiming::paper_prototype();
        assert_eq!(t.read_page.as_us_f64(), 81.0);
        assert_eq!(t.program_page.as_us_f64(), 2600.0);
        assert!(t.erase_block > t.program_page);
    }

    #[test]
    fn page_transfer_uses_channel_bandwidth() {
        let t = FlashTiming::paper_prototype();
        let xfer = t.page_transfer(8192);
        // 8 KiB at 400 MB/s ≈ 20.48 µs.
        assert!((xfer.as_us_f64() - 20.48).abs() < 0.1);
    }
}
