//! Owner identity and per-owner QoS on the flash data path.
//!
//! Every command entering the backbone carries an [`OwnerId`]: the kernel
//! (application) whose data section the request serves, or one of the two
//! storage-management streams (garbage collection, metadata journaling).
//! The identity flows from the range locks Flashvisor already keeps — the
//! cross-layer metadata idea of MetaSys — down to the channel controllers'
//! tag queues, where two things happen with it:
//!
//! * **Isolation.** [`QosBudgets`] bounds how many commands one owner may
//!   keep outstanding per channel. An over-budget owner's next command is
//!   *deferred* until one of its own commands retires; other owners are
//!   admitted past it instead of FIFO-stalling behind it (the lightweight
//!   per-tenant flow control of SYSFLOW).
//! * **Accounting.** Controllers and the backbone keep per-owner
//!   [`OwnerStats`] — command counts, payload bytes, occupancy peaks, and
//!   read latencies — so figures can show *who pays* for contention.
//!
//! # Examples
//!
//! ```
//! use fa_flash::{OwnerId, QosBudgets};
//!
//! // Foreground kernels get 8 outstanding tags per channel, the GC and
//! // journal streams 2 each.
//! let budgets = QosBudgets { per_owner: Some(8), background: Some(2) };
//! assert_eq!(budgets.budget_for(OwnerId::Kernel(3)), Some(8));
//! assert_eq!(budgets.budget_for(OwnerId::Gc), Some(2));
//! assert!(OwnerId::Journal.is_background());
//! assert_eq!(OwnerId::Kernel(3).label(), "kernel3");
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;

/// Who issued a flash command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OwnerId {
    /// Foreground traffic of one kernel; the payload is the range-lock
    /// owner id (the application id).
    Kernel(u32),
    /// Storengine garbage collection (migrations and erases).
    Gc,
    /// Storengine metadata journaling.
    Journal,
    /// Traffic not attributed to any owner (preloads, legacy paths).
    Unattributed,
}

impl OwnerId {
    /// Dense slots occupied by the non-kernel owners (see
    /// [`OwnerId::dense_index`]).
    pub const DENSE_FIXED: usize = 3;

    /// Maps the owner onto a small dense index — the hot-path structures
    /// (tag-queue peaks, per-owner stats, latency distributions) are plain
    /// arrays indexed by this instead of `BTreeMap<OwnerId, _>` lookups.
    /// The two background streams and the unattributed stream take the
    /// first three slots; kernel `k` (the range-lock application id, a
    /// small sequential counter) takes slot `3 + k`.
    pub fn dense_index(self) -> usize {
        match self {
            OwnerId::Gc => 0,
            OwnerId::Journal => 1,
            OwnerId::Unattributed => 2,
            OwnerId::Kernel(id) => Self::DENSE_FIXED + id as usize,
        }
    }

    /// Inverse of [`OwnerId::dense_index`].
    pub fn from_dense_index(index: usize) -> OwnerId {
        match index {
            0 => OwnerId::Gc,
            1 => OwnerId::Journal,
            2 => OwnerId::Unattributed,
            k => OwnerId::Kernel((k - Self::DENSE_FIXED) as u32),
        }
    }

    /// Label used in reports and perf records.
    pub fn label(self) -> String {
        match self {
            OwnerId::Kernel(id) => format!("kernel{id}"),
            OwnerId::Gc => "gc".to_string(),
            OwnerId::Journal => "journal".to_string(),
            OwnerId::Unattributed => "unattributed".to_string(),
        }
    }

    /// True for the two storage-management streams.
    pub fn is_background(self) -> bool {
        matches!(self, OwnerId::Gc | OwnerId::Journal)
    }
}

impl fmt::Display for OwnerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Per-owner outstanding-command budgets at each channel's tag queue.
/// `None` means unlimited — the default reproduces the untagged FIFO
/// admission byte for byte.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QosBudgets {
    /// Budget for each foreground owner ([`OwnerId::Kernel`] and
    /// [`OwnerId::Unattributed`]).
    pub per_owner: Option<usize>,
    /// Budget shared semantics for the background streams ([`OwnerId::Gc`]
    /// and [`OwnerId::Journal`]) — each stream individually holds at most
    /// this many tags per channel.
    pub background: Option<usize>,
}

impl QosBudgets {
    /// Unlimited budgets: admission is the plain FIFO tag queue.
    pub fn unlimited() -> Self {
        QosBudgets::default()
    }

    /// The budget applying to `owner`, if any.
    pub fn budget_for(&self, owner: OwnerId) -> Option<usize> {
        if owner.is_background() {
            self.background
        } else {
            self.per_owner
        }
    }
}

/// Aggregate per-owner statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OwnerStats {
    /// Pages read.
    pub reads: u64,
    /// Pages programmed.
    pub programs: u64,
    /// Blocks erased.
    pub erases: u64,
    /// Payload bytes moved for this owner (SRIO at the backbone, channel
    /// bus at the controllers).
    pub bytes: u64,
    /// Sum of end-to-end read latencies, in nanoseconds.
    pub read_latency_total_ns: u64,
    /// Worst end-to-end read latency, in nanoseconds.
    pub read_latency_max_ns: u64,
    /// Peak simultaneous tag-queue occupancy this owner reached on any one
    /// channel.
    pub peak_tags: usize,
}

impl OwnerStats {
    /// Total commands attributed to this owner.
    pub fn commands(&self) -> u64 {
        self.reads + self.programs + self.erases
    }

    /// Mean read latency in nanoseconds (0 when no reads completed).
    pub fn read_latency_mean_ns(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.read_latency_total_ns as f64 / self.reads as f64
        }
    }

    /// Folds another record into this one (cross-channel aggregation).
    pub fn absorb(&mut self, other: &OwnerStats) {
        self.reads += other.reads;
        self.programs += other.programs;
        self.erases += other.erases;
        self.bytes += other.bytes;
        self.read_latency_total_ns += other.read_latency_total_ns;
        self.read_latency_max_ns = self.read_latency_max_ns.max(other.read_latency_max_ns);
        self.peak_tags = self.peak_tags.max(other.peak_tags);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_split_foreground_and_background() {
        let q = QosBudgets {
            per_owner: Some(4),
            background: Some(2),
        };
        assert_eq!(q.budget_for(OwnerId::Kernel(7)), Some(4));
        assert_eq!(q.budget_for(OwnerId::Unattributed), Some(4));
        assert_eq!(q.budget_for(OwnerId::Gc), Some(2));
        assert_eq!(q.budget_for(OwnerId::Journal), Some(2));
        assert_eq!(QosBudgets::unlimited().budget_for(OwnerId::Gc), None);
    }

    #[test]
    fn dense_index_round_trips() {
        let owners = [
            OwnerId::Gc,
            OwnerId::Journal,
            OwnerId::Unattributed,
            OwnerId::Kernel(0),
            OwnerId::Kernel(7),
        ];
        for owner in owners {
            assert_eq!(OwnerId::from_dense_index(owner.dense_index()), owner);
        }
        // The fixed slots and the kernel slots never collide.
        assert_eq!(OwnerId::Kernel(0).dense_index(), OwnerId::DENSE_FIXED);
        let mut seen: Vec<usize> = owners.iter().map(|o| o.dense_index()).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), owners.len());
    }

    #[test]
    fn labels_and_aggregation() {
        assert_eq!(OwnerId::Kernel(3).label(), "kernel3");
        assert_eq!(OwnerId::Gc.to_string(), "gc");
        assert!(OwnerId::Journal.is_background());
        assert!(!OwnerId::Kernel(0).is_background());
        let mut a = OwnerStats {
            reads: 2,
            read_latency_total_ns: 100,
            read_latency_max_ns: 60,
            peak_tags: 1,
            ..Default::default()
        };
        let b = OwnerStats {
            reads: 2,
            erases: 1,
            read_latency_total_ns: 300,
            read_latency_max_ns: 200,
            peak_tags: 3,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.commands(), 5);
        assert_eq!(a.read_latency_max_ns, 200);
        assert_eq!(a.peak_tags, 3);
        assert!((a.read_latency_mean_ns() - 100.0).abs() < 1e-12);
    }
}
