//! Flash backbone topology and physical addressing.

use serde::{Deserialize, Serialize};

/// Static geometry of the flash backbone.
///
/// The paper's prototype (Table 1 and §2.2): 4 channels, 4 packages per
/// channel, 2 dies per package, TLC flash, 8 KB pages, 32 GB total.
///
/// # Examples
///
/// ```
/// let g = fa_flash::FlashGeometry::paper_prototype();
/// assert_eq!(g.channels, 4);
/// assert_eq!(g.total_dies(), 32);
/// assert_eq!(g.total_bytes(), 32 * (1 << 30));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlashGeometry {
    /// Number of NV-DDR2 channels.
    pub channels: usize,
    /// Flash packages per channel.
    pub packages_per_channel: usize,
    /// Dies per package.
    pub dies_per_package: usize,
    /// Planes per die.
    pub planes_per_die: usize,
    /// Erase blocks per plane.
    pub blocks_per_plane: usize,
    /// Pages per erase block.
    pub pages_per_block: usize,
    /// Bytes per flash page.
    pub page_bytes: usize,
}

impl FlashGeometry {
    /// Geometry of the paper's 32 GB prototype backbone.
    ///
    /// 4 channels × 4 packages × 2 dies × 2 planes × 256 blocks × 256 pages
    /// × 8 KB = 32 GiB.
    pub fn paper_prototype() -> Self {
        FlashGeometry {
            channels: 4,
            packages_per_channel: 4,
            dies_per_package: 2,
            planes_per_die: 2,
            blocks_per_plane: 256,
            pages_per_block: 256,
            page_bytes: 8 * 1024,
        }
    }

    /// A scaled-out 64-channel backbone for sharded-engine experiments.
    ///
    /// Sixteen times the paper prototype's channel fan-out at the same
    /// per-channel population: 64 channels × 4 packages × 2 dies × 2 planes
    /// × 256 blocks × 256 pages × 8 KB = 512 GiB. This is the geometry the
    /// channel-sharded executor is demonstrated on (`examples/`
    /// `sharded_scale.rs`): with one event lane per channel it gives every
    /// shard a deep pool of independent channels, so the window-barrier
    /// cost is amortised over 16× more in-flight flash commands than the
    /// prototype can keep busy.
    ///
    /// # Examples
    ///
    /// ```
    /// let g = fa_flash::FlashGeometry::scale_64_channel();
    /// assert_eq!(g.channels, 64);
    /// assert_eq!(g.total_dies(), 512);
    /// assert_eq!(g.total_bytes(), 512 * (1 << 30));
    /// ```
    pub fn scale_64_channel() -> Self {
        FlashGeometry {
            channels: 64,
            ..Self::paper_prototype()
        }
    }

    /// A small geometry convenient for unit tests (a few MiB).
    pub fn tiny_for_tests() -> Self {
        FlashGeometry {
            channels: 2,
            packages_per_channel: 1,
            dies_per_package: 1,
            planes_per_die: 1,
            blocks_per_plane: 8,
            pages_per_block: 16,
            page_bytes: 4096,
        }
    }

    /// Dies attached to one channel.
    pub fn dies_per_channel(&self) -> usize {
        self.packages_per_channel * self.dies_per_package
    }

    /// Total number of dies in the backbone.
    pub fn total_dies(&self) -> usize {
        self.channels * self.dies_per_channel()
    }

    /// Pages held by a single die.
    pub fn pages_per_die(&self) -> usize {
        self.planes_per_die * self.blocks_per_plane * self.pages_per_block
    }

    /// Blocks held by a single die.
    pub fn blocks_per_die(&self) -> usize {
        self.planes_per_die * self.blocks_per_plane
    }

    /// Total number of pages in the backbone.
    pub fn total_pages(&self) -> u64 {
        self.total_dies() as u64 * self.pages_per_die() as u64
    }

    /// Total number of erase blocks in the backbone.
    pub fn total_blocks(&self) -> u64 {
        self.total_dies() as u64 * self.blocks_per_die() as u64
    }

    /// Total raw capacity in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_pages() * self.page_bytes as u64
    }

    /// Bytes in one erase block.
    pub fn block_bytes(&self) -> u64 {
        self.pages_per_block as u64 * self.page_bytes as u64
    }

    /// Returns true if the physical address falls inside this geometry.
    pub fn contains(&self, addr: PhysicalPageAddr) -> bool {
        addr.channel < self.channels
            && addr.die < self.dies_per_channel()
            && addr.block < self.blocks_per_die()
            && addr.page < self.pages_per_block
    }

    /// Converts a flat page index (`0..total_pages()`) into a physical
    /// address, striping consecutive pages across channels first and dies
    /// second so sequential accesses exploit all channel/die parallelism —
    /// the same page-group striping Flashvisor relies on (§4.3).
    ///
    /// # Panics
    ///
    /// Panics if `flat` is outside the backbone.
    pub fn flat_to_addr(&self, flat: u64) -> PhysicalPageAddr {
        assert!(flat < self.total_pages(), "page index out of range");
        let channels = self.channels as u64;
        let dies = self.dies_per_channel() as u64;
        let pages_per_block = self.pages_per_block as u64;

        let channel = flat % channels;
        let rest = flat / channels;
        let die = rest % dies;
        let rest = rest / dies;
        let page = rest % pages_per_block;
        let block = rest / pages_per_block;
        PhysicalPageAddr {
            channel: channel as usize,
            die: die as usize,
            block: block as usize,
            page: page as usize,
        }
    }

    /// Flat index of the erase block holding `addr`, in
    /// `0..total_blocks()`: channels outermost, then dies, then blocks.
    /// This is the block numbering the GC round-robin cursor and the
    /// valid-page index share.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the backbone.
    pub fn block_index(&self, addr: PhysicalPageAddr) -> u64 {
        assert!(self.contains(addr), "address out of range: {addr:?}");
        (addr.channel as u64 * self.dies_per_channel() as u64 + addr.die as u64)
            * self.blocks_per_die() as u64
            + addr.block as u64
    }

    /// Inverse of [`FlashGeometry::block_index`]: `(channel, die, block)`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside `0..total_blocks()`.
    pub fn block_index_to_addr(&self, index: u64) -> (usize, usize, usize) {
        assert!(index < self.total_blocks(), "block index out of range");
        let blocks_per_die = self.blocks_per_die() as u64;
        let dies_per_channel = self.dies_per_channel() as u64;
        let channel = index / (blocks_per_die * dies_per_channel);
        let die = (index / blocks_per_die) % dies_per_channel;
        let block = index % blocks_per_die;
        (channel as usize, die as usize, block as usize)
    }

    /// Inverse of [`FlashGeometry::flat_to_addr`].
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the backbone.
    pub fn addr_to_flat(&self, addr: PhysicalPageAddr) -> u64 {
        assert!(self.contains(addr), "address out of range: {addr:?}");
        let channels = self.channels as u64;
        let dies = self.dies_per_channel() as u64;
        let pages_per_block = self.pages_per_block as u64;
        ((addr.block as u64 * pages_per_block + addr.page as u64) * dies + addr.die as u64)
            * channels
            + addr.channel as u64
    }
}

/// Address of one physical flash page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PhysicalPageAddr {
    /// Channel index.
    pub channel: usize,
    /// Die index within the channel (across all packages).
    pub die: usize,
    /// Erase-block index within the die (across planes).
    pub block: usize,
    /// Page index within the block.
    pub page: usize,
}

impl PhysicalPageAddr {
    /// Convenience constructor.
    pub fn new(channel: usize, die: usize, block: usize, page: usize) -> Self {
        PhysicalPageAddr {
            channel,
            die,
            block,
            page,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn prototype_capacity_matches_paper() {
        let g = FlashGeometry::paper_prototype();
        assert_eq!(g.total_dies(), 32);
        assert_eq!(g.page_bytes, 8192);
        assert_eq!(g.total_bytes(), 32 * 1024 * 1024 * 1024);
        assert_eq!(g.block_bytes(), 256 * 8192);
    }

    #[test]
    fn flat_addressing_stripes_across_channels() {
        let g = FlashGeometry::paper_prototype();
        let a0 = g.flat_to_addr(0);
        let a1 = g.flat_to_addr(1);
        let a2 = g.flat_to_addr(2);
        assert_eq!(a0.channel, 0);
        assert_eq!(a1.channel, 1);
        assert_eq!(a2.channel, 2);
        // After exhausting channels we advance the die.
        let a4 = g.flat_to_addr(4);
        assert_eq!(a4.channel, 0);
        assert_eq!(a4.die, 1);
    }

    #[test]
    fn contains_rejects_out_of_range() {
        let g = FlashGeometry::tiny_for_tests();
        assert!(g.contains(PhysicalPageAddr::new(0, 0, 0, 0)));
        assert!(!g.contains(PhysicalPageAddr::new(2, 0, 0, 0)));
        assert!(!g.contains(PhysicalPageAddr::new(0, 1, 0, 0)));
        assert!(!g.contains(PhysicalPageAddr::new(0, 0, 8, 0)));
        assert!(!g.contains(PhysicalPageAddr::new(0, 0, 0, 16)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flat_out_of_range_panics() {
        let g = FlashGeometry::tiny_for_tests();
        g.flat_to_addr(g.total_pages());
    }

    proptest! {
        #[test]
        fn block_index_round_trips(index in 0u64..FlashGeometry::paper_prototype().total_blocks()) {
            let g = FlashGeometry::paper_prototype();
            let (channel, die, block) = g.block_index_to_addr(index);
            let addr = PhysicalPageAddr::new(channel, die, block, 0);
            prop_assert!(g.contains(addr));
            prop_assert_eq!(g.block_index(addr), index);
        }

        #[test]
        fn flat_addr_round_trips(flat in 0u64..FlashGeometry::paper_prototype().total_pages()) {
            let g = FlashGeometry::paper_prototype();
            let addr = g.flat_to_addr(flat);
            prop_assert!(g.contains(addr));
            prop_assert_eq!(g.addr_to_flat(addr), flat);
        }

        #[test]
        fn tiny_flat_addr_round_trips(flat in 0u64..FlashGeometry::tiny_for_tests().total_pages()) {
            let g = FlashGeometry::tiny_for_tests();
            prop_assert_eq!(g.addr_to_flat(g.flat_to_addr(flat)), flat);
        }
    }
}
