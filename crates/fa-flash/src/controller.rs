//! Per-channel FPGA flash controller.
//!
//! Each of the backbone's channels has its own FPGA controller (§2.2) that
//! converts requests from the processor network into the flash clock
//! domain. The controller implements inbound and outbound *tag queues* for
//! buffering requests with minimal overhead, owns the NV-DDR2 channel bus
//! shared by the dies on the channel, and dispatches array operations to
//! the target die.

use crate::die::FlashDie;
use crate::error::FlashError;
use crate::fault::{FaultOp, FaultState};
use crate::geometry::{FlashGeometry, PhysicalPageAddr};
use crate::owner::{OwnerId, QosBudgets};
use crate::timing::FlashTiming;
use fa_sim::resource::SerializedResource;
use fa_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Operation classes the controller understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChannelOp {
    /// Array read followed by an outbound data transfer.
    Read,
    /// Inbound data transfer followed by an array program.
    Program,
    /// Block erase (no data transfer).
    Erase,
}

/// Statistics kept by one channel controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ChannelStats {
    /// Read commands completed.
    pub reads: u64,
    /// Program commands completed.
    pub programs: u64,
    /// Erase commands completed.
    pub erases: u64,
    /// Payload bytes moved over the channel bus.
    pub bytes_transferred: u64,
    /// Peak simultaneous occupancy observed on the inbound tag queue.
    pub peak_inbound_tags: usize,
}

/// One FPGA channel controller together with the dies it fronts.
#[derive(Debug, Clone)]
pub struct ChannelController {
    index: usize,
    dies: Vec<FlashDie>,
    bus: SerializedResource,
    timing: FlashTiming,
    page_bytes: usize,
    /// Bus time for one page-sized transfer under the default timing,
    /// precomputed so the per-command path skips the bytes-to-duration
    /// conversion (identical to `timing.page_transfer(page_bytes)`).
    page_xfer: SimDuration,
    inbound_tags: usize,
    /// Per-owner outstanding-command budgets; unlimited by default, which
    /// reproduces the untagged FIFO admission exactly.
    budgets: QosBudgets,
    /// Per-owner budget *overrides* (dense owner index), installed by the
    /// online QoS governor: `Some(b)` replaces whatever `budgets` would
    /// grant that owner. Empty by default, so static-budget admission is
    /// reproduced byte for byte until a governor writes its first budget.
    owner_budget_overrides: Vec<Option<usize>>,
    /// Completion time and dense owner index (see [`OwnerId::dense_index`])
    /// of each in-flight command in submission order. Because the
    /// controller serializes each phase of a command on FIFO resources,
    /// completion times are non-decreasing in submission order, so every
    /// "commands still in flight at instant t" question is a suffix of this
    /// queue found by binary search — admission never scans.
    outstanding: VecDeque<(SimTime, u32)>,
    /// Completion times of each owner's in-flight commands, indexed by
    /// dense owner index. Each deque is a subsequence of `outstanding` and
    /// therefore also sorted; the budget check reads the `b`-th-from-back
    /// entry directly instead of walking the shared queue.
    owner_outstanding: Vec<VecDeque<SimTime>>,
    /// Peak simultaneous tag occupancy per owner (dense owner index), for
    /// the QoS figures.
    owner_peaks: Vec<usize>,
    /// Valid pages across the channel, maintained incrementally by
    /// [`ChannelController::execute`], [`ChannelController::invalidate`],
    /// and [`ChannelController::preload`]. Mutating a die directly through
    /// [`ChannelController::die_mut`] bypasses this counter.
    valid_pages: usize,
    /// Channel-local fault state, installed by the backbone when a fault
    /// plan is active. `None` (the default) keeps every hook a single
    /// branch, so fault-free runs stay byte-identical to the recorded
    /// golden campaign.
    fault: Option<FaultState>,
    stats: ChannelStats,
}

impl ChannelController {
    /// Creates a controller for channel `index` of `geometry`.
    ///
    /// `inbound_tags` bounds the number of simultaneously outstanding
    /// commands the tag queue will accept; additional commands stall at the
    /// submission point (back-pressure to Flashvisor).
    pub fn new(
        index: usize,
        geometry: &FlashGeometry,
        timing: FlashTiming,
        endurance_limit: u64,
        inbound_tags: usize,
    ) -> Self {
        let dies = (0..geometry.dies_per_channel())
            .map(|d| FlashDie::new(geometry, endurance_limit, format!("ch{index}-die{d}")))
            .collect();
        ChannelController {
            index,
            dies,
            bus: SerializedResource::new(format!("nvddr2-ch{index}"), timing.channel_bytes_per_sec),
            timing,
            page_bytes: geometry.page_bytes,
            page_xfer: timing.page_transfer(geometry.page_bytes),
            inbound_tags,
            budgets: QosBudgets::unlimited(),
            owner_budget_overrides: Vec::new(),
            outstanding: VecDeque::new(),
            owner_outstanding: Vec::new(),
            owner_peaks: Vec::new(),
            valid_pages: 0,
            fault: None,
            stats: ChannelStats::default(),
        }
    }

    /// Installs the channel-local fault state (see [`crate::fault`]).
    pub fn install_fault_state(&mut self, state: FaultState) {
        self.fault = Some(state);
    }

    /// The channel's fault state, if a plan is installed.
    pub fn fault_state(&self) -> Option<&FaultState> {
        self.fault.as_ref()
    }

    /// Mutable access to the channel's fault state (drain lists).
    pub fn fault_state_mut(&mut self) -> Option<&mut FaultState> {
        self.fault.as_mut()
    }

    /// Installs per-owner tag budgets (unlimited by default).
    pub fn set_qos_budgets(&mut self, budgets: QosBudgets) {
        self.budgets = budgets;
    }

    /// The per-owner tag budgets in force.
    pub fn qos_budgets(&self) -> QosBudgets {
        self.budgets
    }

    /// Installs (or clears, with `None`) a per-owner budget override. An
    /// installed override replaces the static [`QosBudgets`] grant for that
    /// owner only — the online QoS governor recomputes these from a sliding
    /// window over the owner statistics.
    pub fn set_owner_budget_override(&mut self, owner: OwnerId, budget: Option<usize>) {
        let oi = owner.dense_index();
        if oi >= self.owner_budget_overrides.len() {
            if budget.is_none() {
                return;
            }
            self.owner_budget_overrides.resize(oi + 1, None);
        }
        self.owner_budget_overrides[oi] = budget;
    }

    /// The budget override in force for `owner`, if any.
    pub fn owner_budget_override(&self, owner: OwnerId) -> Option<usize> {
        self.owner_budget_overrides
            .get(owner.dense_index())
            .copied()
            .flatten()
    }

    /// Peak simultaneous tag-queue occupancy each owner reached. Owners
    /// that never submitted a command are absent (their dense slot is 0).
    pub fn owner_peak_tags(&self) -> BTreeMap<OwnerId, usize> {
        self.owner_peaks
            .iter()
            .enumerate()
            .filter(|(_, &peak)| peak > 0)
            .map(|(i, &peak)| (OwnerId::from_dense_index(i), peak))
            .collect()
    }

    /// The channel index this controller serves.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Immutable access to a die (for GC victim inspection).
    pub fn die(&self, die: usize) -> Option<&FlashDie> {
        self.dies.get(die)
    }

    /// Mutable access to a die (used by tests and the Storengine model).
    pub fn die_mut(&mut self, die: usize) -> Option<&mut FlashDie> {
        self.dies.get_mut(die)
    }

    /// Number of dies on this channel.
    pub fn die_count(&self) -> usize {
        self.dies.len()
    }

    /// Controller statistics so far.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Channel bus utilization up to `now`.
    pub fn bus_utilization(&self, now: SimTime) -> f64 {
        self.bus.utilization(now)
    }

    /// Mean die utilization on this channel up to `now`.
    pub fn mean_die_utilization(&self, now: SimTime) -> f64 {
        if self.dies.is_empty() {
            return 0.0;
        }
        self.dies.iter().map(|d| d.utilization(now)).sum::<f64>() / self.dies.len() as f64
    }

    /// Models tag-queue admission: commands submitted while `inbound_tags`
    /// commands are still in flight are delayed until the oldest completes,
    /// and an owner already holding its whole tag budget is deferred until
    /// one of *its own* commands retires — other owners are admitted past
    /// it rather than FIFO-stalling behind it.
    ///
    /// Errors with [`FlashError::CompletionOrderViolation`] if the shared
    /// and per-owner completion queues ever disagree while retiring — the
    /// invariant the whole suffix-scan admission model rests on. It used to
    /// be a `debug_assert`, which meant a release build with corrupted
    /// ordering (e.g. from a faulty completion path) would silently skew
    /// every subsequent admission; now the corruption surfaces at the first
    /// retire that observes it.
    fn admit(&mut self, now: SimTime, owner: OwnerId) -> Result<SimTime, FlashError> {
        let oi = self.ensure_owner_slot(owner);
        // Drop commands that have already retired by the submission instant.
        // Each retired entry pops from the shared queue and the front of its
        // owner's deque (both hold the same clamped completion times in the
        // same submission order).
        while matches!(self.outstanding.front(), Some((done, _)) if *done <= now) {
            let (done, o) = self.outstanding.pop_front().expect("checked front");
            let popped = self.owner_outstanding[o as usize].pop_front();
            if popped != Some(done) {
                return Err(FlashError::CompletionOrderViolation {
                    channel: self.index,
                });
            }
        }
        let occupancy = self.outstanding.len();
        let mut admitted = if occupancy < self.inbound_tags {
            now
        } else {
            // Admission happens when enough in-flight commands have retired
            // to open a tag slot. Completion times are kept in submission
            // order and that order is non-decreasing (FIFO service on every
            // phase), so the command that frees our slot is at a fixed
            // offset from the front.
            self.outstanding[occupancy - self.inbound_tags].0
        };
        // Per-owner budget: with `k` of the owner's commands still in
        // flight at the admission instant and a budget of `b`, defer until
        // the `(k - b + 1)`-th of them retires — the `b`-th-from-back entry
        // of the owner's (sorted) completion deque. A zero budget is
        // clamped to one tag — it bounds concurrency, never deadlocks the
        // owner.
        //
        // The in-flight counts below are short backward scans, not binary
        // searches: the retire loop above drops everything `<= now`, and
        // the tag-slot rule puts `admitted` at the `inbound_tags`-th entry
        // from the back (or later), so the `> admitted` suffix of either
        // sorted deque is at most `inbound_tags` entries long regardless
        // of queue depth. Scanning it beats an O(log n) bisect over a
        // deque thousands of entries deep, and counts the exact same
        // suffix.
        let owner_queue = &self.owner_outstanding[oi];
        let effective_budget = self
            .owner_budget_overrides
            .get(oi)
            .copied()
            .flatten()
            .or_else(|| self.budgets.budget_for(owner));
        if let Some(budget) = effective_budget {
            let budget = budget.max(1);
            let mut in_flight = 0usize;
            for &t in owner_queue.iter().rev() {
                if t <= admitted {
                    break;
                }
                in_flight += 1;
                if in_flight >= budget {
                    break;
                }
            }
            if in_flight >= budget {
                admitted = owner_queue[owner_queue.len() - budget];
            }
        }
        // Occupancy the tag queue actually sees once this command is let
        // in: the suffixes of commands finishing after the admission
        // instant on both sorted queues.
        let mut in_flight_at_admit = 0usize;
        for &(done, _) in self.outstanding.iter().rev() {
            if done <= admitted {
                break;
            }
            in_flight_at_admit += 1;
        }
        self.stats.peak_inbound_tags = self.stats.peak_inbound_tags.max(in_flight_at_admit + 1);
        let mut owner_in_flight = 0usize;
        for &t in owner_queue.iter().rev() {
            if t <= admitted {
                break;
            }
            owner_in_flight += 1;
        }
        self.owner_peaks[oi] = self.owner_peaks[oi].max(owner_in_flight + 1);
        Ok(admitted)
    }

    /// Grows the dense per-owner structures to cover `owner`, returning its
    /// dense index.
    fn ensure_owner_slot(&mut self, owner: OwnerId) -> usize {
        let oi = owner.dense_index();
        if oi >= self.owner_outstanding.len() {
            self.owner_outstanding.resize_with(oi + 1, VecDeque::new);
            self.owner_peaks.resize(oi + 1, 0);
        }
        oi
    }

    fn record_completion(&mut self, done: SimTime, owner: OwnerId) {
        // Keep the queue sorted in the rare case a later submission finishes
        // slightly earlier (e.g. an erase racing a read on another die).
        let done = self.outstanding.back().map_or(done, |b| done.max(b.0));
        let oi = self.ensure_owner_slot(owner);
        self.outstanding.push_back((done, oi as u32));
        self.owner_outstanding[oi].push_back(done);
    }

    /// Executes one operation against `addr` on behalf of `owner`,
    /// returning its completion time.
    ///
    /// The returned instant accounts for tag-queue admission (including the
    /// owner's QoS budget), controller overhead, die contention, and
    /// channel-bus contention for the data transfer phase.
    pub fn execute(
        &mut self,
        now: SimTime,
        op: ChannelOp,
        addr: PhysicalPageAddr,
        owner: OwnerId,
        timing_override: Option<&FlashTiming>,
    ) -> Result<SimTime, FlashError> {
        if addr.die >= self.dies.len() {
            return Err(FlashError::OutOfRange(addr));
        }
        let timing = *timing_override.unwrap_or(&self.timing);
        // The page transfer is a pure function of the timing model and the
        // page size; reuse the constructor-computed value on the default
        // timing (the data-path case) instead of re-deriving it per command.
        let page_xfer = match timing_override {
            Some(t) => t.page_transfer(self.page_bytes),
            None => self.page_xfer,
        };
        let admitted = self.admit(now, owner)? + timing.controller_overhead;
        // Fault decision, rolled before the die operation. The counters it
        // advances are channel-local, so the verdict depends only on this
        // channel's own command sequence — identical under the serial loop
        // and the channel-sharded executor.
        let faulted = match self.fault.as_mut() {
            Some(f) => f.decide(
                match op {
                    ChannelOp::Read => FaultOp::Read,
                    ChannelOp::Program => FaultOp::Program,
                    ChannelOp::Erase => FaultOp::Erase,
                },
                addr,
            ),
            None => false,
        };
        let page_bytes = self.page_bytes;
        let die = &mut self.dies[addr.die];
        let completion = match op {
            ChannelOp::Read => {
                let sense = die.read_page(admitted, addr.block, addr.page, &timing)?;
                // Read-disturb: the first sense needs a retry before the
                // data is correctable, then the page must be relocated. The
                // command still succeeds — it just pays a second array read
                // and queues the page on the disturb list.
                let sense_end = if faulted {
                    let retry = die
                        .read_page(sense.end, addr.block, addr.page, &timing)
                        .expect("retry of a page that just read cleanly");
                    retry.end
                } else {
                    sense.end
                };
                // Data comes off the array, then crosses the channel bus.
                let xfer = self.bus.reserve_duration(sense_end, page_xfer);
                self.stats.reads += 1;
                self.stats.bytes_transferred += page_bytes as u64;
                if faulted {
                    self.fault
                        .as_mut()
                        .expect("faulted implies fault state")
                        .note_disturb(addr);
                }
                xfer.end
            }
            ChannelOp::Program => {
                // Data crosses the bus into the die's page register first.
                let xfer = self.bus.reserve_duration(admitted, page_xfer);
                let prog = die.program_page(xfer.end, addr.block, addr.page, &timing)?;
                self.stats.programs += 1;
                self.stats.bytes_transferred += page_bytes as u64;
                if faulted {
                    // The program consumed the page (NAND write cursors only
                    // move forward) but the data reads back uncorrectable:
                    // the page goes straight to Invalid, the channel's valid
                    // count stays put, and the caller gets the error so the
                    // translation layer can re-allocate elsewhere.
                    die.invalidate_page(addr.block, addr.page)
                        .expect("freshly programmed page is valid");
                    self.record_completion(prog.end, owner);
                    self.note_block_failure(FaultOp::Program, addr);
                    return Err(FlashError::InjectedProgramFailure(addr));
                }
                self.valid_pages += 1;
                prog.end
            }
            ChannelOp::Erase => {
                if faulted {
                    // The erase pulse ran (the die is busy for the full
                    // erase latency) but the block kept its contents and
                    // its wear counter did not advance.
                    let res = die.failed_erase(admitted, &timing);
                    self.record_completion(res.end, owner);
                    self.note_block_failure(FaultOp::Erase, addr);
                    return Err(FlashError::InjectedEraseFailure(addr));
                }
                // Capture what the erase reclaims before the die resets it.
                let reclaimed = die.valid_pages_in(addr.block);
                let erase = die.erase_block(admitted, addr.block, &timing)?;
                self.valid_pages -= reclaimed;
                self.stats.erases += 1;
                erase.end
            }
        };
        self.record_completion(completion, owner);
        Ok(completion)
    }

    fn note_block_failure(&mut self, op: FaultOp, addr: PhysicalPageAddr) {
        if let Some(f) = self.fault.as_mut() {
            f.note_failure(op, addr);
        }
    }

    /// Marks a page invalid without consuming channel time.
    pub fn invalidate(&mut self, addr: PhysicalPageAddr) -> Result<(), FlashError> {
        self.dies
            .get_mut(addr.die)
            .ok_or(FlashError::OutOfRange(addr))?
            .invalidate_page(addr.block, addr.page)?;
        self.valid_pages -= 1;
        Ok(())
    }

    /// Marks a page valid without consuming channel time (pre-experiment
    /// data placement), keeping the channel's accounting in step.
    pub fn preload(&mut self, addr: PhysicalPageAddr) -> Result<(), FlashError> {
        self.dies
            .get_mut(addr.die)
            .ok_or(FlashError::OutOfRange(addr))?
            .preload_page(addr.block, addr.page)?;
        self.valid_pages += 1;
        Ok(())
    }

    /// Valid pages across the channel (used by capacity accounting). O(1):
    /// maintained incrementally by the execute/invalidate/preload paths.
    pub fn total_valid_pages(&self) -> usize {
        self.valid_pages
    }

    /// Brute-force recount of the channel's valid pages from the die page
    /// states — the property-test oracle for
    /// [`ChannelController::total_valid_pages`].
    pub fn recount_valid_pages(&self) -> usize {
        self.dies
            .iter()
            .map(|d| {
                (0..d.block_count())
                    .map(|b| d.recount_valid_pages_in(b))
                    .sum::<usize>()
            })
            .sum()
    }

    /// Typical per-command service time for planning purposes: read latency
    /// plus one page transfer.
    pub fn nominal_read_service(&self) -> SimDuration {
        self.timing.read_page + self.timing.page_transfer(self.page_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> ChannelController {
        ChannelController::new(
            0,
            &FlashGeometry::tiny_for_tests(),
            FlashTiming::fast_for_tests(),
            1_000,
            8,
        )
    }

    #[test]
    fn program_then_read_completes_in_order() {
        let mut c = controller();
        let addr = PhysicalPageAddr::new(0, 0, 0, 0);
        let wrote = c
            .execute(
                SimTime::ZERO,
                ChannelOp::Program,
                addr,
                OwnerId::Unattributed,
                None,
            )
            .unwrap();
        let read = c
            .execute(wrote, ChannelOp::Read, addr, OwnerId::Unattributed, None)
            .unwrap();
        assert!(read > wrote);
        assert_eq!(c.stats().programs, 1);
        assert_eq!(c.stats().reads, 1);
        assert_eq!(c.stats().bytes_transferred, 2 * 4096);
    }

    #[test]
    fn reads_to_different_dies_overlap_on_the_array() {
        let geom = FlashGeometry {
            channels: 1,
            packages_per_channel: 2,
            dies_per_package: 1,
            planes_per_die: 1,
            blocks_per_plane: 4,
            pages_per_block: 8,
            page_bytes: 4096,
        };
        let timing = FlashTiming::paper_prototype();
        let mut c = ChannelController::new(0, &geom, timing, 1_000, 8);
        // Program one page on each die so reads are legal.
        let a0 = PhysicalPageAddr::new(0, 0, 0, 0);
        let a1 = PhysicalPageAddr::new(0, 1, 0, 0);
        let d0 = c
            .execute(
                SimTime::ZERO,
                ChannelOp::Program,
                a0,
                OwnerId::Unattributed,
                None,
            )
            .unwrap();
        let d1 = c
            .execute(
                SimTime::ZERO,
                ChannelOp::Program,
                a1,
                OwnerId::Unattributed,
                None,
            )
            .unwrap();
        let start = d0.max(d1);
        let r0 = c
            .execute(start, ChannelOp::Read, a0, OwnerId::Unattributed, None)
            .unwrap();
        let r1 = c
            .execute(start, ChannelOp::Read, a1, OwnerId::Unattributed, None)
            .unwrap();
        // Both reads sense in parallel; only the bus transfer serializes, so
        // the second completion trails the first by far less than a full
        // array read.
        let gap = r1.saturating_since(r0);
        assert!(gap < timing.read_page / 2, "gap was {gap}");
    }

    #[test]
    fn erase_takes_no_bus_bandwidth() {
        let mut c = controller();
        let before = c.stats().bytes_transferred;
        c.execute(
            SimTime::ZERO,
            ChannelOp::Erase,
            PhysicalPageAddr::new(0, 0, 1, 0),
            OwnerId::Unattributed,
            None,
        )
        .unwrap();
        assert_eq!(c.stats().bytes_transferred, before);
        assert_eq!(c.stats().erases, 1);
    }

    #[test]
    fn tag_queue_back_pressure_delays_admission() {
        let geom = FlashGeometry::tiny_for_tests();
        let timing = FlashTiming::fast_for_tests();
        let mut narrow = ChannelController::new(0, &geom, timing, 1_000, 1);
        let mut wide = ChannelController::new(0, &geom, timing, 1_000, 16);
        let mut last_narrow = SimTime::ZERO;
        let mut last_wide = SimTime::ZERO;
        for p in 0..8 {
            let addr = PhysicalPageAddr::new(0, 0, 0, p);
            last_narrow = narrow
                .execute(
                    SimTime::ZERO,
                    ChannelOp::Program,
                    addr,
                    OwnerId::Unattributed,
                    None,
                )
                .unwrap();
            let addr = PhysicalPageAddr::new(0, 0, 0, p);
            last_wide = wide
                .execute(
                    SimTime::ZERO,
                    ChannelOp::Program,
                    addr,
                    OwnerId::Unattributed,
                    None,
                )
                .unwrap();
        }
        // With a single tag the controller admits commands one at a time, so
        // the final completion cannot be earlier than the wide queue's.
        assert!(last_narrow >= last_wide);
        assert!(narrow.stats().peak_inbound_tags <= 2);
        assert!(wide.stats().peak_inbound_tags >= 2);
    }

    #[test]
    fn owner_budget_caps_a_saturating_owner() {
        // A single owner with budget 2 on a 4-tag queue: no matter how many
        // commands it floods at t=0, it never holds more than 2 tags.
        let geom = FlashGeometry::tiny_for_tests();
        let timing = FlashTiming::fast_for_tests();
        let mut c = ChannelController::new(0, &geom, timing, 1_000, 4);
        c.set_qos_budgets(QosBudgets {
            per_owner: Some(2),
            background: Some(2),
        });
        let hog = OwnerId::Kernel(1);
        for p in 0..8 {
            c.execute(
                SimTime::ZERO,
                ChannelOp::Program,
                PhysicalPageAddr::new(0, 0, 0, p),
                hog,
                None,
            )
            .unwrap();
        }
        assert!(
            c.owner_peak_tags()[&hog] <= 2,
            "owner exceeded its budget: {:?}",
            c.owner_peak_tags()
        );
        // The queue itself never saw more than the owner's budget in
        // flight either — the other two tags stayed free for other owners.
        assert!(c.stats().peak_inbound_tags <= 2);
    }

    #[test]
    fn owner_budget_override_replaces_the_static_grant() {
        // Static budget 3, override 1: the override wins and the owner is
        // serialized to one tag. Clearing the override restores the static
        // grant for subsequent traffic.
        let geom = FlashGeometry::tiny_for_tests();
        let timing = FlashTiming::fast_for_tests();
        let mut c = ChannelController::new(0, &geom, timing, 1_000, 4);
        c.set_qos_budgets(QosBudgets {
            per_owner: Some(3),
            background: Some(3),
        });
        let hog = OwnerId::Kernel(1);
        c.set_owner_budget_override(hog, Some(1));
        assert_eq!(c.owner_budget_override(hog), Some(1));
        let mut last = SimTime::ZERO;
        for p in 0..6 {
            last = c
                .execute(
                    SimTime::ZERO,
                    ChannelOp::Program,
                    PhysicalPageAddr::new(0, 0, 0, p),
                    hog,
                    None,
                )
                .unwrap();
        }
        assert_eq!(c.owner_peak_tags()[&hog], 1, "override must serialize");
        // A fresh owner under the same static budget runs 3 wide.
        let peer = OwnerId::Kernel(2);
        for p in 6..12 {
            c.execute(
                last,
                ChannelOp::Program,
                PhysicalPageAddr::new(0, 0, 0, p),
                peer,
                None,
            )
            .unwrap();
        }
        assert_eq!(c.owner_peak_tags()[&peer], 3);
        // Clearing the override falls back to the static grant.
        c.set_owner_budget_override(hog, None);
        assert_eq!(c.owner_budget_override(hog), None);
        // Clearing an owner that never had an override is a no-op and must
        // not grow the override table.
        c.set_owner_budget_override(OwnerId::Kernel(999), None);
        assert_eq!(c.owner_budget_override(OwnerId::Kernel(999)), None);
    }

    #[test]
    fn two_budgeted_owners_interleave_fairly_on_a_shared_queue() {
        // Two owners, budget 2 each, 4-tag queue, both flooding 8 programs
        // at t=0 in strict alternation: admission must interleave them (no
        // owner's whole burst finishes before the other's starts), both
        // reach their 2-tag peak, and neither exceeds it.
        let geom = FlashGeometry::tiny_for_tests();
        let timing = FlashTiming::fast_for_tests();
        let mut c = ChannelController::new(0, &geom, timing, 1_000, 4);
        c.set_qos_budgets(QosBudgets {
            per_owner: Some(2),
            background: Some(2),
        });
        let a = OwnerId::Kernel(1);
        let b = OwnerId::Kernel(2);
        let mut completions: Vec<(SimTime, OwnerId)> = Vec::new();
        for p in 0..8 {
            for (owner, die_block) in [(a, 0), (b, 1)] {
                let done = c
                    .execute(
                        SimTime::ZERO,
                        ChannelOp::Program,
                        PhysicalPageAddr::new(0, 0, die_block, p),
                        owner,
                        None,
                    )
                    .unwrap();
                completions.push((done, owner));
            }
        }
        assert_eq!(c.owner_peak_tags()[&a], 2);
        assert_eq!(c.owner_peak_tags()[&b], 2);
        // Fairness: order completions by time; the first half of the
        // timeline must contain commands of both owners, i.e. the last
        // completion of each owner's first four commands precedes the other
        // owner's final completion.
        completions.sort();
        let first_half: Vec<OwnerId> = completions[..8].iter().map(|(_, o)| *o).collect();
        assert!(first_half.contains(&a) && first_half.contains(&b));
        let second_half: Vec<OwnerId> = completions[8..].iter().map(|(_, o)| *o).collect();
        assert!(second_half.contains(&a) && second_half.contains(&b));
    }

    #[test]
    fn unlimited_budgets_reproduce_untagged_admission() {
        // The QoS default must be byte-identical to the pre-owner FIFO tag
        // queue: identical command streams under different owner labels
        // complete at identical instants when no budget is set.
        let geom = FlashGeometry::tiny_for_tests();
        let timing = FlashTiming::fast_for_tests();
        let mut untagged = ChannelController::new(0, &geom, timing, 1_000, 2);
        let mut tagged = ChannelController::new(0, &geom, timing, 1_000, 2);
        for p in 0..8 {
            let addr = PhysicalPageAddr::new(0, 0, 0, p);
            let u = untagged
                .execute(
                    SimTime::ZERO,
                    ChannelOp::Program,
                    addr,
                    OwnerId::Unattributed,
                    None,
                )
                .unwrap();
            let owner = if p % 2 == 0 {
                OwnerId::Kernel(p as u32)
            } else {
                OwnerId::Gc
            };
            let t = tagged
                .execute(SimTime::ZERO, ChannelOp::Program, addr, owner, None)
                .unwrap();
            assert_eq!(u, t, "page {p}");
        }
        assert_eq!(untagged.stats(), tagged.stats());
    }

    #[test]
    fn invalid_die_is_rejected() {
        let mut c = controller();
        let err = c
            .execute(
                SimTime::ZERO,
                ChannelOp::Read,
                PhysicalPageAddr::new(0, 99, 0, 0),
                OwnerId::Unattributed,
                None,
            )
            .unwrap_err();
        assert!(matches!(err, FlashError::OutOfRange(_)));
    }

    #[test]
    fn injected_program_failure_scraps_the_page_and_retires_the_block() {
        use crate::fault::{threshold_from_probability, FaultPlan, FaultState};
        use std::sync::Arc;
        let mut c = controller();
        let plan = Arc::new(FaultPlan {
            program_threshold: threshold_from_probability(1.0),
            retire_after: 2,
            ..FaultPlan::default()
        });
        c.install_fault_state(FaultState::new(plan, 0));
        for page in 0..2 {
            let err = c
                .execute(
                    SimTime::ZERO,
                    ChannelOp::Program,
                    PhysicalPageAddr::new(0, 0, 0, page),
                    OwnerId::Unattributed,
                    None,
                )
                .unwrap_err();
            assert!(matches!(err, FlashError::InjectedProgramFailure(_)));
        }
        // The scrapped pages are Invalid, never Valid: the incremental
        // channel count and the brute-force recount agree at zero.
        assert_eq!(c.total_valid_pages(), 0);
        assert_eq!(c.recount_valid_pages(), 0);
        // The write cursor moved past the scrapped pages, so the block's
        // next legal program is page 2.
        assert_eq!(c.die(0).unwrap().programmed_pages_in(0), 2);
        // Two failures crossed retire_after=2: the block is pending
        // retirement, exactly once.
        assert_eq!(
            c.fault_state_mut().unwrap().take_retired_pending(),
            vec![(0, 0)]
        );
    }

    #[test]
    fn injected_erase_failure_preserves_block_state_and_wear() {
        use crate::fault::{threshold_from_probability, FaultPlan, FaultState};
        use std::sync::Arc;
        let mut c = controller();
        let addr = PhysicalPageAddr::new(0, 0, 0, 0);
        c.execute(
            SimTime::ZERO,
            ChannelOp::Program,
            addr,
            OwnerId::Unattributed,
            None,
        )
        .unwrap();
        let plan = Arc::new(FaultPlan {
            erase_threshold: threshold_from_probability(1.0),
            ..FaultPlan::default()
        });
        c.install_fault_state(FaultState::new(plan, 0));
        let busy_before = c.die(0).unwrap().next_free();
        let err = c
            .execute(
                SimTime::ZERO,
                ChannelOp::Erase,
                addr,
                OwnerId::Unattributed,
                None,
            )
            .unwrap_err();
        assert!(matches!(err, FlashError::InjectedEraseFailure(_)));
        // The block kept its data, its wear counter, and the channel count.
        assert_eq!(c.total_valid_pages(), 1);
        assert_eq!(c.die(0).unwrap().erase_count(0), 0);
        assert_eq!(c.stats().erases, 0);
        // The die was still busy for the failed pulse: the failed erase
        // charged real device time.
        assert!(c.die(0).unwrap().next_free() > busy_before);
    }

    #[test]
    fn read_disturb_retries_then_queues_the_page_for_relocation() {
        use crate::fault::{threshold_from_probability, FaultPlan, FaultState};
        use std::sync::Arc;
        let mut clean = controller();
        let mut disturbed = controller();
        let addr = PhysicalPageAddr::new(0, 0, 0, 0);
        for c in [&mut clean, &mut disturbed] {
            c.execute(
                SimTime::ZERO,
                ChannelOp::Program,
                addr,
                OwnerId::Unattributed,
                None,
            )
            .unwrap();
        }
        let plan = Arc::new(FaultPlan {
            read_disturb_threshold: threshold_from_probability(1.0),
            ..FaultPlan::default()
        });
        disturbed.install_fault_state(FaultState::new(plan, 0));
        let t_clean = clean
            .execute(
                SimTime::from_ms(1),
                ChannelOp::Read,
                addr,
                OwnerId::Unattributed,
                None,
            )
            .unwrap();
        let t_disturbed = disturbed
            .execute(
                SimTime::from_ms(1),
                ChannelOp::Read,
                addr,
                OwnerId::Unattributed,
                None,
            )
            .unwrap();
        // The disturbed read still succeeds, but pays the retry sense.
        assert!(t_disturbed > t_clean);
        assert_eq!(
            disturbed.fault_state_mut().unwrap().take_disturbed(),
            vec![addr]
        );
        assert_eq!(disturbed.fault_state().unwrap().stats().read_disturbs, 1);
    }

    #[test]
    fn valid_page_accounting() {
        let mut c = controller();
        assert_eq!(c.total_valid_pages(), 0);
        for p in 0..3 {
            c.execute(
                SimTime::ZERO,
                ChannelOp::Program,
                PhysicalPageAddr::new(0, 0, 0, p),
                OwnerId::Unattributed,
                None,
            )
            .unwrap();
        }
        assert_eq!(c.total_valid_pages(), 3);
        c.invalidate(PhysicalPageAddr::new(0, 0, 0, 1)).unwrap();
        assert_eq!(c.total_valid_pages(), 2);
    }
}
