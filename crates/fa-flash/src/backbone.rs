//! The complete flash backbone (storage complex).
//!
//! The backbone bundles the four channel controllers behind the SRIO/FMC
//! front-end that connects the storage complex to the accelerator's tier-2
//! network. Flashvisor submits [`FlashCommand`]s here; the backbone routes
//! them to the owning channel, models the SRIO hop, and reports a
//! [`FlashCompletion`] with the full timing breakdown.

use crate::controller::{ChannelController, ChannelOp, ChannelStats};
use crate::error::FlashError;
use crate::fault::{FaultPlan, FaultState, FaultStats};
use crate::geometry::{FlashGeometry, PhysicalPageAddr};
use crate::owner::{OwnerId, OwnerStats, QosBudgets};
use crate::timing::FlashTiming;
use crate::validindex::ValidPageIndex;
use fa_sim::resource::SerializedResource;
use fa_sim::sharded::{Outbox, ShardPlan, ShardedEngine};
use fa_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Operations accepted by the backbone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlashOp {
    /// Read one page.
    ReadPage,
    /// Program one page.
    ProgramPage,
    /// Erase one block (the `page` field of the address is ignored).
    EraseBlock,
}

/// A command submitted to the backbone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlashCommand {
    /// What to do.
    pub op: FlashOp,
    /// Target physical page (or block for erases).
    pub addr: PhysicalPageAddr,
}

impl FlashCommand {
    /// Builds a page-read command.
    pub fn read(addr: PhysicalPageAddr) -> Self {
        FlashCommand {
            op: FlashOp::ReadPage,
            addr,
        }
    }

    /// Builds a page-program command.
    pub fn program(addr: PhysicalPageAddr) -> Self {
        FlashCommand {
            op: FlashOp::ProgramPage,
            addr,
        }
    }

    /// Builds a block-erase command.
    pub fn erase(addr: PhysicalPageAddr) -> Self {
        FlashCommand {
            op: FlashOp::EraseBlock,
            addr,
        }
    }
}

/// Completion record for a command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashCompletion {
    /// The command that completed.
    pub command: FlashCommand,
    /// When the command was submitted.
    pub submitted: SimTime,
    /// When the command (including SRIO data return for reads) finished.
    pub finished: SimTime,
}

impl FlashCompletion {
    /// End-to-end latency of this command.
    pub fn latency(&self) -> SimDuration {
        self.finished.saturating_since(self.submitted)
    }
}

/// Completion record for a batch of commands submitted together.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchCompletion {
    /// When the batch was submitted.
    pub submitted: SimTime,
    /// When the last command of the batch finished.
    pub finished: SimTime,
    /// Number of commands in the batch.
    pub commands: u64,
}

/// Aggregate backbone statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BackboneStats {
    /// Pages read.
    pub reads: u64,
    /// Pages programmed.
    pub programs: u64,
    /// Blocks erased.
    pub erases: u64,
    /// Payload bytes moved over the SRIO front-end.
    pub srio_bytes: u64,
}

/// The storage complex: channel controllers behind the SRIO front-end.
#[derive(Debug, Clone)]
pub struct FlashBackbone {
    geometry: FlashGeometry,
    timing: FlashTiming,
    channels: Vec<ChannelController>,
    srio: SerializedResource,
    /// Backbone-wide valid-page accounting, updated on every command that
    /// changes page state. Storengine's GC victim selection reads this.
    valid_index: ValidPageIndex,
    stats: BackboneStats,
    /// Per-owner command/byte/latency accounting (QoS figures and oracles),
    /// dense by [`OwnerId::dense_index`] — the data path updates plain array
    /// slots instead of map entries.
    owner_stats: Vec<OwnerStats>,
    /// Whether the matching `owner_stats` slot has ever received a
    /// submission, so reporting surfaces exactly the owners that submitted
    /// (the map semantics the oracles check).
    owner_touched: Vec<bool>,
    /// Every completed read's end-to-end latency in nanoseconds, per owner
    /// (dense by [`OwnerId::dense_index`]), for tail-latency quantiles
    /// (p99 of one kernel under concurrent GC).
    read_latencies: Vec<Vec<u64>>,
    /// SRIO service time for one page-sized transfer, precomputed so the
    /// group hot loop skips the bytes-to-duration conversion per page
    /// (identical value to what `srio.reserve` would derive).
    srio_page_service: SimDuration,
    /// Erase-cycle budget per block (mirrors the limit installed in every
    /// channel controller's dies) — the programmability/erasability
    /// prechecks of the sharded write path compare against it.
    endurance_limit: u64,
    /// Conservative windows (barrier syncs) completed by sharded
    /// executions so far — observability for how much multi-window
    /// parallelism the run actually exercised.
    sharded_windows: u64,
    /// The installed fault plan, if any. `None` (the default) means no
    /// channel carries fault state and every hook is one dead branch —
    /// fault-free runs stay byte-identical to the recorded golden campaign.
    fault_plan: Option<Arc<FaultPlan>>,
}

impl FlashBackbone {
    /// Builds a backbone with the given geometry, timing, SRIO bandwidth
    /// (bytes/second across all lanes), per-channel tag-queue depth, and
    /// block endurance limit.
    pub fn new(
        geometry: FlashGeometry,
        timing: FlashTiming,
        srio_bytes_per_sec: f64,
        inbound_tags: usize,
        endurance_limit: u64,
    ) -> Self {
        let channels = (0..geometry.channels)
            .map(|c| ChannelController::new(c, &geometry, timing, endurance_limit, inbound_tags))
            .collect();
        FlashBackbone {
            geometry,
            timing,
            channels,
            srio: SerializedResource::new("srio-fmc", srio_bytes_per_sec),
            valid_index: ValidPageIndex::new(
                geometry.total_blocks() as usize,
                geometry.pages_per_block,
            ),
            stats: BackboneStats::default(),
            owner_stats: Vec::new(),
            owner_touched: Vec::new(),
            read_latencies: Vec::new(),
            srio_page_service: SimDuration::for_transfer(
                geometry.page_bytes as u64,
                srio_bytes_per_sec,
            ),
            endurance_limit,
            sharded_windows: 0,
            fault_plan: None,
        }
    }

    /// Installs a fault plan: every channel controller receives its own
    /// channel-local [`FaultState`] built from the shared plan, so fault
    /// decisions depend only on each channel's own command sequence
    /// (shard-safe determinism; see [`crate::fault`]).
    pub fn install_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        for channel in &mut self.channels {
            let index = channel.index();
            channel.install_fault_state(FaultState::new(plan.clone(), index));
        }
        self.fault_plan = Some(plan);
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.fault_plan.as_ref()
    }

    /// True when an installed plan can fault the read path (read-disturb or
    /// a scripted read fault). The translation layer routes section reads
    /// through the serial fallback in that case — the sharded fast path
    /// prechecks that no command can fault.
    pub fn faults_affect_reads(&self) -> bool {
        self.fault_plan.as_ref().is_some_and(|p| p.affects_reads())
    }

    /// True when an installed plan can fault the write path (an injected
    /// program or erase failure). The translation layer and Storengine
    /// route program sweeps and GC erase rows through the serial fallback
    /// in that case — the sharded fast path prechecks that no command can
    /// fault.
    pub fn faults_affect_writes(&self) -> bool {
        self.fault_plan.as_ref().is_some_and(|p| p.affects_writes())
    }

    /// Conservative windows (barrier syncs) completed by every sharded
    /// execution so far — reads, program sweeps, and erase rows combined.
    /// A churn round under a finite lookahead completes more windows than
    /// it ran batches; an all-serial run reports zero.
    pub fn sharded_windows(&self) -> u64 {
        self.sharded_windows
    }

    /// Drains the flat page indexes hit by read-disturb since the last
    /// drain, channels in ascending order (each channel's pages in the
    /// order it recorded them). The translation layer relocates the
    /// containing groups before the disturbed data degrades further.
    pub fn take_disturbed_pages(&mut self) -> Vec<u64> {
        let geometry = self.geometry;
        let mut pages = Vec::new();
        for channel in &mut self.channels {
            if let Some(f) = channel.fault_state_mut() {
                pages.extend(
                    f.take_disturbed()
                        .into_iter()
                        .map(|a| geometry.addr_to_flat(a)),
                );
            }
        }
        pages
    }

    /// Drains the blocks that crossed the fault plan's `retire_after`
    /// threshold since the last drain, as flat
    /// [`FlashGeometry::block_index`] values, channels in ascending order.
    /// The translation layer promotes these into its bad-block table.
    pub fn take_blocks_pending_retirement(&mut self) -> Vec<u64> {
        let dies = self.geometry.dies_per_channel() as u64;
        let blocks_per_die = self.geometry.blocks_per_die() as u64;
        let mut blocks = Vec::new();
        for channel in &mut self.channels {
            let c = channel.index() as u64;
            if let Some(f) = channel.fault_state_mut() {
                blocks.extend(
                    f.take_retired_pending().into_iter().map(|(die, block)| {
                        (c * dies + die as u64) * blocks_per_die + block as u64
                    }),
                );
            }
        }
        blocks
    }

    /// Device-wide fault statistics: the element-wise sum over every
    /// channel's fault state (all zeros when no plan is installed).
    pub fn fault_stats(&self) -> FaultStats {
        let mut total = FaultStats::default();
        for channel in &self.channels {
            if let Some(f) = channel.fault_state() {
                total.absorb(f.stats());
            }
        }
        total
    }

    /// Dense accounting slot for `owner`, growing the per-owner arrays on
    /// first sight and marking the slot as live.
    fn owner_slot(&mut self, owner: OwnerId) -> usize {
        let oi = owner.dense_index();
        if oi >= self.owner_stats.len() {
            self.owner_stats.resize_with(oi + 1, OwnerStats::default);
            self.owner_touched.resize(oi + 1, false);
            self.read_latencies.resize_with(oi + 1, Vec::new);
        }
        self.owner_touched[oi] = true;
        oi
    }

    /// Installs per-owner tag budgets on every channel controller
    /// (unlimited by default, which reproduces untagged admission exactly).
    pub fn set_qos_budgets(&mut self, budgets: QosBudgets) {
        for channel in &mut self.channels {
            channel.set_qos_budgets(budgets);
        }
    }

    /// Installs (or clears, with `None`) a per-owner tag-budget override on
    /// every channel. Overrides replace the static [`QosBudgets`] grant for
    /// that owner only; the online QoS governor uses this to retune budgets
    /// mid-run from a sliding window over [`FlashBackbone::owner_stats`].
    pub fn set_owner_budget_override(&mut self, owner: OwnerId, budget: Option<usize>) {
        for channel in &mut self.channels {
            channel.set_owner_budget_override(owner, budget);
        }
    }

    /// Enables page-group accounting in the valid-page index: `pages_per_
    /// group` consecutive flat pages form one allocation group, and erases
    /// report the groups whose last programmed page they cleared (see
    /// [`FlashBackbone::take_fully_erased_groups`]).
    pub fn enable_group_tracking(&mut self, pages_per_group: u64) {
        let total_groups = self.geometry.total_pages() / pages_per_group.max(1);
        self.valid_index
            .enable_group_tracking(pages_per_group, total_groups);
    }

    /// The backbone geometry.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geometry
    }

    /// The backbone timing profile.
    pub fn timing(&self) -> &FlashTiming {
        &self.timing
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> BackboneStats {
        self.stats
    }

    /// Per-channel statistics.
    pub fn channel_stats(&self) -> Vec<ChannelStats> {
        self.channels.iter().map(|c| c.stats()).collect()
    }

    /// Immutable access to a channel controller.
    pub fn channel(&self, idx: usize) -> Option<&ChannelController> {
        self.channels.get(idx)
    }

    /// Mutable access to a channel controller (Storengine uses this to
    /// inspect victim blocks).
    pub fn channel_mut(&mut self, idx: usize) -> Option<&mut ChannelController> {
        self.channels.get_mut(idx)
    }

    /// Mean utilization of all dies up to `now`.
    pub fn mean_die_utilization(&self, now: SimTime) -> f64 {
        if self.channels.is_empty() {
            return 0.0;
        }
        self.channels
            .iter()
            .map(|c| c.mean_die_utilization(now))
            .sum::<f64>()
            / self.channels.len() as f64
    }

    /// SRIO front-end utilization up to `now`.
    pub fn srio_utilization(&self, now: SimTime) -> f64 {
        self.srio.utilization(now)
    }

    /// Mean channel-bus utilization up to `now`.
    pub fn mean_channel_bus_utilization(&self, now: SimTime) -> f64 {
        if self.channels.is_empty() {
            return 0.0;
        }
        self.channels
            .iter()
            .map(|c| c.bus_utilization(now))
            .sum::<f64>()
            / self.channels.len() as f64
    }

    /// Fraction of the backbone's active power drawn over the window ending
    /// at `now`: the busier of the NAND arrays (sensing/programming) and
    /// the channel buses (transfers). Used by the energy model to charge
    /// device-active power proportionally to actual activity.
    pub fn activity_factor(&self, now: SimTime) -> f64 {
        self.mean_die_utilization(now)
            .max(self.mean_channel_bus_utilization(now))
            .clamp(0.0, 1.0)
    }

    /// Submits a command at `now` without owner attribution (equivalent to
    /// [`FlashBackbone::submit_tagged`] with [`OwnerId::Unattributed`]).
    pub fn submit(
        &mut self,
        now: SimTime,
        command: FlashCommand,
    ) -> Result<FlashCompletion, FlashError> {
        self.submit_tagged(now, command, OwnerId::Unattributed)
    }

    /// Books an injected program failure into the valid index: the die
    /// really consumed the page (the media programmed garbage before
    /// reporting the failure), so occupancy must record it as
    /// programmed-then-invalid. The recycle/rollback paths key on
    /// programmed counts — recycling a silently page-consumed group would
    /// later program it again without an erase.
    fn book_failed_program(&mut self, e: &FlashError, now_ns: u64) {
        if let FlashError::InjectedProgramFailure(addr) = e {
            let block = self.geometry.block_index(*addr);
            let flat = self.geometry.addr_to_flat(*addr);
            self.valid_index.on_program(block, flat, now_ns);
            self.valid_index.on_invalidate(block, flat);
        }
    }

    /// Submits a command at `now` on behalf of `owner` and returns its
    /// completion record. The owner identity reaches the channel
    /// controller's tag queue (per-owner budget admission) and the
    /// per-owner statistics.
    pub fn submit_tagged(
        &mut self,
        now: SimTime,
        command: FlashCommand,
        owner: OwnerId,
    ) -> Result<FlashCompletion, FlashError> {
        if !self.geometry.contains(command.addr) {
            return Err(FlashError::OutOfRange(command.addr));
        }
        let oi = self.owner_slot(owner);
        let page_bytes = self.geometry.page_bytes as u64;
        let block = self.geometry.block_index(command.addr);
        let flat = self.geometry.addr_to_flat(command.addr);
        let channel = &mut self.channels[command.addr.channel];
        let by_owner = &mut self.owner_stats[oi];
        let finished = match command.op {
            FlashOp::ReadPage => {
                let done = channel.execute(now, ChannelOp::Read, command.addr, owner, None)?;
                // Read data crosses the SRIO lanes back to the network.
                let res = self.srio.reserve(done, page_bytes);
                self.stats.reads += 1;
                self.stats.srio_bytes += page_bytes;
                by_owner.reads += 1;
                by_owner.bytes += page_bytes;
                let latency_ns = res.end.saturating_since(now).as_ns();
                by_owner.read_latency_total_ns += latency_ns;
                by_owner.read_latency_max_ns = by_owner.read_latency_max_ns.max(latency_ns);
                self.read_latencies[oi].push(latency_ns);
                res.end
            }
            FlashOp::ProgramPage => {
                // Write data crosses SRIO before it reaches the channel.
                let res = self.srio.reserve(now, page_bytes);
                let done =
                    match channel.execute(res.end, ChannelOp::Program, command.addr, owner, None) {
                        Ok(done) => done,
                        Err(e) => {
                            self.book_failed_program(&e, now.as_ns());
                            return Err(e);
                        }
                    };
                self.valid_index.on_program(block, flat, now.as_ns());
                self.stats.programs += 1;
                self.stats.srio_bytes += page_bytes;
                by_owner.programs += 1;
                by_owner.bytes += page_bytes;
                done
            }
            FlashOp::EraseBlock => {
                let done = channel.execute(now, ChannelOp::Erase, command.addr, owner, None)?;
                self.valid_index.on_erase(block);
                self.stats.erases += 1;
                by_owner.erases += 1;
                done
            }
        };
        Ok(FlashCompletion {
            command,
            submitted: now,
            finished,
        })
    }

    /// Submits a batch of commands at `now` on behalf of `owner` and
    /// returns when the last one finished. Semantically identical to
    /// calling [`FlashBackbone::submit_tagged`] per command at the same
    /// instant, but without a completion record per page — the vectored
    /// path the multi-page group reads/writes of Flashvisor issue through —
    /// and with the owner and valid-index accounting applied once per batch
    /// instead of once per page. Stops at the first failing command;
    /// commands before it have already taken effect.
    pub fn submit_batch(
        &mut self,
        now: SimTime,
        commands: impl IntoIterator<Item = FlashCommand>,
        owner: OwnerId,
    ) -> Result<BatchCompletion, FlashError> {
        let geometry = self.geometry;
        let page_bytes = geometry.page_bytes as u64;
        let now_ns = now.as_ns();
        let mut finished = now;
        let mut count = 0u64;
        // Accounting accumulated across the batch and applied once at the
        // end (also before an early error return, so partial batches leave
        // the same state as the per-command path). The dense owner slot is
        // claimed lazily: a batch rejected before any command passes the
        // geometry check leaves no owner record, like the per-command path.
        let mut slot: Option<usize> = None;
        let mut acc = OwnerStats::default();
        let mut programmed: Vec<(u64, u64)> = Vec::new();
        let mut error: Option<FlashError> = None;
        for command in commands {
            if !geometry.contains(command.addr) {
                error = Some(FlashError::OutOfRange(command.addr));
                break;
            }
            let oi = match slot {
                Some(oi) => oi,
                None => {
                    let oi = self.owner_slot(owner);
                    slot = Some(oi);
                    oi
                }
            };
            let channel = &mut self.channels[command.addr.channel];
            match command.op {
                FlashOp::ReadPage => {
                    match channel.execute(now, ChannelOp::Read, command.addr, owner, None) {
                        Ok(done) => {
                            // Read data crosses the SRIO lanes back out.
                            let res = self.srio.reserve(done, page_bytes);
                            acc.reads += 1;
                            acc.bytes += page_bytes;
                            let latency_ns = res.end.saturating_since(now).as_ns();
                            acc.read_latency_total_ns += latency_ns;
                            acc.read_latency_max_ns = acc.read_latency_max_ns.max(latency_ns);
                            self.read_latencies[oi].push(latency_ns);
                            finished = finished.max(res.end);
                        }
                        Err(e) => {
                            error = Some(e);
                            break;
                        }
                    }
                }
                FlashOp::ProgramPage => {
                    // Write data crosses SRIO before it reaches the
                    // channel; the reservation stands even if the program
                    // then fails, as on the per-command path.
                    let res = self.srio.reserve(now, page_bytes);
                    match channel.execute(res.end, ChannelOp::Program, command.addr, owner, None) {
                        Ok(done) => {
                            // Only programs (and the erase below) need the
                            // block/flat mapping; reads skip the address
                            // arithmetic entirely.
                            programmed.push((
                                geometry.block_index(command.addr),
                                geometry.addr_to_flat(command.addr),
                            ));
                            acc.programs += 1;
                            acc.bytes += page_bytes;
                            finished = finished.max(done);
                        }
                        Err(e) => {
                            // Flush the successful programs first so the
                            // failed page books in per-command order.
                            self.valid_index
                                .on_program_batch(programmed.drain(..), now_ns);
                            self.book_failed_program(&e, now_ns);
                            error = Some(e);
                            break;
                        }
                    }
                }
                FlashOp::EraseBlock => {
                    match channel.execute(now, ChannelOp::Erase, command.addr, owner, None) {
                        Ok(done) => {
                            // Flush pending programs first so the valid
                            // index sees the same order as the per-command
                            // path.
                            self.valid_index
                                .on_program_batch(programmed.drain(..), now_ns);
                            self.valid_index
                                .on_erase(geometry.block_index(command.addr));
                            acc.erases += 1;
                            finished = finished.max(done);
                        }
                        Err(e) => {
                            error = Some(e);
                            break;
                        }
                    }
                }
            }
            count += 1;
        }
        self.valid_index
            .on_program_batch(programmed.drain(..), now_ns);
        if let Some(oi) = slot {
            self.stats.reads += acc.reads;
            self.stats.programs += acc.programs;
            self.stats.erases += acc.erases;
            self.stats.srio_bytes += acc.bytes;
            self.owner_stats[oi].absorb(&acc);
        }
        if let Some(e) = error {
            return Err(e);
        }
        Ok(BatchCompletion {
            submitted: now,
            finished,
            commands: count,
        })
    }

    /// Submits `pages` same-op commands covering the consecutive flat pages
    /// `first_flat..first_flat + pages` — the page-group stripe every
    /// Flashvisor group read/write issues. Exactly equivalent to
    /// [`FlashBackbone::submit_batch`] over the same commands (same
    /// per-command order against the channel controllers and the SRIO
    /// lanes, same accounting, same first-error semantics), but the
    /// flat→physical conversion is done once and stepped incrementally
    /// across the channel/die stripe, the per-command op dispatch is
    /// hoisted out of the loop, and programs derive their block index from
    /// the stepped address instead of re-dividing. This is the data-path
    /// hot loop: a campaign pushes tens of millions of pages through here.
    pub fn submit_group(
        &mut self,
        now: SimTime,
        first_flat: u64,
        pages: u64,
        op: FlashOp,
        owner: OwnerId,
    ) -> Result<BatchCompletion, FlashError> {
        if pages == 0 {
            return Ok(BatchCompletion {
                submitted: now,
                finished: now,
                commands: 0,
            });
        }
        if first_flat + pages > self.geometry.total_pages() {
            // The first out-of-range page the per-command path would hit.
            return Err(FlashError::OutOfRange(
                self.geometry
                    .flat_to_addr(first_flat.min(self.geometry.total_pages() - 1)),
            ));
        }
        let channels = self.geometry.channels;
        let dies = self.geometry.dies_per_channel();
        let pages_per_block = self.geometry.pages_per_block;
        let blocks_per_die = self.geometry.blocks_per_die() as u64;
        let page_bytes = self.geometry.page_bytes as u64;
        let srio_service = self.srio_page_service;
        let now_ns = now.as_ns();
        let mut addr = self.geometry.flat_to_addr(first_flat);
        let oi = self.owner_slot(owner);
        let mut finished = now;
        let mut count = 0u64;
        let mut acc = OwnerStats::default();
        let mut programmed: Vec<(u64, u64)> = Vec::new();
        if op == FlashOp::ProgramPage {
            programmed.reserve(pages as usize);
        }
        let mut error: Option<FlashError> = None;
        for i in 0..pages {
            let channel = &mut self.channels[addr.channel];
            match op {
                FlashOp::ReadPage => {
                    match channel.execute(now, ChannelOp::Read, addr, owner, None) {
                        Ok(done) => {
                            let res = self.srio.reserve_prepaid(done, page_bytes, srio_service);
                            acc.reads += 1;
                            acc.bytes += page_bytes;
                            let latency_ns = res.end.saturating_since(now).as_ns();
                            acc.read_latency_total_ns += latency_ns;
                            acc.read_latency_max_ns = acc.read_latency_max_ns.max(latency_ns);
                            self.read_latencies[oi].push(latency_ns);
                            finished = finished.max(res.end);
                        }
                        Err(e) => {
                            error = Some(e);
                            break;
                        }
                    }
                }
                FlashOp::ProgramPage => {
                    let res = self.srio.reserve_prepaid(now, page_bytes, srio_service);
                    match channel.execute(res.end, ChannelOp::Program, addr, owner, None) {
                        Ok(done) => {
                            let block = (addr.channel as u64 * dies as u64 + addr.die as u64)
                                * blocks_per_die
                                + addr.block as u64;
                            programmed.push((block, first_flat + i));
                            acc.programs += 1;
                            acc.bytes += page_bytes;
                            finished = finished.max(done);
                        }
                        Err(e) => {
                            // Flush the successful programs first so the
                            // failed page books in per-command order.
                            self.valid_index
                                .on_program_batch(programmed.drain(..), now_ns);
                            self.book_failed_program(&e, now_ns);
                            // An injected failure closes the stripe: the
                            // group's remaining pages are padded (programmed
                            // and discarded) so sibling dies' write cursors
                            // stay in lockstep with the failed one — without
                            // this, the next group's programs would be
                            // non-sequential on every die the abort skipped.
                            if matches!(e, FlashError::InjectedProgramFailure(_)) {
                                let mut pad = addr;
                                for j in i + 1..pages {
                                    pad.channel += 1;
                                    if pad.channel == channels {
                                        pad.channel = 0;
                                        pad.die += 1;
                                        if pad.die == dies {
                                            pad.die = 0;
                                            pad.page += 1;
                                            if pad.page == pages_per_block {
                                                pad.page = 0;
                                                pad.block += 1;
                                            }
                                        }
                                    }
                                    let res =
                                        self.srio.reserve_prepaid(now, page_bytes, srio_service);
                                    let outcome = self.channels[pad.channel].execute(
                                        res.end,
                                        ChannelOp::Program,
                                        pad,
                                        owner,
                                        None,
                                    );
                                    let block = (pad.channel as u64 * dies as u64 + pad.die as u64)
                                        * blocks_per_die
                                        + pad.block as u64;
                                    match outcome {
                                        // A clean pad program must be
                                        // discarded at the die as well, so
                                        // page state, controller counters,
                                        // and index agree that it is
                                        // programmed garbage.
                                        Ok(_) => {
                                            let _ = self.channels[pad.channel].invalidate(pad);
                                            self.valid_index.on_program(
                                                block,
                                                first_flat + j,
                                                now_ns,
                                            );
                                            self.valid_index.on_invalidate(block, first_flat + j);
                                        }
                                        // A pad page drawing its own injected
                                        // failure lands in the same state:
                                        // the fault hook already invalidated
                                        // it at the die.
                                        Err(FlashError::InjectedProgramFailure(_)) => {
                                            self.valid_index.on_program(
                                                block,
                                                first_flat + j,
                                                now_ns,
                                            );
                                            self.valid_index.on_invalidate(block, first_flat + j);
                                        }
                                        // Anything else (out of range, worn
                                        // die) is a real fault; stop padding
                                        // and surface the original error.
                                        Err(_) => break,
                                    }
                                }
                            }
                            error = Some(e);
                            break;
                        }
                    }
                }
                FlashOp::EraseBlock => {
                    match channel.execute(now, ChannelOp::Erase, addr, owner, None) {
                        Ok(done) => {
                            let block = (addr.channel as u64 * dies as u64 + addr.die as u64)
                                * blocks_per_die
                                + addr.block as u64;
                            self.valid_index.on_erase(block);
                            acc.erases += 1;
                            finished = finished.max(done);
                        }
                        Err(e) => {
                            error = Some(e);
                            break;
                        }
                    }
                }
            }
            count += 1;
            // Step to the next flat page: channels stripe fastest, then
            // dies, then pages within the block, then blocks.
            addr.channel += 1;
            if addr.channel == channels {
                addr.channel = 0;
                addr.die += 1;
                if addr.die == dies {
                    addr.die = 0;
                    addr.page += 1;
                    if addr.page == pages_per_block {
                        addr.page = 0;
                        addr.block += 1;
                    }
                }
            }
        }
        self.valid_index
            .on_program_batch(programmed.drain(..), now_ns);
        self.stats.reads += acc.reads;
        self.stats.programs += acc.programs;
        self.stats.erases += acc.erases;
        self.stats.srio_bytes += acc.bytes;
        self.owner_stats[oi].absorb(&acc);
        if let Some(e) = error {
            return Err(e);
        }
        Ok(BatchCompletion {
            submitted: now,
            finished,
            commands: count,
        })
    }

    /// True when every listed group start is group-aligned, in range, and
    /// fully programmed — the precondition under which a group read cannot
    /// fault on any page and may therefore run on the sharded executor
    /// (see [`FlashBackbone::read_groups_sharded`]). Requires group
    /// tracking at exactly `pages` pages per group; pure, touches no state.
    pub fn groups_readable(&self, firsts: impl IntoIterator<Item = u64>, pages: u64) -> bool {
        if pages == 0 || self.valid_index.group_size() != Some(pages) {
            return false;
        }
        let total = self.geometry.total_pages();
        firsts.into_iter().all(|first| {
            first % pages == 0
                && first + pages <= total
                && self.valid_index.group_programmed_pages(first / pages) == pages as u32
        })
    }

    /// True when every listed group start is group-aligned, in range, fully
    /// erased, and every page of it lands exactly on its die's write cursor
    /// with endurance to spare — the precondition under which a group
    /// program cannot fault on any page (absent an injected fault, which
    /// the caller gates separately via
    /// [`FlashBackbone::faults_affect_writes`]) and may therefore run on
    /// the sharded executor (see [`FlashBackbone::program_groups_sharded`]).
    /// Requires group tracking at exactly `pages` pages per group; pure,
    /// touches no state. Blocks shared between listed groups are checked
    /// with a batch-local cursor, so a multi-group stripe into one block
    /// row prechecks exactly as it will program.
    pub fn groups_programmable(&self, firsts: impl IntoIterator<Item = u64>, pages: u64) -> bool {
        if pages == 0 || self.valid_index.group_size() != Some(pages) {
            return false;
        }
        let total = self.geometry.total_pages();
        let channels = self.geometry.channels;
        let dies = self.geometry.dies_per_channel();
        let pages_per_block = self.geometry.pages_per_block;
        // Batch-local write cursors: (channel, die, block) → next page the
        // die would accept once the earlier listed pages have programmed.
        let mut cursors: BTreeMap<(usize, usize, usize), u64> = BTreeMap::new();
        for first in firsts {
            if first % pages != 0
                || first + pages > total
                || self.valid_index.group_programmed_pages(first / pages) != 0
            {
                return false;
            }
            let mut addr = self.geometry.flat_to_addr(first);
            for _ in 0..pages {
                let Some(die) = self.channels[addr.channel].die(addr.die) else {
                    return false;
                };
                if die.erase_count(addr.block) >= self.endurance_limit {
                    return false;
                }
                let cursor = cursors
                    .entry((addr.channel, addr.die, addr.block))
                    .or_insert_with(|| die.programmed_pages_in(addr.block) as u64);
                if addr.page as u64 != *cursor {
                    return false;
                }
                *cursor += 1;
                // Step to the next flat page: channels stripe fastest,
                // then dies, then pages within the block, then blocks.
                addr.channel += 1;
                if addr.channel == channels {
                    addr.channel = 0;
                    addr.die += 1;
                    if addr.die == dies {
                        addr.die = 0;
                        addr.page += 1;
                        if addr.page == pages_per_block {
                            addr.page = 0;
                            addr.block += 1;
                        }
                    }
                }
            }
        }
        true
    }

    /// Submits every `(cursor, first_flat)` group read in one sharded
    /// window — the channel-parallel data path.
    ///
    /// Exactly equivalent to calling [`FlashBackbone::submit_group`] with
    /// [`FlashOp::ReadPage`] per group in order: reads touch only
    /// channel-local state (die, bus, tag queue), so the per-channel
    /// command subsequences are independent and each channel controller
    /// can sweep its slice of every group inside one conservative window
    /// of the [`ShardedEngine`]. The globally serialized effects — the
    /// SRIO fan-in, the latency records, and the owner/backbone counters —
    /// are replayed at the window barrier in global submission order
    /// (command sequence number), which makes the outcome byte-identical
    /// for any shard count, including 1.
    ///
    /// One event is scheduled per channel ("sweep your slice"); commands
    /// are derived inside the handler by stepping the per-group base
    /// address, so the engine never materializes per-page events and the
    /// barrier merge handles per-channel completion lists, not pages.
    ///
    /// # Panics
    ///
    /// The caller must have established [`FlashBackbone::groups_readable`]
    /// over the same groups; a faulting read panics. (Fallible submission
    /// stays on the serial [`FlashBackbone::submit_group`] path, which
    /// preserves mid-batch error semantics.)
    pub fn read_groups_sharded(
        &mut self,
        plan: ShardPlan,
        groups: &[(SimTime, u64)],
        pages: u64,
        owner: OwnerId,
    ) -> BatchCompletion {
        let submitted = groups.first().map(|&(t, _)| t).unwrap_or(SimTime::ZERO);
        if groups.is_empty() || pages == 0 {
            return BatchCompletion {
                submitted,
                finished: submitted,
                commands: 0,
            };
        }
        debug_assert!(
            self.groups_readable(groups.iter().map(|&(_, f)| f), pages),
            "read_groups_sharded requires groups_readable"
        );
        // More shards than channels would leave shards without state; the
        // extra shards own nothing, so clamping is behaviour-neutral.
        let shards = plan.shards().min(self.geometry.channels);
        let plan = ShardPlan::new(shards);
        let channels = self.geometry.channels;
        let dies = self.geometry.dies_per_channel();
        let pages_per_block = self.geometry.pages_per_block;
        let page_bytes = self.geometry.page_bytes as u64;
        let srio_service = self.srio_page_service;
        let oi = self.owner_slot(owner);
        let n_cmds = groups.len() as u64 * pages;
        // Per-group base address, resolved once; channel sweeps step from
        // it instead of re-dividing per page.
        let bases: Vec<(SimTime, PhysicalPageAddr)> = groups
            .iter()
            .map(|&(cursor, first)| (cursor, self.geometry.flat_to_addr(first)))
            .collect();
        let mut engine: ShardedEngine<usize> =
            ShardedEngine::with_capacity(plan, SimDuration::MAX, 1);
        for c in 0..channels {
            engine.schedule(c, submitted, c);
        }
        // Completion time of command `seq`, scattered at the barrier; the
        // placement by sequence number (not arrival order) is what makes
        // the replay below independent of shard/worker interleaving.
        let mut dones: Vec<SimTime> = vec![SimTime::ZERO; n_cmds as usize];
        let mut delivered = 0u64;
        {
            let mut shard_channels: Vec<Vec<&mut ChannelController>> =
                (0..shards).map(|_| Vec::new()).collect();
            for (c, ch) in self.channels.iter_mut().enumerate() {
                shard_channels[c % shards].push(ch);
            }
            let bases = &bases[..];
            engine.run(
                &mut shard_channels,
                move |_,
                      owned: &mut Vec<&mut ChannelController>,
                      _at,
                      seq,
                      &c,
                      outbox: &mut Outbox<Vec<(u64, SimTime)>>| {
                    let ch = &mut *owned[c / shards];
                    let mut sweep: Vec<(u64, SimTime)> =
                        Vec::with_capacity(bases.len() * (pages as usize / channels + 1));
                    for (g, &(cursor, base)) in bases.iter().enumerate() {
                        // Index within the group of this channel's first
                        // page: consecutive flats stripe channels fastest.
                        let i0 = (c + channels - base.channel) % channels;
                        if i0 as u64 >= pages {
                            continue;
                        }
                        let mut addr = base;
                        addr.channel = c;
                        if c < base.channel {
                            // The stripe wrapped past the last channel on
                            // its way to us: one die step carries over.
                            addr.die += 1;
                            if addr.die == dies {
                                addr.die = 0;
                                addr.page += 1;
                                if addr.page == pages_per_block {
                                    addr.page = 0;
                                    addr.block += 1;
                                }
                            }
                        }
                        let mut i = i0 as u64;
                        loop {
                            let done = ch
                                .execute(cursor, ChannelOp::Read, addr, owner, None)
                                .expect("prechecked group read cannot fault");
                            sweep.push((g as u64 * pages + i, done));
                            i += channels as u64;
                            if i >= pages {
                                break;
                            }
                            // The next command of ours is `channels` flats
                            // later: exactly one die step.
                            addr.die += 1;
                            if addr.die == dies {
                                addr.die = 0;
                                addr.page += 1;
                                if addr.page == pages_per_block {
                                    addr.page = 0;
                                    addr.block += 1;
                                }
                            }
                        }
                    }
                    outbox.send(seq, SimTime::ZERO, sweep);
                },
                |m| {
                    for (seq, done) in m.msg {
                        dones[seq as usize] = done;
                        delivered += 1;
                    }
                    None
                },
            );
        }
        debug_assert_eq!(delivered, n_cmds, "every command completes exactly once");
        self.sharded_windows += engine.windows_completed();
        // Barrier replay of the globally serialized effects, in submission
        // order: the SRIO fan-in chain, the per-owner latency records, and
        // the aggregate counters — byte-for-byte what the serial path does.
        let mut acc = OwnerStats::default();
        let mut finished = submitted;
        let srio = &mut self.srio;
        let latencies = &mut self.read_latencies[oi];
        latencies.reserve(n_cmds as usize);
        let mut k = 0usize;
        for &(cursor, _) in groups {
            for _ in 0..pages {
                let res = srio.reserve_prepaid(dones[k], page_bytes, srio_service);
                k += 1;
                let latency_ns = res.end.saturating_since(cursor).as_ns();
                acc.read_latency_total_ns += latency_ns;
                acc.read_latency_max_ns = acc.read_latency_max_ns.max(latency_ns);
                latencies.push(latency_ns);
                finished = finished.max(res.end);
            }
        }
        acc.reads = n_cmds;
        acc.bytes = n_cmds * page_bytes;
        self.stats.reads += acc.reads;
        self.stats.srio_bytes += acc.bytes;
        self.owner_stats[oi].absorb(&acc);
        BatchCompletion {
            submitted,
            finished,
            commands: n_cmds,
        }
    }

    /// The finite lookahead for sharded program sweeps: the minimum
    /// simulated time one program command occupies its channel (admission
    /// overhead + bus transfer + NAND program). Events further apart than
    /// this can never share a window productively, so it is the natural
    /// window length for multi-window execution of a long SRIO-spread
    /// batch.
    pub fn program_sweep_lookahead(&self) -> SimDuration {
        self.timing.controller_overhead
            + self.timing.page_transfer(self.geometry.page_bytes)
            + self.timing.program_page
    }

    /// Submits every `(cursor, first_flat)` group program through the
    /// sharded executor with the finite
    /// [`FlashBackbone::program_sweep_lookahead`] — the channel-parallel
    /// mutation path.
    ///
    /// See [`FlashBackbone::program_groups_sharded_with_lookahead`] for the
    /// equivalence contract; the lookahead only partitions wall-clock work
    /// into windows and never changes results.
    pub fn program_groups_sharded(
        &mut self,
        plan: ShardPlan,
        groups: &[(SimTime, u64)],
        pages: u64,
        owner: OwnerId,
    ) -> BatchCompletion {
        let lookahead = self.program_sweep_lookahead();
        self.program_groups_sharded_with_lookahead(plan, groups, pages, owner, lookahead)
    }

    /// Submits every `(cursor, first_flat)` group program in sharded
    /// conservative windows of length `lookahead`.
    ///
    /// Exactly equivalent to calling [`FlashBackbone::submit_group`] with
    /// [`FlashOp::ProgramPage`] per group in order. The write path inverts
    /// the read path's coupling: each program crosses SRIO *before* its
    /// channel, and the serial loop reserves SRIO at the group's fixed
    /// submission cursor — so the whole SRIO chain is a pure function of
    /// submission order and is resolved in a serial pre-pass up front.
    /// Each command then becomes one pre-scheduled per-channel event at its
    /// SRIO-determined start; channels execute their subsequences
    /// independently (die, bus, tag queue state is channel-local), windows
    /// advance by `lookahead`, and the `(seq, completion)` messages are
    /// placement-merged at each barrier. Valid-index bookings and
    /// owner/backbone counters are replayed serially in submission order
    /// after the run — byte-for-byte what the serial path does, for any
    /// shard count and any lookahead.
    ///
    /// # Panics
    ///
    /// The caller must have established
    /// [`FlashBackbone::groups_programmable`] over the same groups and that
    /// no installed fault plan affects writes; a faulting program panics.
    /// (Fallible submission stays on the serial
    /// [`FlashBackbone::submit_group`] path, which preserves mid-batch
    /// error semantics.)
    pub fn program_groups_sharded_with_lookahead(
        &mut self,
        plan: ShardPlan,
        groups: &[(SimTime, u64)],
        pages: u64,
        owner: OwnerId,
        lookahead: SimDuration,
    ) -> BatchCompletion {
        let submitted = groups.first().map(|&(t, _)| t).unwrap_or(SimTime::ZERO);
        if groups.is_empty() || pages == 0 {
            return BatchCompletion {
                submitted,
                finished: submitted,
                commands: 0,
            };
        }
        debug_assert!(
            !self.faults_affect_writes(),
            "program_groups_sharded requires a write-fault-free plan"
        );
        debug_assert!(
            self.groups_programmable(groups.iter().map(|&(_, f)| f), pages),
            "program_groups_sharded requires groups_programmable"
        );
        let shards = plan.shards().min(self.geometry.channels);
        let plan = ShardPlan::new(shards);
        let channels = self.geometry.channels;
        let dies = self.geometry.dies_per_channel();
        let pages_per_block = self.geometry.pages_per_block;
        let blocks_per_die = self.geometry.blocks_per_die() as u64;
        let page_bytes = self.geometry.page_bytes as u64;
        let srio_service = self.srio_page_service;
        let oi = self.owner_slot(owner);
        let n_cmds = groups.len() as u64 * pages;
        // Serial SRIO pre-pass in submission order: write data crosses the
        // front-end before it reaches a channel, and the serial loop
        // reserves at each group's fixed cursor — replaying that chain here
        // reproduces every command's channel-arrival time exactly. The
        // stepped per-group base address is resolved alongside.
        let mut addrs: Vec<PhysicalPageAddr> = Vec::with_capacity(n_cmds as usize);
        let mut starts: Vec<SimTime> = Vec::with_capacity(n_cmds as usize);
        for &(cursor, first) in groups {
            let mut addr = self.geometry.flat_to_addr(first);
            for _ in 0..pages {
                let res = self.srio.reserve_prepaid(cursor, page_bytes, srio_service);
                starts.push(res.end);
                addrs.push(addr);
                // Step to the next flat page: channels stripe fastest,
                // then dies, then pages within the block, then blocks.
                addr.channel += 1;
                if addr.channel == channels {
                    addr.channel = 0;
                    addr.die += 1;
                    if addr.die == dies {
                        addr.die = 0;
                        addr.page += 1;
                        if addr.page == pages_per_block {
                            addr.page = 0;
                            addr.block += 1;
                        }
                    }
                }
            }
        }
        // One event per command at its SRIO-determined start. The pre-pass
        // emits non-decreasing starts, so every schedule is an O(1) lane
        // append, and event seq == command index.
        let mut engine: ShardedEngine<usize> =
            ShardedEngine::with_capacity(plan, lookahead, n_cmds as usize / shards + 1);
        for (k, &start) in starts.iter().enumerate() {
            let c = addrs[k].channel;
            engine.schedule(c, start, c);
        }
        // Completion time of command `seq`, scattered at the barriers; the
        // placement by sequence number (not arrival order) is what makes
        // the replay below independent of shard/worker interleaving.
        let mut dones: Vec<SimTime> = vec![SimTime::ZERO; n_cmds as usize];
        let mut delivered = 0u64;
        {
            let mut shard_channels: Vec<Vec<&mut ChannelController>> =
                (0..shards).map(|_| Vec::new()).collect();
            for (c, ch) in self.channels.iter_mut().enumerate() {
                shard_channels[c % shards].push(ch);
            }
            let addrs = &addrs[..];
            engine.run(
                &mut shard_channels,
                move |_,
                      owned: &mut Vec<&mut ChannelController>,
                      at,
                      seq,
                      &c,
                      outbox: &mut Outbox<()>| {
                    let ch = &mut *owned[c / shards];
                    let done = ch
                        .execute(at, ChannelOp::Program, addrs[seq as usize], owner, None)
                        .expect("prechecked group program cannot fault");
                    outbox.send(seq, done, ());
                },
                |m| {
                    dones[m.seq as usize] = m.at;
                    delivered += 1;
                    None
                },
            );
        }
        debug_assert_eq!(delivered, n_cmds, "every command completes exactly once");
        self.sharded_windows += engine.windows_completed();
        // Barrier replay of the globally serialized effects, in submission
        // order: per-group valid-index bookings at each group's cursor,
        // then the aggregate counters — byte-for-byte the serial path.
        let mut finished = submitted;
        let mut entries: Vec<(u64, u64)> = Vec::with_capacity(pages as usize);
        let mut k = 0usize;
        for &(cursor, first) in groups {
            for i in 0..pages {
                let addr = addrs[k];
                let block = (addr.channel as u64 * dies as u64 + addr.die as u64) * blocks_per_die
                    + addr.block as u64;
                entries.push((block, first + i));
                finished = finished.max(dones[k]);
                k += 1;
            }
            self.valid_index
                .on_program_batch(entries.drain(..), cursor.as_ns());
        }
        let acc = OwnerStats {
            programs: n_cmds,
            bytes: n_cmds * page_bytes,
            ..OwnerStats::default()
        };
        self.stats.programs += acc.programs;
        self.stats.srio_bytes += acc.bytes;
        self.owner_stats[oi].absorb(&acc);
        BatchCompletion {
            submitted,
            finished,
            commands: n_cmds,
        }
    }

    /// True when block `row` of every die can be erased without faulting:
    /// no installed fault plan affects writes and every die still has
    /// endurance budget for that block. The precondition under which a GC
    /// row erase cannot fault and may run on the sharded executor (see
    /// [`FlashBackbone::erase_row_sharded`]); pure, touches no state.
    pub fn row_erasable(&self, row: usize) -> bool {
        !self.faults_affect_writes()
            && row < self.geometry.blocks_per_die()
            && (0..self.geometry.channels).all(|c| {
                (0..self.geometry.dies_per_channel())
                    .all(|d| self.erase_count(c, d, row) < self.endurance_limit)
            })
    }

    /// Erases block `row` on every die of every channel, all submitted at
    /// `now` — the GC pass's row sweep, channel-parallel.
    ///
    /// Exactly equivalent to [`FlashBackbone::submit_tagged`] with
    /// [`FlashOp::EraseBlock`] per die in channel-major, die-minor order:
    /// erases touch no SRIO and no cross-channel state, so each channel
    /// sweeps its dies inside one conservative window and the valid-index
    /// and owner/backbone accounting replays serially in submission order
    /// at the barrier.
    ///
    /// # Panics
    ///
    /// The caller must have established [`FlashBackbone::row_erasable`];
    /// a faulting erase panics. (Fallible submission stays on the serial
    /// per-die path, which preserves mid-row error semantics.)
    pub fn erase_row_sharded(
        &mut self,
        plan: ShardPlan,
        now: SimTime,
        row: usize,
        owner: OwnerId,
    ) -> BatchCompletion {
        debug_assert!(
            self.row_erasable(row),
            "erase_row_sharded requires row_erasable"
        );
        let shards = plan.shards().min(self.geometry.channels);
        let plan = ShardPlan::new(shards);
        let channels = self.geometry.channels;
        let dies = self.geometry.dies_per_channel();
        let blocks_per_die = self.geometry.blocks_per_die() as u64;
        let oi = self.owner_slot(owner);
        let n_cmds = (channels * dies) as u64;
        let mut engine: ShardedEngine<usize> =
            ShardedEngine::with_capacity(plan, SimDuration::MAX, 1);
        for c in 0..channels {
            engine.schedule(c, now, c);
        }
        let mut dones: Vec<SimTime> = vec![SimTime::ZERO; n_cmds as usize];
        let mut delivered = 0u64;
        {
            let mut shard_channels: Vec<Vec<&mut ChannelController>> =
                (0..shards).map(|_| Vec::new()).collect();
            for (c, ch) in self.channels.iter_mut().enumerate() {
                shard_channels[c % shards].push(ch);
            }
            engine.run(
                &mut shard_channels,
                move |_,
                      owned: &mut Vec<&mut ChannelController>,
                      at,
                      seq,
                      &c,
                      outbox: &mut Outbox<Vec<(u64, SimTime)>>| {
                    let ch = &mut *owned[c / shards];
                    let mut sweep: Vec<(u64, SimTime)> = Vec::with_capacity(dies);
                    for d in 0..dies {
                        let addr = PhysicalPageAddr::new(c, d, row, 0);
                        let done = ch
                            .execute(at, ChannelOp::Erase, addr, owner, None)
                            .expect("prechecked row erase cannot fault");
                        sweep.push(((c * dies + d) as u64, done));
                    }
                    outbox.send(seq, at, sweep);
                },
                |m| {
                    for (k, done) in m.msg {
                        dones[k as usize] = done;
                        delivered += 1;
                    }
                    None
                },
            );
        }
        debug_assert_eq!(delivered, n_cmds, "every erase completes exactly once");
        self.sharded_windows += engine.windows_completed();
        // Barrier replay in submission order: channel-major, die-minor.
        let mut finished = now;
        for c in 0..channels {
            for d in 0..dies {
                let block = (c as u64 * dies as u64 + d as u64) * blocks_per_die + row as u64;
                self.valid_index.on_erase(block);
                finished = finished.max(dones[c * dies + d]);
            }
        }
        let acc = OwnerStats {
            erases: n_cmds,
            ..OwnerStats::default()
        };
        self.stats.erases += acc.erases;
        self.owner_stats[oi].absorb(&acc);
        BatchCompletion {
            submitted: now,
            finished,
            commands: n_cmds,
        }
    }

    /// Marks a page valid without consuming device time (pre-experiment data
    /// placement; see [`crate::die::FlashDie::preload_page`]).
    pub fn preload(&mut self, addr: PhysicalPageAddr) -> Result<(), FlashError> {
        if !self.geometry.contains(addr) {
            return Err(FlashError::OutOfRange(addr));
        }
        self.channels[addr.channel].preload(addr)?;
        self.valid_index.on_program(
            self.geometry.block_index(addr),
            self.geometry.addr_to_flat(addr),
            0,
        );
        Ok(())
    }

    /// Preloads `pages` consecutive flat pages starting at `first_flat` in
    /// one vectored call — exactly equivalent to calling
    /// [`FlashBackbone::preload`] on each page in ascending order (an error
    /// leaves every earlier page preloaded and indexed, like the per-page
    /// loop would), but the flat→physical conversion is done once and then
    /// stepped incrementally (consecutive flats stripe channels first, dies
    /// second), and the valid-index accounting lands through the batched
    /// entry point. This is the pre-experiment data-placement fast path:
    /// the campaign preloads hundreds of thousands of pages before any
    /// event runs, and three div/mod chains per page dominated that phase.
    ///
    /// # Panics
    ///
    /// Panics if the range reaches outside the backbone, exactly where the
    /// per-page `flat_to_addr` would.
    pub fn preload_group(&mut self, first_flat: u64, pages: u64) -> Result<(), FlashError> {
        if pages == 0 {
            return Ok(());
        }
        assert!(
            first_flat + pages <= self.geometry.total_pages(),
            "page index out of range"
        );
        let channels = self.geometry.channels;
        let dies = self.geometry.dies_per_channel();
        let pages_per_block = self.geometry.pages_per_block;
        let blocks_per_die = self.geometry.blocks_per_die() as u64;
        let mut addr = self.geometry.flat_to_addr(first_flat);
        // (block index, flat page) of every page preloaded so far, flushed
        // to the valid index in 64-page chunks (the invalidate_group shape).
        let mut entries = [(0u64, 0u64); 64];
        let mut filled = 0usize;
        for i in 0..pages {
            if let Err(e) = self.channels[addr.channel].preload(addr) {
                self.valid_index
                    .on_program_batch(entries[..filled].iter().copied(), 0);
                return Err(e);
            }
            let block = (addr.channel as u64 * dies as u64 + addr.die as u64) * blocks_per_die
                + addr.block as u64;
            entries[filled] = (block, first_flat + i);
            filled += 1;
            if filled == entries.len() {
                self.valid_index
                    .on_program_batch(entries.iter().copied(), 0);
                filled = 0;
            }
            // Step to the next flat page: channels stripe fastest, then
            // dies, then pages within the block, then blocks.
            addr.channel += 1;
            if addr.channel == channels {
                addr.channel = 0;
                addr.die += 1;
                if addr.die == dies {
                    addr.die = 0;
                    addr.page += 1;
                    if addr.page == pages_per_block {
                        addr.page = 0;
                        addr.block += 1;
                    }
                }
            }
        }
        self.valid_index
            .on_program_batch(entries[..filled].iter().copied(), 0);
        Ok(())
    }

    /// Marks a page invalid (mapping-table act; consumes no device time).
    pub fn invalidate(&mut self, addr: PhysicalPageAddr) -> Result<(), FlashError> {
        if !self.geometry.contains(addr) {
            return Err(FlashError::OutOfRange(addr));
        }
        self.channels[addr.channel].invalidate(addr)?;
        self.valid_index.on_invalidate(
            self.geometry.block_index(addr),
            self.geometry.addr_to_flat(addr),
        );
        Ok(())
    }

    /// Marks every page of the physical group starting at flat page
    /// `first_flat` invalid in one vectored call — exactly equivalent to
    /// invalidating each page with [`FlashBackbone::invalidate`] while
    /// skipping unwritten trailing pages of a partially used group, but
    /// with the valid-index group accounting applied once per run instead
    /// of once per page. A hard error (out-of-range address, worn die)
    /// stops the sweep; pages before it have already taken effect.
    pub fn invalidate_group(&mut self, first_flat: u64, pages: u64) -> Result<(), FlashError> {
        let mut start = 0u64;
        while start < pages {
            let span = (pages - start).min(64);
            // Which pages of this chunk the dies actually invalidated, and
            // the block each one resolved to (so the index pass below never
            // redoes the address arithmetic).
            let mut ok_mask = 0u64;
            let mut blocks = [0u64; 64];
            let mut error = None;
            for i in 0..span {
                let addr = self.geometry.flat_to_addr(first_flat + start + i);
                if !self.geometry.contains(addr) {
                    error = Some(FlashError::OutOfRange(addr));
                    break;
                }
                match self.channels[addr.channel].invalidate(addr) {
                    Ok(()) => {
                        ok_mask |= 1 << i;
                        blocks[i as usize] = self.geometry.block_index(addr);
                    }
                    // An unwritten trailing page of a partially used group
                    // is benign on this path.
                    Err(FlashError::ReadUnwritten(_)) => {}
                    Err(e) => {
                        error = Some(e);
                        break;
                    }
                }
            }
            self.valid_index.on_invalidate_batch(
                (0..span)
                    .filter(|i| ok_mask >> i & 1 == 1)
                    .map(|i| (blocks[i as usize], first_flat + start + i)),
            );
            if let Some(e) = error {
                return Err(e);
            }
            start += span;
        }
        Ok(())
    }

    /// Total number of valid pages across the backbone. O(1): read from
    /// the incremental valid-page index.
    pub fn total_valid_pages(&self) -> usize {
        self.valid_index.total_valid() as usize
    }

    /// Brute-force recount of the backbone's valid pages from the die page
    /// states — the property-test oracle for the incremental index.
    pub fn recount_valid_pages(&self) -> usize {
        self.channels.iter().map(|c| c.recount_valid_pages()).sum()
    }

    /// The incremental valid-page index (GC victim selection, oracles).
    pub fn valid_index(&self) -> &ValidPageIndex {
        &self.valid_index
    }

    /// Promotes a flat block into the bad-block table of the valid-page
    /// index: no GC victim policy will propose it again. See
    /// [`ValidPageIndex::retire_block`].
    pub fn retire_block(&mut self, flat_block: u64) {
        self.valid_index.retire_block(flat_block);
    }

    /// Drains the page groups whose last programmed page was cleared by an
    /// erase since the previous call. With group tracking enabled, these
    /// are exactly the groups an erase made reusable — including
    /// overwritten (unmapped) garbage groups that were never individually
    /// recycled. Callers return the unmapped ones to the allocator.
    pub fn take_fully_erased_groups(&mut self) -> Vec<u64> {
        self.valid_index.take_fully_erased_groups()
    }

    /// Per-owner command counts, payload bytes, read latencies, and peak
    /// channel tag occupancy. Summing the command counts and bytes across
    /// owners reproduces [`FlashBackbone::stats`] exactly (the oracle
    /// property).
    pub fn owner_stats(&self) -> BTreeMap<OwnerId, OwnerStats> {
        let mut merged: BTreeMap<OwnerId, OwnerStats> = self
            .owner_stats
            .iter()
            .zip(&self.owner_touched)
            .enumerate()
            .filter(|&(_, (_, &touched))| touched)
            .map(|(oi, (&stats, _))| (OwnerId::from_dense_index(oi), stats))
            .collect();
        for channel in &self.channels {
            for (owner, peak) in channel.owner_peak_tags() {
                let entry = merged.entry(owner).or_default();
                entry.peak_tags = entry.peak_tags.max(peak);
            }
        }
        merged
    }

    /// `owner`'s recorded read latencies, `None` when it completed no reads.
    fn latencies_of(&self, owner: OwnerId) -> Option<&[u64]> {
        let latencies = self.read_latencies.get(owner.dense_index())?;
        if latencies.is_empty() {
            None
        } else {
            Some(latencies)
        }
    }

    /// The `q`-quantile (0..=1) of `owner`'s end-to-end page-read
    /// latencies, or `None` when the owner completed no reads.
    pub fn read_latency_quantile(&self, owner: OwnerId, q: f64) -> Option<SimDuration> {
        Self::quantile_of(self.latencies_of(owner)?.to_vec(), q)
    }

    /// Several quantiles of `owner`'s read latencies from one cloned
    /// scratch buffer — the run-outcome builder asks for p50/p99/max per
    /// owner. Each rank is found by selection (`select_nth_unstable`)
    /// rather than a full sort: the k-th order statistic of a totally
    /// ordered slice is the same element `sorted[k]` would hold, so the
    /// reported values are bit-identical while the cost drops from
    /// O(n log n) to O(n) per quantile.
    pub fn read_latency_quantiles(&self, owner: OwnerId, qs: &[f64]) -> Option<Vec<SimDuration>> {
        let mut latencies = self.latencies_of(owner)?.to_vec();
        Some(
            qs.iter()
                .map(|q| {
                    let rank = ((latencies.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
                    let (_, nth, _) = latencies.select_nth_unstable(rank);
                    SimDuration::from_ns(*nth)
                })
                .collect(),
        )
    }

    /// The `q`-quantile of all *foreground* (non-background-owner) read
    /// latencies — the tail the QoS budgets exist to protect.
    pub fn foreground_read_latency_quantile(&self, q: f64) -> Option<SimDuration> {
        let merged: Vec<u64> = self
            .read_latencies
            .iter()
            .enumerate()
            .filter(|&(oi, _)| !OwnerId::from_dense_index(oi).is_background())
            .flat_map(|(_, v)| v.iter().copied())
            .collect();
        Self::quantile_of(merged, q)
    }

    fn quantile_of(mut latencies: Vec<u64>, q: f64) -> Option<SimDuration> {
        if latencies.is_empty() {
            return None;
        }
        // Selection, not a sort: identical value to `sorted[rank]` at O(n).
        let rank = ((latencies.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        let (_, nth, _) = latencies.select_nth_unstable(rank);
        Some(SimDuration::from_ns(*nth))
    }

    /// The reclaimable block (≥1 invalid page) with the fewest valid pages,
    /// as a flat [`FlashGeometry::block_index`]; `None` when nothing holds
    /// garbage.
    pub fn min_valid_garbage_block(&self) -> Option<u64> {
        self.valid_index.min_valid_garbage_block()
    }

    /// The reclaimable block maximizing the cost-benefit score
    /// `age × garbage / valid` at `now` (see
    /// [`ValidPageIndex::cost_benefit_victim`]); `None` when nothing holds
    /// garbage.
    pub fn cost_benefit_victim_block(&self, now: SimTime) -> Option<u64> {
        self.valid_index.cost_benefit_victim(now.as_ns())
    }

    /// Drains the flat block indices erased since the previous drain, one
    /// entry per erase. The translation layer feeds these into its
    /// min-wear placement structure so wear stays incrementally current.
    pub fn take_erased_blocks(&mut self) -> Vec<u64> {
        self.valid_index.take_erased_blocks()
    }

    /// Erase cycles of every block, indexed by
    /// [`FlashGeometry::block_index`] — the endurance snapshot the run
    /// outcome's wear-spread metrics summarize.
    pub fn block_erase_counts(&self) -> Vec<u64> {
        (0..self.geometry.total_blocks())
            .map(|b| self.valid_index.block_erase_count(b))
            .collect()
    }

    /// Returns the number of valid pages in the given block.
    pub fn valid_pages_in_block(&self, channel: usize, die: usize, block: usize) -> usize {
        self.channels
            .get(channel)
            .and_then(|c| c.die(die))
            .map(|d| d.valid_pages_in(block))
            .unwrap_or(0)
    }

    /// Returns the erase count of the given block.
    pub fn erase_count(&self, channel: usize, die: usize, block: usize) -> u64 {
        self.channels
            .get(channel)
            .and_then(|c| c.die(die))
            .map(|d| d.erase_count(block))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backbone() -> FlashBackbone {
        FlashBackbone::new(
            FlashGeometry::tiny_for_tests(),
            FlashTiming::fast_for_tests(),
            2.5e9,
            8,
            1_000,
        )
    }

    #[test]
    fn read_after_program_succeeds_and_reports_latency() {
        let mut b = backbone();
        let addr = PhysicalPageAddr::new(0, 0, 0, 0);
        let w = b
            .submit(SimTime::ZERO, FlashCommand::program(addr))
            .unwrap();
        let r = b.submit(w.finished, FlashCommand::read(addr)).unwrap();
        assert!(r.latency() > SimDuration::ZERO);
        assert_eq!(b.stats().reads, 1);
        assert_eq!(b.stats().programs, 1);
        assert!(b.stats().srio_bytes >= 2 * 4096);
    }

    #[test]
    fn commands_to_different_channels_overlap() {
        let mut b = FlashBackbone::new(
            FlashGeometry::tiny_for_tests(),
            FlashTiming::paper_prototype(),
            20.0e9, // wide front-end so SRIO is not the bottleneck here
            8,
            1_000,
        );
        let a0 = PhysicalPageAddr::new(0, 0, 0, 0);
        let a1 = PhysicalPageAddr::new(1, 0, 0, 0);
        let c0 = b.submit(SimTime::ZERO, FlashCommand::program(a0)).unwrap();
        let c1 = b.submit(SimTime::ZERO, FlashCommand::program(a1)).unwrap();
        // Channel-level parallelism: both programs finish within a small
        // window of each other rather than back-to-back.
        let spread = c1
            .finished
            .saturating_since(c0.finished)
            .max(c0.finished.saturating_since(c1.finished));
        assert!(spread < FlashTiming::paper_prototype().program_page / 2);
    }

    #[test]
    fn out_of_range_command_is_rejected() {
        let mut b = backbone();
        let err = b
            .submit(
                SimTime::ZERO,
                FlashCommand::read(PhysicalPageAddr::new(7, 0, 0, 0)),
            )
            .unwrap_err();
        assert!(matches!(err, FlashError::OutOfRange(_)));
    }

    #[test]
    fn erase_enables_rewrite_and_counts() {
        let mut b = backbone();
        let addr = PhysicalPageAddr::new(1, 0, 2, 0);
        b.submit(SimTime::ZERO, FlashCommand::program(addr))
            .unwrap();
        b.invalidate(addr).unwrap();
        assert_eq!(b.total_valid_pages(), 0);
        let e = b.submit(SimTime::ZERO, FlashCommand::erase(addr)).unwrap();
        assert_eq!(b.stats().erases, 1);
        assert_eq!(b.erase_count(1, 0, 2), 1);
        b.submit(e.finished, FlashCommand::program(addr)).unwrap();
        assert_eq!(b.total_valid_pages(), 1);
    }

    #[test]
    fn valid_index_tracks_commands_and_agrees_with_recount() {
        let mut b = backbone();
        let g = *b.geometry();
        let a0 = PhysicalPageAddr::new(0, 0, 0, 0);
        let a1 = PhysicalPageAddr::new(0, 0, 0, 1);
        let a2 = PhysicalPageAddr::new(1, 0, 3, 0);
        b.submit(SimTime::ZERO, FlashCommand::program(a0)).unwrap();
        b.submit(SimTime::ZERO, FlashCommand::program(a1)).unwrap();
        b.preload(a2).unwrap();
        assert_eq!(b.total_valid_pages(), 3);
        assert_eq!(b.total_valid_pages(), b.recount_valid_pages());
        // Nothing holds garbage yet, so there is no victim.
        assert_eq!(b.min_valid_garbage_block(), None);
        b.invalidate(a1).unwrap();
        let victim = b.min_valid_garbage_block().unwrap();
        assert_eq!(victim, g.block_index(a0));
        assert_eq!(b.valid_index().valid_in(victim), 1);
        assert_eq!(b.valid_index().garbage_in(victim), 1);
        b.submit(SimTime::ZERO, FlashCommand::erase(a0)).unwrap();
        assert_eq!(b.min_valid_garbage_block(), None);
        assert_eq!(b.total_valid_pages(), 1);
        assert_eq!(b.total_valid_pages(), b.recount_valid_pages());
    }

    #[test]
    fn submit_batch_matches_per_command_submission() {
        let mut a = backbone();
        let mut b = backbone();
        let cmds: Vec<FlashCommand> = (0..4)
            .map(|p| FlashCommand::program(PhysicalPageAddr::new(p % 2, 0, 0, p / 2)))
            .collect();
        let mut finished = SimTime::ZERO;
        for &cmd in &cmds {
            finished = finished.max(a.submit(SimTime::ZERO, cmd).unwrap().finished);
        }
        let batch = b
            .submit_batch(SimTime::ZERO, cmds.iter().copied(), OwnerId::Unattributed)
            .unwrap();
        assert_eq!(batch.finished, finished);
        assert_eq!(batch.commands, 4);
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.total_valid_pages(), b.total_valid_pages());
    }

    #[test]
    fn per_owner_stats_sum_to_untagged_totals() {
        let mut b = backbone();
        let owners = [
            OwnerId::Kernel(0),
            OwnerId::Kernel(1),
            OwnerId::Gc,
            OwnerId::Journal,
        ];
        let mut t = SimTime::ZERO;
        for (i, &owner) in owners.iter().enumerate() {
            for p in 0..4 {
                let addr = PhysicalPageAddr::new(p % 2, 0, i, p / 2);
                t = b
                    .submit_tagged(t, FlashCommand::program(addr), owner)
                    .unwrap()
                    .finished;
                t = b
                    .submit_tagged(t, FlashCommand::read(addr), owner)
                    .unwrap()
                    .finished;
            }
        }
        t = b
            .submit_tagged(
                t,
                FlashCommand::erase(PhysicalPageAddr::new(0, 0, 0, 0)),
                OwnerId::Gc,
            )
            .unwrap()
            .finished;
        let _ = t;
        let per_owner = b.owner_stats();
        let totals = b.stats();
        assert_eq!(
            per_owner.values().map(|o| o.reads).sum::<u64>(),
            totals.reads
        );
        assert_eq!(
            per_owner.values().map(|o| o.programs).sum::<u64>(),
            totals.programs
        );
        assert_eq!(
            per_owner.values().map(|o| o.erases).sum::<u64>(),
            totals.erases
        );
        assert_eq!(
            per_owner.values().map(|o| o.bytes).sum::<u64>(),
            totals.srio_bytes
        );
        // Every owner that read pages has a latency distribution, and its
        // extrema bracket the recorded quantiles.
        for &owner in &owners {
            let stats = per_owner[&owner];
            assert_eq!(stats.reads, 4, "{owner}");
            let p0 = b.read_latency_quantile(owner, 0.0).unwrap();
            let p100 = b.read_latency_quantile(owner, 1.0).unwrap();
            assert!(p0 <= p100);
            assert_eq!(p100.as_ns(), stats.read_latency_max_ns);
        }
        // The foreground aggregate covers exactly the two kernels' reads.
        assert!(b.foreground_read_latency_quantile(0.99).is_some());
    }

    #[test]
    fn fault_plan_installs_per_channel_and_drains_flat_indexes() {
        use crate::fault::{threshold_from_probability, FaultPlan};
        let mut b = backbone();
        let g = *b.geometry();
        b.install_fault_plan(Arc::new(FaultPlan {
            program_threshold: threshold_from_probability(1.0),
            retire_after: 1,
            ..FaultPlan::default()
        }));
        assert!(b.fault_plan().is_some());
        assert!(!b.faults_affect_reads());
        let addr = PhysicalPageAddr::new(1, 0, 2, 0);
        let err = b
            .submit(SimTime::ZERO, FlashCommand::program(addr))
            .unwrap_err();
        assert!(matches!(err, FlashError::InjectedProgramFailure(_)));
        // The failed program never became valid anywhere.
        assert_eq!(b.total_valid_pages(), 0);
        assert_eq!(b.recount_valid_pages(), 0);
        // One failure with retire_after=1 promotes the block, reported as
        // its flat block index.
        assert_eq!(
            b.take_blocks_pending_retirement(),
            vec![g.block_index(addr)]
        );
        assert!(b.take_blocks_pending_retirement().is_empty());
        assert_eq!(b.fault_stats().injected_program_failures, 1);
        assert_eq!(b.fault_stats().blocks_retired, 1);
    }

    #[test]
    fn disturbed_pages_drain_as_flat_pages_channels_ascending() {
        use crate::fault::{threshold_from_probability, FaultPlan};
        let mut b = backbone();
        let g = *b.geometry();
        let a0 = PhysicalPageAddr::new(0, 0, 0, 0);
        let a1 = PhysicalPageAddr::new(1, 0, 0, 0);
        let t0 = b.submit(SimTime::ZERO, FlashCommand::program(a0)).unwrap();
        let t1 = b.submit(SimTime::ZERO, FlashCommand::program(a1)).unwrap();
        b.install_fault_plan(Arc::new(FaultPlan {
            read_disturb_threshold: threshold_from_probability(1.0),
            ..FaultPlan::default()
        }));
        assert!(b.faults_affect_reads());
        let t = t0.finished.max(t1.finished);
        // Submit in descending channel order; the drain still reports
        // channels ascending.
        b.submit(t, FlashCommand::read(a1)).unwrap();
        b.submit(t, FlashCommand::read(a0)).unwrap();
        assert_eq!(
            b.take_disturbed_pages(),
            vec![g.addr_to_flat(a0), g.addr_to_flat(a1)]
        );
        assert!(b.take_disturbed_pages().is_empty());
        assert_eq!(b.fault_stats().read_disturbs, 2);
    }

    #[test]
    fn sharded_program_sweep_matches_serial_loop() {
        let pages = 4u64;
        let n_groups = 24u64;
        // Stagger cursors like a CPU-charged write section does.
        let groups: Vec<(SimTime, u64)> = (0..n_groups)
            .map(|g| (SimTime::from_ns(g * 700), g * pages))
            .collect();
        let mut serial = backbone();
        serial.enable_group_tracking(pages);
        let mut finished = SimTime::ZERO;
        for &(cursor, first) in &groups {
            let c = serial
                .submit_group(
                    cursor,
                    first,
                    pages,
                    FlashOp::ProgramPage,
                    OwnerId::Kernel(1),
                )
                .unwrap();
            finished = finished.max(c.finished);
        }
        for shards in [1, 2, 4] {
            let mut sharded = backbone();
            sharded.enable_group_tracking(pages);
            assert!(sharded.groups_programmable(groups.iter().map(|&(_, f)| f), pages));
            assert!(!sharded.groups_readable(groups.iter().map(|&(_, f)| f), pages));
            let batch = sharded.program_groups_sharded(
                ShardPlan::new(shards),
                &groups,
                pages,
                OwnerId::Kernel(1),
            );
            assert_eq!(batch.finished, finished, "{shards} shards");
            assert_eq!(batch.commands, n_groups * pages);
            assert_eq!(serial.stats(), sharded.stats());
            assert_eq!(serial.owner_stats(), sharded.owner_stats());
            assert_eq!(serial.total_valid_pages(), sharded.total_valid_pages());
            assert_eq!(sharded.recount_valid_pages(), sharded.total_valid_pages());
            // The SRIO pre-pass spreads starts far beyond the finite
            // lookahead, so the sweep runs genuinely multi-window.
            assert!(
                sharded.sharded_windows() > 1,
                "{shards} shards ran one window"
            );
            // The freshly programmed groups flip from programmable to
            // readable.
            assert!(sharded.groups_readable(groups.iter().map(|&(_, f)| f), pages));
            assert!(!sharded.groups_programmable(groups.iter().map(|&(_, f)| f), pages));
        }
    }

    #[test]
    fn program_sweep_window_count_never_changes_results() {
        let pages = 4u64;
        let groups: Vec<(SimTime, u64)> = (0..24)
            .map(|g| (SimTime::from_ns(g * 500), g * pages))
            .collect();
        let finite = backbone().program_sweep_lookahead();
        let run = |lookahead: SimDuration| {
            let mut b = backbone();
            b.enable_group_tracking(pages);
            let batch = b.program_groups_sharded_with_lookahead(
                ShardPlan::new(2),
                &groups,
                pages,
                OwnerId::Kernel(0),
                lookahead,
            );
            (batch.finished, b.stats(), b.sharded_windows())
        };
        let (one_finished, one_stats, one_windows) = run(SimDuration::MAX);
        let (fin_finished, fin_stats, fin_windows) = run(finite);
        assert_eq!(one_windows, 1, "MAX lookahead is one window");
        assert!(fin_windows > 1, "finite lookahead splits the batch");
        assert_eq!(one_finished, fin_finished);
        assert_eq!(one_stats, fin_stats);
    }

    #[test]
    fn sharded_erase_row_matches_serial_loop() {
        let row = 3usize;
        for shards in [1, 2, 4] {
            let mut serial = backbone();
            let mut sharded = backbone();
            for b in [&mut serial, &mut sharded] {
                b.enable_group_tracking(4);
                // Fill the row on every die so the erase has work to clear.
                for c in 0..2 {
                    for p in 0..16 {
                        b.preload(PhysicalPageAddr::new(c, 0, row, p)).unwrap();
                    }
                }
            }
            let now = SimTime::from_ns(5_000);
            let mut finished = now;
            for c in 0..2 {
                let cm = serial
                    .submit_tagged(
                        now,
                        FlashCommand::erase(PhysicalPageAddr::new(c, 0, row, 0)),
                        OwnerId::Gc,
                    )
                    .unwrap();
                finished = finished.max(cm.finished);
            }
            assert!(sharded.row_erasable(row));
            let batch = sharded.erase_row_sharded(ShardPlan::new(shards), now, row, OwnerId::Gc);
            assert_eq!(batch.finished, finished, "{shards} shards");
            assert_eq!(batch.commands, 2);
            assert_eq!(serial.stats(), sharded.stats());
            assert_eq!(serial.owner_stats(), sharded.owner_stats());
            assert_eq!(serial.take_erased_blocks(), sharded.take_erased_blocks());
            assert_eq!(
                serial.take_fully_erased_groups(),
                sharded.take_fully_erased_groups()
            );
            assert_eq!(
                serial.erase_count(1, 0, row),
                sharded.erase_count(1, 0, row)
            );
        }
    }

    #[test]
    fn write_fault_plans_fail_the_sharded_prechecks() {
        use crate::fault::{threshold_from_probability, FaultPlan};
        let mut b = backbone();
        b.enable_group_tracking(4);
        assert!(b.row_erasable(0));
        b.install_fault_plan(Arc::new(FaultPlan {
            program_threshold: threshold_from_probability(0.5),
            ..FaultPlan::default()
        }));
        assert!(b.faults_affect_writes());
        assert!(!b.faults_affect_reads());
        assert!(
            !b.row_erasable(0),
            "a write-faulting plan forces the serial row erase"
        );
    }

    #[test]
    fn groups_programmable_rejects_misaligned_used_or_worn_targets() {
        let mut b = backbone();
        b.enable_group_tracking(4);
        // Aligned and fresh: programmable.
        assert!(b.groups_programmable([0, 4], 4));
        // Misaligned start.
        assert!(!b.groups_programmable([2], 4));
        // Out of range.
        assert!(!b.groups_programmable([256], 4));
        // A used target is no longer programmable.
        b.submit_group(
            SimTime::ZERO,
            0,
            4,
            FlashOp::ProgramPage,
            OwnerId::Kernel(0),
        )
        .unwrap();
        assert!(!b.groups_programmable([0], 4));
        // Without group tracking at the right granularity, never.
        assert!(!b.groups_programmable([8], 2));
    }

    #[test]
    fn srio_front_end_serializes_heavy_traffic() {
        // With a deliberately slow SRIO link, programs queue on the front
        // end even though they target different channels.
        let mut b = FlashBackbone::new(
            FlashGeometry::tiny_for_tests(),
            FlashTiming::fast_for_tests(),
            1.0e6, // 1 MB/s — absurdly slow to expose the serialization
            8,
            1_000,
        );
        let c0 = b
            .submit(
                SimTime::ZERO,
                FlashCommand::program(PhysicalPageAddr::new(0, 0, 0, 0)),
            )
            .unwrap();
        let c1 = b
            .submit(
                SimTime::ZERO,
                FlashCommand::program(PhysicalPageAddr::new(1, 0, 0, 0)),
            )
            .unwrap();
        assert!(c1.finished > c0.finished);
        assert!(b.srio_utilization(c1.finished) > 0.9);
    }
}
