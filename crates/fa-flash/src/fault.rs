//! Injectable fault model for the flash backbone.
//!
//! A [`FaultPlan`] describes which flash operations fail: program/erase
//! failures with a configured probability, scripted failures at exact
//! per-block attempt counts, read-disturb (a read that needs a retry and
//! marks its page for relocation), and an optional power-loss instant. The
//! plan is deterministic and seedable — every probabilistic decision is a
//! pure hash of `(seed, op, channel, die, block, per-channel sequence)`,
//! never a shared RNG stream, so the same plan produces the same fault
//! trace regardless of how channels interleave (including under the
//! channel-sharded executor, where each channel's lane rolls only its own
//! channel-local counters).
//!
//! Installation is per-channel: the backbone hands each
//! [`ChannelController`](crate::ChannelController) a [`FaultState`] built
//! from a shared `Arc<FaultPlan>`. A controller without a state (the
//! default) pays nothing — the hooks are a single `Option` check — which is
//! what keeps fault-free runs byte-identical to the recorded golden
//! campaign.

use crate::geometry::PhysicalPageAddr;
use std::collections::HashMap;
use std::sync::Arc;

/// Operation classes the fault model can fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// Page program (fails as [`FlashError::InjectedProgramFailure`](crate::FlashError)).
    Program,
    /// Block erase (fails as [`FlashError::InjectedEraseFailure`](crate::FlashError)).
    Erase,
    /// Page read (a *disturb*: the read retries once and the page is
    /// queued for relocation — it never hard-fails).
    Read,
}

impl FaultOp {
    fn index(self) -> usize {
        match self {
            FaultOp::Program => 0,
            FaultOp::Erase => 1,
            FaultOp::Read => 2,
        }
    }

    /// A per-op salt folded into the decision hash so the three op classes
    /// draw independent fault sequences from one seed.
    fn salt(self) -> u64 {
        match self {
            FaultOp::Program => 0x70726F67_72616D00,
            FaultOp::Erase => 0x65726153_65000000,
            FaultOp::Read => 0x72656164_00000000,
        }
    }
}

/// One scripted fault: fail the `nth` attempt (1-based) of `op` on the
/// given physical block, exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptedFault {
    /// Which operation class to fail.
    pub op: FaultOp,
    /// Channel of the target block.
    pub channel: usize,
    /// Die (within the channel) of the target block.
    pub die: usize,
    /// Block (within the die) to fail.
    pub block: usize,
    /// Which attempt to fail: 1 = the first `op` ever issued to the block.
    pub nth: u64,
}

/// Aggregate fault statistics for one channel (or, summed by the backbone,
/// the whole device).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Program commands failed by injection.
    pub injected_program_failures: u64,
    /// Erase commands failed by injection.
    pub injected_erase_failures: u64,
    /// Reads that hit a disturb (retried and queued for relocation).
    pub read_disturbs: u64,
    /// Blocks promoted to the pending-retirement list.
    pub blocks_retired: u64,
}

impl FaultStats {
    /// Element-wise sum, for the backbone's device-wide view.
    pub fn absorb(&mut self, other: FaultStats) {
        self.injected_program_failures += other.injected_program_failures;
        self.injected_erase_failures += other.injected_erase_failures;
        self.read_disturbs += other.read_disturbs;
        self.blocks_retired += other.blocks_retired;
    }
}

/// A deterministic, seedable fault plan for the whole backbone.
///
/// Probabilities are stored as fixed-point thresholds (`p × 2⁶⁴`) compared
/// against a 64-bit hash, so the decision is exact and platform-independent
/// — no floating-point comparison sits on the fault path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed every probabilistic decision hashes from.
    pub seed: u64,
    /// Program-failure threshold (`probability × 2⁶⁴`).
    pub program_threshold: u64,
    /// Erase-failure threshold (`probability × 2⁶⁴`).
    pub erase_threshold: u64,
    /// Read-disturb threshold (`probability × 2⁶⁴`).
    pub read_disturb_threshold: u64,
    /// Injected program/erase failures a block absorbs before it is
    /// promoted to the pending-retirement (bad-block) list.
    pub retire_after: u32,
    /// Simulated instant (ns) at which power is lost, if any. The driver
    /// intercepts the first event at or past this tick, performs the final
    /// supercap-backed metadata dump, and restarts with journal replay.
    pub power_loss_ns: Option<u64>,
    /// Scripted faults on exact per-block attempt counts.
    pub scripted: Vec<ScriptedFault>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0x5EED,
            program_threshold: 0,
            erase_threshold: 0,
            read_disturb_threshold: 0,
            retire_after: 2,
            power_loss_ns: None,
            scripted: Vec::new(),
        }
    }
}

/// Converts a probability in `[0, 1]` to the fixed-point threshold the
/// decision hash is compared against.
pub fn threshold_from_probability(p: f64) -> u64 {
    if p >= 1.0 {
        u64::MAX
    } else if p <= 0.0 {
        0
    } else {
        (p * (u64::MAX as f64)) as u64
    }
}

impl FaultPlan {
    /// True when the plan can affect the *read* path (read-disturb or a
    /// scripted read fault). The translation layer uses this to route
    /// section reads through the serial loop — the sharded fast path
    /// prechecks that no command can fault, so a read-faulting plan must
    /// take the fallback.
    pub fn affects_reads(&self) -> bool {
        self.read_disturb_threshold > 0 || self.scripted.iter().any(|f| f.op == FaultOp::Read)
    }

    /// True when the plan can affect the *write* path (an injected program
    /// or erase failure, probabilistic or scripted). The translation layer
    /// and Storengine route program sweeps and GC erase rows through the
    /// serial loop in that case — the sharded fast path prechecks that no
    /// command can fault, so a write-faulting plan must take the fallback
    /// to preserve exact mid-batch error semantics.
    pub fn affects_writes(&self) -> bool {
        self.program_threshold > 0
            || self.erase_threshold > 0
            || self
                .scripted
                .iter()
                .any(|f| matches!(f.op, FaultOp::Program | FaultOp::Erase))
    }

    /// Parses a plan from the `FA_FAULTS` specification string:
    /// comma-separated `key=value` pairs. Keys: `seed` (u64),
    /// `program`/`erase`/`read_disturb` (probabilities in `[0,1]`),
    /// `retire_after` (u32), `power_loss_ns` (u64), and repeatable
    /// `script=<op>@c<ch>.d<die>.b<block>.n<nth>` entries.
    ///
    /// ```
    /// use fa_flash::fault::{FaultOp, FaultPlan};
    /// let plan = FaultPlan::parse(
    ///     "seed=7,program=0.5,retire_after=3,script=erase@c1.d0.b4.n2",
    /// )
    /// .unwrap();
    /// assert_eq!(plan.seed, 7);
    /// assert_eq!(plan.retire_after, 3);
    /// assert_eq!(plan.scripted[0].op, FaultOp::Erase);
    /// assert_eq!(plan.scripted[0].block, 4);
    /// assert!(!plan.affects_reads());
    /// assert!(plan.affects_writes());
    /// ```
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry without '=': {part:?}"))?;
            let prob = |v: &str| -> Result<u64, String> {
                let p: f64 = v
                    .parse()
                    .map_err(|_| format!("bad probability for {key}: {v:?}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability for {key} outside [0,1]: {v}"));
                }
                Ok(threshold_from_probability(p))
            };
            match key {
                "seed" => {
                    plan.seed = value.parse().map_err(|_| format!("bad seed: {value:?}"))?;
                }
                "program" => plan.program_threshold = prob(value)?,
                "erase" => plan.erase_threshold = prob(value)?,
                "read_disturb" => plan.read_disturb_threshold = prob(value)?,
                "retire_after" => {
                    plan.retire_after = value
                        .parse()
                        .map_err(|_| format!("bad retire_after: {value:?}"))?;
                }
                "power_loss_ns" => {
                    plan.power_loss_ns = Some(
                        value
                            .parse()
                            .map_err(|_| format!("bad power_loss_ns: {value:?}"))?,
                    );
                }
                "script" => plan.scripted.push(parse_scripted(value)?),
                other => return Err(format!("unknown fault spec key {other:?}")),
            }
        }
        Ok(plan)
    }

    /// Reads the `FA_FAULTS` environment variable: `Ok(None)` when unset or
    /// empty, the parsed plan otherwise.
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        match std::env::var("FA_FAULTS") {
            Ok(s) if !s.trim().is_empty() => FaultPlan::parse(&s).map(Some),
            _ => Ok(None),
        }
    }
}

fn parse_scripted(value: &str) -> Result<ScriptedFault, String> {
    let (op, rest) = value
        .split_once('@')
        .ok_or_else(|| format!("scripted fault without '@': {value:?}"))?;
    let op = match op {
        "program" => FaultOp::Program,
        "erase" => FaultOp::Erase,
        "read" => FaultOp::Read,
        other => return Err(format!("unknown scripted fault op {other:?}")),
    };
    let mut fault = ScriptedFault {
        op,
        channel: 0,
        die: 0,
        block: 0,
        nth: 1,
    };
    for field in rest.split('.') {
        let (prefix, digits) = field.split_at(1);
        let n: u64 = digits
            .parse()
            .map_err(|_| format!("bad scripted fault field {field:?} in {value:?}"))?;
        match prefix {
            "c" => fault.channel = n as usize,
            "d" => fault.die = n as usize,
            "b" => fault.block = n as usize,
            "n" => fault.nth = n.max(1),
            other => {
                return Err(format!(
                    "unknown scripted fault field prefix {other:?} in {value:?}"
                ))
            }
        }
    }
    Ok(fault)
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The pure decision hash: identical inputs give the identical verdict on
/// every platform and under every channel interleaving.
fn decision_hash(
    seed: u64,
    op: FaultOp,
    channel: usize,
    die: usize,
    block: usize,
    seq: u64,
) -> u64 {
    let mut h = splitmix64(seed ^ op.salt());
    h = splitmix64(h ^ channel as u64);
    h = splitmix64(h ^ ((die as u64) << 32) ^ block as u64);
    splitmix64(h ^ seq)
}

/// Per-channel fault state: the shared plan plus the channel-local attempt
/// and sequence counters that make decisions reproducible, the per-block
/// failure tallies behind bad-block promotion, and the drain lists the
/// backbone collects (pending retirements, disturbed pages).
#[derive(Debug, Clone)]
pub struct FaultState {
    plan: Arc<FaultPlan>,
    channel: usize,
    /// Scripted faults targeting this channel only.
    scripted: Vec<ScriptedFault>,
    /// Attempt counters per (die, block, op class) — scripted faults match
    /// on these, so "the 2nd erase of block 7" means the same thing no
    /// matter what the rest of the device did in between.
    attempts: HashMap<(usize, usize, FaultOp), u64>,
    /// Per-op-class sequence counters, folded into the decision hash so
    /// repeated operations on one block draw fresh verdicts.
    seq: [u64; 3],
    /// Injected program/erase failures per (die, block).
    fail_counts: HashMap<(usize, usize), u32>,
    /// Blocks that crossed `retire_after`, awaiting backbone collection.
    retired_pending: Vec<(usize, usize)>,
    /// Pages hit by read-disturb, awaiting relocation by the translation
    /// layer.
    disturbed: Vec<PhysicalPageAddr>,
    stats: FaultStats,
}

impl FaultState {
    /// Builds the channel-local state for `channel` from a shared plan.
    pub fn new(plan: Arc<FaultPlan>, channel: usize) -> Self {
        let scripted = plan
            .scripted
            .iter()
            .copied()
            .filter(|f| f.channel == channel)
            .collect();
        FaultState {
            plan,
            channel,
            scripted,
            attempts: HashMap::new(),
            seq: [0; 3],
            fail_counts: HashMap::new(),
            retired_pending: Vec::new(),
            disturbed: Vec::new(),
            stats: FaultStats::default(),
        }
    }

    /// The shared plan this state decides under.
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }

    /// Statistics so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Decides whether this attempt of `op` on `addr` faults, advancing
    /// the channel-local counters. Scripted faults fire on exact per-block
    /// attempt counts; otherwise the probabilistic threshold decides.
    pub fn decide(&mut self, op: FaultOp, addr: PhysicalPageAddr) -> bool {
        let nth = {
            let n = self.attempts.entry((addr.die, addr.block, op)).or_insert(0);
            *n += 1;
            *n
        };
        let s = self.seq[op.index()];
        self.seq[op.index()] += 1;
        if self
            .scripted
            .iter()
            .any(|f| f.op == op && f.die == addr.die && f.block == addr.block && f.nth == nth)
        {
            return true;
        }
        let threshold = match op {
            FaultOp::Program => self.plan.program_threshold,
            FaultOp::Erase => self.plan.erase_threshold,
            FaultOp::Read => self.plan.read_disturb_threshold,
        };
        if threshold == 0 {
            return false;
        }
        decision_hash(self.plan.seed, op, self.channel, addr.die, addr.block, s) < threshold
    }

    /// Records an injected program/erase failure on `addr`'s block and
    /// promotes the block to the pending-retirement list once it has
    /// absorbed `retire_after` failures.
    pub fn note_failure(&mut self, op: FaultOp, addr: PhysicalPageAddr) {
        match op {
            FaultOp::Program => self.stats.injected_program_failures += 1,
            FaultOp::Erase => self.stats.injected_erase_failures += 1,
            FaultOp::Read => {}
        }
        let count = self.fail_counts.entry((addr.die, addr.block)).or_insert(0);
        *count += 1;
        if *count == self.plan.retire_after.max(1) {
            self.retired_pending.push((addr.die, addr.block));
            self.stats.blocks_retired += 1;
        }
    }

    /// Records a read-disturb on `addr` (page queued for relocation).
    pub fn note_disturb(&mut self, addr: PhysicalPageAddr) {
        self.stats.read_disturbs += 1;
        self.disturbed.push(addr);
    }

    /// Drains the blocks awaiting bad-block retirement, as `(die, block)`
    /// pairs in the order their failures crossed the threshold.
    pub fn take_retired_pending(&mut self) -> Vec<(usize, usize)> {
        std::mem::take(&mut self.retired_pending)
    }

    /// Drains the pages hit by read-disturb since the last drain.
    pub fn take_disturbed(&mut self) -> Vec<PhysicalPageAddr> {
        std::mem::take(&mut self.disturbed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec_round_trips() {
        let plan = FaultPlan::parse(
            "seed=42, program=0.001, erase=0.0005, read_disturb=0.25, retire_after=2, \
             power_loss_ns=5000000, script=program@c0.d0.b3.n2, script=read@c1.d1.b7.n1",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert!(plan.program_threshold > 0 && plan.erase_threshold > 0);
        assert_eq!(
            plan.read_disturb_threshold,
            threshold_from_probability(0.25)
        );
        assert_eq!(plan.retire_after, 2);
        assert_eq!(plan.power_loss_ns, Some(5_000_000));
        assert_eq!(plan.scripted.len(), 2);
        assert_eq!(plan.scripted[1].channel, 1);
        assert_eq!(plan.scripted[1].die, 1);
        assert!(plan.affects_reads());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FaultPlan::parse("program").is_err());
        assert!(FaultPlan::parse("program=2.0").is_err());
        assert!(FaultPlan::parse("wibble=1").is_err());
        assert!(FaultPlan::parse("script=program@x9").is_err());
        assert!(FaultPlan::parse("script=flip@c0.d0.b0.n1").is_err());
    }

    #[test]
    fn empty_spec_is_the_default_plan() {
        let plan = FaultPlan::parse("").unwrap();
        assert_eq!(plan, FaultPlan::default());
        assert!(!plan.affects_reads());
    }

    #[test]
    fn decisions_are_deterministic_per_channel() {
        let plan = Arc::new(FaultPlan {
            program_threshold: threshold_from_probability(0.3),
            ..FaultPlan::default()
        });
        let addr = |b: usize, p: usize| PhysicalPageAddr::new(0, 0, b, p);
        let run = || {
            let mut s = FaultState::new(plan.clone(), 0);
            (0..64)
                .map(|i| s.decide(FaultOp::Program, addr(i % 4, i / 4)))
                .collect::<Vec<bool>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x), "p=0.3 over 64 rolls should fault");
        assert!(!a.iter().all(|&x| x), "p=0.3 should not always fault");
    }

    #[test]
    fn probability_one_always_faults_and_zero_never_does() {
        let always = Arc::new(FaultPlan {
            erase_threshold: threshold_from_probability(1.0),
            ..FaultPlan::default()
        });
        let mut s = FaultState::new(always, 2);
        for b in 0..16 {
            assert!(s.decide(FaultOp::Erase, PhysicalPageAddr::new(2, 0, b, 0)));
            // The other op classes stay clean.
            assert!(!s.decide(FaultOp::Program, PhysicalPageAddr::new(2, 0, b, 0)));
        }
    }

    #[test]
    fn scripted_fault_fires_on_the_exact_attempt() {
        let plan = Arc::new(FaultPlan {
            scripted: vec![ScriptedFault {
                op: FaultOp::Program,
                channel: 1,
                die: 0,
                block: 3,
                nth: 2,
            }],
            ..FaultPlan::default()
        });
        let mut s = FaultState::new(plan.clone(), 1);
        let addr = PhysicalPageAddr::new(1, 0, 3, 0);
        assert!(!s.decide(FaultOp::Program, addr), "1st attempt clean");
        assert!(s.decide(FaultOp::Program, addr), "2nd attempt faults");
        assert!(!s.decide(FaultOp::Program, addr), "3rd attempt clean");
        // A different channel's state never sees the script.
        let mut other = FaultState::new(plan, 0);
        assert!(!other.decide(FaultOp::Program, PhysicalPageAddr::new(0, 0, 3, 0)));
        assert!(!other.decide(FaultOp::Program, PhysicalPageAddr::new(0, 0, 3, 0)));
    }

    #[test]
    fn repeated_failures_promote_the_block_once() {
        let plan = Arc::new(FaultPlan {
            retire_after: 2,
            ..FaultPlan::default()
        });
        let mut s = FaultState::new(plan, 0);
        let addr = PhysicalPageAddr::new(0, 1, 5, 0);
        s.note_failure(FaultOp::Program, addr);
        assert!(s.take_retired_pending().is_empty());
        s.note_failure(FaultOp::Erase, addr);
        assert_eq!(s.take_retired_pending(), vec![(1, 5)]);
        s.note_failure(FaultOp::Program, addr);
        assert!(s.take_retired_pending().is_empty(), "promoted only once");
        assert_eq!(s.stats().blocks_retired, 1);
        assert_eq!(s.stats().injected_program_failures, 2);
        assert_eq!(s.stats().injected_erase_failures, 1);
    }

    #[test]
    fn disturbed_pages_drain_in_order() {
        let mut s = FaultState::new(Arc::new(FaultPlan::default()), 0);
        let a = PhysicalPageAddr::new(0, 0, 1, 2);
        let b = PhysicalPageAddr::new(0, 1, 3, 4);
        s.note_disturb(a);
        s.note_disturb(b);
        assert_eq!(s.take_disturbed(), vec![a, b]);
        assert!(s.take_disturbed().is_empty());
        assert_eq!(s.stats().read_disturbs, 2);
    }
}
