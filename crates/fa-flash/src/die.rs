//! Per-die NAND state machine.
//!
//! A die tracks the program/erase state of every page it holds, enforces
//! NAND programming rules (erase-before-program, sequential programming
//! within a block), counts erase cycles for wear-leveling decisions, and
//! serializes its operations through a FIFO server so die-level contention
//! shows up in operation completion times.

use crate::error::FlashError;
use crate::geometry::FlashGeometry;
use crate::timing::FlashTiming;
use fa_sim::resource::{FifoServer, Reservation};
use fa_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// State of a single flash page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PageState {
    /// Erased and ready to be programmed.
    Free,
    /// Programmed and holding live data.
    Valid,
    /// Programmed but superseded; space is reclaimed by erasing the block.
    Invalid,
}

/// Per-block bookkeeping inside a die. The page states themselves live in
/// the die's single flat `pages` array (one allocation per die, not one
/// per block — a paper-prototype backbone holds 16 K blocks, and per-block
/// vectors made die construction malloc-bound and page-state access
/// pointer-chasing).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct BlockState {
    /// Next page index that may legally be programmed (NAND requires
    /// in-order programming within a block).
    write_cursor: usize,
    erase_count: u64,
    /// Count of pages currently in [`PageState::Valid`], maintained
    /// incrementally on every program/preload/invalidate/erase so
    /// valid-page queries never rescan the page array.
    valid: u32,
}

impl BlockState {
    fn valid_pages(&self) -> usize {
        self.valid as usize
    }
}

/// Aggregate statistics for one die.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DieStats {
    /// Pages read.
    pub reads: u64,
    /// Pages programmed.
    pub programs: u64,
    /// Blocks erased.
    pub erases: u64,
}

/// A single NAND die.
#[derive(Debug, Clone)]
pub struct FlashDie {
    blocks: Vec<BlockState>,
    /// Page states for every block, flat: `block * pages_per_block + page`.
    pages: Vec<PageState>,
    pages_per_block: usize,
    endurance_limit: u64,
    server: FifoServer,
    stats: DieStats,
}

impl FlashDie {
    /// Creates an all-erased die for the given geometry.
    ///
    /// `endurance_limit` is the number of erase cycles after which the die
    /// reports [`FlashError::WornOut`]; TLC parts are typically rated for a
    /// few thousand cycles.
    pub fn new(geometry: &FlashGeometry, endurance_limit: u64, name: impl Into<String>) -> Self {
        FlashDie {
            blocks: vec![BlockState::default(); geometry.blocks_per_die()],
            pages: vec![PageState::Free; geometry.blocks_per_die() * geometry.pages_per_block],
            pages_per_block: geometry.pages_per_block,
            endurance_limit,
            server: FifoServer::new(name),
            stats: DieStats::default(),
        }
    }

    /// Number of erase blocks in the die.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Pages per block.
    pub fn pages_per_block(&self) -> usize {
        self.pages_per_block
    }

    /// Returns the state of a page.
    pub fn page_state(&self, block: usize, page: usize) -> Option<PageState> {
        if block >= self.blocks.len() || page >= self.pages_per_block {
            return None;
        }
        self.pages.get(block * self.pages_per_block + page).copied()
    }

    /// Number of valid pages in `block`. O(1): the count is maintained
    /// incrementally by the program/preload/invalidate/erase paths.
    pub fn valid_pages_in(&self, block: usize) -> usize {
        self.blocks
            .get(block)
            .map(BlockState::valid_pages)
            .unwrap_or(0)
    }

    /// Brute-force recount of the valid pages in `block` from the page
    /// states themselves. This is the property-test oracle for the
    /// incremental count behind [`FlashDie::valid_pages_in`].
    pub fn recount_valid_pages_in(&self, block: usize) -> usize {
        if block >= self.blocks.len() {
            return 0;
        }
        self.pages[block * self.pages_per_block..(block + 1) * self.pages_per_block]
            .iter()
            .filter(|p| **p == PageState::Valid)
            .count()
    }

    /// Number of programmed pages in `block` (valid or superseded).
    pub fn programmed_pages_in(&self, block: usize) -> usize {
        self.blocks.get(block).map(|b| b.write_cursor).unwrap_or(0)
    }

    /// Number of still-programmable pages in `block`.
    pub fn free_pages_in(&self, block: usize) -> usize {
        self.blocks
            .get(block)
            .map(|b| self.pages_per_block - b.write_cursor)
            .unwrap_or(0)
    }

    /// Erase count of `block`.
    pub fn erase_count(&self, block: usize) -> u64 {
        self.blocks.get(block).map(|b| b.erase_count).unwrap_or(0)
    }

    /// Aggregate die statistics.
    pub fn stats(&self) -> DieStats {
        self.stats
    }

    /// Earliest instant the die could accept another operation.
    pub fn next_free(&self) -> SimTime {
        self.server.next_free()
    }

    /// Busy fraction of the die up to `now`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.server.utilization(now)
    }

    fn check_block(&self, block: usize, page: usize) -> Result<(), FlashError> {
        if block >= self.blocks.len() || page >= self.pages_per_block {
            return Err(FlashError::OutOfRange(
                crate::geometry::PhysicalPageAddr::new(0, 0, block, page),
            ));
        }
        Ok(())
    }

    /// Performs an array read of one page, returning the busy window the
    /// die occupies for sensing.
    pub fn read_page(
        &mut self,
        now: SimTime,
        block: usize,
        page: usize,
        timing: &FlashTiming,
    ) -> Result<Reservation, FlashError> {
        self.check_block(block, page)?;
        let state = self.pages[block * self.pages_per_block + page];
        if state == PageState::Free {
            return Err(FlashError::ReadUnwritten(
                crate::geometry::PhysicalPageAddr::new(0, 0, block, page),
            ));
        }
        let res = self.server.serve(now, timing.read_page);
        self.stats.reads += 1;
        Ok(res)
    }

    /// Programs one page. The page must be the block's next free page.
    pub fn program_page(
        &mut self,
        now: SimTime,
        block: usize,
        page: usize,
        timing: &FlashTiming,
    ) -> Result<Reservation, FlashError> {
        self.check_block(block, page)?;
        let addr = crate::geometry::PhysicalPageAddr::new(0, 0, block, page);
        let slot = block * self.pages_per_block + page;
        let blk = &mut self.blocks[block];
        if blk.erase_count >= self.endurance_limit {
            return Err(FlashError::WornOut {
                addr,
                erase_cycles: blk.erase_count,
            });
        }
        match self.pages[slot] {
            PageState::Free => {}
            _ => return Err(FlashError::ProgramWithoutErase(addr)),
        }
        if page != blk.write_cursor {
            return Err(FlashError::NonSequentialProgram {
                addr,
                expected_page: blk.write_cursor,
            });
        }
        self.pages[slot] = PageState::Valid;
        blk.write_cursor += 1;
        blk.valid += 1;
        let res = self.server.serve(now, timing.program_page);
        self.stats.programs += 1;
        Ok(res)
    }

    /// Marks a page valid without consuming device time, enforcing the same
    /// sequential-programming rule as [`FlashDie::program_page`].
    ///
    /// This models data that is already resident in flash before the
    /// simulated experiment begins (the paper's input files live on the
    /// flash backbone before kernels are offloaded), so it bypasses the
    /// die's timing but not its state machine.
    pub fn preload_page(&mut self, block: usize, page: usize) -> Result<(), FlashError> {
        self.check_block(block, page)?;
        let addr = crate::geometry::PhysicalPageAddr::new(0, 0, block, page);
        let slot = block * self.pages_per_block + page;
        let blk = &mut self.blocks[block];
        match self.pages[slot] {
            PageState::Free => {}
            _ => return Err(FlashError::ProgramWithoutErase(addr)),
        }
        if page != blk.write_cursor {
            return Err(FlashError::NonSequentialProgram {
                addr,
                expected_page: blk.write_cursor,
            });
        }
        self.pages[slot] = PageState::Valid;
        blk.write_cursor += 1;
        blk.valid += 1;
        Ok(())
    }

    /// Marks a previously valid page as superseded (no die time consumed —
    /// invalidation is a mapping-table act performed by Flashvisor).
    pub fn invalidate_page(&mut self, block: usize, page: usize) -> Result<(), FlashError> {
        self.check_block(block, page)?;
        let slot = block * self.pages_per_block + page;
        if self.pages[slot] != PageState::Valid {
            return Err(FlashError::ReadUnwritten(
                crate::geometry::PhysicalPageAddr::new(0, 0, block, page),
            ));
        }
        self.pages[slot] = PageState::Invalid;
        self.blocks[block].valid -= 1;
        Ok(())
    }

    /// Charges one erase-long busy window on the die without touching any
    /// block state: an erase attempt the media rejected. The block keeps
    /// its pages and its erase counter, so the wear ledger only ever counts
    /// erases that actually completed.
    pub fn failed_erase(&mut self, now: SimTime, timing: &FlashTiming) -> Reservation {
        self.server.serve(now, timing.erase_block)
    }

    /// Erases a block, freeing every page in it.
    pub fn erase_block(
        &mut self,
        now: SimTime,
        block: usize,
        timing: &FlashTiming,
    ) -> Result<Reservation, FlashError> {
        self.check_block(block, 0)?;
        let blk = &mut self.blocks[block];
        blk.erase_count += 1;
        if blk.erase_count > self.endurance_limit {
            return Err(FlashError::WornOut {
                addr: crate::geometry::PhysicalPageAddr::new(0, 0, block, 0),
                erase_cycles: blk.erase_count,
            });
        }
        self.pages[block * self.pages_per_block..(block + 1) * self.pages_per_block]
            .fill(PageState::Free);
        blk.write_cursor = 0;
        blk.valid = 0;
        let res = self.server.serve(now, timing.erase_block);
        self.stats.erases += 1;
        Ok(res)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn die() -> (FlashDie, FlashTiming) {
        (
            FlashDie::new(&FlashGeometry::tiny_for_tests(), 1000, "die0"),
            FlashTiming::fast_for_tests(),
        )
    }

    #[test]
    fn program_then_read_round_trips() {
        let (mut d, t) = die();
        let now = SimTime::ZERO;
        d.program_page(now, 0, 0, &t).unwrap();
        assert_eq!(d.page_state(0, 0), Some(PageState::Valid));
        let r = d.read_page(now, 0, 0, &t).unwrap();
        assert!(r.end > r.start);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().programs, 1);
    }

    #[test]
    fn read_of_unwritten_page_fails() {
        let (mut d, t) = die();
        let err = d.read_page(SimTime::ZERO, 0, 3, &t).unwrap_err();
        assert!(matches!(err, FlashError::ReadUnwritten(_)));
    }

    #[test]
    fn out_of_order_program_is_rejected() {
        let (mut d, t) = die();
        let err = d.program_page(SimTime::ZERO, 0, 2, &t).unwrap_err();
        assert!(matches!(
            err,
            FlashError::NonSequentialProgram {
                expected_page: 0,
                ..
            }
        ));
    }

    #[test]
    fn double_program_requires_erase() {
        let (mut d, t) = die();
        d.program_page(SimTime::ZERO, 0, 0, &t).unwrap();
        // Even after invalidation, the page cannot be reprogrammed in place.
        d.invalidate_page(0, 0).unwrap();
        let err = d.program_page(SimTime::ZERO, 0, 0, &t).unwrap_err();
        assert!(matches!(err, FlashError::ProgramWithoutErase(_)));
        d.erase_block(SimTime::ZERO, 0, &t).unwrap();
        assert_eq!(d.page_state(0, 0), Some(PageState::Free));
        d.program_page(SimTime::ZERO, 0, 0, &t).unwrap();
    }

    #[test]
    fn erase_resets_cursor_and_counts_cycles() {
        let (mut d, t) = die();
        for p in 0..4 {
            d.program_page(SimTime::ZERO, 1, p, &t).unwrap();
        }
        assert_eq!(d.free_pages_in(1), 12);
        d.erase_block(SimTime::ZERO, 1, &t).unwrap();
        assert_eq!(d.erase_count(1), 1);
        assert_eq!(d.free_pages_in(1), 16);
        assert_eq!(d.valid_pages_in(1), 0);
    }

    #[test]
    fn operations_serialize_on_the_die() {
        let (mut d, t) = die();
        let a = d.program_page(SimTime::ZERO, 0, 0, &t).unwrap();
        let b = d.program_page(SimTime::ZERO, 0, 1, &t).unwrap();
        assert_eq!(b.start, a.end);
        assert!(d.next_free() >= b.end);
    }

    #[test]
    fn endurance_limit_is_enforced() {
        let g = FlashGeometry::tiny_for_tests();
        let mut d = FlashDie::new(&g, 2, "short-lived");
        let t = FlashTiming::fast_for_tests();
        d.erase_block(SimTime::ZERO, 0, &t).unwrap();
        d.erase_block(SimTime::ZERO, 0, &t).unwrap();
        let err = d.erase_block(SimTime::ZERO, 0, &t).unwrap_err();
        assert!(matches!(err, FlashError::WornOut { .. }));
        // Programs to the worn block are also refused.
        let err = d.program_page(SimTime::ZERO, 0, 0, &t).unwrap_err();
        assert!(matches!(err, FlashError::WornOut { .. }));
    }

    #[test]
    fn incremental_valid_count_matches_recount() {
        let (mut d, t) = die();
        for p in 0..6 {
            d.program_page(SimTime::ZERO, 0, p, &t).unwrap();
        }
        d.invalidate_page(0, 1).unwrap();
        d.invalidate_page(0, 4).unwrap();
        d.preload_page(0, 6).unwrap();
        assert_eq!(d.valid_pages_in(0), d.recount_valid_pages_in(0));
        assert_eq!(d.valid_pages_in(0), 5);
        assert_eq!(d.programmed_pages_in(0), 7);
        d.erase_block(SimTime::ZERO, 0, &t).unwrap();
        assert_eq!(d.valid_pages_in(0), d.recount_valid_pages_in(0));
        assert_eq!(d.valid_pages_in(0), 0);
        assert_eq!(d.programmed_pages_in(0), 0);
    }

    #[test]
    fn invalidate_requires_valid_page() {
        let (mut d, _t) = die();
        assert!(d.invalidate_page(0, 0).is_err());
    }
}
