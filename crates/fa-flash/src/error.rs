//! Error type for flash backbone operations.

use crate::geometry::PhysicalPageAddr;
use std::fmt;

/// Errors produced by the flash backbone model.
///
/// These model *protocol* violations (programming a page that is not
/// erased, addressing outside the geometry) and the media error the paper's
/// Flashvisor handles by remapping blocks (§4.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlashError {
    /// The physical address does not exist in the configured geometry.
    OutOfRange(PhysicalPageAddr),
    /// A program was issued to a page that already holds data; NAND requires
    /// an erase first.
    ProgramWithoutErase(PhysicalPageAddr),
    /// Pages within a block must be programmed sequentially on real NAND;
    /// an out-of-order program was issued.
    NonSequentialProgram {
        /// The offending address.
        addr: PhysicalPageAddr,
        /// The next page index the block expects.
        expected_page: usize,
    },
    /// The block exceeded its erase endurance and reads back uncorrectable.
    WornOut {
        /// The offending address.
        addr: PhysicalPageAddr,
        /// Number of erase cycles the block has absorbed.
        erase_cycles: u64,
    },
    /// A read was issued to a page that has never been programmed.
    ReadUnwritten(PhysicalPageAddr),
    /// The fault plan failed this program: the page was written but reads
    /// back uncorrectable, so the data never became valid. Flashvisor
    /// handles it by re-allocating the group elsewhere (§4.3 remap).
    InjectedProgramFailure(PhysicalPageAddr),
    /// The fault plan failed this erase: the block kept its contents and
    /// its erase counter did not advance. Repeated failures promote the
    /// block into the bad-block table.
    InjectedEraseFailure(PhysicalPageAddr),
    /// The controller's completion queues disagreed while retiring a
    /// command: the shared tag queue and the per-owner queue popped
    /// different completion times. This is an internal invariant of the
    /// admission model — it can only fire if reordering corrupted the
    /// outstanding-tag accounting — and is surfaced as a hard error so a
    /// fault-induced reordering can never silently skew admission.
    CompletionOrderViolation {
        /// The channel whose controller detected the mismatch.
        channel: usize,
    },
}

impl fmt::Display for FlashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashError::OutOfRange(a) => write!(f, "physical address out of range: {a:?}"),
            FlashError::ProgramWithoutErase(a) => {
                write!(f, "program issued to non-erased page: {a:?}")
            }
            FlashError::NonSequentialProgram {
                addr,
                expected_page,
            } => write!(
                f,
                "non-sequential program at {addr:?}, expected page {expected_page}"
            ),
            FlashError::WornOut { addr, erase_cycles } => {
                write!(f, "block at {addr:?} worn out after {erase_cycles} erases")
            }
            FlashError::ReadUnwritten(a) => write!(f, "read of unwritten page: {a:?}"),
            FlashError::InjectedProgramFailure(a) => {
                write!(f, "injected program failure at {a:?}")
            }
            FlashError::InjectedEraseFailure(a) => write!(f, "injected erase failure at {a:?}"),
            FlashError::CompletionOrderViolation { channel } => write!(
                f,
                "completion-order violation in channel {channel} tag queues"
            ),
        }
    }
}

impl std::error::Error for FlashError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable() {
        let addr = PhysicalPageAddr::new(1, 2, 3, 4);
        let messages = [
            FlashError::OutOfRange(addr).to_string(),
            FlashError::ProgramWithoutErase(addr).to_string(),
            FlashError::NonSequentialProgram {
                addr,
                expected_page: 7,
            }
            .to_string(),
            FlashError::WornOut {
                addr,
                erase_cycles: 3000,
            }
            .to_string(),
            FlashError::ReadUnwritten(addr).to_string(),
            FlashError::InjectedProgramFailure(addr).to_string(),
            FlashError::InjectedEraseFailure(addr).to_string(),
            FlashError::CompletionOrderViolation { channel: 3 }.to_string(),
        ];
        for m in &messages {
            assert!(m.contains("channel: 1") || !m.is_empty());
        }
        assert!(messages[2].contains("expected page 7"));
        assert!(messages[3].contains("3000"));
        assert!(messages[5].contains("injected program failure"));
        assert!(messages[6].contains("injected erase failure"));
        assert!(messages[7].contains("channel 3"));
    }
}
