//! Heterogeneous workload mixes MX1–MX14.
//!
//! The paper builds fourteen heterogeneous workloads, each mixing six of the
//! PolyBench applications (right-hand columns of Table 2). The published
//! table marks membership with dots whose exact column alignment is not
//! recoverable from the text; what *is* recoverable is how many mixes each
//! application participates in (ATAX 4, BICG 4, 2DCONV 5, MVT 9, ADI 9,
//! FDTD 8, GESUM 8, SYRK 5, 3MM 4, COVAR 5, GEMM 8, 2MM 7, SYR2K 4, CORR 4 —
//! 84 memberships = 14 mixes × 6 applications). We therefore regenerate the
//! mixes deterministically with a largest-remaining-count greedy assignment,
//! which reproduces those per-application frequencies exactly and yields an
//! MX1 whose composition (four data-intensive plus two compute-intensive
//! kernels) matches the description accompanying Figure 12b. The
//! substitution is documented in `DESIGN.md`.

use crate::polybench::{polybench_app, polybench_table2, PolyBench};
use fa_kernel::instance::{instantiate_many, InstancePlan};
use fa_kernel::model::Application;
use serde::{Deserialize, Serialize};

/// How many of the fourteen mixes each application appears in, in Table 2
/// row order.
const MEMBERSHIP_COUNTS: [(PolyBench, usize); 14] = [
    (PolyBench::Atax, 4),
    (PolyBench::Bicg, 4),
    (PolyBench::TwoDConv, 5),
    (PolyBench::Mvt, 9),
    (PolyBench::Adi, 9),
    (PolyBench::Fdtd, 8),
    (PolyBench::Gesum, 8),
    (PolyBench::Syrk, 5),
    (PolyBench::ThreeMm, 4),
    (PolyBench::Covar, 5),
    (PolyBench::Gemm, 8),
    (PolyBench::TwoMm, 7),
    (PolyBench::Syr2k, 4),
    (PolyBench::Corr, 4),
];

/// Number of heterogeneous mixes.
pub const MIX_COUNT: usize = 14;
/// Applications per mix.
pub const APPS_PER_MIX: usize = 6;

/// Identifier of one heterogeneous mix (1-based, `MX1`..`MX14`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MixId(pub usize);

/// Names of all mixes, `MX1` through `MX14`.
pub fn mix_names() -> Vec<String> {
    (1..=MIX_COUNT).map(|i| format!("MX{i}")).collect()
}

/// The six applications composing mix `mix` (1-based).
///
/// # Panics
///
/// Panics if `mix` is not in `1..=14`.
pub fn mix_composition(mix: usize) -> Vec<PolyBench> {
    assert!((1..=MIX_COUNT).contains(&mix), "mix must be 1..=14");
    all_compositions()[mix - 1].clone()
}

/// Compositions of all fourteen mixes, index 0 = MX1.
pub fn all_compositions() -> Vec<Vec<PolyBench>> {
    let mut remaining: Vec<(PolyBench, usize)> = MEMBERSHIP_COUNTS.to_vec();
    let order: Vec<PolyBench> = MEMBERSHIP_COUNTS.iter().map(|(b, _)| *b).collect();
    let mut mixes = Vec::with_capacity(MIX_COUNT);
    for _ in 0..MIX_COUNT {
        // Pick the six applications with the highest remaining counts,
        // breaking ties by Table 2 row order. This is deterministic and
        // never places the same application twice in one mix.
        let mut candidates: Vec<(usize, PolyBench, usize)> = remaining
            .iter()
            .enumerate()
            .filter(|(_, (_, c))| *c > 0)
            .map(|(i, (b, c))| (i, *b, *c))
            .collect();
        candidates.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        let chosen: Vec<(usize, PolyBench)> = candidates
            .into_iter()
            .take(APPS_PER_MIX)
            .map(|(i, b, _)| (i, b))
            .collect();
        assert_eq!(
            chosen.len(),
            APPS_PER_MIX,
            "membership counts must support {MIX_COUNT} mixes"
        );
        for (i, _) in &chosen {
            remaining[*i].1 -= 1;
        }
        // Present the mix in Table 2 order so data-intensive applications
        // come first (matches the CDF discussion of Figure 12b).
        let mut mix: Vec<PolyBench> = chosen.into_iter().map(|(_, b)| b).collect();
        mix.sort_by_key(|b| order.iter().position(|o| o == b).expect("known bench"));
        mixes.push(mix);
    }
    mixes
}

/// Builds the 24 application instances of one mix (four instances of each
/// of the six applications, §5.1), with data sections laid out disjointly.
pub fn mix_apps(mix: usize, data_scale: u64) -> Vec<Application> {
    let templates: Vec<Application> = mix_composition(mix)
        .into_iter()
        .map(|b| polybench_app(b, data_scale))
        .collect();
    instantiate_many(&templates, &InstancePlan::heterogeneous())
}

/// Convenience: the Table 2 names of the applications in a mix.
pub fn mix_app_names(mix: usize) -> Vec<&'static str> {
    let table = polybench_table2();
    mix_composition(mix)
        .into_iter()
        .map(|b| {
            table
                .iter()
                .find(|r| r.bench == b)
                .map(|r| r.name)
                .expect("bench present in table")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn membership_counts_sum_to_fourteen_mixes_of_six() {
        let total: usize = MEMBERSHIP_COUNTS.iter().map(|(_, c)| c).sum();
        assert_eq!(total, MIX_COUNT * APPS_PER_MIX);
    }

    #[test]
    fn every_mix_has_six_distinct_applications() {
        for (i, mix) in all_compositions().into_iter().enumerate() {
            assert_eq!(mix.len(), APPS_PER_MIX, "MX{}", i + 1);
            let mut dedup = mix.clone();
            dedup.sort_by_key(|b| format!("{b:?}"));
            dedup.dedup();
            assert_eq!(dedup.len(), APPS_PER_MIX, "duplicate app in MX{}", i + 1);
        }
    }

    #[test]
    fn per_application_frequencies_match_table2() {
        let mut counts: HashMap<PolyBench, usize> = HashMap::new();
        for mix in all_compositions() {
            for b in mix {
                *counts.entry(b).or_default() += 1;
            }
        }
        for (bench, expected) in MEMBERSHIP_COUNTS {
            assert_eq!(
                counts.get(&bench).copied().unwrap_or(0),
                expected,
                "{bench:?}"
            );
        }
    }

    #[test]
    fn mx1_mixes_data_and_compute_intensive_kernels() {
        // Figure 12b describes MX1 as four data-intensive kernels followed
        // by two computation-intensive ones.
        let table = polybench_table2();
        let mix = mix_composition(1);
        let data = mix
            .iter()
            .filter(|b| {
                table
                    .iter()
                    .find(|r| r.bench == **b)
                    .map(|r| r.is_data_intensive())
                    .unwrap_or(false)
            })
            .count();
        assert_eq!(data, 4, "MX1 composition: {mix:?}");
        assert_eq!(mix.len() - data, 2);
    }

    #[test]
    fn mix_apps_builds_24_disjoint_instances() {
        let apps = mix_apps(1, 64);
        assert_eq!(apps.len(), 24);
        let mut ranges: Vec<(u64, u64)> = apps
            .iter()
            .flat_map(|a| a.kernels.iter().map(|k| k.data_section.flash_range()))
            .collect();
        ranges.sort_unstable();
        for pair in ranges.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "overlapping data sections");
        }
        // Four instances of each of six distinct names.
        let mut by_name: HashMap<String, usize> = HashMap::new();
        for a in &apps {
            *by_name.entry(a.name.clone()).or_default() += 1;
        }
        assert_eq!(by_name.len(), 6);
        assert!(by_name.values().all(|&c| c == 4));
    }

    #[test]
    fn mix_names_and_lookup_are_consistent() {
        assert_eq!(mix_names().len(), 14);
        assert_eq!(mix_names()[0], "MX1");
        assert_eq!(mix_app_names(1).len(), 6);
    }

    #[test]
    #[should_panic(expected = "mix must be")]
    fn out_of_range_mix_panics() {
        mix_composition(15);
    }
}
