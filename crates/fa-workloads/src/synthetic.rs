//! Parametric synthetic kernels.
//!
//! The motivation study of §3.1 (Figures 3b and 3c) sweeps the fraction of
//! serialized execution in a kernel from 0 % to 50 % while varying the
//! number of cores. This module provides the parametric kernel used for
//! that sweep, plus a generic synthetic application handy in tests and
//! examples.

use fa_kernel::model::{AppId, Application, ApplicationBuilder, DataSection};
use fa_platform::lwp::InstructionMix;
use serde::{Deserialize, Serialize};

/// Parameters of a synthetic application.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// Total instructions in the kernel.
    pub instructions: u64,
    /// Fraction of the instructions that must execute serially
    /// (`0.0..=1.0`).
    pub serial_fraction: f64,
    /// Input bytes read from flash.
    pub input_bytes: u64,
    /// Output bytes written to flash.
    pub output_bytes: u64,
    /// Load/store ratio of the instruction stream.
    pub ldst_ratio: f64,
    /// Multiplier ratio of the instruction stream.
    pub mul_ratio: f64,
    /// Screens used for the parallel portion.
    pub parallel_screens: usize,
}

impl Default for SyntheticSpec {
    fn default() -> Self {
        SyntheticSpec {
            instructions: 50_000_000,
            serial_fraction: 0.0,
            input_bytes: 64 << 20,
            output_bytes: 8 << 20,
            ldst_ratio: 0.40,
            mul_ratio: 0.10,
            parallel_screens: 8,
        }
    }
}

impl SyntheticSpec {
    /// The sweep points of Figure 3b/3c: serial fractions from 0 % to 50 %.
    pub fn figure3_serial_fractions() -> Vec<f64> {
        vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5]
    }
}

/// Builds a synthetic application: one kernel with a serial microblock (if
/// `serial_fraction > 0`) followed by a fully parallel microblock.
pub fn synthetic_app(name: &str, spec: &SyntheticSpec) -> Application {
    let serial_fraction = spec.serial_fraction.clamp(0.0, 1.0);
    let serial_instr = (spec.instructions as f64 * serial_fraction) as u64;
    let parallel_instr = spec.instructions - serial_instr;
    let serial_bytes_in = (spec.input_bytes as f64 * serial_fraction) as u64;
    let parallel_bytes_in = spec.input_bytes - serial_bytes_in;
    let serial_bytes_out = (spec.output_bytes as f64 * serial_fraction) as u64;
    let parallel_bytes_out = spec.output_bytes - serial_bytes_out;

    let mut blocks: Vec<(usize, InstructionMix, u64, u64)> = Vec::new();
    if serial_instr > 0 {
        blocks.push((
            1,
            InstructionMix::new(serial_instr, spec.ldst_ratio, spec.mul_ratio),
            serial_bytes_in,
            serial_bytes_out,
        ));
    }
    if parallel_instr > 0 || blocks.is_empty() {
        blocks.push((
            spec.parallel_screens.max(1),
            InstructionMix::new(parallel_instr, spec.ldst_ratio, spec.mul_ratio),
            parallel_bytes_in,
            parallel_bytes_out,
        ));
    }
    ApplicationBuilder::new(name)
        .kernel(
            format!("{name}-k0"),
            DataSection {
                flash_base: 0,
                input_bytes: spec.input_bytes,
                output_bytes: spec.output_bytes,
            },
            &blocks,
        )
        .build(AppId(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_serial_fraction_yields_single_parallel_microblock() {
        let app = synthetic_app("S", &SyntheticSpec::default());
        assert_eq!(app.kernels[0].microblocks.len(), 1);
        assert!(!app.kernels[0].microblocks[0].is_serial());
    }

    #[test]
    fn nonzero_serial_fraction_adds_serial_microblock() {
        let spec = SyntheticSpec {
            serial_fraction: 0.3,
            ..Default::default()
        };
        let app = synthetic_app("S", &spec);
        assert_eq!(app.kernels[0].microblocks.len(), 2);
        assert!(app.kernels[0].microblocks[0].is_serial());
        let serial_instr = app.kernels[0].microblocks[0].instructions();
        let total = app.kernels[0].instructions();
        let frac = serial_instr as f64 / total as f64;
        assert!((frac - 0.3).abs() < 0.01, "serial fraction {frac}");
    }

    #[test]
    fn figure3_sweep_points_match_paper() {
        assert_eq!(
            SyntheticSpec::figure3_serial_fractions(),
            vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5]
        );
    }

    proptest! {
        #[test]
        fn instructions_are_conserved(frac in 0.0f64..1.0) {
            let spec = SyntheticSpec { serial_fraction: frac, ..Default::default() };
            let app = synthetic_app("S", &spec);
            let total = app.kernels[0].instructions();
            let expected = spec.instructions;
            // Rounding across screens may drop a few instructions.
            prop_assert!((total as i64 - expected as i64).abs() < 64,
                "total {total} expected {expected}");
        }

        #[test]
        fn data_sections_are_conserved(frac in 0.0f64..1.0) {
            let spec = SyntheticSpec { serial_fraction: frac, ..Default::default() };
            let app = synthetic_app("S", &spec);
            prop_assert_eq!(
                app.kernels[0].data_section.total_bytes(),
                spec.input_bytes + spec.output_bytes
            );
        }
    }
}
