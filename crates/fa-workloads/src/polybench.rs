//! PolyBench-derived analytic workloads (Table 2 of the paper).
//!
//! Each benchmark is modelled from the characteristics the paper reports:
//! number of microblocks, number of *serial* microblocks (those with a
//! single screen), input size per instance, the ratio of load/store
//! instructions, and the data volume processed per thousand instructions
//! (B/KI). The instruction count of an instance follows directly from the
//! input size and B/KI; the microblock/screen structure follows from the
//! microblock counts.
//!
//! The paper runs full-size inputs (hundreds of MB to a few GB per
//! instance). To keep whole-evaluation simulations fast, workloads accept a
//! *data scale divisor*: the default harness uses `scale = 16`, which
//! preserves every ratio the figures depend on (B/KI, LD/ST, microblock
//! structure) while dividing simulated data volume and instruction count by
//! the same factor.

use fa_kernel::model::{AppId, Application, ApplicationBuilder, DataSection};
use fa_platform::lwp::InstructionMix;
use serde::{Deserialize, Serialize};

/// The fourteen PolyBench-derived benchmarks of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum PolyBench {
    Atax,
    Bicg,
    TwoDConv,
    Mvt,
    Adi,
    Fdtd,
    Gesum,
    Syrk,
    ThreeMm,
    Covar,
    Gemm,
    TwoMm,
    Syr2k,
    Corr,
}

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Which benchmark this row describes.
    pub bench: PolyBench,
    /// Benchmark name as printed in the paper.
    pub name: &'static str,
    /// Short description.
    pub description: &'static str,
    /// Number of microblocks in the kernel.
    pub microblocks: usize,
    /// Number of microblocks that are serial (single screen).
    pub serial_microblocks: usize,
    /// Input data per instance, in megabytes (unscaled).
    pub input_mb: u64,
    /// Load/store instructions as a fraction of all instructions.
    pub ldst_ratio: f64,
    /// Bytes of data processed per thousand instructions.
    pub bytes_per_kilo_instruction: f64,
}

impl Table2Row {
    /// True if the paper groups this benchmark with the data-intensive set
    /// (high B/KI).
    pub fn is_data_intensive(&self) -> bool {
        self.bytes_per_kilo_instruction >= 20.0
    }
}

/// Fraction of the input volume written back as output (outputs of these
/// kernels — vectors, reduced matrices — are small relative to inputs).
const OUTPUT_FRACTION: f64 = 0.125;
/// Fraction of instructions that use the multiplier FUs in these
/// linear-algebra kernels.
const MUL_RATIO: f64 = 0.15;
/// Screens per parallelizable microblock: enough to spread over every
/// worker LWP with a little slack for load balancing.
const SCREENS_PER_PARALLEL_MICROBLOCK: usize = 8;
/// Relative weight of a serial microblock's work compared to a parallel
/// one. Serial microblocks in these kernels are set-up and reduction steps
/// (e.g. converting `fict` into `ey` in FDTD, §4.2), which touch far fewer
/// iterations than the main parallel loops.
const SERIAL_MICROBLOCK_WEIGHT: f64 = 0.15;

/// Names of all fourteen benchmarks in Table 2 order.
pub fn polybench_names() -> Vec<&'static str> {
    polybench_table2().iter().map(|r| r.name).collect()
}

/// All benchmarks in Table 2 order.
pub fn all_benches() -> Vec<PolyBench> {
    polybench_table2().iter().map(|r| r.bench).collect()
}

/// The full Table 2, in the paper's row order.
pub fn polybench_table2() -> Vec<Table2Row> {
    use PolyBench::*;
    vec![
        Table2Row {
            bench: Atax,
            name: "ATAX",
            description: "Matrix transpose and vector multiplication",
            microblocks: 2,
            serial_microblocks: 1,
            input_mb: 640,
            ldst_ratio: 0.4561,
            bytes_per_kilo_instruction: 68.86,
        },
        Table2Row {
            bench: Bicg,
            name: "BICG",
            description: "BiCG sub-kernel of BiCGStab",
            microblocks: 2,
            serial_microblocks: 1,
            input_mb: 640,
            ldst_ratio: 0.46,
            bytes_per_kilo_instruction: 72.3,
        },
        Table2Row {
            bench: TwoDConv,
            name: "2DCONV",
            description: "Two-dimensional convolution",
            microblocks: 1,
            serial_microblocks: 0,
            input_mb: 640,
            ldst_ratio: 0.2396,
            bytes_per_kilo_instruction: 35.59,
        },
        Table2Row {
            bench: Mvt,
            name: "MVT",
            description: "Matrix-vector product and transpose",
            microblocks: 1,
            serial_microblocks: 0,
            input_mb: 640,
            ldst_ratio: 0.451,
            bytes_per_kilo_instruction: 72.05,
        },
        Table2Row {
            bench: Adi,
            name: "ADI",
            description: "Alternating-direction implicit solver",
            microblocks: 3,
            serial_microblocks: 1,
            input_mb: 1920,
            ldst_ratio: 0.2396,
            bytes_per_kilo_instruction: 35.59,
        },
        Table2Row {
            bench: Fdtd,
            name: "FDTD",
            description: "2-D finite-difference time-domain (Yee's method)",
            microblocks: 3,
            serial_microblocks: 1,
            input_mb: 1920,
            ldst_ratio: 0.2727,
            bytes_per_kilo_instruction: 38.52,
        },
        Table2Row {
            bench: Gesum,
            name: "GESUM",
            description: "Scalar, vector and matrix multiplication",
            microblocks: 1,
            serial_microblocks: 0,
            input_mb: 640,
            ldst_ratio: 0.4808,
            bytes_per_kilo_instruction: 72.13,
        },
        Table2Row {
            bench: Syrk,
            name: "SYRK",
            description: "Symmetric rank-k update",
            microblocks: 1,
            serial_microblocks: 0,
            input_mb: 1280,
            ldst_ratio: 0.2821,
            bytes_per_kilo_instruction: 5.29,
        },
        Table2Row {
            bench: ThreeMm,
            name: "3MM",
            description: "Three chained matrix multiplications",
            microblocks: 3,
            serial_microblocks: 1,
            input_mb: 2560,
            ldst_ratio: 0.3368,
            bytes_per_kilo_instruction: 2.48,
        },
        Table2Row {
            bench: Covar,
            name: "COVAR",
            description: "Covariance computation",
            microblocks: 3,
            serial_microblocks: 1,
            input_mb: 640,
            ldst_ratio: 0.3433,
            bytes_per_kilo_instruction: 2.86,
        },
        Table2Row {
            bench: Gemm,
            name: "GEMM",
            description: "General matrix-matrix multiplication",
            microblocks: 1,
            serial_microblocks: 0,
            input_mb: 192,
            ldst_ratio: 0.3077,
            bytes_per_kilo_instruction: 5.29,
        },
        Table2Row {
            bench: TwoMm,
            name: "2MM",
            description: "Two chained matrix multiplications",
            microblocks: 2,
            serial_microblocks: 1,
            input_mb: 2560,
            ldst_ratio: 0.3333,
            bytes_per_kilo_instruction: 3.76,
        },
        Table2Row {
            bench: Syr2k,
            name: "SYR2K",
            description: "Symmetric rank-2k update",
            microblocks: 1,
            serial_microblocks: 0,
            input_mb: 1280,
            ldst_ratio: 0.3019,
            bytes_per_kilo_instruction: 1.85,
        },
        Table2Row {
            bench: Corr,
            name: "CORR",
            description: "Correlation computation",
            microblocks: 4,
            serial_microblocks: 1,
            input_mb: 640,
            ldst_ratio: 0.3304,
            bytes_per_kilo_instruction: 2.79,
        },
    ]
}

/// Looks up the Table 2 row for a benchmark.
pub fn table2_row(bench: PolyBench) -> Table2Row {
    polybench_table2()
        .into_iter()
        .find(|r| r.bench == bench)
        .expect("every benchmark has a Table 2 row")
}

/// Looks up a benchmark by its printed name (case-insensitive).
pub fn by_name(name: &str) -> Option<PolyBench> {
    polybench_table2()
        .into_iter()
        .find(|r| r.name.eq_ignore_ascii_case(name))
        .map(|r| r.bench)
}

/// Builds the analytic [`Application`] for `bench`, dividing the full-size
/// input by `data_scale` (1 reproduces the paper's sizes).
///
/// # Panics
///
/// Panics if `data_scale` is zero.
pub fn polybench_app(bench: PolyBench, data_scale: u64) -> Application {
    assert!(data_scale > 0, "data_scale must be positive");
    let row = table2_row(bench);
    build_app(&row, data_scale)
}

fn build_app(row: &Table2Row, data_scale: u64) -> Application {
    let input_bytes = (row.input_mb * 1024 * 1024) / data_scale;
    let output_bytes = (input_bytes as f64 * OUTPUT_FRACTION) as u64;
    let total_instructions =
        ((input_bytes + output_bytes) as f64 / row.bytes_per_kilo_instruction * 1_000.0) as u64;

    // Distribute work across microblocks by weight: the first
    // `serial_microblocks` microblocks are serial set-up/reduction steps
    // and carry a small share; the remainder are the parallel main loops
    // and fan out into screens. (FDTD's serial `fict`→`ey` conversion in
    // §4.2 is the motivating example for placing the serial blocks first.)
    let weights: Vec<f64> = (0..row.microblocks)
        .map(|i| {
            if i < row.serial_microblocks {
                SERIAL_MICROBLOCK_WEIGHT
            } else {
                1.0
            }
        })
        .collect();
    let weight_sum: f64 = weights.iter().sum();
    let blocks: Vec<(usize, InstructionMix, u64, u64)> = weights
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let share = w / weight_sum;
            let screens = if i < row.serial_microblocks {
                1
            } else {
                SCREENS_PER_PARALLEL_MICROBLOCK
            };
            let instr = (total_instructions as f64 * share) as u64;
            let mix = InstructionMix::new(instr, row.ldst_ratio, MUL_RATIO);
            (
                screens,
                mix,
                (input_bytes as f64 * share) as u64,
                (output_bytes as f64 * share) as u64,
            )
        })
        .collect();

    ApplicationBuilder::new(row.name)
        .kernel(
            format!("{}-k0", row.name),
            DataSection {
                flash_base: 0,
                input_bytes,
                output_bytes,
            },
            &blocks,
        )
        .build(AppId(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn table2_has_fourteen_rows_matching_the_paper() {
        let t = polybench_table2();
        assert_eq!(t.len(), 14);
        let atax = &t[0];
        assert_eq!(atax.name, "ATAX");
        assert_eq!(atax.microblocks, 2);
        assert_eq!(atax.serial_microblocks, 1);
        assert_eq!(atax.input_mb, 640);
        assert!((atax.ldst_ratio - 0.4561).abs() < 1e-9);
        let corr = &t[13];
        assert_eq!(corr.name, "CORR");
        assert_eq!(corr.microblocks, 4);
    }

    #[test]
    fn data_vs_compute_grouping_matches_figure10() {
        // The paper's data-intensive group: ATAX..GESUM (plus ADI/FDTD);
        // compute-intensive: SYRK..CORR.
        for row in polybench_table2() {
            match row.bench {
                PolyBench::Atax
                | PolyBench::Bicg
                | PolyBench::TwoDConv
                | PolyBench::Mvt
                | PolyBench::Adi
                | PolyBench::Fdtd
                | PolyBench::Gesum => assert!(row.is_data_intensive(), "{}", row.name),
                _ => assert!(!row.is_data_intensive(), "{}", row.name),
            }
        }
    }

    #[test]
    fn app_structure_matches_table2_row() {
        for row in polybench_table2() {
            let app = polybench_app(row.bench, 16);
            assert_eq!(app.kernels.len(), 1);
            let k = &app.kernels[0];
            assert_eq!(k.microblocks.len(), row.microblocks, "{}", row.name);
            assert_eq!(
                k.serial_microblocks(),
                row.serial_microblocks,
                "{}",
                row.name
            );
        }
    }

    #[test]
    fn bytes_per_kilo_instruction_is_preserved_by_the_model() {
        for row in polybench_table2() {
            let app = polybench_app(row.bench, 16);
            let model_bki = app.kernels[0].bytes_per_kilo_instruction();
            let rel_err =
                (model_bki - row.bytes_per_kilo_instruction).abs() / row.bytes_per_kilo_instruction;
            assert!(
                rel_err < 0.02,
                "{}: model B/KI {model_bki:.2} vs table {:.2}",
                row.name,
                row.bytes_per_kilo_instruction
            );
        }
    }

    #[test]
    fn scaling_divides_data_volume_proportionally() {
        let full = polybench_app(PolyBench::Atax, 1);
        let scaled = polybench_app(PolyBench::Atax, 16);
        let ratio = full.flash_bytes() as f64 / scaled.flash_bytes() as f64;
        assert!((ratio - 16.0).abs() < 0.05, "ratio {ratio}");
        assert_eq!(full.kernels[0].data_section.input_bytes, 640 << 20);
    }

    #[test]
    fn name_lookup_round_trips() {
        for row in polybench_table2() {
            assert_eq!(by_name(row.name), Some(row.bench));
        }
        assert_eq!(by_name("nope"), None);
    }

    #[test]
    #[should_panic(expected = "data_scale")]
    fn zero_scale_panics() {
        polybench_app(PolyBench::Gemm, 0);
    }

    proptest! {
        #[test]
        fn any_scale_preserves_microblock_structure(scale in 1u64..64) {
            for row in polybench_table2() {
                let app = polybench_app(row.bench, scale);
                prop_assert_eq!(app.kernels[0].microblocks.len(), row.microblocks);
                prop_assert!(app.kernels[0].instructions() > 0);
            }
        }
    }
}
