//! Graph and big-data workloads used by the extended evaluation (§5.6).
//!
//! The paper selects five representative data-intensive applications from
//! the Rodinia graph benchmarks and the Mars MapReduce suite: k-nearest
//! neighbours (`nn`), breadth-first search (`bfs`), Needleman–Wunsch DNA
//! sequence alignment (`nw`), grid path-finding (`path`), and MapReduce
//! word count (`wc`). We model them analytically the same way as the
//! PolyBench set: `bfs` and `nn` contain serial microblocks, while `nw` and
//! `path` have none (both facts are stated in §5.6); `wc` gets a serial
//! reduce phase after its parallel map phase.

use fa_kernel::model::{AppId, Application, ApplicationBuilder, DataSection};
use fa_platform::lwp::InstructionMix;
use serde::{Deserialize, Serialize};

/// The five graph/big-data benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum BigDataBench {
    Bfs,
    WordCount,
    Nn,
    Nw,
    Path,
}

/// Modelled characteristics of one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BigDataRow {
    /// Which benchmark.
    pub bench: BigDataBench,
    /// Printed name.
    pub name: &'static str,
    /// Description.
    pub description: &'static str,
    /// Microblocks in the kernel.
    pub microblocks: usize,
    /// Serial microblocks.
    pub serial_microblocks: usize,
    /// Input megabytes per instance (unscaled).
    pub input_mb: u64,
    /// Load/store ratio.
    pub ldst_ratio: f64,
    /// Bytes per kilo-instruction.
    pub bytes_per_kilo_instruction: f64,
}

/// All five benchmarks in the order Figure 16 lists them.
pub fn bigdata_table() -> Vec<BigDataRow> {
    use BigDataBench::*;
    vec![
        BigDataRow {
            bench: Bfs,
            name: "bfs",
            description: "Breadth-first graph traversal",
            microblocks: 3,
            serial_microblocks: 1,
            input_mb: 1024,
            ldst_ratio: 0.52,
            bytes_per_kilo_instruction: 61.0,
        },
        BigDataRow {
            bench: WordCount,
            name: "wc",
            description: "MapReduce word count",
            microblocks: 2,
            serial_microblocks: 1,
            input_mb: 1536,
            ldst_ratio: 0.44,
            bytes_per_kilo_instruction: 55.0,
        },
        BigDataRow {
            bench: Nn,
            name: "nn",
            description: "k-nearest-neighbour search",
            microblocks: 2,
            serial_microblocks: 1,
            input_mb: 768,
            ldst_ratio: 0.47,
            bytes_per_kilo_instruction: 48.0,
        },
        BigDataRow {
            bench: Nw,
            name: "nw",
            description: "Needleman-Wunsch DNA sequence alignment",
            microblocks: 2,
            serial_microblocks: 0,
            input_mb: 1024,
            ldst_ratio: 0.41,
            bytes_per_kilo_instruction: 42.0,
        },
        BigDataRow {
            bench: Path,
            name: "path",
            description: "Grid traversal (pathfinder)",
            microblocks: 2,
            serial_microblocks: 0,
            input_mb: 1024,
            ldst_ratio: 0.38,
            bytes_per_kilo_instruction: 45.0,
        },
    ]
}

/// Names in Figure 16 order.
pub fn bigdata_names() -> Vec<&'static str> {
    bigdata_table().iter().map(|r| r.name).collect()
}

/// Output fraction of these workloads (results are small relative to the
/// scanned inputs).
const OUTPUT_FRACTION: f64 = 0.0625;
/// Screens per parallel microblock.
const SCREENS_PER_PARALLEL_MICROBLOCK: usize = 8;
/// Multiplier share of the instruction stream.
const MUL_RATIO: f64 = 0.08;
/// Relative weight of a serial microblock (reduce/merge phases) compared to
/// a parallel one (map/expand phases).
const SERIAL_MICROBLOCK_WEIGHT: f64 = 0.2;

/// Builds the analytic application for one benchmark with the given data
/// scale divisor.
///
/// # Panics
///
/// Panics if `data_scale` is zero.
pub fn bigdata_app(bench: BigDataBench, data_scale: u64) -> Application {
    assert!(data_scale > 0, "data_scale must be positive");
    let row = bigdata_table()
        .into_iter()
        .find(|r| r.bench == bench)
        .expect("all benches are in the table");
    let input_bytes = (row.input_mb * 1024 * 1024) / data_scale;
    let output_bytes = (input_bytes as f64 * OUTPUT_FRACTION) as u64;
    let total_instructions =
        ((input_bytes + output_bytes) as f64 / row.bytes_per_kilo_instruction * 1_000.0) as u64;
    // The parallel phases come first (map/expand), the serial phases last
    // (reduce/frontier merge), which is where these workloads serialize.
    // Serial phases carry a small share of the total work.
    let parallel_blocks = row.microblocks - row.serial_microblocks;
    let weights: Vec<f64> = (0..row.microblocks)
        .map(|i| {
            if i < parallel_blocks {
                1.0
            } else {
                SERIAL_MICROBLOCK_WEIGHT
            }
        })
        .collect();
    let weight_sum: f64 = weights.iter().sum();
    let blocks: Vec<(usize, InstructionMix, u64, u64)> = weights
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let share = w / weight_sum;
            let screens = if i < parallel_blocks {
                SCREENS_PER_PARALLEL_MICROBLOCK
            } else {
                1
            };
            let mix = InstructionMix::new(
                (total_instructions as f64 * share) as u64,
                row.ldst_ratio,
                MUL_RATIO,
            );
            (
                screens,
                mix,
                (input_bytes as f64 * share) as u64,
                (output_bytes as f64 * share) as u64,
            )
        })
        .collect();
    ApplicationBuilder::new(row.name)
        .kernel(
            format!("{}-k0", row.name),
            DataSection {
                flash_base: 0,
                input_bytes,
                output_bytes,
            },
            &blocks,
        )
        .build(AppId(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_lists_the_five_section56_benchmarks() {
        let names = bigdata_names();
        assert_eq!(names, vec!["bfs", "wc", "nn", "nw", "path"]);
    }

    #[test]
    fn serial_structure_matches_section56() {
        // §5.6: bfs and nn have serial microblocks; nw and path do not.
        for row in bigdata_table() {
            match row.bench {
                BigDataBench::Nw | BigDataBench::Path => {
                    assert_eq!(row.serial_microblocks, 0, "{}", row.name)
                }
                _ => assert!(row.serial_microblocks >= 1, "{}", row.name),
            }
        }
    }

    #[test]
    fn all_bigdata_apps_are_data_intensive() {
        for row in bigdata_table() {
            let app = bigdata_app(row.bench, 16);
            assert!(
                app.kernels[0].bytes_per_kilo_instruction() >= 20.0,
                "{} should be data-intensive",
                row.name
            );
        }
    }

    #[test]
    fn app_microblock_counts_match_table() {
        for row in bigdata_table() {
            let app = bigdata_app(row.bench, 16);
            assert_eq!(app.kernels[0].microblocks.len(), row.microblocks);
            assert_eq!(app.kernels[0].serial_microblocks(), row.serial_microblocks);
        }
    }

    #[test]
    fn parallel_phases_precede_serial_phases() {
        let app = bigdata_app(BigDataBench::WordCount, 16);
        let blocks = &app.kernels[0].microblocks;
        assert!(!blocks[0].is_serial());
        assert!(blocks[1].is_serial());
    }
}
