//! Workload suite for the FlashAbacus evaluation.
//!
//! The paper evaluates three groups of workloads:
//!
//! * **PolyBench-derived kernels** (Table 2): fourteen linear-algebra and
//!   stencil benchmarks (ATAX, BICG, 2DCONV, MVT, ADI, FDTD, GESUM, SYRK,
//!   3MM, COVAR, GEMM, 2MM, SYR2K, CORR), each characterised by its
//!   microblock count, number of serial microblocks, input size, load/store
//!   ratio, and bytes-per-kilo-instruction.
//! * **Heterogeneous mixes** MX1–MX14 (the right half of Table 2): fourteen
//!   combinations of six applications each.
//! * **Graph / big-data applications** (§5.6): k-nearest neighbours,
//!   breadth-first search, Needleman–Wunsch DNA alignment, grid pathfinding,
//!   and MapReduce word count.
//!
//! All workloads are *analytic* models built on `fa-kernel`: what the
//! schedulers consume is microblock/screen structure, instruction mixes,
//! and data-section footprints — precisely the columns of Table 2.

pub mod bigdata;
pub mod mixes;
pub mod polybench;
pub mod synthetic;
pub mod tenants;

pub use bigdata::{bigdata_app, bigdata_names, BigDataBench};
pub use mixes::{mix_apps, mix_composition, mix_names};
pub use polybench::{polybench_app, polybench_names, polybench_table2, PolyBench, Table2Row};
pub use synthetic::{synthetic_app, SyntheticSpec};
pub use tenants::{tenant_names, tenant_specs, tenant_templates};
