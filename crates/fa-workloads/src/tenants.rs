//! Tenant templates for the open-loop scale-out campaigns.
//!
//! The multi-tenant traffic engine (`flashabacus::openloop`) instantiates
//! one application per arriving tenant from a small pool of templates. This
//! module provides the three canonical shapes the scale-out experiments
//! cycle through — a read-heavy scan, a compute-heavy kernel, and a
//! write-heavy producer — sized so a 1000-tenant campaign finishes in
//! seconds at the default `FA_DATA_SCALE`.
//!
//! Every size is divided by the experiment's `data_scale` (with a floor so
//! extreme scales never degenerate to empty kernels), mirroring how the
//! Table 2 workloads scale.

use crate::synthetic::{synthetic_app, SyntheticSpec};
use fa_kernel::model::Application;

/// Smallest data section a tenant template may shrink to (per direction).
const MIN_BYTES: u64 = 4 << 10;
/// Smallest instruction count a tenant template may shrink to.
const MIN_INSTRUCTIONS: u64 = 10_000;

fn scaled(bytes: u64, data_scale: u64) -> u64 {
    (bytes / data_scale.max(1)).max(MIN_BYTES)
}

fn scaled_instr(instructions: u64, data_scale: u64) -> u64 {
    (instructions / data_scale.max(1)).max(MIN_INSTRUCTIONS)
}

/// The named tenant shapes, in the order [`tenant_templates`] emits them.
/// Arrival plans index templates modulo this list, so the order is part of
/// the determinism contract.
pub fn tenant_names() -> [&'static str; 3] {
    ["tenant-read", "tenant-compute", "tenant-write"]
}

/// The spec behind each template at the given data scale, alongside its
/// name. Exposed so tests can assert the shapes without rebuilding them.
pub fn tenant_specs(data_scale: u64) -> Vec<(&'static str, SyntheticSpec)> {
    vec![
        // A scan: lots of flash input, little compute, small result.
        (
            "tenant-read",
            SyntheticSpec {
                instructions: scaled_instr(1_600_000, data_scale),
                serial_fraction: 0.0,
                input_bytes: scaled(2 << 20, data_scale),
                output_bytes: scaled(256 << 10, data_scale),
                ldst_ratio: 0.55,
                mul_ratio: 0.05,
                parallel_screens: 2,
            },
        ),
        // A number-cruncher: modest I/O, the campaign's longest service time.
        (
            "tenant-compute",
            SyntheticSpec {
                instructions: scaled_instr(6_400_000, data_scale),
                serial_fraction: 0.1,
                input_bytes: scaled(512 << 10, data_scale),
                output_bytes: scaled(128 << 10, data_scale),
                ldst_ratio: 0.25,
                mul_ratio: 0.30,
                parallel_screens: 4,
            },
        ),
        // A producer: flash programs dominate, the shape the QoS governor
        // squeezes when it hogs the channel tags.
        (
            "tenant-write",
            SyntheticSpec {
                instructions: scaled_instr(1_600_000, data_scale),
                serial_fraction: 0.0,
                input_bytes: scaled(512 << 10, data_scale),
                output_bytes: scaled(1 << 20, data_scale),
                ldst_ratio: 0.50,
                mul_ratio: 0.05,
                parallel_screens: 2,
            },
        ),
    ]
}

/// Builds the three tenant templates at the given data scale, in the fixed
/// [`tenant_names`] order.
pub fn tenant_templates(data_scale: u64) -> Vec<Application> {
    tenant_specs(data_scale)
        .iter()
        .map(|(name, spec)| synthetic_app(name, spec))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_templates_in_the_contract_order() {
        let apps = tenant_templates(16);
        let names: Vec<&str> = apps.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, tenant_names().to_vec());
    }

    #[test]
    fn scaling_preserves_the_shape_ordering() {
        for scale in [1u64, 16, 256, 4096] {
            let specs = tenant_specs(scale);
            let read = &specs[0].1;
            let compute = &specs[1].1;
            let write = &specs[2].1;
            assert!(compute.instructions >= read.instructions, "scale {scale}");
            assert!(
                write.output_bytes >= write.input_bytes || write.output_bytes == MIN_BYTES,
                "scale {scale}"
            );
            for (_, s) in &specs {
                assert!(s.instructions >= MIN_INSTRUCTIONS);
                assert!(s.input_bytes >= MIN_BYTES);
                assert!(s.output_bytes >= MIN_BYTES);
            }
        }
    }

    #[test]
    fn extreme_scale_never_degenerates() {
        let apps = tenant_templates(u64::MAX);
        for app in &apps {
            assert!(app.flash_bytes() >= 2 * MIN_BYTES, "{}", app.name);
            assert!(app.kernels[0].instructions() > 0, "{}", app.name);
        }
    }
}
