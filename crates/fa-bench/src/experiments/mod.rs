//! One module per table/figure of the paper's evaluation.
//!
//! Each module exposes a `report*` function returning the formatted text a
//! reader would compare against the corresponding figure. The `campaign`
//! module runs every (workload, system) pair once so that Figures 10–14,
//! which all project the same runs, do not repeat the simulations.

pub mod campaign;
pub mod endurance;
pub mod fig10_throughput;
pub mod fig11_latency;
pub mod fig12_cdf;
pub mod fig13_energy;
pub mod fig14_utilization;
pub mod fig15_timeline;
pub mod fig16_bigdata;
pub mod fig3_motivation;
pub mod policy_ablation;
pub mod scaleout;
pub mod tables;

pub use campaign::Campaign;
