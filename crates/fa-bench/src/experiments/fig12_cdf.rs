//! Figure 12: CDFs of kernel completion times (ATAX and MX1).

use crate::report::Table;
use crate::runner::{
    heterogeneous_workload, homogeneous_workload, run_on, ExperimentScale, SystemKind,
};
use fa_workloads::polybench::PolyBench;

/// Renders the Figure 12a CDF (ATAX, homogeneous) and the Figure 12b CDF
/// (MX1, heterogeneous).
pub fn report(scale: ExperimentScale) -> String {
    let atax = homogeneous_workload(PolyBench::Atax, scale);
    let mx1 = heterogeneous_workload(1, scale);
    let mut out = render_one("Figure 12a: completed kernels over time, ATAX", &atax);
    out.push('\n');
    out.push_str(&render_one(
        "Figure 12b: completed kernels over time, MX1",
        &mx1,
    ));
    out
}

fn render_one(title: &str, apps: &[fa_kernel::model::Application]) -> String {
    let mut table = Table::new(
        title,
        &["System", "Completion times of successive kernels (s)"],
    );
    for system in SystemKind::all() {
        let out = run_on(system, title, apps);
        let times: Vec<String> = out
            .completion_times
            .iter()
            .map(|t| format!("{t:.4}"))
            .collect();
        table.row(vec![system.label().to_string(), times.join(", ")]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_report_lists_both_workloads_and_all_systems() {
        let r = report(ExperimentScale { data_scale: 512 });
        assert!(r.contains("Figure 12a"));
        assert!(r.contains("Figure 12b"));
        assert!(r.contains("IntraO3"));
        assert!(r.contains("SIMD"));
    }
}
