//! Figure 12: CDFs of kernel completion times (ATAX and MX1), plus the
//! background-GC / per-owner-QoS ablation: per-kernel flash read-latency
//! CDFs (p50/p99/max per owner) under a GC-pressure workload, with storage
//! management synchronous, backgrounded, and backgrounded-with-budget.

use crate::report::Table;
use crate::runner::{
    heterogeneous_workload, homogeneous_workload, run_on, ExperimentScale, SystemKind,
};
use fa_kernel::instance::{instantiate_many, InstancePlan};
use fa_kernel::model::Application;
use fa_sim::time::SimDuration;
use fa_workloads::polybench::PolyBench;
use fa_workloads::synthetic::{synthetic_app, SyntheticSpec};
use flashabacus::{FlashAbacusConfig, FlashAbacusSystem, RunOutcome, SchedulerPolicy};

/// Renders the Figure 12a CDF (ATAX, homogeneous), the Figure 12b CDF
/// (MX1, heterogeneous), and the Figure 12c QoS ablation.
pub fn report(scale: ExperimentScale) -> String {
    let atax = homogeneous_workload(PolyBench::Atax, scale);
    let mx1 = heterogeneous_workload(1, scale);
    let mut out = render_one("Figure 12a: completed kernels over time, ATAX", &atax);
    out.push('\n');
    out.push_str(&render_one(
        "Figure 12b: completed kernels over time, MX1",
        &mx1,
    ));
    out.push('\n');
    out.push_str(&qos_ablation_report());
    out
}

fn render_one(title: &str, apps: &[fa_kernel::model::Application]) -> String {
    let mut table = Table::new(
        title,
        &["System", "Completion times of successive kernels (s)"],
    );
    for system in SystemKind::all() {
        let out = run_on(system, title, apps);
        let times: Vec<String> = out
            .completion_times
            .iter()
            .map(|t| format!("{t:.4}"))
            .collect();
        table.row(vec![system.label().to_string(), times.join(", ")]);
    }
    table.render()
}

/// The GC-pressure workload of the ablation: twelve small kernels over six
/// workers, so the first wave's output flushes trip the watermark while
/// the second wave still stages inputs — GC and foreground reads share the
/// channels for real.
pub fn gc_pressure_workload() -> Vec<Application> {
    let template = synthetic_app(
        "pressure",
        &SyntheticSpec {
            instructions: 400_000,
            serial_fraction: 0.0,
            input_bytes: 128 * 1024,
            output_bytes: 16 * 1024,
            ldst_ratio: 0.4,
            mul_ratio: 0.1,
            parallel_screens: 4,
        },
    );
    instantiate_many(
        &[template],
        &InstancePlan {
            instances_per_app: 12,
            ..Default::default()
        },
    )
}

/// The GC-pressure device of the ablation: a 4 MiB backbone whose
/// watermark sits above the workload's footprint, so Storengine reclaims
/// for the whole run; writes are unbuffered so flushes (and therefore GC)
/// overlap the remaining foreground screens. Journaling is quiesced so
/// its background traffic does not confound the GC-contention signal
/// (the metadata row itself is reserved in the allocator now, so the old
/// cursor-collision hazard is gone either way).
pub fn gc_pressure_config(policy: SchedulerPolicy) -> FlashAbacusConfig {
    let mut config = FlashAbacusConfig::tiny_for_tests(policy);
    config.flash_geometry.blocks_per_plane = 16;
    config.gc_low_watermark = 0.65;
    config.buffered_writes = false;
    config.journal_interval = SimDuration::from_ms(10_000);
    config
}

/// The three storage-management modes the ablation compares.
pub fn qos_ablation_modes() -> [(&'static str, FlashAbacusConfig); 3] {
    let sync = gc_pressure_config(SchedulerPolicy::InterDy);
    let mut background = sync;
    background.qos.background_gc = true;
    let mut budgeted = background;
    budgeted.qos.gc_budget = Some(1);
    budgeted.qos.per_owner_tag_budget = Some(4);
    [
        ("sync-gc", sync),
        ("bg-unbudgeted", background),
        ("bg-budgeted", budgeted),
    ]
}

/// Runs one ablation mode and returns its outcome.
pub fn run_qos_mode(config: FlashAbacusConfig, apps: &[Application]) -> RunOutcome {
    FlashAbacusSystem::new(config)
        .run(apps)
        .expect("QoS ablation run completes")
}

/// Figure 12c: per-kernel flash read-latency quantiles per mode, plus the
/// foreground-tail summary the QoS budgets exist to protect.
pub fn qos_ablation_report() -> String {
    let apps = gc_pressure_workload();
    let mut per_owner = Table::new(
        "Figure 12c: per-kernel flash read-latency CDF under concurrent GC",
        &[
            "Mode",
            "Owner",
            "reads",
            "p50 (ms)",
            "p99 (ms)",
            "max (ms)",
            "peak tags",
        ],
    );
    let mut summary = Table::new(
        "Figure 12c summary: foreground read tail vs storage-management mode",
        &["Mode", "fg read p99 (ms)", "GC passes", "batch finish (ms)"],
    );
    for (label, config) in qos_ablation_modes() {
        let out = run_qos_mode(config, &apps);
        for o in &out.flash_owner_stats {
            if o.reads == 0 {
                continue;
            }
            per_owner.row(vec![
                label.to_string(),
                o.owner.clone(),
                o.reads.to_string(),
                format!("{:.4}", o.read_p50_s * 1e3),
                format!("{:.4}", o.read_p99_s * 1e3),
                format!("{:.4}", o.read_max_s * 1e3),
                o.peak_channel_tags.to_string(),
            ]);
        }
        summary.row(vec![
            label.to_string(),
            format!("{:.4}", out.foreground_read_p99_s * 1e3),
            out.gc_passes.to_string(),
            format!("{:.3}", out.finished_at.as_secs_f64() * 1e3),
        ]);
    }
    let mut rendered = per_owner.render();
    rendered.push('\n');
    rendered.push_str(&summary.render());
    rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_report_lists_both_workloads_and_all_systems() {
        let r = report(ExperimentScale { data_scale: 512 });
        assert!(r.contains("Figure 12a"));
        assert!(r.contains("Figure 12b"));
        assert!(r.contains("IntraO3"));
        assert!(r.contains("SIMD"));
        assert!(r.contains("Figure 12c"));
    }

    #[test]
    fn qos_ablation_shows_budgeted_tail_winning() {
        let apps = gc_pressure_workload();
        let [(_, sync), (_, background), (_, budgeted)] = qos_ablation_modes();
        let bg = run_qos_mode(background, &apps);
        let capped = run_qos_mode(budgeted, &apps);
        assert!(bg.gc_passes > 0, "watermark never tripped");
        assert!(
            capped.foreground_read_p99_s < bg.foreground_read_p99_s,
            "budgeted p99 {} should beat unbudgeted {}",
            capped.foreground_read_p99_s,
            bg.foreground_read_p99_s
        );
        // The report renders rows for kernels and the GC stream.
        let r = qos_ablation_report();
        assert!(r.contains("bg-budgeted"));
        assert!(r.contains("gc"));
        assert!(r.contains("kernel0"));
        let _ = sync;
    }
}
