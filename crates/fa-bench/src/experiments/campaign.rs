//! Shared evaluation campaigns.
//!
//! Each campaign fans its (workload, system) pairs across worker threads
//! (`FA_THREADS`, default: available parallelism) through
//! [`crate::runner::run_pairs`]; results are merged back in serial
//! iteration order, so every figure and table derived from a campaign is
//! byte-identical whatever the thread count.

use crate::runner::{
    bigdata_workload, heterogeneous_workload, homogeneous_workload, run_pairs, ExperimentScale,
    SystemKind, UnifiedOutcome,
};
use fa_kernel::model::Application;
use fa_workloads::bigdata::bigdata_table;
use fa_workloads::mixes::{mix_names, MIX_COUNT};
use fa_workloads::polybench::polybench_table2;

/// A set of completed runs, indexed by workload label and system.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// All outcomes, in (workload, system) iteration order.
    pub outcomes: Vec<UnifiedOutcome>,
    /// Workload labels in presentation order.
    pub workloads: Vec<String>,
}

impl Campaign {
    /// Builds a campaign from pre-built workloads by running every
    /// (workload, system) pair, fanned across the campaign thread pool.
    fn run(workload_apps: Vec<(String, Vec<Application>)>) -> Campaign {
        let workloads = workload_apps.iter().map(|(n, _)| n.clone()).collect();
        Campaign {
            outcomes: run_pairs(&workload_apps),
            workloads,
        }
    }

    /// The homogeneous campaign's workload list: six instances of each of
    /// the fourteen PolyBench applications.
    pub fn homogeneous_workloads(scale: ExperimentScale) -> Vec<(String, Vec<Application>)> {
        polybench_table2()
            .iter()
            .map(|row| (row.name.to_string(), homogeneous_workload(row.bench, scale)))
            .collect()
    }

    /// The heterogeneous campaign's workload list: MX1–MX14, 24 instances
    /// each.
    pub fn heterogeneous_workloads(scale: ExperimentScale) -> Vec<(String, Vec<Application>)> {
        let lists: Vec<(String, Vec<Application>)> = mix_names()
            .into_iter()
            .enumerate()
            .map(|(i, name)| {
                let apps = heterogeneous_workload(i + 1, scale);
                (name, apps)
            })
            .collect();
        debug_assert_eq!(lists.len(), MIX_COUNT);
        lists
    }

    /// The graph/big-data campaign's workload list.
    pub fn bigdata_workloads(scale: ExperimentScale) -> Vec<(String, Vec<Application>)> {
        bigdata_table()
            .iter()
            .map(|row| (row.name.to_string(), bigdata_workload(row.bench, scale)))
            .collect()
    }

    /// Runs the homogeneous campaign of §5.1: six instances of each of the
    /// fourteen PolyBench applications on all five systems.
    pub fn homogeneous(scale: ExperimentScale) -> Campaign {
        Self::run(Self::homogeneous_workloads(scale))
    }

    /// Runs the heterogeneous campaign of §5.1: MX1–MX14 on all five
    /// systems (24 instances each).
    pub fn heterogeneous(scale: ExperimentScale) -> Campaign {
        Self::run(Self::heterogeneous_workloads(scale))
    }

    /// Runs the graph/big-data campaign of §5.6 on all five systems.
    pub fn bigdata(scale: ExperimentScale) -> Campaign {
        Self::run(Self::bigdata_workloads(scale))
    }

    /// Looks up the outcome of one (workload, system) pair.
    pub fn get(&self, workload: &str, system: SystemKind) -> Option<&UnifiedOutcome> {
        self.outcomes
            .iter()
            .find(|o| o.workload == workload && o.system == system)
    }

    /// The outcome of one pair, panicking when absent (campaigns are always
    /// complete; a miss is a typo in the caller).
    pub fn expect(&self, workload: &str, system: SystemKind) -> &UnifiedOutcome {
        self.get(workload, system)
            .unwrap_or_else(|| panic!("no outcome for {workload} on {}", system.label()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashabacus::SchedulerPolicy;

    #[test]
    fn bigdata_campaign_covers_all_pairs() {
        let c = Campaign::bigdata(ExperimentScale { data_scale: 512 });
        assert_eq!(c.workloads.len(), 5);
        assert_eq!(c.outcomes.len(), 5 * 5);
        for w in &c.workloads {
            for s in SystemKind::all() {
                assert!(c.get(w, s).is_some(), "{w} on {}", s.label());
            }
        }
        let o = c.expect("bfs", SystemKind::FlashAbacus(SchedulerPolicy::IntraO3));
        assert!(o.throughput_mb_s > 0.0);
    }
}
