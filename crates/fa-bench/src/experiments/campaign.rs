//! Shared evaluation campaigns.

use crate::runner::{
    bigdata_workload, heterogeneous_workload, homogeneous_workload, run_on, ExperimentScale,
    SystemKind, UnifiedOutcome,
};
use fa_workloads::bigdata::bigdata_table;
use fa_workloads::mixes::{mix_names, MIX_COUNT};
use fa_workloads::polybench::polybench_table2;

/// A set of completed runs, indexed by workload label and system.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// All outcomes, in (workload, system) iteration order.
    pub outcomes: Vec<UnifiedOutcome>,
    /// Workload labels in presentation order.
    pub workloads: Vec<String>,
}

impl Campaign {
    /// Runs the homogeneous campaign of §5.1: six instances of each of the
    /// fourteen PolyBench applications on all five systems.
    pub fn homogeneous(scale: ExperimentScale) -> Campaign {
        let rows = polybench_table2();
        let mut outcomes = Vec::new();
        let mut workloads = Vec::new();
        for row in &rows {
            workloads.push(row.name.to_string());
            let apps = homogeneous_workload(row.bench, scale);
            for system in SystemKind::all() {
                outcomes.push(run_on(system, row.name, &apps));
            }
        }
        Campaign {
            outcomes,
            workloads,
        }
    }

    /// Runs the heterogeneous campaign of §5.1: MX1–MX14 on all five
    /// systems (24 instances each).
    pub fn heterogeneous(scale: ExperimentScale) -> Campaign {
        let mut outcomes = Vec::new();
        let mut workloads = Vec::new();
        for (i, name) in mix_names().into_iter().enumerate() {
            let mix = i + 1;
            workloads.push(name.clone());
            let apps = heterogeneous_workload(mix, scale);
            for system in SystemKind::all() {
                outcomes.push(run_on(system, &name, &apps));
            }
        }
        debug_assert_eq!(workloads.len(), MIX_COUNT);
        Campaign {
            outcomes,
            workloads,
        }
    }

    /// Runs the graph/big-data campaign of §5.6 on all five systems.
    pub fn bigdata(scale: ExperimentScale) -> Campaign {
        let mut outcomes = Vec::new();
        let mut workloads = Vec::new();
        for row in bigdata_table() {
            workloads.push(row.name.to_string());
            let apps = bigdata_workload(row.bench, scale);
            for system in SystemKind::all() {
                outcomes.push(run_on(system, row.name, &apps));
            }
        }
        Campaign {
            outcomes,
            workloads,
        }
    }

    /// Looks up the outcome of one (workload, system) pair.
    pub fn get(&self, workload: &str, system: SystemKind) -> Option<&UnifiedOutcome> {
        self.outcomes
            .iter()
            .find(|o| o.workload == workload && o.system == system)
    }

    /// The outcome of one pair, panicking when absent (campaigns are always
    /// complete; a miss is a typo in the caller).
    pub fn expect(&self, workload: &str, system: SystemKind) -> &UnifiedOutcome {
        self.get(workload, system)
            .unwrap_or_else(|| panic!("no outcome for {workload} on {}", system.label()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashabacus::SchedulerPolicy;

    #[test]
    fn bigdata_campaign_covers_all_pairs() {
        let c = Campaign::bigdata(ExperimentScale { data_scale: 512 });
        assert_eq!(c.workloads.len(), 5);
        assert_eq!(c.outcomes.len(), 5 * 5);
        for w in &c.workloads {
            for s in SystemKind::all() {
                assert!(c.get(w, s).is_some(), "{w} on {}", s.label());
            }
        }
        let o = c.expect("bfs", SystemKind::FlashAbacus(SchedulerPolicy::IntraO3));
        assert!(o.throughput_mb_s > 0.0);
    }
}
