//! Figure 11: kernel latency (min / average / max) normalized to SIMD.

use crate::experiments::campaign::Campaign;
use crate::report::{normalized, Table};
use crate::runner::SystemKind;

/// Renders Figure 11a (homogeneous workloads).
pub fn report_homogeneous(campaign: &Campaign) -> String {
    render(
        campaign,
        "Figure 11a: kernel latency normalized to SIMD (min/avg/max), homogeneous workloads",
    )
}

/// Renders Figure 11b (heterogeneous workloads).
pub fn report_heterogeneous(campaign: &Campaign) -> String {
    render(
        campaign,
        "Figure 11b: kernel latency normalized to SIMD (min/avg/max), heterogeneous workloads",
    )
}

fn render(campaign: &Campaign, title: &str) -> String {
    let mut headers = vec!["Workload"];
    let labels: Vec<String> = SystemKind::all()
        .iter()
        .map(|s| format!("{} min/avg/max", s.label()))
        .collect();
    headers.extend(labels.iter().map(String::as_str));
    let mut table = Table::new(title, &headers);
    for workload in &campaign.workloads {
        let simd = campaign.expect(workload, SystemKind::Simd);
        let (s_min, s_avg, s_max) = simd.latency_min_avg_max;
        let mut row = vec![workload.clone()];
        for system in SystemKind::all() {
            let out = campaign.expect(workload, system);
            let (min, avg, max) = out.latency_min_avg_max;
            row.push(format!(
                "{}/{}/{}",
                normalized(min, s_min),
                normalized(avg, s_avg),
                normalized(max, s_max)
            ));
        }
        table.row(row);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{bigdata_workload, run_on, ExperimentScale, UnifiedOutcome};
    use fa_workloads::bigdata::BigDataBench;

    #[test]
    fn latency_table_normalizes_simd_to_one() {
        let apps = bigdata_workload(BigDataBench::Nw, ExperimentScale { data_scale: 1024 });
        let outcomes: Vec<UnifiedOutcome> = SystemKind::all()
            .iter()
            .map(|s| run_on(*s, "nw", &apps))
            .collect();
        let c = Campaign {
            outcomes,
            workloads: vec!["nw".to_string()],
        };
        let r = report_homogeneous(&c);
        assert!(
            r.contains("1.00/1.00/1.00"),
            "SIMD column should be 1.0:\n{r}"
        );
    }
}
