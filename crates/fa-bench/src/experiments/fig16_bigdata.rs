//! Figure 16: graph and big-data applications (§5.6).

use crate::experiments::campaign::Campaign;
use crate::report::{f1, Table};
use crate::runner::SystemKind;

/// Renders Figure 16a (throughput) and Figure 16b (energy breakdown
/// normalized to SIMD) from a big-data campaign.
pub fn report(campaign: &Campaign) -> String {
    let mut headers = vec!["Workload"];
    let labels: Vec<&str> = SystemKind::all().iter().map(|s| s.label()).collect();
    headers.extend(labels.iter().copied());
    let mut throughput = Table::new(
        "Figure 16a: throughput (MB/s), graph / big-data applications",
        &headers,
    );
    for workload in &campaign.workloads {
        let mut row = vec![workload.clone()];
        for system in SystemKind::all() {
            row.push(f1(campaign.expect(workload, system).throughput_mb_s));
        }
        throughput.row(row);
    }

    let mut energy_headers = vec!["Workload"];
    let energy_labels: Vec<String> = SystemKind::all()
        .iter()
        .map(|s| format!("{} dm/comp/st (total)", s.label()))
        .collect();
    energy_headers.extend(energy_labels.iter().map(String::as_str));
    let mut energy = Table::new(
        "Figure 16b: energy breakdown normalized to SIMD, graph / big-data applications",
        &energy_headers,
    );
    for workload in &campaign.workloads {
        let simd_total = campaign
            .expect(workload, SystemKind::Simd)
            .total_energy_j()
            .max(f64::EPSILON);
        let mut row = vec![workload.clone()];
        for system in SystemKind::all() {
            let e = &campaign.expect(workload, system).energy;
            row.push(format!(
                "{:.2}/{:.2}/{:.2} ({:.2})",
                e.data_movement_j / simd_total,
                e.computation_j / simd_total,
                e.storage_access_j / simd_total,
                e.total_j() / simd_total,
            ));
        }
        energy.row(row);
    }
    format!("{}\n{}", throughput.render(), energy.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ExperimentScale;

    #[test]
    fn bigdata_report_covers_all_five_apps() {
        let campaign = Campaign::bigdata(ExperimentScale { data_scale: 1024 });
        let r = report(&campaign);
        for app in ["bfs", "wc", "nn", "nw", "path"] {
            assert!(r.contains(app), "missing {app}");
        }
        assert!(r.contains("Figure 16a"));
        assert!(r.contains("Figure 16b"));
    }
}
