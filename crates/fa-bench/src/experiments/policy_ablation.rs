//! Policy ablation: placement × GC-victim × hot/cold separation.
//!
//! PR 3's free-space subsystem and PR 4's owner-tagged data path exist so
//! richer storage policies can be compared under identical churn. This
//! figure does exactly that, on two levels:
//!
//! * **Churn harness** — a deterministic overwrite workload driven straight
//!   through Flashvisor + Storengine: a cold region written rarely, a hot
//!   window overwritten constantly, GC reclaiming whenever the watermark
//!   trips. Every `PlacementPolicy` × `GcVictimPolicy` combination runs the
//!   identical operation sequence, so differences in wear spread and
//!   migration efficiency are pure policy effects.
//! * **Full-system endurance** — the fig12 GC-pressure workload run through
//!   [`flashabacus::FlashAbacusSystem`] per placement policy, reporting the
//!   endurance metrics now threaded through `RunOutcome` (wear spread,
//!   migrated-bytes-per-reclaimed-byte, hot/cold steering).
//!
//! The headline numbers: `LeastWorn` narrows the erase-count spread,
//! `GreedyMinValid`/`CostBenefit` cut the bytes migrated per byte
//! reclaimed, and hot/cold separation concentrates churn garbage so GC
//! passes migrate almost nothing.

use crate::experiments::fig12_cdf::{gc_pressure_config, gc_pressure_workload};
use crate::report::Table;
use crate::runner::ExperimentScale;
use fa_platform::mem::Scratchpad;
use fa_platform::PlatformSpec;
use fa_sim::time::{SimDuration, SimTime};
use flashabacus::config::FlashAbacusConfig;
use flashabacus::freespace::PlacementPolicy;
use flashabacus::scheduler::SchedulerPolicy;
use flashabacus::storengine::{GcVictimPolicy, Storengine};
use flashabacus::{FlashAbacusSystem, Flashvisor};

/// The churn device: 2 channels × 32 blocks × 16 pages of 4 KB, 8 KB
/// groups → 512 groups in 32 block rows (one reserved for the journal).
/// Small enough that thousands of overwrite rounds run in milliseconds,
/// large enough that placement and victim choice visibly diverge.
fn churn_config(
    placement: PlacementPolicy,
    gc_victim: GcVictimPolicy,
    hot_threshold: Option<u32>,
) -> FlashAbacusConfig {
    let mut config = FlashAbacusConfig::tiny_for_tests(SchedulerPolicy::IntraO3);
    config.flash_geometry.blocks_per_plane = 32;
    config.flash_geometry.pages_per_block = 16;
    config.page_group_bytes = 8 * 1024;
    config.gc_low_watermark = 0.50;
    // Journaling is not under test here; quiesce it so every erase is a
    // policy decision.
    config.journal_interval = SimDuration::from_ms(60_000);
    config.placement = placement;
    config.gc_victim = gc_victim;
    config.hot_overwrite_threshold = hot_threshold;
    config
}

/// One churn run's endurance outcome.
#[derive(Debug, Clone)]
pub struct ChurnOutcome {
    /// Placement policy label.
    pub placement: &'static str,
    /// GC victim policy label.
    pub gc_victim: &'static str,
    /// Hot/cold separation threshold, if enabled.
    pub hot_threshold: Option<u32>,
    /// Fewest erase cycles on any data block.
    pub wear_min: u64,
    /// Most erase cycles on any data block.
    pub wear_max: u64,
    /// Population standard deviation of data-block erase cycles.
    pub wear_stddev: f64,
    /// Bytes GC migrated per byte reclaimed (lower is better).
    pub migrated_per_reclaimed: f64,
    /// Pages GC migrated in total.
    pub pages_migrated: u64,
    /// Page groups GC returned to the allocator.
    pub groups_reclaimed: u64,
    /// Fraction of hot-classified writes served from the dedicated hot
    /// active blocks.
    pub hot_steer_rate: f64,
}

impl ChurnOutcome {
    /// `max − min` erase cycles: the endurance-headroom spread.
    pub fn wear_spread(&self) -> u64 {
        self.wear_max - self.wear_min
    }
}

/// Runs the deterministic churn workload under one policy combination:
/// fill a 128-group logical space, then `rounds` rounds of overwrites —
/// every round hits the 32-group hot window, every fourth round also
/// rewrites one cold group — with watermark-driven GC interleaved. The
/// operation sequence is identical for every combination.
pub fn run_churn(config: FlashAbacusConfig, rounds: u64) -> ChurnOutcome {
    let mut v = Flashvisor::new(config);
    let mut s = Storengine::new(config);
    let mut sp = Scratchpad::new(&PlatformSpec::paper_prototype());
    let group_bytes = config.page_group_bytes;
    let (cold_groups, hot_groups) = (96u64, 32u64);
    let mut now_us = 1u64;
    let write =
        |v: &mut Flashvisor, s: &mut Storengine, sp: &mut Scratchpad, now_us: &mut u64, lg: u64| {
            *now_us += 41;
            let _ = v.write_section(SimTime::from_us(*now_us), lg * group_bytes, group_bytes, sp);
            let mut guard = 0;
            while s.gc_needed(v) && guard < 64 {
                *now_us += 173;
                if s.collect_garbage(SimTime::from_us(*now_us), v).is_err() {
                    break;
                }
                guard += 1;
            }
        };
    // Initial fill: the cold region then the hot window, once each.
    for lg in 0..cold_groups + hot_groups {
        write(&mut v, &mut s, &mut sp, &mut now_us, lg);
    }
    for round in 0..rounds {
        let hot_lg = cold_groups + round % hot_groups;
        write(&mut v, &mut s, &mut sp, &mut now_us, hot_lg);
        if round % 4 == 0 {
            let cold_lg = (round / 4) % cold_groups;
            write(&mut v, &mut s, &mut sp, &mut now_us, cold_lg);
        }
    }

    let wear = v.data_block_wear();
    let stats = s.stats();
    let migrated_bytes = stats.pages_migrated * config.flash_geometry.page_bytes as u64;
    let reclaimed_bytes = stats.groups_reclaimed * config.page_group_bytes;
    ChurnOutcome {
        placement: config.placement.label(),
        gc_victim: config.gc_victim.label(),
        hot_threshold: config.hot_overwrite_threshold,
        wear_min: wear.min_erases,
        wear_max: wear.max_erases,
        wear_stddev: wear.stddev_erases,
        migrated_per_reclaimed: if reclaimed_bytes == 0 {
            0.0
        } else {
            migrated_bytes as f64 / reclaimed_bytes as f64
        },
        pages_migrated: stats.pages_migrated,
        groups_reclaimed: stats.groups_reclaimed,
        hot_steer_rate: v.stats().hot_steer_rate(),
    }
}

/// Churn rounds for a given experiment scale: enough rounds at full scale
/// that every block row cycles several times, scaled down for smokes.
pub fn churn_rounds(scale: ExperimentScale) -> u64 {
    (32_000 / scale.data_scale).max(500)
}

/// The full 3 × 3 grid (hot/cold off), in report order.
pub fn churn_grid(rounds: u64) -> Vec<ChurnOutcome> {
    let mut out = Vec::new();
    for placement in PlacementPolicy::all() {
        for gc_victim in GcVictimPolicy::all() {
            out.push(run_churn(churn_config(placement, gc_victim, None), rounds));
        }
    }
    out
}

/// Hot/cold ablation: the separation-*on* runs (threshold 8 — hot-window
/// groups absorb dozens of overwrites per run, cold groups only a
/// handful) for the default and wear-aware placements. The matching
/// separation-off rows already exist in [`churn_grid`]; callers pair
/// against those instead of re-running them.
pub fn hot_cold_on_rows(rounds: u64) -> Vec<ChurnOutcome> {
    [PlacementPolicy::FirstFree, PlacementPolicy::LeastWorn]
        .into_iter()
        .map(|placement| {
            run_churn(
                churn_config(placement, GcVictimPolicy::GreedyMinValid, Some(8)),
                rounds,
            )
        })
        .collect()
}

fn churn_row(o: &ChurnOutcome) -> Vec<String> {
    vec![
        o.placement.to_string(),
        o.gc_victim.to_string(),
        match o.hot_threshold {
            Some(t) => format!("≥{t}"),
            None => "off".to_string(),
        },
        format!("{}..{}", o.wear_min, o.wear_max),
        o.wear_spread().to_string(),
        format!("{:.3}", o.wear_stddev),
        format!("{:.4}", o.migrated_per_reclaimed),
        o.pages_migrated.to_string(),
        o.groups_reclaimed.to_string(),
        format!("{:.3}", o.hot_steer_rate),
    ]
}

const CHURN_HEADER: [&str; 10] = [
    "Placement",
    "GC victim",
    "hot/cold",
    "wear min..max",
    "spread",
    "wear σ",
    "migrated B / reclaimed B",
    "pages migrated",
    "groups reclaimed",
    "hot steer rate",
];

/// Renders the policy-ablation figure: the churn grid, the hot/cold
/// ablation, and the full-system endurance rows.
pub fn report(scale: ExperimentScale) -> String {
    let rounds = churn_rounds(scale);
    let grid_outcomes = churn_grid(rounds);
    let mut grid = Table::new(
        format!("Policy ablation: placement × GC victim under {rounds} churn rounds"),
        &CHURN_HEADER,
    );
    for outcome in &grid_outcomes {
        grid.row(churn_row(outcome));
    }
    let mut hotcold = Table::new(
        "Hot/cold separation: overwrite-threshold classification, dedicated hot blocks",
        &CHURN_HEADER,
    );
    for on in hot_cold_on_rows(rounds) {
        // The separation-off partner is the grid's matching combination —
        // reused, not re-simulated.
        let off = grid_outcomes
            .iter()
            .find(|o| o.placement == on.placement && o.gc_victim == on.gc_victim)
            .expect("grid covers every combination");
        hotcold.row(churn_row(off));
        hotcold.row(churn_row(&on));
    }

    // Full-system endurance: the GC-pressure workload per placement policy,
    // through the complete dispatch loop, reporting the RunOutcome
    // endurance metrics.
    let mut system = Table::new(
        "Full-system endurance under GC pressure (per placement policy)",
        &[
            "Placement",
            "wear min..max",
            "spread",
            "wear σ",
            "migrated B / reclaimed B",
            "GC passes",
            "fg read p99 (ms)",
        ],
    );
    let apps = gc_pressure_workload();
    for placement in PlacementPolicy::all() {
        let mut config = gc_pressure_config(SchedulerPolicy::InterDy);
        config.placement = placement;
        let out = FlashAbacusSystem::new(config)
            .run(&apps)
            .expect("policy-ablation system run completes");
        system.row(vec![
            placement.label().to_string(),
            format!("{}..{}", out.wear_min_erases, out.wear_max_erases),
            (out.wear_max_erases - out.wear_min_erases).to_string(),
            format!("{:.3}", out.wear_stddev_erases),
            format!("{:.4}", out.gc_migrated_bytes_per_reclaimed_byte),
            out.gc_passes.to_string(),
            format!("{:.4}", out.foreground_read_p99_s * 1e3),
        ]);
    }

    let mut rendered = grid.render();
    rendered.push('\n');
    rendered.push_str(&hotcold.render());
    rendered.push('\n');
    rendered.push_str(&system.render());
    rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_ROUNDS: u64 = 800;

    #[test]
    fn least_worn_narrows_wear_spread() {
        let ff = run_churn(
            churn_config(
                PlacementPolicy::FirstFree,
                GcVictimPolicy::GreedyMinValid,
                None,
            ),
            TEST_ROUNDS,
        );
        let lw = run_churn(
            churn_config(
                PlacementPolicy::LeastWorn,
                GcVictimPolicy::GreedyMinValid,
                None,
            ),
            TEST_ROUNDS,
        );
        assert!(
            lw.wear_spread() < ff.wear_spread(),
            "LeastWorn spread {} should be narrower than FirstFree {}",
            lw.wear_spread(),
            ff.wear_spread()
        );
        assert!(lw.wear_stddev < ff.wear_stddev);
    }

    #[test]
    fn smarter_victims_cut_migration_per_reclaimed_byte() {
        let outcomes: Vec<ChurnOutcome> = GcVictimPolicy::all()
            .into_iter()
            .map(|gc| {
                run_churn(
                    churn_config(PlacementPolicy::FirstFree, gc, None),
                    TEST_ROUNDS,
                )
            })
            .collect();
        let by_label = |label: &str| {
            outcomes
                .iter()
                .find(|o| o.gc_victim == label)
                .expect("grid covers every victim policy")
        };
        let rr = by_label("RoundRobin");
        let greedy = by_label("GreedyMinValid");
        let cb = by_label("CostBenefit");
        assert!(rr.groups_reclaimed > 0);
        assert!(
            greedy.migrated_per_reclaimed < rr.migrated_per_reclaimed,
            "greedy {} should beat round-robin {}",
            greedy.migrated_per_reclaimed,
            rr.migrated_per_reclaimed
        );
        assert!(
            cb.migrated_per_reclaimed < rr.migrated_per_reclaimed,
            "cost-benefit {} should beat round-robin {}",
            cb.migrated_per_reclaimed,
            rr.migrated_per_reclaimed
        );
    }

    #[test]
    fn hot_cold_separation_steers_and_saves_migration() {
        let off = run_churn(
            churn_config(
                PlacementPolicy::FirstFree,
                GcVictimPolicy::GreedyMinValid,
                None,
            ),
            TEST_ROUNDS,
        );
        let on = run_churn(
            churn_config(
                PlacementPolicy::FirstFree,
                GcVictimPolicy::GreedyMinValid,
                Some(8),
            ),
            TEST_ROUNDS,
        );
        assert_eq!(off.hot_threshold, None);
        assert_eq!(on.hot_threshold, Some(8));
        // Separation actually engaged...
        assert!(
            on.hot_steer_rate > 0.9,
            "hot steer rate {} too low",
            on.hot_steer_rate
        );
        assert_eq!(off.hot_steer_rate, 0.0);
        // ...and concentrating churn garbage cuts the migration bill.
        assert!(
            on.migrated_per_reclaimed < off.migrated_per_reclaimed,
            "hot/cold on {} should beat off {}",
            on.migrated_per_reclaimed,
            off.migrated_per_reclaimed
        );
    }

    #[test]
    fn report_renders_all_sections() {
        let r = report(ExperimentScale { data_scale: 512 });
        assert!(r.contains("Policy ablation"));
        assert!(r.contains("Hot/cold separation"));
        assert!(r.contains("Full-system endurance"));
        assert!(r.contains("LeastWorn"));
        assert!(r.contains("CostBenefit"));
    }
}
